//! # QTAccel — facade crate
//!
//! Reproduction of *QTAccel: A Generic FPGA based Design for Q-Table based
//! Reinforcement Learning Accelerators* (IPDPS 2020) as a cycle-accurate
//! Rust simulation suite. This facade re-exports all sub-crates under one
//! roof so examples and downstream users need a single dependency:
//!
//! * [`fixed`] — fixed-point datapath arithmetic ([`fixed::Q8_8`] is the
//!   default hardware format).
//! * [`hdl`] — FPGA component models: dual-port BRAM, LFSRs, DSP counting,
//!   device/resource/fmax/power models.
//! * [`envs`] — environments: grid world (the paper's evaluation workload),
//!   cliff walk, multi-agent grids, Gaussian multi-armed bandits.
//! * [`core`] — software golden references: Q-Learning, SARSA, the action
//!   selection policies, bandit algorithms.
//! * [`accel`] — the contribution: the 4-stage pipelined accelerator with
//!   hazard forwarding, Qmax table, multi-pipeline and MAB engines.
//! * [`baseline`] — comparison baselines: the FSM-per-state-action design
//!   of Da Silva et al. and CPU software Q-learning.
//! * [`telemetry`] — observability: the hardware-style perf-counter bank,
//!   structured event-trace sinks (ring/JSONL) every engine accepts via
//!   `with_sink`, and the JSON emitter/parser behind run reports. Off by
//!   default and free when off (DESIGN.md §2.6).
//! * [`cluster`] — the fault-tolerant multi-process training runtime:
//!   a supervising coordinator hands epoch-fenced shard leases to worker
//!   processes over the telemetry wire protocol and survives kills,
//!   partitions and zombies bit-exactly (DESIGN.md §2.16).
//!
//! ## Quickstart
//!
//! ```
//! use qtaccel::envs::GridWorld;
//! use qtaccel::accel::{AccelConfig, QLearningAccel};
//!
//! // 8x8 grid world, 4 actions, as in the paper's smallest test case.
//! let env = GridWorld::builder(8, 8).goal(7, 7).build();
//! let config = AccelConfig::default().with_alpha(0.5).with_gamma(0.875);
//! let mut accel = QLearningAccel::<qtaccel::fixed::Q8_8>::new(&env, config);
//! let stats = accel.train_samples(&env, 20_000);
//! assert_eq!(stats.samples, 20_000);
//! // After the 3-cycle pipeline fill, one sample retires per cycle.
//! assert!(stats.cycles <= stats.samples + 4);
//! ```

pub use qtaccel_accel as accel;
pub use qtaccel_baseline as baseline;
pub use qtaccel_cluster as cluster;
pub use qtaccel_core as core;
pub use qtaccel_envs as envs;
pub use qtaccel_fixed as fixed;
pub use qtaccel_hdl as hdl;
pub use qtaccel_telemetry as telemetry;
