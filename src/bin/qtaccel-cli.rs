//! `qtaccel-cli` — drive the accelerator models from the command line.
//!
//! ```text
//! cargo run --release -p qtaccel --bin qtaccel-cli -- train --engine ql \
//!     --width 16 --height 16 --samples 500000 --gamma 0.96875
//! cargo run --release -p qtaccel --bin qtaccel-cli -- bandit --arms 8 --policy exp3
//! cargo run --release -p qtaccel --bin qtaccel-cli -- resources --states 262144 --actions 8
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use qtaccel::accel::{
    AccelConfig, BanditAccel, BanditPolicy, ProbPolicyAccel, QLearningAccel, SarsaAccel,
    WeightRule,
};
use qtaccel::accel::resources::{analyze, EngineKind};
use qtaccel::core::eval::{evaluate_policy, step_optimality};
use qtaccel::envs::{ActionSet, Environment, GaussianBandit, GridWorld};
use qtaccel::fixed::Q8_8;
use qtaccel::hdl::lfsr::Lfsr32;
use qtaccel::hdl::resource::Device;

const HELP: &str = "\
qtaccel-cli — cycle-accurate QTAccel accelerator models

USAGE:
    qtaccel-cli <command> [--key value]...

COMMANDS:
    train        train a QRL engine on a grid world
                 --engine ql|sarsa|prob (default ql)
                 --width N --height N   grid size (default 16x16)
                 --actions 4|8          move set (default 4)
                 --obstacles P          obstacle percent (default 10)
                 --samples N            updates (default 500000)
                 --alpha A --gamma G    hyper-parameters (default 0.5 / 0.96875)
                 --epsilon E            exploration (sarsa; default 0.2)
                 --temperature T        Boltzmann temperature (prob; default 0.1)
                 --seed S               master seed (default 1)
    bandit       run the MAB engine
                 --arms M               arm count (default 5)
                 --rounds N             pulls (default 100000)
                 --policy eps|exp3      selection policy (default eps)
                 --epsilon E            exploration (default 0.05)
                 --seed S
    resources    print the hardware cost model for a configuration
                 --states N --actions N --engine ql|sarsa
                 --device vu13p|v7|v6   (default vu13p)
    help         show this text
";

fn parse_args(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --key, got '{}'", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("missing value for --{key}"))?;
        map.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    map: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value '{v}' for --{key}")),
    }
}

fn cmd_train(map: &HashMap<String, String>) -> Result<(), String> {
    let engine = map.get("engine").map(String::as_str).unwrap_or("ql");
    let width: u32 = get(map, "width", 16)?;
    let height: u32 = get(map, "height", 16)?;
    let actions: u32 = get(map, "actions", 4)?;
    let obstacles: u32 = get(map, "obstacles", 10)?;
    let samples: u64 = get(map, "samples", 500_000)?;
    let alpha: f64 = get(map, "alpha", 0.5)?;
    let gamma: f64 = get(map, "gamma", 0.96875)?;
    let epsilon: f64 = get(map, "epsilon", 0.2)?;
    let temperature: f64 = get(map, "temperature", 0.1)?;
    let seed: u64 = get(map, "seed", 1)?;

    let action_set = match actions {
        4 => ActionSet::Four,
        8 => ActionSet::Eight,
        _ => return Err("actions must be 4 or 8".into()),
    };
    let mut rng = Lfsr32::new(seed as u32 ^ 0x5EED);
    let env = GridWorld::random(width, height, obstacles, action_set, &mut rng);
    let cfg = AccelConfig::default()
        .with_alpha(alpha)
        .with_gamma(gamma)
        .with_seed(seed);

    println!(
        "training {engine} on a {width}x{height} grid ({} states x {} actions), {samples} samples",
        env.num_states(),
        env.num_actions()
    );
    let (stats, policy, resources) = match engine {
        "ql" => {
            let mut a = QLearningAccel::<Q8_8>::new(&env, cfg);
            let s = a.train_samples(&env, samples);
            (s, a.greedy_policy(), a.resources())
        }
        "sarsa" => {
            let mut a = SarsaAccel::<Q8_8>::new(&env, cfg, epsilon);
            let s = a.train_samples(&env, samples);
            (s, a.greedy_policy(), a.resources())
        }
        "prob" => {
            let mut a =
                ProbPolicyAccel::<Q8_8>::new(&env, cfg, WeightRule::Boltzmann { temperature });
            let s = a.train_samples(&env, samples);
            let policy = a.greedy_policy();
            let r = a.resources();
            (s, policy, r)
        }
        other => return Err(format!("unknown engine '{other}' (ql|sarsa|prob)")),
    };

    println!(
        "cycles {} | samples/cycle {:.4} | stalls {} | forwards {}",
        stats.cycles,
        stats.samples_per_cycle(),
        stats.stalls,
        stats.forwards
    );
    println!(
        "hardware: {} DSP | {} BRAM ({:.2}%) | {:.0} MHz | {:.0} MS/s | {:.1} mW",
        resources.report.dsp,
        resources.report.bram36,
        resources.utilization.bram_pct,
        resources.fmax_mhz,
        resources.throughput_msps,
        resources.power_mw
    );
    let opt = step_optimality(&env, &policy, &env.shortest_distances());
    let mut eval_rng = Lfsr32::new(7);
    let report = evaluate_policy(&env, &policy, 100, width * height * 2, &mut eval_rng);
    println!(
        "policy: step-optimality {:.3} | success {:.0}% | mean path {:.1}",
        opt,
        report.success_rate() * 100.0,
        report.mean_steps
    );
    if width <= 64 && height <= 64 {
        print!("{}", env.render_policy(&policy));
    }
    Ok(())
}

fn cmd_bandit(map: &HashMap<String, String>) -> Result<(), String> {
    let arms: usize = get(map, "arms", 5)?;
    let rounds: usize = get(map, "rounds", 100_000)?;
    let epsilon: f64 = get(map, "epsilon", 0.05)?;
    let seed: u64 = get(map, "seed", 1)?;
    let policy = match map.get("policy").map(String::as_str).unwrap_or("eps") {
        "eps" => BanditPolicy::EpsilonGreedy { epsilon },
        "exp3" => BanditPolicy::Exp3 { gamma: 0.1 },
        other => return Err(format!("unknown bandit policy '{other}' (eps|exp3)")),
    };
    let mut env = GaussianBandit::linear_means(arms, 0.15, seed as u32);
    let mut engine = BanditAccel::<Q8_8>::new(
        arms,
        policy,
        0.1,
        AccelConfig::default().with_seed(seed),
    );
    let regret = engine.run(&mut env, rounds);
    let est = engine.estimates();
    let best = est
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0);
    println!(
        "{arms}-arm bandit, {rounds} rounds: regret {:.1}, best-arm estimate {} (true {}), \
         modeled {:.0} M decisions/s",
        regret.last().copied().unwrap_or(0.0),
        best,
        env.optimal_arm(),
        engine.resources().throughput_msps
    );
    Ok(())
}

fn cmd_resources(map: &HashMap<String, String>) -> Result<(), String> {
    let states: usize = get(map, "states", 65_536)?;
    let actions: usize = get(map, "actions", 8)?;
    let kind = match map.get("engine").map(String::as_str).unwrap_or("ql") {
        "ql" => EngineKind::QLearning,
        "sarsa" => EngineKind::Sarsa,
        other => return Err(format!("unknown engine '{other}' (ql|sarsa)")),
    };
    let device = match map.get("device").map(String::as_str).unwrap_or("vu13p") {
        "vu13p" => Device::XCVU13P,
        "v7" => Device::VIRTEX7_690T,
        "v6" => Device::VIRTEX6_LX240T,
        other => return Err(format!("unknown device '{other}' (vu13p|v7|v6)")),
    };
    let cfg = AccelConfig::default().with_device(device);
    let r = analyze(states, actions, 16, kind, &cfg, 1.0);
    println!(
        "{kind:?} with |S|={states}, |A|={actions} on {}:",
        device.name
    );
    println!(
        "  DSP {} ({:.3}%) | BRAM {} blocks ({:.2}%) | FF {} ({:.3}%) | LUT {}",
        r.report.dsp,
        r.utilization.dsp_pct,
        r.report.bram36,
        r.utilization.bram_pct,
        r.report.ff,
        r.utilization.ff_pct,
        r.report.lut
    );
    if !r.report.fits(&device) {
        println!("  DOES NOT FIT this device");
    }
    println!(
        "  fmax {:.0} MHz -> {:.0} MS/s | power {:.1} mW",
        r.fmax_mhz, r.throughput_msps, r.power_mw
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        print!("{HELP}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        cmd => match parse_args(&args[1..]) {
            Err(e) => Err(e),
            Ok(map) => match cmd {
                "train" => cmd_train(&map),
                "bandit" => cmd_bandit(&map),
                "resources" => cmd_resources(&map),
                other => Err(format!("unknown command '{other}'; see 'qtaccel-cli help'")),
            },
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
