//! Property-based tests for the hardware substrate.

use proptest::prelude::*;
use qtaccel_hdl::bram::{blocks_for, uram_blocks_for, Bram, BramPort};
use qtaccel_hdl::lfsr::Lfsr32;
use qtaccel_hdl::rng::{epsilon_greedy_draw, epsilon_to_q32, RngSource, SeedSequence};

proptest! {
    #[test]
    fn blocks_monotone_in_entries(a in 1u64..1_000_000, b in 1u64..1_000_000, w in 1u32..64) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(blocks_for(lo, w) <= blocks_for(hi, w));
    }

    #[test]
    fn blocks_cover_capacity(entries in 1u64..1_000_000, w in 1u32..72) {
        // The blocks allocated always provide at least entries*w bits.
        let blocks = blocks_for(entries, w);
        prop_assert!(blocks * 36 * 1024 >= entries * w as u64,
            "{entries} x {w}b in {blocks} blocks");
    }

    #[test]
    fn uram_blocks_cover_capacity(entries in 1u64..10_000_000, w in 1u32..72) {
        let blocks = uram_blocks_for(entries, w);
        prop_assert!(blocks * 288 * 1024 >= entries * w as u64);
    }

    #[test]
    fn epsilon_draw_in_range(seed in 1u32.., eps in 0.0f64..=1.0, n in 1u32..64) {
        let mut rng = Lfsr32::new(seed);
        for _ in 0..32 {
            if let Some(a) = epsilon_greedy_draw(&mut rng, epsilon_to_q32(eps), n) {
                prop_assert!(a < n);
            }
        }
    }

    #[test]
    fn below_in_range(seed in 1u32.., n in 1u32..1_000_000) {
        let mut rng = Lfsr32::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn seed_sequence_never_zero(master in any::<u64>(), idx in 0u64..1000) {
        prop_assert_ne!(SeedSequence::new(master).derive(idx), 0);
    }

    #[test]
    fn bram_read_returns_last_committed_write(
        writes in prop::collection::vec((0usize..32, any::<u32>()), 1..40),
    ) {
        // Shadow-model check: after ticking every write through port A,
        // reads agree with a plain array.
        let mut bram = Bram::<u32>::new(32, 32);
        let mut shadow = [0u32; 32];
        for (addr, value) in &writes {
            bram.issue_write(BramPort::A, *addr, *value);
            bram.tick();
            shadow[*addr] = *value;
        }
        for (addr, expect) in shadow.iter().enumerate() {
            bram.issue_read(BramPort::A, addr);
            bram.tick();
            prop_assert_eq!(bram.read_data(BramPort::A), Some(*expect));
        }
    }

    #[test]
    fn bram_collision_keeps_exactly_one_value(
        addr in 0usize..16,
        va in any::<u32>(),
        vb in any::<u32>(),
    ) {
        let mut bram = Bram::<u32>::new(16, 32);
        bram.issue_write(BramPort::A, addr, va);
        bram.issue_write(BramPort::B, addr, vb);
        bram.tick();
        let got = bram.peek(addr);
        prop_assert!(got == va, "port A must win, got {got}");
        prop_assert_eq!(bram.stats().write_collisions, 1);
    }
}
