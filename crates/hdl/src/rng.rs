//! The [`RngSource`] abstraction shared by hardware and software models.
//!
//! Every stochastic choice in the paper's architecture is derived from an
//! N-bit uniform word: random action selection, the ε-greedy comparison
//! ("generate a N bit random number; if the number is between 1 and
//! (1−ε)·2^N then we read the maximum Q-value"), and direct indexing of a
//! uniformly chosen action ("as we know the range beforehand, we can use
//! the random number to directly index one of the Q-values").
//!
//! [`RngSource`] captures exactly that interface. The pipeline simulator
//! and the software golden reference consume the *same* trait object state,
//! so given the same seed they make identical decisions — the foundation of
//! the bit-exact equivalence tests.

/// A deterministic stream of uniform 32-bit words.
pub trait RngSource {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;

    /// Next uniform word truncated to the low `bits` bits (`1..=32`).
    #[inline]
    fn next_bits(&mut self, bits: u32) -> u32 {
        debug_assert!((1..=32).contains(&bits));
        if bits == 32 {
            self.next_u32()
        } else {
            self.next_u32() & ((1u32 << bits) - 1)
        }
    }

    /// Uniform integer in `[0, n)` via the multiply-shift range reduction
    /// the paper alludes to ("directly index one of the Q-values"): a
    /// single multiplier maps the N-bit word onto the range, with bias
    /// ≤ n/2³² — negligible for the action counts involved (≤ 8).
    #[inline]
    fn below(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0);
        ((self.next_u32() as u64 * n as u64) >> 32) as u32
    }

    /// The hardware ε-greedy comparison: true ⇒ *explore* (choose a random
    /// action), false ⇒ *exploit* (read the maximum Q-value).
    ///
    /// `epsilon_q32` is ε represented as a 32-bit fixed fraction
    /// (`ε·2³²`), i.e. the comparator threshold register.
    #[inline]
    fn explore(&mut self, epsilon_q32: u32) -> bool {
        self.next_u32() < epsilon_q32
    }

    /// Uniform `f64` in `[0, 1)` (for software-side statistics; hardware
    /// never materializes floats).
    #[inline]
    fn next_f64(&mut self) -> f64 {
        self.next_u32() as f64 / 4_294_967_296.0
    }
}

/// The paper's one-word ε-greedy decision (§V-B): draw a single N-bit
/// word; if it falls in the explore region `[0, ε·2^N)` the *same* word
/// directly indexes a uniformly chosen action ("as we know the range
/// beforehand, we can use the random number to directly index one of the
/// Q-values"); otherwise exploit.
///
/// Returns `Some(action)` to explore, `None` to exploit (read the max).
#[inline]
pub fn epsilon_greedy_draw(
    rng: &mut dyn RngSource,
    epsilon_q32: u32,
    num_actions: u32,
) -> Option<u32> {
    debug_assert!(num_actions > 0);
    let x = rng.next_u32();
    if x < epsilon_q32 {
        // x is uniform on [0, ε·2^32): rescale onto the action range.
        Some(((x as u64 * num_actions as u64) / epsilon_q32 as u64) as u32)
    } else {
        None
    }
}

/// Convert an ε in `[0, 1]` to the 32-bit comparator threshold.
#[inline]
pub fn epsilon_to_q32(epsilon: f64) -> u32 {
    let e = epsilon.clamp(0.0, 1.0);
    // 1.0 maps to u32::MAX (always explore); exact 2^32 would overflow.
    if e >= 1.0 {
        u32::MAX
    } else {
        (e * 4_294_967_296.0) as u32
    }
}

/// Derives well-separated sub-seeds from one master seed (splitmix64).
///
/// The accelerator instantiates several independent, enable-gated LFSR
/// units (start-state selector, behaviour action selector, update action
/// selector, one pair per pipeline). Both the pipeline model and the
/// software golden reference derive each unit's reset value through this
/// sequence, so seeding one master value reproduces identical decision
/// streams in both — the precondition for bit-exact equivalence tests.
#[derive(Debug, Clone, Copy)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The `index`-th derived 32-bit seed (never zero, so it is always a
    /// legal LFSR state).
    pub fn derive(&self, index: u64) -> u32 {
        let mut z = self
            .master
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let s = (z ^ (z >> 31)) as u32;
        if s == 0 {
            1
        } else {
            s
        }
    }
}

/// A counting wrapper that records how many words were drawn — useful for
/// verifying that two implementations consume the stream in lock-step.
#[derive(Debug)]
pub struct CountingRng<R> {
    inner: R,
    drawn: u64,
}

impl<R: RngSource> CountingRng<R> {
    /// Wrap an RNG source.
    pub fn new(inner: R) -> Self {
        Self { inner, drawn: 0 }
    }

    /// Number of 32-bit words drawn so far.
    pub fn drawn(&self) -> u64 {
        self.drawn
    }

    /// Unwrap the inner source.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: RngSource> RngSource for CountingRng<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.drawn += 1;
        self.inner.next_u32()
    }
}

impl<R: RngSource + ?Sized> RngSource for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A fixed, replayable word sequence — for tests that need to force exact
/// decision sequences through a policy or pipeline.
#[derive(Debug, Clone)]
pub struct ScriptedRng {
    words: Vec<u32>,
    pos: usize,
}

impl ScriptedRng {
    /// RNG that replays `words`, then cycles.
    pub fn new(words: Vec<u32>) -> Self {
        assert!(!words.is_empty(), "scripted RNG needs at least one word");
        Self { words, pos: 0 }
    }
}

impl RngSource for ScriptedRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        let w = self.words[self.pos];
        self.pos = (self.pos + 1) % self.words.len();
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::Lfsr32;

    #[test]
    fn next_bits_masks() {
        let mut r = ScriptedRng::new(vec![0xFFFF_FFFF]);
        assert_eq!(r.next_bits(3), 0b111);
        assert_eq!(r.next_bits(32), 0xFFFF_FFFF);
        assert_eq!(r.next_bits(1), 1);
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = Lfsr32::new(9);
        let n = 8;
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let v = r.below(n) as usize;
            assert!(v < n as usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "some action index never drawn");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Lfsr32::new(123);
        let mut counts = [0u32; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(4) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn explore_threshold_matches_epsilon() {
        let mut r = Lfsr32::new(55);
        let eps = 0.3;
        let t = epsilon_to_q32(eps);
        let n = 200_000;
        let explored = (0..n).filter(|_| r.explore(t)).count();
        let frac = explored as f64 / n as f64;
        assert!((frac - eps).abs() < 0.01, "explore fraction {frac}");
    }

    #[test]
    fn epsilon_edge_cases() {
        assert_eq!(epsilon_to_q32(0.0), 0);
        assert_eq!(epsilon_to_q32(1.0), u32::MAX);
        assert_eq!(epsilon_to_q32(-3.0), 0);
        assert_eq!(epsilon_to_q32(7.0), u32::MAX);
        let mut r = Lfsr32::new(1);
        // ε = 0 never explores.
        assert!((0..1000).all(|_| !r.explore(0)));
    }

    #[test]
    fn epsilon_greedy_draw_statistics() {
        let mut rng = Lfsr32::new(4242);
        let eps = 0.4;
        let thr = epsilon_to_q32(eps);
        let n = 200_000;
        let mut explored = 0u32;
        let mut action_counts = [0u32; 4];
        for _ in 0..n {
            if let Some(a) = epsilon_greedy_draw(&mut rng, thr, 4) {
                explored += 1;
                action_counts[a as usize] += 1;
            }
        }
        let frac = explored as f64 / n as f64;
        assert!((frac - eps).abs() < 0.01, "explore fraction {frac}");
        // Conditional on exploring, actions are uniform.
        for &c in &action_counts {
            let f = c as f64 / explored as f64;
            assert!((f - 0.25).abs() < 0.02, "action fraction {f}");
        }
    }

    #[test]
    fn epsilon_greedy_draw_edges() {
        let mut rng = Lfsr32::new(5);
        // ε = 0 never explores.
        assert!((0..100).all(|_| epsilon_greedy_draw(&mut rng, 0, 8).is_none()));
        // ε = 1 always explores, in range.
        for _ in 0..100 {
            let a = epsilon_greedy_draw(&mut rng, u32::MAX, 8).unwrap();
            assert!(a < 8);
        }
    }

    #[test]
    fn seed_sequence_is_deterministic_and_distinct() {
        let s = SeedSequence::new(42);
        let a: Vec<u32> = (0..8).map(|i| s.derive(i)).collect();
        let b: Vec<u32> = (0..8).map(|i| s.derive(i)).collect();
        assert_eq!(a, b);
        for i in 0..8 {
            assert_ne!(a[i], 0, "derived seed must be nonzero");
            for j in (i + 1)..8 {
                assert_ne!(a[i], a[j], "derived seeds must differ");
            }
        }
        assert_ne!(SeedSequence::new(43).derive(0), a[0]);
    }

    #[test]
    fn counting_rng_counts() {
        let mut r = CountingRng::new(Lfsr32::new(3));
        r.next_u32();
        r.below(5);
        r.next_bits(4);
        assert_eq!(r.drawn(), 3);
    }

    #[test]
    fn scripted_rng_cycles() {
        let mut r = ScriptedRng::new(vec![1, 2]);
        assert_eq!(r.next_u32(), 1);
        assert_eq!(r.next_u32(), 2);
        assert_eq!(r.next_u32(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn scripted_rng_rejects_empty() {
        ScriptedRng::new(vec![]);
    }
}
