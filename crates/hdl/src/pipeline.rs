//! Cycle bookkeeping shared by pipeline simulators.

/// Counters accumulated by a cycle-accurate pipeline run.
///
/// The paper's headline architectural claim is *samples-per-cycle = 1*
/// after the pipeline fills ("processes one sample in every clock cycle").
/// These counters make that claim checkable: `samples / cycles → 1` with
/// forwarding enabled, and the stall counter quantifies what the
/// forwarding network saves (the `ablation_forwarding` experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CycleStats {
    /// Clock cycles simulated.
    pub cycles: u64,
    /// Samples (Q-value updates) retired.
    pub samples: u64,
    /// Cycles the front end was held because of an unresolved hazard
    /// (only nonzero in stall-only hazard mode).
    pub stalls: u64,
    /// Pipeline-fill bubbles (the first few cycles before the first
    /// retirement, plus episode-restart bubbles if any).
    pub fill_bubbles: u64,
    /// Read-after-write hazards that were resolved by forwarding.
    pub forwards: u64,
}

impl CycleStats {
    /// Samples retired per clock cycle — the paper's throughput metric
    /// normalized by clock (1.0 is the ideal the architecture claims).
    pub fn samples_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.samples as f64 / self.cycles as f64
        }
    }

    /// Throughput in million samples per second at clock `fmax_mhz`.
    pub fn throughput_msps(&self, fmax_mhz: f64) -> f64 {
        self.samples_per_cycle() * fmax_mhz
    }

    /// Merge counters from a second run (e.g. another pipeline).
    pub fn merge(&mut self, other: &CycleStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.samples += other.samples;
        self.stalls += other.stalls;
        self.fill_bubbles += other.fill_bubbles;
        self.forwards += other.forwards;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_per_cycle_basic() {
        let s = CycleStats {
            cycles: 1000,
            samples: 997,
            stalls: 0,
            fill_bubbles: 3,
            forwards: 12,
        };
        assert!((s.samples_per_cycle() - 0.997).abs() < 1e-12);
        assert!((s.throughput_msps(189.0) - 0.997 * 189.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CycleStats::default();
        assert_eq!(s.samples_per_cycle(), 0.0);
        assert_eq!(s.throughput_msps(200.0), 0.0);
    }

    #[test]
    fn merge_takes_max_cycles_and_sums_samples() {
        // Two parallel pipelines run concurrently: wall-clock is the max,
        // work is the sum — that is what "2 pipelines doubles throughput"
        // means.
        let mut a = CycleStats {
            cycles: 1000,
            samples: 997,
            ..Default::default()
        };
        let b = CycleStats {
            cycles: 990,
            samples: 987,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 1000);
        assert_eq!(a.samples, 1984);
        assert!(a.samples_per_cycle() > 1.9);
    }
}
