#![deny(missing_docs)]

//! FPGA component and cost models for the QTAccel simulation suite.
//!
//! The QTAccel paper evaluates a hardware design; reproducing it in Rust
//! means modelling the hardware primitives the design is assembled from, at
//! the level of detail the paper's claims depend on:
//!
//! * [`lfsr`] — linear feedback shift registers, the paper's random number
//!   generators ("The action selector used to generate random actions is
//!   implemented using linear feedback shift registers"), plus the
//!   Irwin–Hall normal sampler of §VII-B (sum of uniform LFSR outputs).
//! * [`rng`] — the [`rng::RngSource`] trait, so the *identical* bit stream
//!   can drive both the cycle-accurate pipeline and the software golden
//!   reference; this is what makes bit-exact equivalence testing possible.
//! * [`bram`] — synchronous dual-port block RAM with one-cycle read
//!   latency, write-collision arbitration (§VII-A: "one pipeline
//!   arbitrarily overwrites the other"), and the 36 Kb block cost model.
//! * [`dsp`] — DSP-slice counting for fixed-point multipliers.
//! * [`resource`] — device descriptors (xcvu13p, Virtex-7, Virtex-6),
//!   resource reports and utilization, the calibrated fmax model behind
//!   Fig. 6, and the power model behind Figs. 3/5.
//! * [`pipeline`] — cycle bookkeeping shared by pipeline simulators.
//! * [`regfile`] — the memory-mapped perf-counter register file backing
//!   the telemetry layer's `CounterBank` (crate `qtaccel-telemetry`),
//!   with a fabric cost entry in [`resource::perf_regfile_report`].
//! * [`fault`] — the radiation environment of the paper's motivating
//!   deployments: a deterministic LFSR-driven SEU injector and a SECDED
//!   (Hamming 64/72-style) ECC codec for protected memories, priced in
//!   [`resource::secded_report`].

pub mod bram;
pub mod dsp;
pub mod explut;
pub mod fault;
pub mod lfsr;
pub mod pipeline;
pub mod regfile;
pub mod resource;
pub mod rng;

pub use bram::{Bram, BramPort, WriteCollisionPolicy};
pub use dsp::dsp_slices_for_mul;
pub use explut::ExpLut;
pub use fault::{FaultInjector, Secded, SecdedResult};
pub use lfsr::{Lfsr16, Lfsr32, Lfsr32Batched, Lfsr64, NormalLfsr};
pub use pipeline::CycleStats;
pub use regfile::PerfRegFile;
pub use resource::{Device, FmaxModel, PowerModel, ResourceReport, Utilization};
pub use rng::{RngSource, SeedSequence};
