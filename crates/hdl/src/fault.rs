//! Online fault injection and SECDED ECC protection.
//!
//! The paper motivates QTAccel with edge deployments — robotics and
//! explicitly *space rovers* — where BRAM cells suffer radiation-induced
//! single-event upsets (SEUs). Two primitives model that environment:
//!
//! * [`FaultInjector`] — a programmable SEU source: an LFSR-driven
//!   Bernoulli process (per-opportunity strike probability, deterministic
//!   by seed) that picks a uniform word address and bit position for each
//!   strike. The same injector drives both the HDL-level [`crate::Bram`]
//!   model (via [`FaultInjector::strike_bram`], which lands flips through
//!   [`crate::Bram::inject`] so they are counted in `BramStats`) and the
//!   accelerator's behavioural fault runtime.
//! * [`Secded`] — a single-error-correct / double-error-detect Hamming
//!   code in the standard 64/72 shape, scaled to any word width up to
//!   64 bits: `p` Hamming parity bits with `2^p ≥ k + p + 1` plus one
//!   overall-parity bit. Xilinx BRAM ships exactly this codec as the
//!   built-in ECC option on 64-bit-wide ports; narrower tables pay the
//!   same structure at their own width. The fabric cost of the
//!   encode/decode logic is priced in [`crate::resource::secded_report`],
//!   and the storage cost of the wider codewords falls out of
//!   [`crate::bram::blocks_for`] applied to [`Secded::code_bits`].
//!
//! Codeword layout (an `u128` holds up to the 72-bit code): bit 0 is the
//! overall parity bit; bits `1..=k+p` are the classic Hamming positions,
//! parity bits at power-of-two positions, data bits filling the rest in
//! ascending order.

use crate::bram::Bram;
use crate::lfsr::Lfsr32;
use crate::rng::RngSource;

/// Outcome of decoding one SECDED codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecdedResult {
    /// Codeword was error-free; the payload is returned as stored.
    Clean(u64),
    /// Exactly one codeword bit had flipped; it was corrected.
    /// `code_bit` is the flipped position in the codeword (0 = the
    /// overall parity bit, i.e. the payload was never at risk).
    Corrected {
        /// The corrected payload.
        data: u64,
        /// Position of the flipped codeword bit.
        code_bit: u32,
    },
    /// An even number (≥ 2) of bits flipped: detected, not correctable.
    DoubleError,
}

/// A SECDED (Hamming + overall parity) codec for `k ≤ 64` data bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Secded {
    k: u32,
    p: u32,
}

impl Secded {
    /// Codec for `data_bits`-wide payloads (`1..=64`).
    pub fn new(data_bits: u32) -> Self {
        assert!(
            (1..=64).contains(&data_bits),
            "SECDED payload must be 1..=64 bits, got {data_bits}"
        );
        let mut p = 2u32;
        while (1u64 << p) < data_bits as u64 + p as u64 + 1 {
            p += 1;
        }
        Self { k: data_bits, p }
    }

    /// Payload width in bits.
    pub fn data_bits(&self) -> u32 {
        self.k
    }

    /// Hamming parity bits (excluding the overall-parity bit).
    pub fn hamming_parity_bits(&self) -> u32 {
        self.p
    }

    /// Total check bits: Hamming parity plus the overall-parity bit.
    pub fn parity_bits(&self) -> u32 {
        self.p + 1
    }

    /// Full codeword width — the word width a protected memory stores.
    /// For the classic 64-bit payload this is 72, the Xilinx ECC shape.
    pub fn code_bits(&self) -> u32 {
        self.k + self.p + 1
    }

    /// Place data bits into their (non-power-of-two) codeword positions,
    /// leaving all parity positions zero.
    fn place(&self, data: u64) -> u128 {
        let m = self.k + self.p;
        let mut code = 0u128;
        let mut d = 0u32;
        for pos in 1..=m {
            if !pos.is_power_of_two() {
                code |= u128::from(data >> d & 1) << pos;
                d += 1;
            }
        }
        code
    }

    /// Inverse of `place`: pull the payload out of a codeword.
    fn extract(&self, code: u128) -> u64 {
        let m = self.k + self.p;
        let mut data = 0u64;
        let mut d = 0u32;
        for pos in 1..=m {
            if !pos.is_power_of_two() {
                data |= ((code >> pos & 1) as u64) << d;
                d += 1;
            }
        }
        data
    }

    /// Encode a payload (must fit in [`Secded::data_bits`]).
    pub fn encode(&self, data: u64) -> u128 {
        if self.k < 64 {
            assert!(
                data >> self.k == 0,
                "payload {data:#x} wider than {} bits",
                self.k
            );
        }
        let m = self.k + self.p;
        let mut code = self.place(data);
        // Each Hamming parity bit at position 2^i covers every position
        // with bit i set; choose it so the covered group has even parity.
        for i in 0..self.p {
            let mut parity = 0u32;
            for pos in 1..=m {
                if pos >> i & 1 == 1 {
                    parity ^= (code >> pos & 1) as u32;
                }
            }
            code |= u128::from(parity) << (1u32 << i);
        }
        // Overall parity over the Hamming codeword makes the full word
        // even-parity — the bit that separates single from double errors.
        let overall = (code >> 1).count_ones() & 1;
        code | u128::from(overall)
    }

    /// Decode a codeword: correct a single flipped bit, detect a double.
    pub fn decode(&self, code: u128) -> SecdedResult {
        let m = self.k + self.p;
        let mut syndrome = 0u32;
        for pos in 1..=m {
            if code >> pos & 1 == 1 {
                syndrome ^= pos;
            }
        }
        let word_mask = (1u128 << (m + 1)) - 1;
        let overall_odd = (code & word_mask).count_ones() & 1 == 1;
        match (syndrome, overall_odd) {
            // Even parity, zero syndrome: clean word.
            (0, false) => SecdedResult::Clean(self.extract(code)),
            // Odd parity, zero syndrome: the overall-parity bit itself
            // flipped — the payload is intact.
            (0, true) => SecdedResult::Corrected {
                data: self.extract(code),
                code_bit: 0,
            },
            // Odd parity, nonzero syndrome: classic single-bit error at
            // the syndrome position. A syndrome beyond the codeword can
            // only come from ≥3 flips; report it as uncorrectable.
            (s, true) if s <= m => SecdedResult::Corrected {
                data: self.extract(code ^ (1u128 << s)),
                code_bit: s,
            },
            (_, true) => SecdedResult::DoubleError,
            // Even parity, nonzero syndrome: an even number of flips.
            (_, false) => SecdedResult::DoubleError,
        }
    }
}

/// A deterministic online SEU source.
///
/// Each *opportunity* (one call to [`FaultInjector::maybe_strike`], e.g.
/// one retired sample or one simulated cycle) strikes with a fixed
/// probability; a strike picks a uniform word address and bit position
/// from the same LFSR stream, so a campaign is exactly reproducible from
/// its seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: Lfsr32,
    /// Strike probability as a 2³² fixed fraction (2³² ⇒ always).
    threshold: u64,
    injected: u64,
}

impl FaultInjector {
    /// Injector with the given seed and per-opportunity strike
    /// probability (`0.0..=1.0`, flips per opportunity).
    pub fn new(seed: u32, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "SEU rate must be a probability, got {rate}"
        );
        Self {
            rng: Lfsr32::new(seed),
            threshold: (rate * 4_294_967_296.0).round() as u64,
            injected: 0,
        }
    }

    /// Total strikes landed so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// One opportunity: `Some((addr, bit))` on a strike against a memory
    /// of `entries` words × `width_bits`, `None` otherwise. Address and
    /// bit draws happen only on a strike, so the stream position depends
    /// only on the opportunity count and strike history — deterministic
    /// for a fixed seed and rate.
    pub fn maybe_strike(&mut self, entries: usize, width_bits: u32) -> Option<(usize, u32)> {
        debug_assert!(entries > 0 && entries <= u32::MAX as usize);
        if (self.rng.next_u32() as u64) < self.threshold {
            self.injected += 1;
            let addr = self.rng.below(entries as u32) as usize;
            let bit = self.rng.below(width_bits);
            Some((addr, bit))
        } else {
            None
        }
    }

    /// One opportunity against a [`Bram`]: on a strike, read the word,
    /// flip the drawn bit via `flip`, and land it through
    /// [`Bram::inject`] so the hit shows in `BramStats::injected_writes`.
    pub fn strike_bram<T: Copy + Default>(
        &mut self,
        bram: &mut Bram<T>,
        flip: impl FnOnce(T, u32) -> T,
    ) -> Option<(usize, u32)> {
        let (addr, bit) = self.maybe_strike(bram.entries(), bram.width_bits())?;
        let word = bram.peek(addr);
        bram.inject(addr, flip(word, bit));
        Some((addr, bit))
    }

    /// Current LFSR register state — for crash-safe checkpointing.
    pub fn rng_state(&self) -> u32 {
        self.rng.peek()
    }

    /// Restore the stream position and strike count captured by a
    /// checkpoint (`rng_state` must come from [`FaultInjector::rng_state`],
    /// which is never zero, so the seed remap cannot fire).
    pub fn restore(&mut self, rng_state: u32, injected: u64) {
        self.rng = Lfsr32::new(rng_state);
        self.injected = injected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_64_72_shape() {
        let s = Secded::new(64);
        assert_eq!(s.hamming_parity_bits(), 7);
        assert_eq!(s.code_bits(), 72);
        // Narrow tables: Q8.8 words are 16 bits -> 22-bit codewords.
        assert_eq!(Secded::new(16).code_bits(), 16 + 5 + 1);
        assert_eq!(Secded::new(32).code_bits(), 32 + 6 + 1);
    }

    #[test]
    fn clean_round_trip_all_widths() {
        let mut rng = Lfsr32::new(0xC0DE);
        for k in 1..=64u32 {
            let s = Secded::new(k);
            for _ in 0..50 {
                let data = ((rng.next_u32() as u64) << 32 | rng.next_u32() as u64)
                    & if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
                let code = s.encode(data);
                assert_eq!(s.decode(code), SecdedResult::Clean(data), "k={k}");
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_corrected() {
        for k in [8u32, 16, 33, 64] {
            let s = Secded::new(k);
            let data = 0xA5A5_5A5A_DEAD_BEEFu64 & if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
            let code = s.encode(data);
            for bit in 0..s.code_bits() {
                match s.decode(code ^ (1u128 << bit)) {
                    SecdedResult::Corrected { data: d, code_bit } => {
                        assert_eq!(d, data, "k={k} bit={bit}");
                        assert_eq!(code_bit, bit);
                    }
                    other => panic!("k={k} bit={bit}: expected correction, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_double_bit_flip_is_detected() {
        let s = Secded::new(16);
        let code = s.encode(0xBEEF);
        let w = s.code_bits();
        for a in 0..w {
            for b in (a + 1)..w {
                let hit = code ^ (1u128 << a) ^ (1u128 << b);
                assert_eq!(
                    s.decode(hit),
                    SecdedResult::DoubleError,
                    "flips at {a},{b} must be detected"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn oversized_payload_rejected() {
        Secded::new(8).encode(0x100);
    }

    #[test]
    fn injector_is_deterministic_and_counts() {
        let run = || {
            let mut inj = FaultInjector::new(0xACE1, 0.25);
            (0..1000)
                .filter_map(|_| inj.maybe_strike(256, 16))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed must reproduce the campaign");
        let frac = a.len() as f64 / 1000.0;
        assert!((frac - 0.25).abs() < 0.05, "strike fraction {frac}");
        for &(addr, bit) in &a {
            assert!(addr < 256 && bit < 16);
        }
    }

    #[test]
    fn injector_rate_edges() {
        let mut never = FaultInjector::new(7, 0.0);
        assert!((0..500).all(|_| never.maybe_strike(64, 16).is_none()));
        let mut always = FaultInjector::new(7, 1.0);
        assert!((0..500).all(|_| always.maybe_strike(64, 16).is_some()));
        assert_eq!(always.injected(), 500);
    }

    #[test]
    fn strike_bram_lands_in_injected_writes() {
        let mut bram = Bram::<u16>::new(64, 16);
        let mut inj = FaultInjector::new(42, 1.0);
        let hit = inj.strike_bram(&mut bram, |w, bit| w ^ (1u16 << bit));
        let (addr, bit) = hit.expect("rate 1.0 must strike");
        assert_eq!(bram.peek(addr), 1u16 << bit);
        assert_eq!(bram.stats().injected_writes, 1);
        assert_eq!(bram.stats().writes, 0);
    }

    #[test]
    fn injector_state_round_trips_through_restore() {
        let mut a = FaultInjector::new(9, 0.5);
        for _ in 0..100 {
            a.maybe_strike(128, 16);
        }
        let mut b = FaultInjector::new(9, 0.5);
        b.restore(a.rng_state(), a.injected());
        for _ in 0..100 {
            assert_eq!(a.maybe_strike(128, 16), b.maybe_strike(128, 16));
        }
        assert_eq!(a.injected(), b.injected());
    }
}
