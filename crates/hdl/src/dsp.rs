//! DSP-slice cost model for fixed-point multipliers.
//!
//! The headline resource claim of the paper is that QTAccel needs a small
//! *constant* number of multipliers — "our pipelined architecture
//! efficiently uses 4 multipliers (each utilizing a single DSP)" — while
//! the baseline design of Da Silva et al. needs one multiplier pair per
//! state-action entry. This module supplies the slice count per multiplier
//! so both sides of Fig. 7 are computed from the same cost function.

/// DSP48-family slices needed for one signed `width × width` multiplier.
///
/// A DSP48E2 natively multiplies signed 27×18; products up to that size
/// take one slice, and wider products tile `⌈w/27⌉ × ⌈w/18⌉` slices. The
/// paper's 16-bit datapath multipliers therefore cost exactly one slice
/// each, giving the fixed total of 4 for the pipeline's third stage plus
/// the α·γ pre-product of stage 1 folded into the same count (the paper
/// counts 4 DSPs in total).
pub fn dsp_slices_for_mul(width_bits: u32) -> u64 {
    assert!(width_bits > 0, "multiplier width must be positive");
    if width_bits <= 18 {
        1
    } else {
        let a = (width_bits as u64).div_ceil(27);
        let b = (width_bits as u64).div_ceil(18);
        a * b
    }
}

/// A named multiplier instance, for building auditable resource reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Multiplier {
    /// What this multiplier computes (e.g. `"alpha*reward"`).
    pub role: &'static str,
    /// Operand width in bits.
    pub width_bits: u32,
}

impl Multiplier {
    /// A multiplier of the given role and width.
    pub fn new(role: &'static str, width_bits: u32) -> Self {
        Self { role, width_bits }
    }

    /// DSP slices this instance occupies.
    pub fn dsp_slices(&self) -> u64 {
        dsp_slices_for_mul(self.width_bits)
    }
}

/// Total slices for a set of multipliers.
pub fn total_dsp_slices(muls: &[Multiplier]) -> u64 {
    muls.iter().map(Multiplier::dsp_slices).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_bit_is_one_slice() {
        assert_eq!(dsp_slices_for_mul(16), 1);
        assert_eq!(dsp_slices_for_mul(18), 1);
        assert_eq!(dsp_slices_for_mul(8), 1);
    }

    #[test]
    fn wider_products_tile() {
        // 32-bit: 2 columns x 2 rows.
        assert_eq!(dsp_slices_for_mul(32), 4);
        // 27-bit: 1 x 2.
        assert_eq!(dsp_slices_for_mul(27), 2);
        // 64-bit: 3 x 4.
        assert_eq!(dsp_slices_for_mul(64), 12);
    }

    #[test]
    fn paper_datapath_uses_four_slices_total() {
        // The four products of the QTAccel datapath at the default 16-bit
        // format: Fig. 3's constant DSP count.
        let muls = [
            Multiplier::new("alpha*gamma", 16),
            Multiplier::new("alpha*reward", 16),
            Multiplier::new("(1-alpha)*Q(s,a)", 16),
            Multiplier::new("alpha*gamma*Q(s',a')", 16),
        ];
        assert_eq!(total_dsp_slices(&muls), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        dsp_slices_for_mul(0);
    }
}
