//! Synchronous dual-port block RAM model.
//!
//! QTAccel keeps the Q-table, the reward table and the Qmax array in
//! on-chip BRAM (§IV-A). Two properties of real BRAM matter to the
//! architecture and are modelled here:
//!
//! 1. **Synchronous, one-cycle reads** — an address presented in cycle *t*
//!    produces data in cycle *t+1*. The pipeline's stage structure (and its
//!    forwarding network) exists precisely because of this latency.
//! 2. **Two ports** — "modern FPGAs support up to 2 concurrent accesses to
//!    the same block memory" (§VII-A), which is what allows the dual
//!    pipeline configuration. Concurrent writes to the same address are
//!    arbitrated: one port "arbitrarily overwrites the other".
//!
//! The model also carries the 36 Kb block cost function used by the
//! resource reports (Fig. 4).

/// Identifies one of the two hardware ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BramPort {
    /// Port A (wins write collisions under [`WriteCollisionPolicy::PortAWins`]).
    A,
    /// Port B.
    B,
}

impl BramPort {
    #[inline]
    fn idx(self) -> usize {
        match self {
            BramPort::A => 0,
            BramPort::B => 1,
        }
    }
}

/// What happens when both ports write the same address in the same cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteCollisionPolicy {
    /// Port A's write survives (the paper's "arbitrarily overwrites").
    #[default]
    PortAWins,
    /// Port B's write survives.
    PortBWins,
}

/// Cycle-level statistics for one BRAM instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BramStats {
    /// Read operations completed.
    pub reads: u64,
    /// Write operations committed.
    pub writes: u64,
    /// Same-address same-cycle write collisions (one write was lost).
    pub write_collisions: u64,
    /// Fault-injector bit flips landed via [`Bram::inject`]. Unlike
    /// `writes`, these never correspond to a port operation — they model
    /// radiation upsetting a cell between accesses — but they must still
    /// be visible in stats dumps so fault campaigns are auditable.
    pub injected_writes: u64,
}

/// A dual-port synchronous RAM holding `T` words.
///
/// Usage per cycle: issue reads/writes with [`Bram::issue_read`] /
/// [`Bram::issue_write`], then call [`Bram::tick`] once to advance the
/// clock; read data issued in the previous cycle becomes available via
/// [`Bram::read_data`]. The model is *read-first*: a read and a write to
/// the same address in the same cycle return the **old** word, matching
/// the Xilinx `READ_FIRST` primitive mode. Write-before-read bypassing is
/// the forwarding network's job, in the pipeline — not the RAM's.
#[derive(Debug, Clone)]
pub struct Bram<T> {
    data: Vec<T>,
    width_bits: u32,
    policy: WriteCollisionPolicy,
    pending_read_addr: [Option<usize>; 2],
    read_out: [Option<T>; 2],
    pending_write: [Option<(usize, T)>; 2],
    stats: BramStats,
}

impl<T: Copy + Default> Bram<T> {
    /// RAM with `entries` words of `width_bits` each, zero-initialized
    /// (the paper starts "with empty Q-table and a reward table").
    pub fn new(entries: usize, width_bits: u32) -> Self {
        assert!(entries > 0, "BRAM must have at least one entry");
        assert!(width_bits > 0, "BRAM word width must be positive");
        Self {
            data: vec![T::default(); entries],
            width_bits,
            policy: WriteCollisionPolicy::default(),
            pending_read_addr: [None; 2],
            read_out: [None; 2],
            pending_write: [None; 2],
            stats: BramStats::default(),
        }
    }

    /// Set the write-collision arbitration policy.
    pub fn with_collision_policy(mut self, policy: WriteCollisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of words.
    pub fn entries(&self) -> usize {
        self.data.len()
    }

    /// Word width in bits (drives the block cost).
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    /// Present a read address on `port`; data is available after `tick`.
    pub fn issue_read(&mut self, port: BramPort, addr: usize) {
        debug_assert!(addr < self.data.len(), "read address {addr} out of range");
        self.pending_read_addr[port.idx()] = Some(addr);
    }

    /// Present a write on `port`; it commits at `tick`.
    pub fn issue_write(&mut self, port: BramPort, addr: usize, value: T) {
        debug_assert!(addr < self.data.len(), "write address {addr} out of range");
        self.pending_write[port.idx()] = Some((addr, value));
    }

    /// Advance one clock: latch read data (read-first), then commit
    /// writes with collision arbitration.
    pub fn tick(&mut self) {
        for p in 0..2 {
            self.read_out[p] = self.pending_read_addr[p].take().map(|a| {
                self.stats.reads += 1;
                self.data[a]
            });
        }
        match (self.pending_write[0].take(), self.pending_write[1].take()) {
            (Some((a0, v0)), Some((a1, v1))) => {
                if a0 == a1 {
                    self.stats.write_collisions += 1;
                    self.stats.writes += 1;
                    let (_, v) = match self.policy {
                        WriteCollisionPolicy::PortAWins => (a0, v0),
                        WriteCollisionPolicy::PortBWins => (a1, v1),
                    };
                    self.data[a0] = v;
                } else {
                    self.data[a0] = v0;
                    self.data[a1] = v1;
                    self.stats.writes += 2;
                }
            }
            (Some((a, v)), None) | (None, Some((a, v))) => {
                self.data[a] = v;
                self.stats.writes += 1;
            }
            (None, None) => {}
        }
    }

    /// Data latched by the last `tick` for a read issued on `port`
    /// (`None` if no read was issued).
    pub fn read_data(&self, port: BramPort) -> Option<T> {
        self.read_out[port.idx()]
    }

    /// Zero-latency backdoor read — host-side inspection only (the
    /// equivalent of reading back the BRAM contents after the run).
    pub fn peek(&self, addr: usize) -> T {
        self.data[addr]
    }

    /// Zero-latency backdoor write — host-side initialization only (the
    /// equivalent of the initial memory file loaded at configuration).
    pub fn poke(&mut self, addr: usize, value: T) {
        self.data[addr] = value;
    }

    /// A fault-injector write: same zero-latency semantics as
    /// [`Bram::poke`], but counted in [`BramStats::injected_writes`] so
    /// injected corruption shows up in stats dumps instead of silently
    /// bypassing the bookkeeping.
    pub fn inject(&mut self, addr: usize, value: T) {
        self.data[addr] = value;
        self.stats.injected_writes += 1;
    }

    /// Whole contents, for post-run extraction.
    pub fn contents(&self) -> &[T] {
        &self.data
    }

    /// Cycle statistics.
    pub fn stats(&self) -> BramStats {
        self.stats
    }

    /// Number of 36 Kb blocks this RAM occupies.
    pub fn blocks(&self) -> u64 {
        blocks_for(self.data.len() as u64, self.width_bits)
    }

    /// Capacity in bits actually stored (entries × width).
    pub fn capacity_bits(&self) -> u64 {
        self.data.len() as u64 * self.width_bits as u64
    }
}

/// Number of Xilinx 36 Kb BRAM blocks needed for `entries` words of
/// `width_bits` each.
///
/// A 36 Kb block supports the aspect ratios 32K×1, 16K×2, 8K×4, 4K×9,
/// 2K×18 and 1K×36; wider words cascade `⌈w/36⌉` blocks side by side.
/// This is the granularity Vivado reports, so it is what Fig. 4's
/// utilization percentages are made of.
pub fn blocks_for(entries: u64, width_bits: u32) -> u64 {
    assert!(width_bits > 0);
    if entries == 0 {
        return 0;
    }
    let depth_per_block = match width_bits {
        1 => 32 * 1024,
        2 => 16 * 1024,
        3..=4 => 8 * 1024,
        5..=9 => 4 * 1024,
        10..=18 => 2 * 1024,
        19..=36 => 1024,
        _ => {
            // Cascade columns of 36-bit blocks.
            let columns = (width_bits as u64).div_ceil(36);
            return columns * entries.div_ceil(1024);
        }
    };
    entries.div_ceil(depth_per_block)
}

/// Number of UltraRAM (288 Kb, 4K×72) blocks for the same geometry — used
/// for the paper's "10 million state-action pairs in 360 Mb of UltraRAM"
/// scalability claim.
///
/// URAM has a fixed 4096×72 geometry; narrow entries are *packed*
/// (⌊72/w⌋ entries per word, the standard mapping), which is what makes
/// 10 M 16-bit pairs fit — unpacked, the claim would be false.
pub fn uram_blocks_for(entries: u64, width_bits: u32) -> u64 {
    if entries == 0 {
        return 0;
    }
    if width_bits <= 72 {
        let per_word = (72 / width_bits) as u64;
        entries.div_ceil(4096 * per_word)
    } else {
        let columns = (width_bits as u64).div_ceil(72);
        columns * entries.div_ceil(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_has_one_cycle_latency() {
        let mut b = Bram::<u32>::new(16, 16);
        b.poke(3, 42);
        b.issue_read(BramPort::A, 3);
        assert_eq!(b.read_data(BramPort::A), None, "data before tick");
        b.tick();
        assert_eq!(b.read_data(BramPort::A), Some(42));
        // Data holds until the next read replaces it.
        b.tick();
        assert_eq!(b.read_data(BramPort::A), None, "no read issued");
    }

    #[test]
    fn write_commits_at_tick() {
        let mut b = Bram::<u32>::new(8, 16);
        b.issue_write(BramPort::A, 5, 7);
        assert_eq!(b.peek(5), 0, "write before tick must not be visible");
        b.tick();
        assert_eq!(b.peek(5), 7);
    }

    #[test]
    fn read_first_semantics_on_same_cycle_rw() {
        let mut b = Bram::<u32>::new(8, 16);
        b.poke(2, 10);
        b.issue_read(BramPort::A, 2);
        b.issue_write(BramPort::B, 2, 99);
        b.tick();
        assert_eq!(b.read_data(BramPort::A), Some(10), "read-first returns old");
        assert_eq!(b.peek(2), 99, "write still commits");
    }

    #[test]
    fn ports_are_independent() {
        let mut b = Bram::<u32>::new(8, 16);
        b.poke(1, 11);
        b.poke(2, 22);
        b.issue_read(BramPort::A, 1);
        b.issue_read(BramPort::B, 2);
        b.tick();
        assert_eq!(b.read_data(BramPort::A), Some(11));
        assert_eq!(b.read_data(BramPort::B), Some(22));
    }

    #[test]
    fn write_collision_port_a_wins_by_default() {
        let mut b = Bram::<u32>::new(8, 16);
        b.issue_write(BramPort::A, 4, 1);
        b.issue_write(BramPort::B, 4, 2);
        b.tick();
        assert_eq!(b.peek(4), 1);
        assert_eq!(b.stats().write_collisions, 1);
        // Exactly one of the two writes survives: never both, never zero.
        assert_eq!(b.stats().writes, 1);
    }

    #[test]
    fn write_collision_port_b_policy() {
        let mut b =
            Bram::<u32>::new(8, 16).with_collision_policy(WriteCollisionPolicy::PortBWins);
        b.issue_write(BramPort::A, 4, 1);
        b.issue_write(BramPort::B, 4, 2);
        b.tick();
        assert_eq!(b.peek(4), 2);
    }

    #[test]
    fn distinct_address_writes_both_commit() {
        let mut b = Bram::<u32>::new(8, 16);
        b.issue_write(BramPort::A, 1, 10);
        b.issue_write(BramPort::B, 2, 20);
        b.tick();
        assert_eq!((b.peek(1), b.peek(2)), (10, 20));
        assert_eq!(b.stats().write_collisions, 0);
        assert_eq!(b.stats().writes, 2);
    }

    #[test]
    fn stats_count_reads() {
        let mut b = Bram::<u32>::new(8, 16);
        for i in 0..5 {
            b.issue_read(BramPort::A, i);
            b.tick();
        }
        assert_eq!(b.stats().reads, 5);
    }

    #[test]
    fn inject_counts_but_poke_does_not() {
        let mut b = Bram::<u32>::new(8, 16);
        b.poke(1, 5);
        assert_eq!(b.stats().injected_writes, 0, "poke is configuration, not a fault");
        b.inject(1, 6);
        b.inject(2, 7);
        assert_eq!(b.peek(1), 6);
        assert_eq!(b.stats().injected_writes, 2);
        assert_eq!(b.stats().writes, 0, "injected flips are not port writes");
    }

    #[test]
    fn block_cost_aspect_ratios() {
        // 2K deep 16-bit fits one block.
        assert_eq!(blocks_for(2048, 16), 1);
        assert_eq!(blocks_for(2049, 16), 2);
        // 1K deep 32-bit fits one block.
        assert_eq!(blocks_for(1024, 32), 1);
        // 4K deep 8-bit fits one block.
        assert_eq!(blocks_for(4096, 8), 1);
        // 64-bit words cascade 2 columns.
        assert_eq!(blocks_for(1024, 64), 2);
        // Paper's largest case: 2^21 entries of 16 bits per table.
        assert_eq!(blocks_for(1 << 21, 16), 1024);
        assert_eq!(blocks_for(0, 16), 0);
    }

    #[test]
    fn uram_cost() {
        // 16-bit entries pack 4 per 72-bit word: 16384 entries per block.
        assert_eq!(uram_blocks_for(16384, 16), 1);
        assert_eq!(uram_blocks_for(16385, 16), 2);
        // 72-bit entries: one per word.
        assert_eq!(uram_blocks_for(4096, 72), 1);
        assert_eq!(uram_blocks_for(4097, 72), 2);
        // Wider than a word: cascade columns.
        assert_eq!(uram_blocks_for(4096, 144), 2);
        // The paper's scalability claim: 10M pairs, two 16-bit tables.
        assert!(2 * uram_blocks_for(10_000_000, 16) <= 1280);
    }

    #[test]
    fn bram_struct_reports_blocks() {
        let b = Bram::<u32>::new(4096, 16);
        assert_eq!(b.blocks(), 2);
        assert_eq!(b.capacity_bits(), 4096 * 16);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        Bram::<u32>::new(0, 16);
    }
}
