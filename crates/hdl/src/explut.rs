//! Quantized exponential lookup table — the fabric realization of
//! Boltzmann weights.
//!
//! The probability-table policies of §VII-B need `w = exp(Q/T)` per
//! update (EXP3's "Q value of the action is an exponential function of
//! the average reward", and Boltzmann's `P(a) ∝ exp(Q/T)`). FPGAs do not
//! exponentiate; they index a precomputed block-ROM table with the top
//! bits of the operand. [`ExpLut`] models exactly that: `2^addr_bits`
//! entries, each holding the function value for the midpoint of its
//! input bucket, evaluated in one cycle.
//!
//! The model exposes the two quantization errors a designer must budget:
//! input bucketing (the operand's low bits are dropped) and output
//! rounding (the stored word has finite fraction bits). The tests bound
//! both against `f64::exp`.

/// A block-ROM exponential table over a bounded input range.
#[derive(Debug, Clone)]
pub struct ExpLut {
    table: Vec<f64>,
    lo: f64,
    hi: f64,
    temperature: f64,
    addr_bits: u32,
    out_frac_bits: u32,
}

impl ExpLut {
    /// Build a table for `exp(x / temperature)` with `x ∈ [lo, hi]`,
    /// `2^addr_bits` entries, outputs rounded to `out_frac_bits`
    /// fractional bits (the weight BRAM's word format).
    ///
    /// # Panics
    /// On an empty range, non-positive temperature, or a table that would
    /// not fit a realistic ROM (`addr_bits > 16`).
    pub fn new(lo: f64, hi: f64, temperature: f64, addr_bits: u32, out_frac_bits: u32) -> Self {
        assert!(hi > lo, "empty input range");
        assert!(temperature > 0.0, "temperature must be > 0");
        assert!(
            (1..=16).contains(&addr_bits),
            "ROM address width out of range"
        );
        assert!(out_frac_bits <= 32, "output fraction too wide");
        let n = 1usize << addr_bits;
        let scale = (1u64 << out_frac_bits) as f64;
        let step = (hi - lo) / n as f64;
        let table = (0..n)
            .map(|i| {
                // Midpoint rule per bucket, then output quantization.
                let x = lo + (i as f64 + 0.5) * step;
                ((x / temperature).exp() * scale).round() / scale
            })
            .collect();
        Self {
            table,
            lo,
            hi,
            temperature,
            addr_bits,
            out_frac_bits,
        }
    }

    /// One-cycle lookup: clamp to the covered range, index by the top
    /// bits of the operand.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.table.len();
        let t = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((t * n as f64) as usize).min(n - 1);
        self.table[idx]
    }

    /// Number of table entries (`2^addr_bits`).
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Address width.
    pub fn addr_bits(&self) -> u32 {
        self.addr_bits
    }

    /// Input bucket width.
    pub fn bucket_width(&self) -> f64 {
        (self.hi - self.lo) / self.table.len() as f64
    }

    /// ROM capacity in bits (entries × output word width, sized by the
    /// largest stored output).
    pub fn rom_bits(&self) -> u64 {
        let max_out = self.table.iter().cloned().fold(0.0f64, f64::max);
        let int_bits = max_out.max(1.0).log2().ceil() as u64 + 1;
        self.table.len() as u64 * (int_bits + self.out_frac_bits as u64)
    }

    /// Worst-case relative error against `f64::exp` over the covered
    /// range (dense sampling).
    pub fn max_relative_error(&self) -> f64 {
        let samples = 4 * self.table.len();
        let mut worst = 0.0f64;
        for i in 0..=samples {
            let x = self.lo + (self.hi - self.lo) * i as f64 / samples as f64;
            let exact = (x / self.temperature).exp();
            let got = self.eval(x);
            if exact > 0.0 {
                worst = worst.max((got - exact).abs() / exact);
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_tracks_exp() {
        let lut = ExpLut::new(-1.0, 1.0, 0.5, 10, 16);
        for &x in &[-1.0, -0.3, 0.0, 0.42, 0.999] {
            let exact = (x / 0.5f64).exp();
            let got = lut.eval(x);
            assert!(
                (got - exact).abs() / exact < 0.01,
                "x={x}: {got} vs {exact}"
            );
        }
    }

    #[test]
    fn error_shrinks_with_address_width() {
        let coarse = ExpLut::new(-1.0, 1.0, 0.5, 6, 16).max_relative_error();
        let fine = ExpLut::new(-1.0, 1.0, 0.5, 12, 16).max_relative_error();
        assert!(fine < coarse / 10.0, "coarse {coarse}, fine {fine}");
        // A 12-bit table is accurate to a tenth of a percent.
        assert!(fine < 1e-3, "{fine}");
    }

    #[test]
    fn out_of_range_inputs_clamp() {
        let lut = ExpLut::new(0.0, 1.0, 1.0, 8, 16);
        assert_eq!(lut.eval(-5.0), lut.eval(0.0));
        assert_eq!(lut.eval(42.0), lut.eval(1.0));
    }

    #[test]
    fn rom_cost_accounting() {
        // 2^10 entries of (int+frac) bits: a Boltzmann table over Q8.8's
        // range at T=0.5 peaks at exp(2) ~ 7.4 -> 4 int bits + 16 frac.
        let lut = ExpLut::new(-1.0, 1.0, 0.5, 10, 16);
        assert_eq!(lut.entries(), 1024);
        assert_eq!(lut.rom_bits(), 1024 * 20);
        // One 36Kb BRAM holds it comfortably.
        assert!(lut.rom_bits() < 36 * 1024);
    }

    #[test]
    fn output_quantization_is_visible_at_low_frac_bits() {
        let rough = ExpLut::new(0.0, 1.0, 1.0, 12, 2); // quarter steps
        let fine = ExpLut::new(0.0, 1.0, 1.0, 12, 16);
        assert!(rough.max_relative_error() > fine.max_relative_error());
        // Every rough output is a multiple of 0.25.
        for i in 0..16 {
            let v = rough.eval(i as f64 / 16.0);
            assert!((v * 4.0 - (v * 4.0).round()).abs() < 1e-12, "{v}");
        }
    }

    #[test]
    #[should_panic(expected = "temperature must be > 0")]
    fn rejects_bad_temperature() {
        ExpLut::new(0.0, 1.0, 0.0, 8, 16);
    }

    #[test]
    #[should_panic(expected = "empty input range")]
    fn rejects_empty_range() {
        ExpLut::new(1.0, 1.0, 1.0, 8, 16);
    }
}
