//! Device descriptors, resource reports, and the fmax / power models.
//!
//! These models stand in for the Vivado place-and-route reports the paper
//! measures (Figs. 3–6). They are *calibrated*, not measured: DESIGN.md §4
//! records the calibration anchors and EXPERIMENTS.md compares the model
//! output against every paper-reported number.

/// Static description of an FPGA device's resource pools.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Device {
    /// Marketing/part name.
    pub name: &'static str,
    /// 36 Kb BRAM blocks.
    pub bram36_blocks: u64,
    /// 288 Kb UltraRAM blocks (0 on devices without URAM).
    pub uram_blocks: u64,
    /// DSP slices.
    pub dsp_slices: u64,
    /// Logic LUTs.
    pub luts: u64,
    /// Flip-flops (registers).
    pub ffs: u64,
    /// Achievable clock for this design family when routing pressure is
    /// low, in MHz (the flat region of Fig. 6).
    pub base_fmax_mhz: f64,
}

impl Device {
    /// Xilinx Virtex UltraScale+ VU13P — the paper's main evaluation
    /// device (§VI-A).
    pub const XCVU13P: Device = Device {
        name: "xcvu13p",
        bram36_blocks: 2688,
        uram_blocks: 1280,
        dsp_slices: 12288,
        luts: 1_728_000,
        ffs: 3_456_000,
        base_fmax_mhz: 189.0,
    };

    /// Xilinx Virtex-7 690T — used for the like-for-like comparison with
    /// the baseline in §VI-F.
    pub const VIRTEX7_690T: Device = Device {
        name: "virtex7-690t",
        bram36_blocks: 1470,
        uram_blocks: 0,
        dsp_slices: 3600,
        luts: 433_200,
        ffs: 866_400,
        base_fmax_mhz: 185.0,
    };

    /// Xilinx Virtex-6 LX240T — the device the baseline \[11\] reported on.
    pub const VIRTEX6_LX240T: Device = Device {
        name: "virtex6-lx240t",
        bram36_blocks: 416,
        uram_blocks: 0,
        dsp_slices: 768,
        luts: 150_720,
        ffs: 301_440,
        base_fmax_mhz: 160.0,
    };

    /// Total on-chip BRAM capacity in bits.
    pub fn bram_bits(&self) -> u64 {
        self.bram36_blocks * 36 * 1024
    }

    /// Total UltraRAM capacity in bits.
    pub fn uram_bits(&self) -> u64 {
        self.uram_blocks * 288 * 1024
    }
}

/// Absolute resource consumption of a design instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ResourceReport {
    /// DSP slices (multipliers).
    pub dsp: u64,
    /// 36 Kb BRAM blocks.
    pub bram36: u64,
    /// UltraRAM blocks (only populated when a table is mapped to URAM).
    pub uram: u64,
    /// Logic LUTs.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
}

impl ResourceReport {
    /// Element-wise sum — resources of two sub-designs side by side (used
    /// for the multi-pipeline configurations of §VII-A).
    pub fn combine(self, other: ResourceReport) -> ResourceReport {
        ResourceReport {
            dsp: self.dsp + other.dsp,
            bram36: self.bram36 + other.bram36,
            uram: self.uram + other.uram,
            lut: self.lut + other.lut,
            ff: self.ff + other.ff,
        }
    }

    /// Utilization percentages against a device.
    pub fn utilization(&self, device: &Device) -> Utilization {
        let pct = |used: u64, avail: u64| {
            if avail == 0 {
                if used == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                used as f64 / avail as f64 * 100.0
            }
        };
        Utilization {
            dsp_pct: pct(self.dsp, device.dsp_slices),
            bram_pct: pct(self.bram36, device.bram36_blocks),
            uram_pct: pct(self.uram, device.uram_blocks),
            lut_pct: pct(self.lut, device.luts),
            ff_pct: pct(self.ff, device.ffs),
        }
    }

    /// Does the design fit the device at all?
    pub fn fits(&self, device: &Device) -> bool {
        self.dsp <= device.dsp_slices
            && self.bram36 <= device.bram36_blocks
            && self.uram <= device.uram_blocks
            && self.lut <= device.luts
            && self.ff <= device.ffs
    }
}

/// Fabric cost of a [`crate::regfile::PerfRegFile`] telemetry bank:
/// `num_counters` registers of `counter_bits` flip-flops, one increment
/// adder per register (~1 LUT/bit), a readback mux tree
/// (`counter_bits` × ⌈n/2⌉ two-input muxes per level ≈ one LUT each at
/// the first level, which dominates) and a small address decoder.
///
/// The bank is debug logic: it is *not* part of the baseline engine
/// reports (the paper's design has no perf counters), and the simulator
/// only adds this entry when an instrumented sink is attached — the
/// disabled-by-default cost policy of DESIGN.md §2.6.
pub fn perf_regfile_report(num_counters: u64, counter_bits: u64) -> ResourceReport {
    let ff = num_counters * counter_bits;
    let lut = num_counters * counter_bits          // increment adders
        + counter_bits * num_counters.div_ceil(2)  // readback mux first level
        + 8;                                       // address decode
    ResourceReport {
        dsp: 0,
        bram36: 0,
        uram: 0,
        lut,
        ff,
    }
}

/// Fabric cost of a log2-bucketed histogram monitor (the stall-run-length
/// / latency distribution hardware the telemetry `Histogram` models):
/// `num_buckets` bucket counters of `counter_bits` flip-flops plus one
/// running-sum register, a 64-bit leading-zero count (priority encoder,
/// ~96 LUTs) to pick the bucket, one increment adder per bucket, and the
/// same first-level readback mux tree as [`perf_regfile_report`].
///
/// Like the perf-counter bank, this is debug logic: the simulator only
/// folds it into an engine's resource report when an *event-emitting*
/// sink is attached (the stall-interval stream is what feeds the
/// monitor), keeping the disabled-by-default cost policy.
pub fn histogram_regfile_report(num_buckets: u64, counter_bits: u64) -> ResourceReport {
    let ff = num_buckets * counter_bits + counter_bits; // buckets + running sum
    let lut = num_buckets * counter_bits          // increment adders
        + counter_bits * num_buckets.div_ceil(2)  // readback mux first level
        + 96;                                     // 64-bit LZC bucket select
    ResourceReport {
        dsp: 0,
        bram36: 0,
        uram: 0,
        lut,
        ff,
    }
}

/// Fabric cost of the training-health probe block (the telemetry
/// `HealthProbe` hardware model): a TD-error datapath (one
/// `value_bits`-wide subtractor and absolute-value stage, ~1 LUT/bit
/// each) feeding a [`histogram_regfile_report`]-shaped log2 monitor, two
/// rail-proximity comparators (Q and Qmax write words against both
/// format rails, ~1 LUT/bit each, ~2·`value_bits` total per word with
/// the shared rail constants folded into the LUT masks), a greedy-flip
/// comparator over the action field (~8 LUTs) with its churn counter,
/// the stride down-counter, and a `counter_bits`-wide scalar counter
/// file (samples seen/probed, churn, two near-rail counters — 5
/// registers through [`perf_regfile_report`]'s adder/mux model). The
/// state-visit coverage bitset is one bit per state in BRAM
/// ([`crate::bram::blocks_for`] at width 1) with a popcount register.
///
/// Like the perf and histogram banks, this is debug logic outside the
/// paper's baseline engine: the simulator folds it into a report only
/// when a health-probing sink is attached (DESIGN.md §2.6's
/// disabled-costs-nothing policy, extended to §2.13's health layer).
pub fn health_probe_report(num_states: u64, value_bits: u64, counter_bits: u64) -> ResourceReport {
    // TD-error subtract + abs, then the histogram monitor's own LZC and
    // bucket counters.
    let td_datapath_lut = 2 * value_bits;
    let histogram = histogram_regfile_report(64 + 1, counter_bits);
    // Near-rail comparators for the Q and Qmax write words.
    let rail_cmp_lut = 2 * (2 * value_bits);
    // Greedy-flip compare + stride down-counter decode.
    let control_lut = 8 + counter_bits;
    let scalars = perf_regfile_report(5, counter_bits);
    let coverage_bram = crate::bram::blocks_for(num_states, 1);
    ResourceReport {
        dsp: 0,
        bram36: coverage_bram,
        uram: 0,
        lut: td_datapath_lut + rail_cmp_lut + control_lut + histogram.lut + scalars.lut,
        ff: counter_bits // stride down-counter
            + counter_bits // coverage popcount register
            + histogram.ff
            + scalars.ff,
    }
}

/// Fabric cost of a SECDED (Hamming + overall parity) encoder/decoder
/// pair for one `data_bits`-wide memory (the [`crate::fault::Secded`]
/// codec): the encoder builds `p` parity trees over roughly half the
/// codeword each plus the overall-parity tree (XOR chains pack ~5 inputs
/// per LUT6); the decoder re-derives the same `p + 1` parities from the
/// stored word, decodes the `p`-bit syndrome (one LUT per data bit) and
/// applies the correcting XOR (one more per data bit). The corrected
/// word and the two status flags are registered so the codec does not
/// stretch the BRAM read path.
///
/// The *storage* overhead of the wider codewords is not in this report —
/// it falls out of [`crate::bram::blocks_for`] applied to
/// [`crate::fault::Secded::code_bits`], which is how the accelerator's
/// resource model accounts for it.
pub fn secded_report(data_bits: u32) -> ResourceReport {
    let s = crate::fault::Secded::new(data_bits);
    let k = data_bits as u64;
    let p = s.hamming_parity_bits() as u64;
    let m = k + p; // Hamming codeword, without the overall-parity bit
    // XOR chain of n inputs: ceil((n-1)/5) LUT6s.
    let xor_luts = |inputs: u64| inputs.saturating_sub(1).div_ceil(5);
    let parity_trees = p * xor_luts(m.div_ceil(2)) + xor_luts(m + 1);
    let lut = parity_trees      // encoder
        + parity_trees          // decoder syndrome re-derivation
        + k                     // syndrome decode (position match per data bit)
        + k;                    // correction XOR per data bit
    ResourceReport {
        dsp: 0,
        bram36: 0,
        uram: 0,
        lut,
        ff: k + 2, // registered corrected word + corrected/uncorrectable flags
    }
}

/// Resource utilization as percentages of a device's pools.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Utilization {
    /// DSP slice utilization, percent.
    pub dsp_pct: f64,
    /// BRAM block utilization, percent (the Fig. 4 series).
    pub bram_pct: f64,
    /// URAM block utilization, percent.
    pub uram_pct: f64,
    /// LUT utilization, percent.
    pub lut_pct: f64,
    /// Flip-flop utilization, percent (the "Registers" series of Figs. 3/5).
    pub ff_pct: f64,
}

/// Clock-frequency model reproducing the shape of Fig. 6.
///
/// §VI-D explains the measured behaviour: throughput is flat (~189 MS/s)
/// until the state space grows past ~100k states, where BRAM pressure
/// ("more than 50 % of the BRAM would be fully utilized") degrades routing
/// and the clock drops to ~153–156 MHz at |S| = 262144.
///
/// We model fmax as the device base clock minus a quadratic penalty in the
/// state-address width beyond 12 bits:
///
/// ```text
/// fmax(|S|) = base − k · max(0, log2|S| − 12)²       (k = 0.9 MHz)
/// ```
///
/// Calibration anchors (xcvu13p, base 189 MHz): |S| = 4096 → 189 MHz
/// (paper: 186–187, flat region), |S| = 16384 → 185.4 (paper 179–181),
/// |S| = 65536 → 174.6 (paper ≈ 175), |S| = 262144 → 156.6 (paper
/// 153–156 for both 4 and 8 actions — note the paper's Table II shows the
/// *same* degraded clock for 4 actions, whose tables use < 40 % BRAM,
/// which is why the model keys on address width rather than on BRAM
/// percentage directly; the two coincide on the 8-action sweep).
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FmaxModel {
    /// Address width (log2 states) where degradation begins.
    pub knee_log2_states: f64,
    /// Quadratic penalty coefficient, MHz per (bit beyond knee)².
    pub mhz_per_bit_sq: f64,
    /// Hard floor so the model never predicts an absurd clock.
    pub floor_mhz: f64,
}

impl Default for FmaxModel {
    fn default() -> Self {
        Self {
            knee_log2_states: 12.0,
            mhz_per_bit_sq: 0.9,
            floor_mhz: 50.0,
        }
    }
}

impl FmaxModel {
    /// Modeled clock in MHz for a design with `n_states` on `device`.
    pub fn fmax_mhz(&self, device: &Device, n_states: u64) -> f64 {
        let bits = (n_states.max(2) as f64).log2();
        let over = (bits - self.knee_log2_states).max(0.0);
        (device.base_fmax_mhz - self.mhz_per_bit_sq * over * over).max(self.floor_mhz)
    }

    /// Modeled throughput in **million samples per second** for a design
    /// that retires `samples_per_cycle` updates per clock (1.0 for a full
    /// pipeline, less when stalling, 2.0 for the dual pipeline).
    pub fn throughput_msps(
        &self,
        device: &Device,
        n_states: u64,
        samples_per_cycle: f64,
    ) -> f64 {
        self.fmax_mhz(device, n_states) * samples_per_cycle
    }
}

/// Dynamic + static power model reproducing the shape of the power bars in
/// Figs. 3 and 5.
///
/// Power is dominated by clocked resources: `P = P_static + f · (c_ff·FF +
/// c_dsp·DSP + c_bram·BRAM + c_lut·LUT)`. The per-resource energy
/// coefficients are calibrated so the Q-Learning design lands in the tens
/// of milliwatts and the SARSA design (extra LFSR registers, §VI-C2:
/// "Because of the increase in logic/register utilization the power
/// utilization increases accordingly") lands visibly higher, matching the
/// relative heights in the paper's figures.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerModel {
    /// Static leakage attributed to the design, mW.
    pub static_mw: f64,
    /// µW per MHz per flip-flop.
    pub uw_per_mhz_ff: f64,
    /// µW per MHz per DSP slice.
    pub uw_per_mhz_dsp: f64,
    /// µW per MHz per BRAM block.
    pub uw_per_mhz_bram: f64,
    /// µW per MHz per LUT.
    pub uw_per_mhz_lut: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            static_mw: 5.0,
            uw_per_mhz_ff: 0.02,
            uw_per_mhz_dsp: 1.2,
            uw_per_mhz_bram: 0.15,
            uw_per_mhz_lut: 0.01,
        }
    }
}

impl PowerModel {
    /// Estimated power in mW at clock `fmax_mhz`.
    pub fn power_mw(&self, report: &ResourceReport, fmax_mhz: f64) -> f64 {
        let dynamic_uw = fmax_mhz
            * (self.uw_per_mhz_ff * report.ff as f64
                + self.uw_per_mhz_dsp * report.dsp as f64
                + self.uw_per_mhz_bram * report.bram36 as f64
                + self.uw_per_mhz_lut * report.lut as f64);
        self.static_mw + dynamic_uw / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_capacities() {
        let d = Device::XCVU13P;
        // 94.5 Mb of BRAM, 360 Mb of URAM — the numbers quoted in the paper.
        assert_eq!(d.bram_bits(), 2688 * 36 * 1024);
        assert!((d.bram_bits() as f64 / 1e6 - 99.09).abs() < 0.1);
        assert!((d.uram_bits() as f64 / 1e6 - 377.5).abs() < 1.0);
    }

    #[test]
    fn utilization_percentages() {
        let r = ResourceReport {
            dsp: 4,
            bram36: 2176,
            uram: 0,
            lut: 1000,
            ff: 500,
            };
        let u = r.utilization(&Device::XCVU13P);
        assert!((u.dsp_pct - 4.0 / 12288.0 * 100.0).abs() < 1e-9);
        // The paper's largest test case lands near 80 % BRAM.
        assert!(u.bram_pct > 75.0 && u.bram_pct < 85.0, "{}", u.bram_pct);
        assert!(r.fits(&Device::XCVU13P));
    }

    #[test]
    fn fits_rejects_oversubscription() {
        let r = ResourceReport {
            bram36: 5000,
            ..Default::default()
        };
        assert!(!r.fits(&Device::XCVU13P));
        let r2 = ResourceReport {
            uram: 1,
            ..Default::default()
        };
        assert!(!r2.fits(&Device::VIRTEX7_690T), "V7 has no URAM");
    }

    #[test]
    fn combine_adds() {
        let a = ResourceReport {
            dsp: 4,
            bram36: 10,
            uram: 0,
            lut: 100,
            ff: 50,
        };
        let b = a;
        let c = a.combine(b);
        assert_eq!(c.dsp, 8);
        assert_eq!(c.bram36, 20);
    }

    #[test]
    fn fmax_flat_then_degrading() {
        let m = FmaxModel::default();
        let d = Device::XCVU13P;
        assert_eq!(m.fmax_mhz(&d, 64), 189.0);
        assert_eq!(m.fmax_mhz(&d, 4096), 189.0);
        let f16k = m.fmax_mhz(&d, 16384);
        let f64k = m.fmax_mhz(&d, 65536);
        let f256k = m.fmax_mhz(&d, 262144);
        assert!(f16k < 189.0 && f16k > 183.0, "{f16k}");
        assert!(f64k < f16k, "monotone decline");
        // Calibration anchor: paper reports 153-156 MS/s at 262144 states.
        assert!((153.0..=158.0).contains(&f256k), "{f256k}");
    }

    #[test]
    fn fmax_has_floor() {
        let m = FmaxModel::default();
        let d = Device::XCVU13P;
        assert_eq!(m.fmax_mhz(&d, u64::MAX), m.floor_mhz);
    }

    #[test]
    fn throughput_scales_with_pipelines() {
        let m = FmaxModel::default();
        let d = Device::XCVU13P;
        let one = m.throughput_msps(&d, 1024, 1.0);
        let two = m.throughput_msps(&d, 1024, 2.0);
        assert_eq!(two, 2.0 * one);
        assert_eq!(one, 189.0);
    }

    #[test]
    fn telemetry_regfile_reports_scale_with_width() {
        let perf = perf_regfile_report(13, 64);
        assert_eq!(perf.ff, 13 * 64);
        assert_eq!(perf.lut, 13 * 64 + 64 * 7 + 8);
        // The histogram monitor: 65 buckets of 64 bits + sum register,
        // and strictly more LUTs than a same-width counter bank (the LZC
        // bucket select costs more than plain address decode).
        let hist = histogram_regfile_report(65, 64);
        assert_eq!(hist.ff, 65 * 64 + 64);
        assert_eq!(hist.lut, 65 * 64 + 64 * 33 + 96);
        assert!(hist.lut > perf_regfile_report(65, 64).lut);
        assert_eq!(hist.dsp, 0);
        assert_eq!(hist.bram36, 0);
    }

    #[test]
    fn health_probe_report_composes_the_monitor_blocks() {
        // 16-bit Q8.8 values, 64-bit counters, 1024 states.
        let h = health_probe_report(1024, 16, 64);
        let hist = histogram_regfile_report(65, 64);
        let scalars = perf_regfile_report(5, 64);
        // FF: stride counter + popcount register + the two counter files.
        assert_eq!(h.ff, 64 + 64 + hist.ff + scalars.ff);
        // LUT: TD subtract/abs (2·16) + rail comparators (2·2·16) +
        // flip compare & stride decode (8 + 64) + the counter files.
        assert_eq!(h.lut, 32 + 64 + 72 + hist.lut + scalars.lut);
        // Coverage bitset: 1024 one-bit entries fit a single 32K×1 block.
        assert_eq!(h.bram36, 1);
        assert_eq!(h.dsp, 0);
        // The probe block stays debug-sized: well under 1% of a VU13P.
        let d = Device::XCVU13P;
        assert!((h.lut as f64) < 0.01 * d.luts as f64);
        assert!((h.ff as f64) < 0.01 * d.ffs as f64);
    }

    #[test]
    fn power_grows_with_resources_and_clock() {
        let p = PowerModel::default();
        let small = ResourceReport {
            dsp: 4,
            bram36: 3,
            uram: 0,
            lut: 500,
            ff: 300,
        };
        let big = ResourceReport {
            dsp: 4,
            bram36: 2176,
            uram: 0,
            lut: 500,
            ff: 900,
        };
        let ps = p.power_mw(&small, 189.0);
        let pb = p.power_mw(&big, 156.0);
        assert!(pb > ps, "more BRAM must cost more power: {ps} vs {pb}");
        assert!(p.power_mw(&small, 100.0) < ps, "slower clock, less power");
        assert!(ps > p.static_mw);
    }
}
