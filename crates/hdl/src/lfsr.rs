//! Linear feedback shift registers — the accelerator's random sources.
//!
//! The paper uses LFSRs for every stochastic decision in the fabric: random
//! start-state selection, random action selection (Q-Learning behaviour
//! policy), the ε-greedy coin flip and uniform action index (SARSA), and —
//! for the MAB extension of §VII-B — normally distributed rewards obtained
//! by summing uniform LFSR outputs ("uniform random numbers can be
//! generated using linear feedback shift registers whose output can be
//! summed up to obtain the normal distribution").
//!
//! These are Galois-form LFSRs with maximal-length taps, so a width-`n`
//! register cycles through all `2^n − 1` nonzero states. The models are
//! bit-exact: the same seed produces the same stream in the pipeline
//! simulator and in the software golden reference.

use crate::rng::RngSource;

/// 16-bit Galois LFSR, taps `x^16 + x^14 + x^13 + x^11 + 1` (0xB400).
///
/// Period `2^16 − 1`. This is the cheapest generator: 16 flip-flops and a
/// couple of XOR gates, the register cost quoted for SARSA in §VI-C2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr16 {
    state: u16,
}

/// 32-bit Galois LFSR, taps `x^32 + x^22 + x^2 + x^1 + 1` (0x80200003).
///
/// Period `2^32 − 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr32 {
    state: u32,
}

/// 64-bit Galois LFSR, taps `x^64 + x^63 + x^61 + x^60 + 1` (0xD800000000000000).
///
/// Period `2^64 − 1`. Used where a simulation must not wrap within a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr64 {
    state: u64,
}

macro_rules! impl_lfsr {
    ($name:ident, $ty:ty, $mask:expr, $bits:expr) => {
        impl $name {
            /// Feedback tap mask (Galois form).
            pub const TAPS: $ty = $mask;
            /// Register width in bits.
            pub const BITS: u32 = $bits;
            /// Full period of the maximal-length sequence.
            pub const PERIOD: u64 = ((1u128 << $bits) - 1) as u64;

            /// Create from a seed. A zero seed is the one forbidden LFSR
            /// state (the register would lock up); it is remapped to 1,
            /// exactly as a hardware reset value would be chosen.
            #[inline]
            pub fn new(seed: $ty) -> Self {
                Self {
                    state: if seed == 0 { 1 } else { seed },
                }
            }

            /// Advance one shift and return the new register state.
            #[inline]
            pub fn step(&mut self) -> $ty {
                let lsb = self.state & 1;
                self.state >>= 1;
                if lsb != 0 {
                    self.state ^= Self::TAPS;
                }
                self.state
            }

            /// Current register state without advancing.
            #[inline]
            pub fn peek(&self) -> $ty {
                self.state
            }
        }
    };
}

impl_lfsr!(Lfsr16, u16, 0xB400, 16);
impl_lfsr!(Lfsr32, u32, 0x8020_0003, 32);
impl_lfsr!(Lfsr64, u64, 0xD800_0000_0000_0000, 64);

// Word-wide sampling leaps the register a full word width per draw.
// Consecutive bit-serial LFSR states are shifts of each other, so sampling
// a multi-bit field from single-stepped states would produce samples whose
// bits are deterministically correlated across draws (the low bit of draw
// t+1 equals a high bit of draw t). Hardware solves this with a
// "leap-forward" LFSR — an XOR network computing w shifts in one clock —
// and that is the primitive these impls model.
//
// The Galois step s ↦ (s >> 1) ^ (taps if s&1) is linear over GF(2), so
// the w-step leap is a fixed linear transform M^w of the state bits. The
// simulator evaluates it the way the hardware's XOR network would: as a
// constant fan-in of per-byte partial images, precomputed at compile time
// (`leap(s) = T0[s.byte0] ^ T1[s.byte1] ^ …`). This turns the `w`
// serially-dependent shifts of the naive model into a handful of
// independent table loads per draw — bit-exact with explicit stepping,
// which `leap_tables_match_naive_stepping` pins down.

macro_rules! leap_table {
    ($builder:ident, $table:ident, $ty:ty, $taps:expr, $steps:expr, $bytes:expr) => {
        const fn $builder() -> [[$ty; 256]; $bytes] {
            let mut t = [[0; 256]; $bytes];
            let mut byte = 0;
            while byte < $bytes {
                let mut v = 0;
                while v < 256 {
                    // M^steps applied to the basis image v << 8·byte, by
                    // naive stepping (linearity makes the XOR of per-byte
                    // images equal the image of the full state).
                    let mut s = (v as $ty) << (8 * byte as u32);
                    let mut i = 0;
                    while i < $steps {
                        let lsb = s & 1;
                        s >>= 1;
                        if lsb != 0 {
                            s ^= $taps;
                        }
                        i += 1;
                    }
                    t[byte][v] = s;
                    v += 1;
                }
                byte += 1;
            }
            t
        }
        static $table: [[$ty; 256]; $bytes] = $builder();
    };
}

leap_table!(build_leap16, LEAP16, u16, Lfsr16::TAPS, 16, 2);
leap_table!(build_leap32, LEAP32, u32, Lfsr32::TAPS, 32, 4);
leap_table!(build_leap64, LEAP64, u64, Lfsr64::TAPS, 32, 8);
// Double leap (two words = 64 shifts) for the unrolled generator below.
leap_table!(build_leap32x2, LEAP32X2, u32, Lfsr32::TAPS, 64, 4);
// K-word leaps (K·32 shifts) for the batched K-lane generator below:
// each lane refills directly from its own previous output, K draws
// ahead, so the K lanes form independent dependency chains.
leap_table!(build_leap32x4, LEAP32X4, u32, Lfsr32::TAPS, 128, 4);
leap_table!(build_leap32x8, LEAP32X8, u32, Lfsr32::TAPS, 256, 4);

#[inline(always)]
fn leap16(s: u16) -> u16 {
    LEAP16[0][(s & 0xFF) as usize] ^ LEAP16[1][(s >> 8) as usize]
}

#[inline(always)]
fn leap32(s: u32) -> u32 {
    LEAP32[0][(s & 0xFF) as usize]
        ^ LEAP32[1][(s >> 8 & 0xFF) as usize]
        ^ LEAP32[2][(s >> 16 & 0xFF) as usize]
        ^ LEAP32[3][(s >> 24) as usize]
}

#[inline(always)]
fn leap64(s: u64) -> u64 {
    LEAP64[0][(s & 0xFF) as usize]
        ^ LEAP64[1][(s >> 8 & 0xFF) as usize]
        ^ LEAP64[2][(s >> 16 & 0xFF) as usize]
        ^ LEAP64[3][(s >> 24 & 0xFF) as usize]
        ^ LEAP64[4][(s >> 32 & 0xFF) as usize]
        ^ LEAP64[5][(s >> 40 & 0xFF) as usize]
        ^ LEAP64[6][(s >> 48 & 0xFF) as usize]
        ^ LEAP64[7][(s >> 56) as usize]
}

#[inline(always)]
fn leap32x2(s: u32) -> u32 {
    LEAP32X2[0][(s & 0xFF) as usize]
        ^ LEAP32X2[1][(s >> 8 & 0xFF) as usize]
        ^ LEAP32X2[2][(s >> 16 & 0xFF) as usize]
        ^ LEAP32X2[3][(s >> 24) as usize]
}

#[inline(always)]
fn leap32x4(s: u32) -> u32 {
    LEAP32X4[0][(s & 0xFF) as usize]
        ^ LEAP32X4[1][(s >> 8 & 0xFF) as usize]
        ^ LEAP32X4[2][(s >> 16 & 0xFF) as usize]
        ^ LEAP32X4[3][(s >> 24) as usize]
}

#[inline(always)]
fn leap32x8(s: u32) -> u32 {
    LEAP32X8[0][(s & 0xFF) as usize]
        ^ LEAP32X8[1][(s >> 8 & 0xFF) as usize]
        ^ LEAP32X8[2][(s >> 16 & 0xFF) as usize]
        ^ LEAP32X8[3][(s >> 24) as usize]
}

/// `M^(32·K)` — advance the register `K` full draws in one XOR network.
/// Tabled for the power-of-two lane counts the interleaved executor
/// uses; any other `K` folds single-draw leaps (still O(K) but exact).
#[inline(always)]
fn leap32xk<const K: usize>(s: u32) -> u32 {
    match K {
        1 => leap32(s),
        2 => leap32x2(s),
        4 => leap32x4(s),
        8 => leap32x8(s),
        _ => {
            let mut v = s;
            let mut i = 0;
            while i < K {
                v = leap32(v);
                i += 1;
            }
            v
        }
    }
}

/// Two-ahead software unrolling of [`Lfsr32`].
///
/// Emits exactly the word stream `RngSource::next_u32` would produce on
/// the source register, but holds the next *two* outputs and refills with
/// a 64-shift leap, splitting the generator into two interleaved
/// half-rate chains. Each emitted word then depends on the word two draws
/// back instead of the previous one, halving the serial table-load
/// latency on the critical path. This is purely a host-side throughput
/// device for the fast-path executor; the modeled hardware remains the
/// single 32-shift leap network of [`Lfsr32`].
#[derive(Debug, Clone)]
pub struct Lfsr32Unrolled {
    next: u32,
    ahead: u32,
    last: u32,
}

impl Lfsr32Unrolled {
    /// Continue the stream of `src` (which is left untouched).
    #[inline]
    pub fn new(src: &Lfsr32) -> Self {
        let next = leap32(src.peek());
        Self {
            next,
            ahead: leap32(next),
            last: src.peek(),
        }
    }

    /// Identical to `RngSource::next_u32` on the underlying register.
    #[inline(always)]
    pub fn next_u32(&mut self) -> u32 {
        let out = self.next;
        self.next = self.ahead;
        self.ahead = leap32x2(out);
        self.last = out;
        out
    }

    /// Collapse back to a plain register positioned exactly where the
    /// serial generator would be after the same number of draws. Sound
    /// because an [`Lfsr32`]'s state *is* its last emitted word, and an
    /// LFSR never emits 0 (so `Lfsr32::new`'s zero remap never fires).
    #[inline]
    pub fn into_lfsr(self) -> Lfsr32 {
        Lfsr32::new(self.last)
    }
}

impl RngSource for Lfsr32Unrolled {
    #[inline(always)]
    fn next_u32(&mut self) -> u32 {
        Lfsr32Unrolled::next_u32(self)
    }
}

/// K-lane batched software unrolling of [`Lfsr32`].
///
/// Generalizes [`Lfsr32Unrolled`] from two chains to `K`: the generator
/// holds the next `K` outputs and refills the lane it just emitted with a
/// `32·K`-shift leap, so lane `k` depends only on the word `K` draws
/// back. The emitted word stream is identical to `RngSource::next_u32`
/// on the source register — [`next_batch`](Self::next_batch) is exactly
/// `K` sequential draws — but the `K` dependency chains are independent,
/// which lets the interleaved fast-path executor overlap the table-load
/// latency of `K` sample streams. Host-side throughput device only; the
/// modeled hardware remains the single 32-shift leap network of
/// [`Lfsr32`].
#[derive(Debug, Clone)]
pub struct Lfsr32Batched<const K: usize> {
    pending: [u32; K],
    idx: usize,
    last: u32,
}

impl<const K: usize> Lfsr32Batched<K> {
    /// Continue the stream of `src` (which is left untouched).
    #[inline]
    pub fn new(src: &Lfsr32) -> Self {
        assert!(K >= 1, "batched LFSR needs at least one lane");
        // Chain-seed the lanes: pending[i] is the (i+1)-th upcoming draw.
        let mut pending = [0u32; K];
        let mut s = src.peek();
        for lane in &mut pending {
            s = leap32(s);
            *lane = s;
        }
        Self {
            pending,
            idx: 0,
            last: src.peek(),
        }
    }

    /// Identical to `RngSource::next_u32` on the underlying register.
    #[inline(always)]
    pub fn next_u32(&mut self) -> u32 {
        let out = self.pending[self.idx];
        self.pending[self.idx] = leap32xk::<K>(out);
        self.idx = if self.idx + 1 == K { 0 } else { self.idx + 1 };
        self.last = out;
        out
    }

    /// The next `K` draws at once — bit-identical to `K` sequential
    /// `next_u32` calls on the underlying register.
    #[inline(always)]
    pub fn next_batch(&mut self) -> [u32; K] {
        let mut out = [0u32; K];
        for o in &mut out {
            *o = self.next_u32();
        }
        out
    }

    /// Collapse back to a plain register positioned exactly where the
    /// serial generator would be after the same number of draws (same
    /// soundness argument as [`Lfsr32Unrolled::into_lfsr`]).
    #[inline]
    pub fn into_lfsr(self) -> Lfsr32 {
        Lfsr32::new(self.last)
    }
}

impl<const K: usize> RngSource for Lfsr32Batched<K> {
    #[inline(always)]
    fn next_u32(&mut self) -> u32 {
        Lfsr32Batched::next_u32(self)
    }
}

impl RngSource for Lfsr16 {
    /// Two 16-shift leaps assemble a 32-bit word from the 16-bit register.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        let hi = leap16(self.state);
        let lo = leap16(hi);
        self.state = lo;
        ((hi as u32) << 16) | lo as u32
    }
}

impl RngSource for Lfsr32 {
    /// One 32-shift leap per word.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.state = leap32(self.state);
        self.state
    }
}

impl RngSource for Lfsr64 {
    /// One 32-shift leap per word; the top half of the register is the
    /// sample.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.state = leap64(self.state);
        (self.state >> 32) as u32
    }
}

/// Approximate normal sampler built from uniform LFSR outputs
/// (Irwin–Hall / central-limit construction, §VII-B of the paper).
///
/// Summing `K` independent uniforms on `[0, 1)` gives mean `K/2` and
/// variance `K/12`; with the default `K = 12` the standardized sum
/// `Σuᵢ − 6` approximates `N(0, 1)` closely enough for reward sampling,
/// while costing only `K` LFSR shifts and an adder tree — no multipliers,
/// which is why the paper prefers it over Box–Muller style samplers.
#[derive(Debug, Clone)]
pub struct NormalLfsr {
    // One register per uniform term: consecutive states of a *single*
    // Galois LFSR are shifts of each other and therefore strongly
    // correlated, which inflates the Irwin-Hall variance. The hardware
    // described in the paper instantiates k parallel LFSRs feeding an
    // adder tree, which is what we model.
    lfsrs: Vec<Lfsr32>,
}

impl NormalLfsr {
    /// Default number of uniform terms (variance exactly 1).
    pub const DEFAULT_K: u32 = 12;

    /// Sampler with the default 12-term sum.
    pub fn new(seed: u32) -> Self {
        Self::with_terms(seed, Self::DEFAULT_K)
    }

    /// Sampler summing `k ≥ 1` uniform terms from `k` parallel LFSRs.
    /// Larger `k` is closer to Gaussian in the tails at the cost of more
    /// registers.
    pub fn with_terms(seed: u32, k: u32) -> Self {
        assert!(k >= 1, "Irwin-Hall sampler needs at least one term");
        // Derive well-separated seeds with a splitmix-style scramble, as
        // distinct reset values would be chosen per register in hardware.
        let lfsrs = (0..k)
            .map(|i| {
                let mut z = (seed as u64)
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                Lfsr32::new((z ^ (z >> 31)) as u32)
            })
            .collect();
        Self { lfsrs }
    }

    /// One standard-normal sample (approximately).
    pub fn sample_standard(&mut self) -> f64 {
        // Hardware sums k 16-bit uniform words into an integer accumulator
        // and re-biases; we mirror that to stay bit-faithful: each term is
        // the top 16 bits of one register's 32-bit step.
        let mut acc: u64 = 0;
        for l in &mut self.lfsrs {
            acc += (l.next_u32() >> 16) as u64;
        }
        let k = self.lfsrs.len() as u32;
        // acc/2^16 is the Irwin-Hall sum on [0, k); standardize.
        let sum = acc as f64 / 65536.0;
        let mean = k as f64 / 2.0;
        let std = (k as f64 / 12.0).sqrt();
        (sum - mean) / std
    }

    /// One sample from `N(mean, std²)`.
    pub fn sample(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.sample_standard()
    }

    /// Number of uniform terms per sample (= parallel LFSR registers).
    pub fn terms(&self) -> u32 {
        self.lfsrs.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngSource;

    #[test]
    fn zero_seed_is_remapped() {
        assert_eq!(Lfsr16::new(0).peek(), 1);
        assert_eq!(Lfsr32::new(0).peek(), 1);
        assert_eq!(Lfsr64::new(0).peek(), 1);
    }

    #[test]
    fn lfsr16_is_maximal_length() {
        // Walk the full period and verify we return to the seed without
        // hitting it early and without ever reaching zero.
        let mut l = Lfsr16::new(0xACE1);
        let mut count = 0u64;
        loop {
            let s = l.step();
            count += 1;
            assert_ne!(s, 0, "LFSR reached the lock-up state");
            if s == 0xACE1 {
                break;
            }
            assert!(count <= Lfsr16::PERIOD, "period exceeded 2^16-1");
        }
        assert_eq!(count, Lfsr16::PERIOD);
    }

    #[test]
    fn lfsr16_visits_every_nonzero_state() {
        let mut seen = vec![false; 1 << 16];
        let mut l = Lfsr16::new(1);
        for _ in 0..Lfsr16::PERIOD {
            let s = l.step() as usize;
            assert!(!seen[s], "state {s} repeated before full period");
            seen[s] = true;
        }
        assert!(!seen[0]);
        assert_eq!(seen.iter().filter(|&&b| b).count() as u64, Lfsr16::PERIOD);
    }

    #[test]
    fn lfsr32_does_not_repeat_early() {
        let mut l = Lfsr32::new(0xDEADBEEF);
        let start = l.peek();
        for _ in 0..1_000_000 {
            assert_ne!(l.step(), start);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = Lfsr32::new(42);
        let mut b = Lfsr32::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Lfsr32::new(1);
        let mut b = Lfsr32::new(2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 5, "streams from different seeds nearly identical");
    }

    #[test]
    fn leap_tables_match_naive_stepping() {
        // The precomputed XOR-network leap must be bit-exact with the
        // serially-stepped register for every width, across many states.
        let mut s16 = Lfsr16::new(0xACE1);
        let mut s32 = Lfsr32::new(0xDEAD_BEEF);
        let mut s64 = Lfsr64::new(0x0123_4567_89AB_CDEF);
        for _ in 0..10_000 {
            let naive16 = {
                let mut c = s16.clone();
                let mut w = 0u16;
                for _ in 0..16 {
                    w = c.step();
                }
                w
            };
            assert_eq!(super::leap16(s16.peek()), naive16);
            s16.step();

            let naive32 = {
                let mut c = s32.clone();
                let mut w = 0u32;
                for _ in 0..32 {
                    w = c.step();
                }
                w
            };
            assert_eq!(super::leap32(s32.peek()), naive32);
            s32.step();

            let naive64 = {
                let mut c = s64.clone();
                let mut w = 0u64;
                for _ in 0..32 {
                    w = c.step();
                }
                w
            };
            assert_eq!(super::leap64(s64.peek()), naive64);
            s64.step();
        }
    }

    #[test]
    fn unrolled_lfsr32_matches_serial_stream_and_resyncs() {
        for seed in [1u32, 0xACE1, 0xDEAD_BEEF, u32::MAX] {
            let mut serial = Lfsr32::new(seed);
            let mut unrolled = Lfsr32Unrolled::new(&serial);
            for _ in 0..10_000 {
                assert_eq!(unrolled.next_u32(), serial.next_u32());
            }
            // Collapsing back must land on the serial register's state...
            let resynced = unrolled.clone().into_lfsr();
            assert_eq!(resynced, serial);
            // ...and a zero-draw collapse must be the identity.
            assert_eq!(Lfsr32Unrolled::new(&serial).into_lfsr(), serial);
        }
    }

    #[test]
    fn batched_lfsr32_matches_serial_stream_and_resyncs() {
        fn check<const K: usize>() {
            for seed in [1u32, 0xACE1, 0xDEAD_BEEF, u32::MAX] {
                let mut serial = Lfsr32::new(seed);
                let mut batched = Lfsr32Batched::<K>::new(&serial);
                // Batched draws equal K-at-a-time serial draws...
                for _ in 0..(4_000 / K) {
                    let batch = batched.next_batch();
                    for (lane, &w) in batch.iter().enumerate() {
                        assert_eq!(w, serial.next_u32(), "K={K} lane {lane}");
                    }
                }
                // ...and single draws stay in lockstep from any phase.
                for i in 0..(3 * K + 1) {
                    assert_eq!(batched.next_u32(), serial.next_u32(), "K={K} draw {i}");
                }
                // Collapsing back must land on the serial register's state,
                // even mid-batch...
                assert_eq!(batched.clone().into_lfsr(), serial);
                // ...and a zero-draw collapse must be the identity.
                assert_eq!(Lfsr32Batched::<K>::new(&serial).into_lfsr(), serial);
            }
        }
        check::<2>();
        check::<4>();
        check::<8>();
    }

    /// The exact words the 0x8020_0003 Galois register emits, pinned as
    /// constants (independently computed by serial bit-stepping): guards
    /// the LEAP32X4/LEAP32X8 tables and the lane-refill wiring against
    /// silent drift, not just against the in-process serial model.
    #[test]
    fn batched_lfsr32_pinned_golden_words() {
        const GOLD_1: [u32; 8] = [
            0x8A0F_3DB5, 0x90BD_2FA6, 0x44C3_8D95, 0x9725_42A4,
            0xCAE5_AE48, 0x743C_EA61, 0xD57C_C71C, 0x875E_9ED7,
        ];
        const GOLD_ACE1: [u32; 8] = [
            0xE4CF_DF41, 0xE0E1_1F53, 0x57F5_9106, 0x6064_42CC,
            0xC44B_DE46, 0xAD68_A2E5, 0x183E_3599, 0x4758_B56B,
        ];
        const GOLD_BEEF: [u32; 8] = [
            0x96DC_5A83, 0x39E7_D287, 0x45F0_53CA, 0x0210_9929,
            0x0547_B9D9, 0x1333_280A, 0x2EED_DAF6, 0xA43D_4058,
        ];
        fn check<const K: usize>(seed: u32, gold: &[u32; 8]) {
            let mut b = Lfsr32Batched::<K>::new(&Lfsr32::new(seed));
            let got: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
            assert_eq!(got.as_slice(), gold, "K={K} seed {seed:#X}");
        }
        for (seed, gold) in [
            (1u32, &GOLD_1),
            (0xACE1, &GOLD_ACE1),
            (0xDEAD_BEEF, &GOLD_BEEF),
        ] {
            check::<2>(seed, gold);
            check::<4>(seed, gold);
            check::<8>(seed, gold);
        }
    }

    #[test]
    fn lfsr16_next_u32_uses_two_leaps() {
        let mut l = Lfsr16::new(0xACE1);
        let mut copy = l.clone();
        let w = l.next_u32();
        let mut hi = 0u16;
        let mut lo = 0u16;
        for _ in 0..16 {
            hi = copy.step();
        }
        for _ in 0..16 {
            lo = copy.step();
        }
        assert_eq!(w, ((hi as u32) << 16) | lo as u32);
    }

    #[test]
    fn consecutive_draws_are_not_serially_correlated() {
        // The leap-forward requirement: without it, the low bit of draw
        // t+1 deterministically equals a high bit of draw t and 2-bit
        // action samples can never produce certain successor pairs.
        let mut l = Lfsr32::new(0xACE1);
        let mut pair_counts = [[0u32; 4]; 4];
        let mut prev = (l.next_u32() >> 30) as usize;
        for _ in 0..40_000 {
            let cur = (l.next_u32() >> 30) as usize;
            pair_counts[prev][cur] += 1;
            prev = cur;
        }
        for (i, row) in pair_counts.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                let frac = c as f64 / 40_000.0;
                assert!(
                    (frac - 1.0 / 16.0).abs() < 0.01,
                    "pair ({i},{j}) frequency {frac}"
                );
            }
        }
    }

    #[test]
    fn uniform_output_is_roughly_uniform() {
        // Chi-square over 16 buckets of the top 4 bits; loose bound.
        let mut l = Lfsr32::new(777);
        let n = 160_000;
        let mut buckets = [0u32; 16];
        for _ in 0..n {
            buckets[(l.next_u32() >> 28) as usize] += 1;
        }
        let expect = n as f64 / 16.0;
        let chi2: f64 = buckets
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        // 15 dof; 99.9th percentile ≈ 37.7.
        assert!(chi2 < 37.7, "chi2 = {chi2}");
    }

    #[test]
    fn normal_sampler_moments() {
        let mut n = NormalLfsr::new(31337);
        let samples: Vec<f64> = (0..200_000).map(|_| n.sample_standard()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn normal_sampler_is_bounded_like_irwin_hall() {
        // A 12-term Irwin-Hall sum can never exceed ±6 standard deviations.
        let mut n = NormalLfsr::new(5);
        for _ in 0..100_000 {
            let x = n.sample_standard();
            assert!(x.abs() <= 6.0, "sample {x} outside Irwin-Hall support");
        }
    }

    #[test]
    fn normal_sampler_mean_std_transform() {
        let mut n = NormalLfsr::new(99);
        let samples: Vec<f64> = (0..100_000).map(|_| n.sample(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one term")]
    fn normal_sampler_rejects_zero_terms() {
        NormalLfsr::with_terms(1, 0);
    }
}
