//! Memory-mapped performance-counter register file.
//!
//! Real FPGA accelerators expose their debug/performance counters as a
//! small bank of wide registers behind an address decoder: each event
//! pulse increments one register through a dedicated adder, and a host
//! readback port muxes the selected register onto a single data bus.
//! [`PerfRegFile`] models that component — `pulse` is the increment port
//! (one adder per register, so any number of counters can fire in the
//! same cycle), `read` is the address-decoded readback mux.
//!
//! Counters are 64-bit and wrap on overflow, exactly as a hardware
//! up-counter would; at one increment per cycle that is > 3000 years at
//! 189 MHz, so wraparound is a modelling formality, not a practical
//! concern. The fabric cost of the bank is estimated by
//! [`crate::resource::perf_regfile_report`].

/// A bank of memory-mapped 64-bit event counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfRegFile {
    regs: Vec<u64>,
}

impl PerfRegFile {
    /// A register file with `num_regs` counters, all reset to zero.
    pub fn new(num_regs: usize) -> Self {
        assert!(num_regs > 0, "register file must have at least one counter");
        Self {
            regs: vec![0; num_regs],
        }
    }

    /// Number of counters in the bank.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the bank has no counters (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Pulse the increment port of register `addr` by `delta`
    /// (wrapping, as a hardware up-counter does).
    ///
    /// # Panics
    /// If `addr` is outside the bank (address decode is exact; there is
    /// no aliasing).
    #[inline(always)]
    pub fn pulse(&mut self, addr: usize, delta: u64) {
        self.regs[addr] = self.regs[addr].wrapping_add(delta);
    }

    /// Read register `addr` through the readback mux.
    #[inline(always)]
    pub fn read(&self, addr: usize) -> u64 {
        self.regs[addr]
    }

    /// Synchronous clear of every counter (the bank's reset line).
    pub fn clear(&mut self) {
        self.regs.fill(0);
    }

    /// The whole bank in address order (a full readback sweep).
    pub fn as_slice(&self) -> &[u64] {
        &self.regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_accumulate() {
        let mut rf = PerfRegFile::new(4);
        assert_eq!(rf.len(), 4);
        assert!(rf.as_slice().iter().all(|&v| v == 0));
        rf.pulse(2, 1);
        rf.pulse(2, 3);
        rf.pulse(0, 1);
        assert_eq!(rf.read(2), 4);
        assert_eq!(rf.read(0), 1);
        assert_eq!(rf.read(1), 0);
    }

    #[test]
    fn clear_resets_every_register() {
        let mut rf = PerfRegFile::new(3);
        rf.pulse(0, 7);
        rf.pulse(2, 9);
        rf.clear();
        assert!(rf.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn wraps_like_a_hardware_counter() {
        let mut rf = PerfRegFile::new(1);
        rf.pulse(0, u64::MAX);
        rf.pulse(0, 2);
        assert_eq!(rf.read(0), 1);
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn empty_bank_rejected() {
        PerfRegFile::new(0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_address_panics() {
        let rf = PerfRegFile::new(2);
        rf.read(2);
    }
}
