//! The Q-table and the Qmax array.

use qtaccel_envs::{sa_index, Action, State};
use qtaccel_fixed::{QValue, QuantPolicy};

/// How the "max over next-state actions" is obtained.
///
/// The paper's §V-A optimization replaces the |A|-wide scan of the
/// Q-table row with a single read of a per-state maximum array, updated
/// monotonically on writeback. The two semantics differ when a Q-value
/// *decreases*: the array then over-estimates the true row maximum until
/// another update overtakes it. The `ablation_qmax` experiment quantifies
/// the (empirically negligible) effect on convergence; the equivalence
/// tests require the golden reference to use the same mode as the
/// hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaxMode {
    /// Hardware semantics: single-read Qmax array with monotone updates.
    #[default]
    QmaxArray,
    /// Textbook semantics: scan the row for the exact maximum.
    ExactScan,
}

/// Dense `|S| × |A|` Q-table in datapath format `V`, zero-initialized
/// ("We start with empty Q-table", §IV-B).
#[derive(Debug, Clone, PartialEq)]
pub struct QTable<V> {
    values: Vec<V>,
    num_states: usize,
    num_actions: usize,
}

impl<V: QValue> QTable<V> {
    /// A zeroed `|S| × |A|` table.
    pub fn new(num_states: usize, num_actions: usize) -> Self {
        assert!(num_states > 0 && num_actions > 0, "table must be non-empty");
        Self {
            values: vec![V::zero(); num_states * num_actions],
            num_states,
            num_actions,
        }
    }

    /// Number of states (rows).
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of actions (columns).
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Q-value for (s, a).
    #[inline]
    pub fn get(&self, s: State, a: Action) -> V {
        self.values[sa_index(s, a, self.num_actions)]
    }

    /// Overwrite the Q-value for (s, a).
    #[inline]
    pub fn set(&mut self, s: State, a: Action, v: V) {
        self.values[sa_index(s, a, self.num_actions)] = v;
    }

    /// The row of Q-values for state `s`.
    #[inline]
    pub fn row(&self, s: State) -> &[V] {
        let base = s as usize * self.num_actions;
        &self.values[base..base + self.num_actions]
    }

    /// Exact row maximum: `(argmax action, max value)`. Ties resolve to
    /// the lowest action index, matching a left-to-right hardware
    /// comparator tree.
    pub fn max_exact(&self, s: State) -> (Action, V) {
        let row = self.row(s);
        let mut best_a = 0usize;
        for (a, v) in row.iter().enumerate().skip(1) {
            if v.vcmp(row[best_a]) == core::cmp::Ordering::Greater {
                best_a = a;
            }
        }
        (best_a as Action, row[best_a])
    }

    /// Greedy policy extraction: exact argmax per state.
    pub fn greedy_policy(&self) -> Vec<Action> {
        (0..self.num_states as State)
            .map(|s| self.max_exact(s).0)
            .collect()
    }

    /// The raw table, state-major.
    pub fn as_slice(&self) -> &[V] {
        &self.values
    }

    /// Largest absolute elementwise difference to another table, in f64 —
    /// the convergence and equivalence metric.
    pub fn max_abs_diff(&self, other: &QTable<V>) -> f64 {
        assert_eq!(self.values.len(), other.values.len(), "shape mismatch");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// BRAM bits needed to store this table at the datapath width.
    pub fn capacity_bits(&self) -> u64 {
        self.values.len() as u64 * V::storage_bits() as u64
    }
}

/// The per-state maximum array of §V-A.
///
/// Each entry stores the running maximum Q-value for a state *and the
/// action that produced it* — the action is required by SARSA, which must
/// forward the greedily selected action to the next iteration, not just
/// its value.
#[derive(Debug, Clone, PartialEq)]
pub struct QmaxTable<V> {
    entries: Vec<(V, Action)>,
}

impl<V: QValue> QmaxTable<V> {
    /// Zeroed array (consistent with the zeroed Q-table: max of a zero row
    /// is zero, achieved by action 0).
    pub fn new(num_states: usize) -> Self {
        assert!(num_states > 0);
        Self {
            entries: vec![(V::zero(), 0); num_states],
        }
    }

    /// Number of states covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the array is empty (never, for a valid construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(max value, argmax action)` for state `s` — the single BRAM read
    /// that replaces the |A|-wide scan.
    #[inline]
    pub fn get(&self, s: State) -> (V, Action) {
        let (v, a) = self.entries[s as usize];
        (v, a)
    }

    /// The stage-4 monotone update: "an update is made to the Qmax if the
    /// new Q-value is higher than the current value in the Qmax array for
    /// the state". Returns true if the entry changed.
    #[inline]
    pub fn update_monotone(&mut self, s: State, a: Action, v: V) -> bool {
        let cur = self.entries[s as usize];
        if v.vcmp(cur.0) == core::cmp::Ordering::Greater {
            self.entries[s as usize] = (v, a);
            true
        } else {
            false
        }
    }

    /// Randomize the *action* fields (values stay zero) — the memory
    /// initialization the SARSA engine needs: with every entry tied to
    /// action 0, an ε-greedy agent's exploit step always walks the same
    /// direction and (for small ε) the biased walk never finds the goal,
    /// so no Q-value ever turns positive and the Qmax array never
    /// updates. Random initial actions make the initial exploit policy a
    /// frozen random walk, which bootstraps exactly like textbook
    /// random-tie-breaking SARSA. In hardware this is one line in the
    /// BRAM init file.
    pub fn randomize_actions(&mut self, num_actions: u32, rng: &mut dyn qtaccel_hdl::rng::RngSource) {
        for e in &mut self.entries {
            e.1 = rng.below(num_actions);
        }
    }

    /// Host-side exact rebuild from a Q-table (what a maintenance scan
    /// would produce; used by the ablation and by tests).
    pub fn rebuild_exact(&mut self, q: &QTable<V>) {
        assert_eq!(self.entries.len(), q.num_states());
        for s in 0..q.num_states() as State {
            let (a, v) = q.max_exact(s);
            self.entries[s as usize] = (v, a);
        }
    }

    /// Backdoor write, mirroring BRAM initialization.
    pub fn poke(&mut self, s: State, v: V, a: Action) {
        self.entries[s as usize] = (v, a);
    }

    /// BRAM bits at datapath width plus the action field.
    pub fn capacity_bits(&self, action_bits: u32) -> u64 {
        self.entries.len() as u64 * (V::storage_bits() + action_bits) as u64
    }
}

/// A Q-table stored as packed low-precision codes, several per 64-bit
/// word — the BRAM image of a quantized table (DESIGN.md §2.14).
///
/// Where [`QTable`] stores one full working-format word per entry, this
/// container stores `⌊64 / stored_bits⌋` entries per `u64` using the
/// [`QuantPolicy`]'s subword lane helpers, so an 8-bit table packs 8
/// entries per word and a 4-bit table packs 16 — the 2–4× BRAM-density
/// win the formats experiment prices. Reads dequantize to the working
/// format; writes snap to the stored grid with round-to-nearest (the
/// training loop's *stochastic* rounding happens in the executors before
/// values reach this container, so everything stored here is on-grid).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedQTable {
    words: Vec<u64>,
    policy: QuantPolicy,
    num_states: usize,
    num_actions: usize,
}

impl PackedQTable {
    /// A zeroed packed table (code 0 dequantizes to zero in every format).
    pub fn new(num_states: usize, num_actions: usize, policy: QuantPolicy) -> Self {
        assert!(num_states > 0 && num_actions > 0, "table must be non-empty");
        let entries = num_states * num_actions;
        let cpw = policy.codes_per_u64() as usize;
        Self {
            words: vec![0u64; entries.div_ceil(cpw)],
            policy,
            num_states,
            num_actions,
        }
    }

    /// Pack a working-format table. Entries are snapped to the stored
    /// grid with round-to-nearest; tables produced by a quantized
    /// training run are already on-grid, so for those this is lossless.
    pub fn from_qtable<V: QValue>(q: &QTable<V>, policy: QuantPolicy) -> Self {
        policy.validate_for::<V>();
        let mut packed = Self::new(q.num_states(), q.num_actions(), policy);
        for s in 0..q.num_states() as State {
            for a in 0..q.num_actions() as Action {
                packed.set(s, a, q.get(s, a));
            }
        }
        packed
    }

    /// Unpack into a working-format table (every entry dequantized).
    pub fn to_qtable<V: QValue>(&self) -> QTable<V> {
        let mut q = QTable::new(self.num_states, self.num_actions);
        for s in 0..self.num_states as State {
            for a in 0..self.num_actions as Action {
                q.set(s, a, self.get(s, a));
            }
        }
        q
    }

    #[inline]
    fn locate(&self, s: State, a: Action) -> (usize, u32) {
        let idx = sa_index(s, a, self.num_actions);
        let cpw = self.policy.codes_per_u64() as usize;
        (idx / cpw, (idx % cpw) as u32)
    }

    /// Dequantized Q-value for (s, a).
    #[inline]
    pub fn get<V: QValue>(&self, s: State, a: Action) -> V {
        let (word, lane) = self.locate(s, a);
        self.policy.dequantize(self.policy.extract_code(self.words[word], lane))
    }

    /// Store (s, a), snapping to the stored grid with round-to-nearest.
    #[inline]
    pub fn set<V: QValue>(&mut self, s: State, a: Action, v: V) {
        let (word, lane) = self.locate(s, a);
        let code = self
            .policy
            .try_code(self.policy.round_nearest(v))
            .expect("round_nearest lands on the stored grid");
        self.words[word] = self.policy.insert_code(self.words[word], lane, code);
    }

    /// Number of states (rows).
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of actions (columns).
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// The quantization policy governing this table's stored format.
    pub fn policy(&self) -> &QuantPolicy {
        &self.policy
    }

    /// The packed word image (BRAM init-file contents).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// BRAM bits actually allocated: whole 64-bit words, including the
    /// spare bits of formats that do not divide 64 (a 6-bit table packs
    /// 10 codes per word and wastes 4 bits).
    pub fn capacity_bits(&self) -> u64 {
        self.words.len() as u64 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_fixed::Q8_8;

    #[test]
    fn table_starts_zeroed() {
        let q = QTable::<f64>::new(4, 2);
        for s in 0..4 {
            for a in 0..2 {
                assert_eq!(q.get(s, a), 0.0);
            }
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut q = QTable::<f64>::new(4, 3);
        q.set(2, 1, 5.5);
        assert_eq!(q.get(2, 1), 5.5);
        assert_eq!(q.row(2), &[0.0, 5.5, 0.0]);
    }

    #[test]
    fn max_exact_ties_to_lowest_action() {
        let mut q = QTable::<f64>::new(2, 4);
        q.set(0, 1, 3.0);
        q.set(0, 3, 3.0);
        assert_eq!(q.max_exact(0), (1, 3.0));
        // All-zero row: action 0.
        assert_eq!(q.max_exact(1), (0, 0.0));
    }

    #[test]
    fn greedy_policy_extraction() {
        let mut q = QTable::<f64>::new(3, 2);
        q.set(0, 1, 1.0);
        q.set(2, 0, -0.5);
        q.set(2, 1, -0.25);
        assert_eq!(q.greedy_policy(), vec![1, 0, 1]);
    }

    #[test]
    fn max_abs_diff() {
        let mut a = QTable::<f64>::new(2, 2);
        let mut b = QTable::<f64>::new(2, 2);
        a.set(0, 0, 1.0);
        b.set(0, 0, 1.5);
        b.set(1, 1, -0.2);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn qmax_monotone_update() {
        let mut m = QmaxTable::<f64>::new(2);
        assert_eq!(m.get(0), (0.0, 0));
        assert!(m.update_monotone(0, 2, 1.5));
        assert_eq!(m.get(0), (1.5, 2));
        // Lower value does not displace the entry.
        assert!(!m.update_monotone(0, 1, 1.0));
        assert_eq!(m.get(0), (1.5, 2));
        // Equal value does not displace either (strictly higher only).
        assert!(!m.update_monotone(0, 3, 1.5));
        assert_eq!(m.get(0).1, 2);
    }

    #[test]
    fn qmax_goes_stale_when_values_decrease() {
        // The documented approximation: decreasing the argmax entry leaves
        // Qmax over-estimating.
        let mut q = QTable::<f64>::new(1, 2);
        let mut m = QmaxTable::<f64>::new(1);
        q.set(0, 0, 2.0);
        m.update_monotone(0, 0, 2.0);
        q.set(0, 0, 0.5); // true max now 0.5
        m.update_monotone(0, 0, 0.5); // monotone: no change
        assert_eq!(m.get(0).0, 2.0, "stale upper bound");
        assert_eq!(q.max_exact(0).1, 0.5);
        m.rebuild_exact(&q);
        assert_eq!(m.get(0), (0.5, 0));
    }

    #[test]
    fn qmax_is_always_upper_bound_under_monotone_updates() {
        // Invariant: after any interleaving of set+update_monotone with
        // the same (s, a, v), qmax >= true row max.
        let mut q = QTable::<Q8_8>::new(4, 4);
        let mut m = QmaxTable::<Q8_8>::new(4);
        let mut lfsr = qtaccel_hdl::lfsr::Lfsr32::new(99);
        use qtaccel_hdl::rng::RngSource;
        for _ in 0..1000 {
            let s = lfsr.below(4);
            let a = lfsr.below(4);
            let v = Q8_8::from_f64(lfsr.next_f64() * 20.0 - 10.0);
            q.set(s, a, v);
            m.update_monotone(s, a, v);
        }
        for s in 0..4 {
            let (_, true_max) = q.max_exact(s);
            assert!(m.get(s).0 >= true_max, "state {s}");
        }
    }

    #[test]
    fn capacity_accounting() {
        let q = QTable::<Q8_8>::new(256, 8);
        assert_eq!(q.capacity_bits(), 256 * 8 * 16);
        let m = QmaxTable::<Q8_8>::new(256);
        assert_eq!(m.capacity_bits(3), 256 * 19);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_table_rejected() {
        QTable::<f64>::new(0, 4);
    }

    #[test]
    fn packed_table_roundtrips_on_grid_values() {
        let policy = QuantPolicy::q8();
        let mut q = QTable::<Q8_8>::new(7, 3);
        // Fill with on-grid values (multiples of the stored step).
        let mut lfsr = qtaccel_hdl::lfsr::Lfsr32::new(42);
        use qtaccel_hdl::rng::RngSource;
        for s in 0..7 {
            for a in 0..3 {
                let v = Q8_8::from_f64(lfsr.next_f64() * 3.8 - 1.9);
                q.set(s, a, policy.round_nearest(v));
            }
        }
        let packed = PackedQTable::from_qtable(&q, policy);
        assert_eq!(packed.to_qtable::<Q8_8>(), q, "on-grid pack is lossless");
        assert_eq!(packed.get::<Q8_8>(3, 1), q.get(3, 1));
    }

    #[test]
    fn packed_table_density() {
        // 8-bit: 8 codes/word. 256×8 entries = 2048 codes = 256 words.
        let p8 = PackedQTable::new(256, 8, QuantPolicy::q8());
        assert_eq!(p8.capacity_bits(), 256 * 64);
        // Dense 16-bit table of the same shape costs 2× the bits.
        let q = QTable::<Q8_8>::new(256, 8);
        assert_eq!(q.capacity_bits(), 2 * p8.capacity_bits());
        // 6-bit: 10 codes/word with 4 spare bits; 2048 codes = 205 words.
        let p6 = PackedQTable::new(256, 8, QuantPolicy::q6());
        assert_eq!(p6.capacity_bits(), 205 * 64);
        // 4-bit: 16 codes/word; 128 words.
        let p4 = PackedQTable::new(256, 8, QuantPolicy::q4());
        assert_eq!(p4.capacity_bits(), 128 * 64);
    }

    #[test]
    fn packed_set_saturates_at_stored_rails() {
        let policy = QuantPolicy::q4(); // rails −2.0 … +1.75
        let mut p = PackedQTable::new(2, 2, policy);
        p.set(0, 0, Q8_8::from_f64(5.0));
        assert_eq!(p.get::<Q8_8>(0, 0).to_f64(), 1.75);
        p.set(0, 1, Q8_8::from_f64(-5.0));
        assert_eq!(p.get::<Q8_8>(0, 1).to_f64(), -2.0);
        // Neighbouring lanes are untouched.
        assert_eq!(p.get::<Q8_8>(1, 0).to_f64(), 0.0);
    }
}
