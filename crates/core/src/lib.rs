#![deny(missing_docs)]

//! Q-table reinforcement learning algorithms — the software golden
//! references for the QTAccel accelerator.
//!
//! This crate implements everything §III of the paper describes, in plain
//! sequential Rust:
//!
//! * [`qtable`] — the dense Q-table and the Qmax array (§V-A's
//!   optimization: "an array Qmax of size equal to the number of states
//!   which stores the maximum Q-value for all the states").
//! * [`policy`] — action-selection policies: random, greedy, ε-greedy
//!   (§III-B), Boltzmann, and the probability-table policy with
//!   binary-search selection of §VII-B.
//! * [`trainer`] — step-exact Q-Learning (Eq. 1/3) and SARSA (Eq. 2)
//!   trainers. These are **golden references**: given the same master
//!   seed, datapath format and Qmax semantics, they make bit-identical
//!   decisions and updates to the pipelined accelerator in
//!   `qtaccel-accel`, which is how the pipeline's hazard handling is
//!   verified.
//! * [`bandit`] — multi-armed bandit algorithms for the §VII-B extension:
//!   ε-greedy bandits, UCB1 and EXP3 (Eq. 5), with regret accounting.
//! * [`eval`] — policy-quality evaluation: greedy rollouts, success rate,
//!   path-length optimality against BFS ground truth.

pub mod bandit;
pub mod eval;
pub mod policy;
pub mod qtable;
pub mod trainer;

pub use bandit::{BanditAlgorithm, EpsilonGreedyBandit, Exp3, Ucb1};
pub use eval::{evaluate_policy, step_optimality, EvalReport};
pub use policy::{Policy, ProbTablePolicy};
pub use qtable::{MaxMode, PackedQTable, QTable, QmaxTable};
pub use trainer::{
    q_learning, sarsa, QLearningRef, RefTrainer, SarsaRef, TrainerConfig, Transition,
};
