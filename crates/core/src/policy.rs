//! Action-selection policies (§III-B, §V, §VII-B).
//!
//! The architecture is "capable of supporting a variety of action
//! selection policies": the behaviour policy in pipeline stage 1 and the
//! update policy in stage 2 are both instances of [`Policy`]. The
//! hardware realizations are:
//!
//! * **Random** — one LFSR word, range-reduced to an action index.
//! * **Greedy** — a single Qmax-array read (§V-A), no randomness.
//! * **ε-greedy** — an N-bit LFSR word compared against `(1−ε)·2^N`
//!   (§V-B), then either the Qmax read or a uniformly indexed row entry.
//! * **Boltzmann / generic distributions** — a probability table and a
//!   binary search over its cumulative row in `log₂ nⱼ` cycles (§VII-B),
//!   modelled by [`ProbTablePolicy`].

use crate::qtable::{MaxMode, QTable, QmaxTable};
use qtaccel_envs::{Action, State};
use qtaccel_fixed::QValue;
use qtaccel_hdl::rng::{epsilon_greedy_draw, epsilon_to_q32, RngSource};

/// An action-selection policy over Q-values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Uniform random action (the paper's Q-Learning behaviour policy).
    Random,
    /// Exploit only: the max-Q action (the paper's Q-Learning update
    /// policy).
    Greedy,
    /// Explore with probability ε, exploit otherwise (SARSA's policy).
    EpsilonGreedy {
        /// Exploration probability in `[0, 1]`.
        epsilon: f64,
    },
    /// Softmax over Q-values with temperature `T`:
    /// `P(a) ∝ exp(Q(s,a)/T)`. Software reference for the probability
    /// table approach; see [`ProbTablePolicy`] for the hardware shape.
    Boltzmann {
        /// Temperature (> 0). Lower is greedier.
        temperature: f64,
    },
}

impl Policy {
    /// Select an action for state `s`.
    ///
    /// `mode` chooses between the hardware Qmax-array read and the exact
    /// row scan for the greedy component. The RNG consumption pattern is
    /// the contract the accelerator model reproduces bit-exactly:
    /// `Random` draws one word; `Greedy` draws none; `EpsilonGreedy`
    /// draws exactly one word (the paper's single-number scheme, §V-B:
    /// the word decides explore-vs-exploit *and*, when exploring,
    /// directly indexes the action); `Boltzmann` draws one word.
    pub fn select<V: QValue>(
        &self,
        q: &QTable<V>,
        qmax: &QmaxTable<V>,
        mode: MaxMode,
        s: State,
        rng: &mut dyn RngSource,
    ) -> Action {
        let num_actions = q.num_actions() as u32;
        match *self {
            Policy::Random => rng.below(num_actions),
            Policy::Greedy => greedy_action(q, qmax, mode, s),
            Policy::EpsilonGreedy { epsilon } => {
                match epsilon_greedy_draw(rng, epsilon_to_q32(epsilon), num_actions) {
                    Some(a) => a,
                    None => greedy_action(q, qmax, mode, s),
                }
            }
            Policy::Boltzmann { temperature } => {
                assert!(temperature > 0.0, "Boltzmann temperature must be > 0");
                let row = q.row(s);
                // Subtract the row max before exponentiating for
                // numerical stability; the distribution is unchanged.
                let m = row
                    .iter()
                    .map(|v| v.to_f64())
                    .fold(f64::NEG_INFINITY, f64::max);
                let weights: Vec<f64> = row
                    .iter()
                    .map(|v| ((v.to_f64() - m) / temperature).exp())
                    .collect();
                sample_discrete(&weights, rng)
            }
        }
    }

    /// Does this policy ever consult the Qmax array / row maximum?
    pub fn uses_max(&self) -> bool {
        matches!(self, Policy::Greedy | Policy::EpsilonGreedy { .. })
    }
}

/// The greedy component shared by `Greedy` and `EpsilonGreedy`.
#[inline]
fn greedy_action<V: QValue>(
    q: &QTable<V>,
    qmax: &QmaxTable<V>,
    mode: MaxMode,
    s: State,
) -> Action {
    match mode {
        MaxMode::QmaxArray => qmax.get(s).1,
        MaxMode::ExactScan => q.max_exact(s).0,
    }
}

/// Sample an index proportionally to non-negative `weights` using a single
/// RNG word. Zero-total rows degenerate to uniform.
fn sample_discrete(weights: &[f64], rng: &mut dyn RngSource) -> Action {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return rng.below(weights.len() as u32);
    }
    let mut r = rng.next_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        r -= w;
        if r < 0.0 {
            return i as Action;
        }
    }
    (weights.len() - 1) as Action
}

/// The probability-distribution policy table of §VII-B.
///
/// "To implement such probability distribution based policies, we use a
/// table P which stores the probability value for each state-action pair.
/// … Based on a random number generated in `[0, Σ fₜ(Sⱼ, aᵢ))`, a binary
/// search can provide the selected action in log nⱼ cycles."
///
/// Weights are stored per state row together with their cumulative sums;
/// selection draws one word, scales it onto the row total, and binary
/// searches the cumulative row — reporting `⌈log₂ n⌉` as the modeled
/// cycle cost, which the MAB engine feeds into its throughput model.
#[derive(Debug, Clone)]
pub struct ProbTablePolicy {
    weights: Vec<f64>,
    cumulative: Vec<f64>,
    num_actions: usize,
    dirty_rows: Vec<bool>,
}

impl ProbTablePolicy {
    /// Uniform table over `num_states × num_actions`.
    pub fn uniform(num_states: usize, num_actions: usize) -> Self {
        assert!(num_states > 0 && num_actions > 0);
        let mut p = Self {
            weights: vec![1.0; num_states * num_actions],
            cumulative: vec![0.0; num_states * num_actions],
            num_actions,
            dirty_rows: vec![true; num_states],
        };
        for s in 0..num_states {
            p.rebuild_row(s);
        }
        p
    }

    /// Number of states (rows).
    pub fn num_states(&self) -> usize {
        self.dirty_rows.len()
    }

    /// Number of actions (columns).
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Current weight of (s, a).
    pub fn weight(&self, s: State, a: Action) -> f64 {
        self.weights[s as usize * self.num_actions + a as usize]
    }

    /// Set the weight of (s, a) — the final-stage probability update the
    /// paper describes ("In the final stage, the probability values need
    /// to be updated").
    pub fn set_weight(&mut self, s: State, a: Action, w: f64) {
        assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
        self.weights[s as usize * self.num_actions + a as usize] = w;
        self.dirty_rows[s as usize] = true;
    }

    fn rebuild_row(&mut self, s: usize) {
        let base = s * self.num_actions;
        let mut acc = 0.0;
        for a in 0..self.num_actions {
            acc += self.weights[base + a];
            self.cumulative[base + a] = acc;
        }
        self.dirty_rows[s] = false;
    }

    /// Select an action for state `s` and return it with the modeled
    /// selection latency in cycles (`⌈log₂ |A|⌉`, minimum 1).
    pub fn select(&mut self, s: State, rng: &mut dyn RngSource) -> (Action, u32) {
        if self.dirty_rows[s as usize] {
            self.rebuild_row(s as usize);
        }
        let base = s as usize * self.num_actions;
        let row = &self.cumulative[base..base + self.num_actions];
        let total = row[self.num_actions - 1];
        let cycles = (usize::BITS - (self.num_actions - 1).leading_zeros()).max(1);
        if total <= 0.0 {
            return (rng.below(self.num_actions as u32), cycles);
        }
        let target = rng.next_f64() * total;
        // Binary search for the first cumulative entry exceeding target.
        let mut lo = 0usize;
        let mut hi = self.num_actions - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if row[mid] > target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        (lo as Action, cycles)
    }

    /// Normalized probability of (s, a) under the current weights.
    pub fn probability(&mut self, s: State, a: Action) -> f64 {
        if self.dirty_rows[s as usize] {
            self.rebuild_row(s as usize);
        }
        let base = s as usize * self.num_actions;
        let total = self.cumulative[base + self.num_actions - 1];
        if total <= 0.0 {
            1.0 / self.num_actions as f64
        } else {
            self.weight(s, a) / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_hdl::lfsr::Lfsr32;

    fn setup() -> (QTable<f64>, QmaxTable<f64>) {
        let mut q = QTable::new(2, 4);
        q.set(0, 2, 5.0);
        q.set(0, 1, 3.0);
        let mut m = QmaxTable::new(2);
        m.rebuild_exact(&q);
        (q, m)
    }

    #[test]
    fn greedy_selects_argmax_both_modes() {
        let (q, m) = setup();
        let mut rng = Lfsr32::new(1);
        for mode in [MaxMode::QmaxArray, MaxMode::ExactScan] {
            let a = Policy::Greedy.select(&q, &m, mode, 0, &mut rng);
            assert_eq!(a, 2, "mode {mode:?}");
        }
    }

    #[test]
    fn greedy_qmax_mode_reads_stale_entry() {
        let (mut q, mut m) = setup();
        // Decrease the argmax entry without touching Qmax.
        q.set(0, 2, 0.1);
        m.update_monotone(0, 2, 0.1); // monotone: no change
        let mut rng = Lfsr32::new(1);
        assert_eq!(
            Policy::Greedy.select(&q, &m, MaxMode::QmaxArray, 0, &mut rng),
            2,
            "hardware mode keeps the stale action"
        );
        assert_eq!(
            Policy::Greedy.select(&q, &m, MaxMode::ExactScan, 0, &mut rng),
            1,
            "exact mode tracks the true max"
        );
    }

    #[test]
    fn random_is_uniform() {
        let (q, m) = setup();
        let mut rng = Lfsr32::new(5);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[Policy::Random.select(&q, &m, MaxMode::QmaxArray, 0, &mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 40_000.0 - 0.25).abs() < 0.02);
        }
    }

    #[test]
    fn epsilon_zero_is_greedy_epsilon_one_is_random() {
        let (q, m) = setup();
        let mut rng = Lfsr32::new(9);
        for _ in 0..100 {
            let a = Policy::EpsilonGreedy { epsilon: 0.0 }.select(
                &q,
                &m,
                MaxMode::ExactScan,
                0,
                &mut rng,
            );
            assert_eq!(a, 2);
        }
        let mut explored = [false; 4];
        for _ in 0..200 {
            let a = Policy::EpsilonGreedy { epsilon: 1.0 }.select(
                &q,
                &m,
                MaxMode::ExactScan,
                0,
                &mut rng,
            );
            explored[a as usize] = true;
        }
        assert!(explored.iter().all(|&b| b), "ε=1 must reach all actions");
    }

    #[test]
    fn epsilon_greedy_explore_fraction() {
        let (q, m) = setup();
        let mut rng = Lfsr32::new(13);
        let eps = 0.3;
        let n = 100_000;
        let mut non_greedy = 0;
        for _ in 0..n {
            let a = Policy::EpsilonGreedy { epsilon: eps }.select(
                &q,
                &m,
                MaxMode::ExactScan,
                0,
                &mut rng,
            );
            if a != 2 {
                non_greedy += 1;
            }
        }
        // Non-greedy fraction should be ~ ε·(|A|−1)/|A| = 0.225.
        let frac = non_greedy as f64 / n as f64;
        assert!((frac - 0.225).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn boltzmann_prefers_higher_q() {
        let (q, m) = setup();
        let mut rng = Lfsr32::new(21);
        let mut counts = [0u32; 4];
        for _ in 0..50_000 {
            let a = Policy::Boltzmann { temperature: 1.0 }.select(
                &q,
                &m,
                MaxMode::ExactScan,
                0,
                &mut rng,
            );
            counts[a as usize] += 1;
        }
        assert!(counts[2] > counts[1], "exp(5) beats exp(3)");
        assert!(counts[1] > counts[0], "exp(3) beats exp(0)");
        // Expected ratio between actions 1 and 2 is exp(-2) ≈ 0.135.
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - (-2.0f64).exp()).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn boltzmann_high_temperature_flattens() {
        let (q, m) = setup();
        let mut rng = Lfsr32::new(23);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            let a = Policy::Boltzmann { temperature: 1000.0 }.select(
                &q,
                &m,
                MaxMode::ExactScan,
                0,
                &mut rng,
            );
            counts[a as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 40_000.0 - 0.25).abs() < 0.03);
        }
    }

    #[test]
    fn prob_table_uniform_start() {
        let mut p = ProbTablePolicy::uniform(2, 8);
        assert_eq!(p.probability(0, 3), 0.125);
        let mut rng = Lfsr32::new(31);
        let (a, cycles) = p.select(0, &mut rng);
        assert!(a < 8);
        assert_eq!(cycles, 3, "log2(8) binary-search latency");
    }

    #[test]
    fn prob_table_tracks_weights() {
        let mut p = ProbTablePolicy::uniform(1, 4);
        p.set_weight(0, 2, 7.0);
        // Row: [1, 1, 7, 1] → P(2) = 0.7.
        assert!((p.probability(0, 2) - 0.7).abs() < 1e-12);
        let mut rng = Lfsr32::new(37);
        let n = 50_000;
        let hits = (0..n).filter(|_| p.select(0, &mut rng).0 == 2).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn prob_table_zero_row_degenerates_to_uniform() {
        let mut p = ProbTablePolicy::uniform(1, 4);
        for a in 0..4 {
            p.set_weight(0, a, 0.0);
        }
        let mut rng = Lfsr32::new(41);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[p.select(0, &mut rng).0 as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(p.probability(0, 0), 0.25);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn prob_table_rejects_negative_weight() {
        let mut p = ProbTablePolicy::uniform(1, 2);
        p.set_weight(0, 0, -1.0);
    }

    #[test]
    fn rng_draw_counts_match_contract() {
        use qtaccel_hdl::rng::CountingRng;
        let (q, m) = setup();
        let mut rng = CountingRng::new(Lfsr32::new(3));
        Policy::Greedy.select(&q, &m, MaxMode::QmaxArray, 0, &mut rng);
        assert_eq!(rng.drawn(), 0, "greedy draws nothing");
        Policy::Random.select(&q, &m, MaxMode::QmaxArray, 0, &mut rng);
        assert_eq!(rng.drawn(), 1, "random draws one word");
        // ε-greedy: exactly 1 word regardless of the outcome (the paper's
        // single-number scheme).
        let mut rng = CountingRng::new(Lfsr32::new(3));
        Policy::EpsilonGreedy { epsilon: 0.0 }.select(&q, &m, MaxMode::QmaxArray, 0, &mut rng);
        assert_eq!(rng.drawn(), 1);
        let mut rng = CountingRng::new(Lfsr32::new(3));
        Policy::EpsilonGreedy { epsilon: 1.0 }.select(&q, &m, MaxMode::QmaxArray, 0, &mut rng);
        assert_eq!(rng.drawn(), 1);
    }
}
