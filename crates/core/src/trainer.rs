//! Step-exact software trainers — the golden references for the pipeline.
//!
//! [`QLearningRef`] and [`SarsaRef`] execute the QRL loop of §IV-B
//! ("(i) Start from any random state … (viii) write the new Q-value back")
//! one update at a time, in exactly the arithmetic and decision order the
//! pipelined accelerator implements:
//!
//! * rewards are read from a pre-quantized [`RewardTable`] (the reward
//!   BRAM), not recomputed in floating point;
//! * the update Eq. (3) is evaluated as three datapath multiplies and two
//!   adds on the [`QValue`] format, with `1−α` and `α·γ` precomputed once
//!   (stage 1 of the pipeline does the same);
//! * the greedy maximum comes from the monotone [`QmaxTable`] when
//!   `MaxMode::QmaxArray` is selected (§V-A);
//! * randomness comes from three independent, enable-gated LFSR units
//!   (start selector, behaviour selector, update selector) seeded through
//!   [`SeedSequence`] — the same construction the accelerator uses.
//!
//! Consequently `QLearningRef` / `SarsaRef` with seed `k` produce
//! *bit-identical* Q-tables to `QLearningAccel` / `SarsaAccel` with seed
//! `k`; the integration tests assert this across random environments.

use crate::policy::Policy;
use crate::qtable::{MaxMode, QTable, QmaxTable};
use qtaccel_envs::{Action, Environment, RewardTable, State};
use qtaccel_fixed::{QValue, QuantPolicy};
use qtaccel_hdl::lfsr::Lfsr32;
use qtaccel_hdl::rng::{RngSource, SeedSequence};

/// RNG-unit indices within a [`SeedSequence`]; shared with the
/// accelerator so both derive identical per-unit streams.
pub mod seed_unit {
    /// Start-state selector unit.
    pub const START: u64 = 0;
    /// Behaviour-policy action selector unit (stage 1).
    pub const BEHAVIOR: u64 = 1;
    /// Update-policy action selector unit (stage 2).
    pub const UPDATE: u64 = 2;
    /// Qmax-array action-field initialization stream (BRAM init file).
    pub const QMAX_INIT: u64 = 3;
    /// Stochastic-rounding dither stream for quantized Q-table writeback
    /// (DESIGN.md §2.14) — one draw per retired sample.
    pub const QUANT: u64 = 4;
    /// Units reserved per pipeline (multi-pipeline configs offset by
    /// `pipeline_index * STRIDE`).
    pub const STRIDE: u64 = 8;

    /// Seed index for `unit` of pipeline `pipeline`.
    pub fn of(pipeline: u64, unit: u64) -> u64 {
        pipeline * STRIDE + unit
    }
}

/// Hyper-parameters and structural configuration shared by trainers and
/// accelerator engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Learning rate α.
    pub alpha: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Behaviour policy (stage 1's action selection).
    pub behavior: Policy,
    /// Update policy (stage 2's next-action selection).
    pub update: Policy,
    /// Whether the stage-2 action is forwarded as the next iteration's
    /// behaviour action — true for on-policy SARSA (§V-B: "the sampled
    /// action … will be forwarded to the 1st stage as the next-step
    /// action"), false for off-policy Q-Learning.
    pub forward_next_action: bool,
    /// Row-maximum semantics (hardware Qmax array vs exact scan).
    pub max_mode: MaxMode,
    /// Master seed for the LFSR units.
    pub seed: u64,
}

impl TrainerConfig {
    /// The paper's Q-Learning configuration: random behaviour policy,
    /// greedy update policy, Qmax array.
    pub fn q_learning() -> Self {
        Self {
            alpha: 0.5,
            gamma: 0.875,
            behavior: Policy::Random,
            update: Policy::Greedy,
            forward_next_action: false,
            max_mode: MaxMode::QmaxArray,
            seed: 0xC0FFEE,
        }
    }

    /// The paper's SARSA configuration: ε-greedy on-policy with action
    /// forwarding.
    pub fn sarsa(epsilon: f64) -> Self {
        Self {
            alpha: 0.5,
            gamma: 0.875,
            behavior: Policy::EpsilonGreedy { epsilon },
            update: Policy::EpsilonGreedy { epsilon },
            forward_next_action: true,
            max_mode: MaxMode::QmaxArray,
            seed: 0xC0FFEE,
        }
    }

    /// Replace the learning rate.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        self.alpha = alpha;
        self
    }

    /// Replace the discount factor.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0,1]");
        self.gamma = gamma;
        self
    }

    /// Replace the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the max-selection semantics.
    pub fn with_max_mode(mut self, mode: MaxMode) -> Self {
        self.max_mode = mode;
        self
    }
}

/// One observed transition, exposed for tracing and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition<V> {
    /// State the update was applied to.
    pub s: State,
    /// Action taken.
    pub a: Action,
    /// Quantized reward read from the reward table.
    pub r: V,
    /// Next state from the transition function.
    pub s_next: State,
    /// Stage-2 selected next action.
    pub a_next: Action,
    /// The freshly written Q-value.
    pub q_new: V,
}

/// The generic table-based trainer both algorithm wrappers share.
#[derive(Debug, Clone)]
pub struct RefTrainer<V, E> {
    env: E,
    config: TrainerConfig,
    q: QTable<V>,
    qmax: QmaxTable<V>,
    rewards: RewardTable<V>,
    // Precomputed datapath constants (pipeline stage 1 derives these).
    alpha_v: V,
    one_minus_alpha: V,
    alpha_gamma: V,
    // Enable-gated LFSR units.
    start_rng: Lfsr32,
    behavior_rng: Lfsr32,
    update_rng: Lfsr32,
    // (current state, forwarded action) carried between iterations.
    carry: Option<(State, Option<Action>)>,
    // Stored-format quantization of the Q-table (DESIGN.md §2.14): the
    // policy plus the dedicated stochastic-rounding LFSR unit.
    quant: Option<(QuantPolicy, Lfsr32)>,
    samples: u64,
}

impl<V: QValue, E: Environment> RefTrainer<V, E> {
    /// Build a trainer over `env`.
    pub fn new(env: E, config: TrainerConfig) -> Self {
        let seeds = SeedSequence::new(config.seed);
        let alpha_v = V::from_f64(config.alpha);
        let gamma_v = V::from_f64(config.gamma);
        let q = QTable::new(env.num_states(), env.num_actions());
        let mut qmax = QmaxTable::new(env.num_states());
        // Initialize the greedy-action fields randomly (see
        // QmaxTable::randomize_actions) with a dedicated seed unit, so the
        // accelerator model reproduces the identical initial table.
        let mut init_rng = Lfsr32::new(seeds.derive(seed_unit::of(0, seed_unit::QMAX_INIT)));
        qmax.randomize_actions(env.num_actions() as u32, &mut init_rng);
        let rewards = RewardTable::from_env(&env);
        Self {
            config,
            q,
            qmax,
            rewards,
            alpha_v,
            one_minus_alpha: alpha_v.one_minus(),
            alpha_gamma: alpha_v.mul(gamma_v),
            start_rng: Lfsr32::new(seeds.derive(seed_unit::START)),
            behavior_rng: Lfsr32::new(seeds.derive(seed_unit::BEHAVIOR)),
            update_rng: Lfsr32::new(seeds.derive(seed_unit::UPDATE)),
            carry: None,
            quant: None,
            samples: 0,
            env,
        }
    }

    /// Switch the trainer to a quantized stored Q-table format
    /// (DESIGN.md §2.14): every writeback is stochastically rounded onto
    /// `policy`'s grid using a dedicated LFSR dither unit, and the reward
    /// ROM is snapped to the same grid so all executors read identical
    /// on-grid rewards. Must be called before training starts.
    pub fn enable_quant(&mut self, policy: QuantPolicy) {
        assert_eq!(self.samples, 0, "enable_quant before training starts");
        policy.validate_for::<V>();
        self.rewards.map_values(|v| policy.round_nearest(v));
        // Q and Qmax are still zero-initialized; zero is on every grid,
        // but re-encode anyway so a poked initial table stays consistent.
        for s in 0..self.q.num_states() as State {
            for a in 0..self.q.num_actions() as Action {
                self.q.set(s, a, policy.round_nearest(self.q.get(s, a)));
            }
            let (v, a) = self.qmax.get(s);
            self.qmax.poke(s, policy.round_nearest(v), a);
        }
        let seeds = SeedSequence::new(self.config.seed);
        let rng = Lfsr32::new(seeds.derive(seed_unit::of(0, seed_unit::QUANT)));
        self.quant = Some((policy, rng));
    }

    /// The quantization policy in force, if any.
    pub fn quant(&self) -> Option<&QuantPolicy> {
        self.quant.as_ref().map(|(p, _)| p)
    }

    /// The environment being trained on.
    pub fn env(&self) -> &E {
        &self.env
    }

    /// The configuration in force.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// The Q-table learned so far.
    pub fn q(&self) -> &QTable<V> {
        &self.q
    }

    /// The Qmax array.
    pub fn qmax(&self) -> &QmaxTable<V> {
        &self.qmax
    }

    /// Updates performed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Stage-2 semantics: select the next action *and* the Q-value used in
    /// the update, with the exact read the hardware performs (Qmax read on
    /// exploit, Q-row read on explore).
    fn update_select(&mut self, s_next: State) -> (Action, V) {
        let num_actions = self.q.num_actions() as u32;
        match self.config.update {
            Policy::Greedy => {
                let (v, a) = self.max_of(s_next);
                (a, v)
            }
            Policy::Random => {
                let a = self.update_rng.below(num_actions);
                (a, self.q.get(s_next, a))
            }
            Policy::EpsilonGreedy { epsilon } => {
                let thr = qtaccel_hdl::rng::epsilon_to_q32(epsilon);
                match qtaccel_hdl::rng::epsilon_greedy_draw(
                    &mut self.update_rng,
                    thr,
                    num_actions,
                ) {
                    Some(a) => (a, self.q.get(s_next, a)),
                    None => {
                        let (v, a) = self.max_of(s_next);
                        (a, v)
                    }
                }
            }
            Policy::Boltzmann { .. } => {
                let a = self.config.update.select(
                    &self.q,
                    &self.qmax,
                    self.config.max_mode,
                    s_next,
                    &mut self.update_rng,
                );
                (a, self.q.get(s_next, a))
            }
        }
    }

    fn max_of(&self, s: State) -> (V, Action) {
        match self.config.max_mode {
            MaxMode::QmaxArray => self.qmax.get(s),
            MaxMode::ExactScan => {
                let (a, v) = self.q.max_exact(s);
                (v, a)
            }
        }
    }

    /// Perform one Q-value update (one retired pipeline sample) and
    /// return the transition for inspection.
    pub fn step(&mut self) -> Transition<V> {
        // Stage 1: state + behaviour action.
        let (s, a) = match self.carry.take() {
            None => {
                let s = self.env.random_start(&mut self.start_rng);
                let a = self.config.behavior.select(
                    &self.q,
                    &self.qmax,
                    self.config.max_mode,
                    s,
                    &mut self.behavior_rng,
                );
                (s, a)
            }
            Some((s, Some(a))) => (s, a), // forwarded on-policy action
            Some((s, None)) => {
                let a = self.config.behavior.select(
                    &self.q,
                    &self.qmax,
                    self.config.max_mode,
                    s,
                    &mut self.behavior_rng,
                );
                (s, a)
            }
        };
        let s_next = self.env.transition(s, a);
        let r = self.rewards.get(s, a);
        let q_sa = self.q.get(s, a);

        // Stage 2: next action + its Q-value.
        let (a_next, q_next) = self.update_select(s_next);

        // Stage 3: Eq. (3) — three multiplies, two adds, datapath format.
        let q_new = self
            .one_minus_alpha
            .mul(q_sa)
            .add(self.alpha_v.mul(r))
            .add(self.alpha_gamma.mul(q_next));

        // Quantized writeback: stochastic rounding onto the stored grid,
        // one dither draw per retired sample (DESIGN.md §2.14).
        let q_new = match &mut self.quant {
            Some((policy, rng)) => policy.apply(q_new, u64::from(rng.next_u32())),
            None => q_new,
        };

        // Stage 4: writeback + Qmax monotone update.
        self.q.set(s, a, q_new);
        self.qmax.update_monotone(s, a, q_new);
        self.samples += 1;

        // Carry to the next iteration.
        self.carry = if self.env.is_terminal(s_next) {
            None
        } else {
            Some((
                s_next,
                if self.config.forward_next_action {
                    Some(a_next)
                } else {
                    None
                },
            ))
        };

        Transition {
            s,
            a,
            r,
            s_next,
            a_next,
            q_new,
        }
    }

    /// Run exactly `n` updates.
    pub fn run_samples(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Run until the Q-table changes by less than `tol` (max abs diff)
    /// over a window of `window` samples, or `max_samples` is reached.
    /// Returns the number of samples executed.
    pub fn run_until_converged(&mut self, tol: f64, window: u64, max_samples: u64) -> u64 {
        assert!(window > 0);
        let start = self.samples;
        let mut snapshot = self.q.clone();
        while self.samples - start < max_samples {
            self.run_samples(window.min(max_samples - (self.samples - start)));
            let delta = self.q.max_abs_diff(&snapshot);
            if delta < tol {
                break;
            }
            snapshot = self.q.clone();
        }
        self.samples - start
    }

    /// Exact greedy policy from the current Q-table.
    pub fn greedy_policy(&self) -> Vec<Action> {
        self.q.greedy_policy()
    }
}

/// Q-Learning golden reference (Eq. 1 / Eq. 3, §V-A).
pub type QLearningRef<V, E> = RefTrainer<V, E>;

/// SARSA golden reference (Eq. 2, §V-B).
pub type SarsaRef<V, E> = RefTrainer<V, E>;

/// Construct a Q-Learning reference trainer with defaults.
pub fn q_learning<V: QValue, E: Environment>(env: E, seed: u64) -> QLearningRef<V, E> {
    RefTrainer::new(env, TrainerConfig::q_learning().with_seed(seed))
}

/// Construct a SARSA reference trainer with defaults.
pub fn sarsa<V: QValue, E: Environment>(env: E, epsilon: f64, seed: u64) -> SarsaRef<V, E> {
    RefTrainer::new(env, TrainerConfig::sarsa(epsilon).with_seed(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_envs::GridWorld;
    use qtaccel_fixed::{Q16_16, Q8_8};

    fn small_grid() -> GridWorld {
        GridWorld::builder(4, 4).goal(3, 3).build()
    }

    #[test]
    fn q_learning_steps_count() {
        let mut t = q_learning::<f64, _>(small_grid(), 1);
        t.run_samples(100);
        assert_eq!(t.samples(), 100);
    }

    #[test]
    fn q_values_change_and_stay_bounded() {
        let mut t = q_learning::<f64, _>(small_grid(), 2);
        t.run_samples(5_000);
        let max_q = t
            .q()
            .as_slice()
            .iter()
            .fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        assert!(max_q > 0.0, "some positive value must be learned");
        // With r in [-1, 1] and gamma < 1, |Q| <= 1/(1-gamma) = 8.
        assert!(max_q <= 8.0 + 1e-9, "max Q {max_q}");
    }

    #[test]
    fn q_learning_learns_goal_neighbors() {
        let g = small_grid();
        let goal_left = g.state_of(2, 3);
        let mut t = q_learning::<f64, _>(g, 3);
        t.run_samples(50_000);
        // Moving right from (2,3) enters the goal: that Q-value must be
        // close to the goal reward (1.0).
        let q = t.q().get(goal_left, 2);
        assert!(q > 0.9, "Q(goal-neighbor, right) = {q}");
        // And the greedy policy from that cell must be 'right'.
        assert_eq!(t.greedy_policy()[goal_left as usize], 2);
    }

    #[test]
    fn q_learning_policy_is_optimal_after_training() {
        let g = small_grid();
        let dists = g.shortest_distances();
        let mut t = q_learning::<f64, _>(g, 4);
        t.run_samples(200_000);
        let policy = t.greedy_policy();
        let g = t.env();
        // Every reachable cell's greedy action must decrease the BFS
        // distance to the goal by exactly 1 (policy optimality).
        for s in 0..g.num_states() as State {
            if !g.is_valid_state(s) || g.is_terminal(s) {
                continue;
            }
            let (Some(d), t_next) = (dists[s as usize], g.transition(s, policy[s as usize]))
            else {
                continue;
            };
            let dn = dists[t_next as usize].expect("moved to unreachable cell");
            assert_eq!(dn, d - 1, "state {s}: dist {d} -> {dn} not optimal");
        }
    }

    #[test]
    fn sarsa_also_learns() {
        let mut t = sarsa::<f64, _>(small_grid(), 0.2, 5);
        t.run_samples(100_000);
        let g = t.env();
        let goal_left = g.state_of(2, 3);
        assert_eq!(t.greedy_policy()[goal_left as usize], 2);
    }

    #[test]
    fn fixed_point_formats_learn_too() {
        let g = small_grid();
        let mut t16 = q_learning::<Q8_8, _>(g.clone(), 6);
        t16.run_samples(100_000);
        let goal_left = g.state_of(2, 3);
        assert!(t16.q().get(goal_left, 2).to_f64() > 0.8);
        let mut t32 = q_learning::<Q16_16, _>(g, 6);
        t32.run_samples(100_000);
        assert!(t32.q().get(goal_left, 2).to_f64() > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = q_learning::<Q8_8, _>(small_grid(), 7);
        let mut b = q_learning::<Q8_8, _>(small_grid(), 7);
        a.run_samples(10_000);
        b.run_samples(10_000);
        assert_eq!(a.q().as_slice(), b.q().as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = q_learning::<f64, _>(small_grid(), 8);
        let mut b = q_learning::<f64, _>(small_grid(), 9);
        a.run_samples(5_000);
        b.run_samples(5_000);
        assert!(a.q().max_abs_diff(b.q()) > 0.0);
    }

    #[test]
    fn qmax_vs_exact_scan_converge_to_same_policy() {
        let g = small_grid();
        let mut hw = RefTrainer::<f64, _>::new(
            g.clone(),
            TrainerConfig::q_learning().with_seed(10),
        );
        let mut sw = RefTrainer::<f64, _>::new(
            g,
            TrainerConfig::q_learning()
                .with_seed(10)
                .with_max_mode(MaxMode::ExactScan),
        );
        hw.run_samples(200_000);
        sw.run_samples(200_000);
        let env = sw.env();
        let (ph, ps) = (hw.greedy_policy(), sw.greedy_policy());
        for s in 0..env.num_states() as State {
            if env.is_valid_state(s) && !env.is_terminal(s) {
                // Compare induced next states (policies may differ on ties).
                let dists = env.shortest_distances();
                if let Some(d) = dists[s as usize] {
                    let dh = dists[env.transition(s, ph[s as usize]) as usize].unwrap();
                    let dsx = dists[env.transition(s, ps[s as usize]) as usize].unwrap();
                    assert_eq!(dh, d - 1, "qmax-mode policy optimal at {s}");
                    assert_eq!(dsx, d - 1, "exact-mode policy optimal at {s}");
                }
            }
        }
    }

    #[test]
    fn convergence_detector_terminates() {
        let mut t = q_learning::<f64, _>(small_grid(), 11);
        let used = t.run_until_converged(1e-6, 10_000, 2_000_000);
        assert!(used < 2_000_000, "did not converge: {used} samples");
        // After convergence, further training changes almost nothing.
        let snap = t.q().clone();
        t.run_samples(10_000);
        assert!(t.q().max_abs_diff(&snap) < 1e-4);
    }

    #[test]
    fn sarsa_forwards_actions() {
        // In SARSA the behaviour RNG unit is consumed only at episode
        // starts; every subsequent behaviour action is the forwarded
        // stage-2 action. Verify via the transition trace.
        let mut t = sarsa::<f64, _>(small_grid(), 0.3, 12);
        let mut prev: Option<Transition<f64>> = None;
        for _ in 0..1000 {
            let tr = t.step();
            if let Some(p) = prev {
                if !t.env().is_terminal(p.s_next) {
                    assert_eq!(tr.s, p.s_next, "state chaining");
                    assert_eq!(tr.a, p.a_next, "action forwarding");
                }
            }
            prev = Some(tr);
        }
    }

    #[test]
    fn q_learning_does_not_forward() {
        let mut t = q_learning::<f64, _>(small_grid(), 13);
        let mut forwarded = 0;
        let mut chained = 0;
        let mut prev: Option<Transition<f64>> = None;
        for _ in 0..2000 {
            let tr = t.step();
            if let Some(p) = prev {
                if !t.env().is_terminal(p.s_next) {
                    assert_eq!(tr.s, p.s_next);
                    chained += 1;
                    if tr.a == p.a_next {
                        forwarded += 1;
                    }
                }
            }
            prev = Some(tr);
        }
        // Behaviour is uniform random over 4 actions, so coincidence with
        // the greedy action happens ~25 % of the time, not always.
        assert!(
            forwarded < chained / 2,
            "off-policy must not forward: {forwarded}/{chained}"
        );
    }

    #[test]
    fn episode_restarts_on_goal() {
        let mut t = q_learning::<f64, _>(small_grid(), 14);
        let mut restarts = 0;
        let mut prev_next: Option<State> = None;
        for _ in 0..20_000 {
            let tr = t.step();
            if let Some(pn) = prev_next {
                if t.env().is_terminal(pn) {
                    restarts += 1;
                    assert!(!t.env().is_terminal(tr.s), "restart into terminal");
                }
            }
            prev_next = Some(tr.s_next);
        }
        assert!(restarts > 10, "random walk should reach the goal: {restarts}");
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn config_validates_alpha() {
        TrainerConfig::q_learning().with_alpha(1.5);
    }
}
