//! Multi-armed bandit algorithms (§VII-B).
//!
//! The paper positions QTAccel as a substrate for high-throughput MAB —
//! "no FPGA implementation exists for general MAB problems" — and sketches
//! two instantiations:
//!
//! * **ε-greedy bandits**: the Q-table has one state and M actions; the Q
//!   value of an arm is a running estimate of its mean reward.
//! * **EXP3** (Eq. 5): the Q value of arm m is an exponential function of
//!   its accumulated (importance-weighted) reward, and arms are drawn from
//!   the probability-table policy.
//!
//! [`Ucb1`] is included as the classical stochastic-bandit baseline for
//! the regret comparison in the `mab_bandits` experiment.

use qtaccel_hdl::rng::{epsilon_to_q32, RngSource};

/// A sequential bandit algorithm: select an arm, observe a reward, update.
pub trait BanditAlgorithm {
    /// Choose an arm for this round.
    fn select(&mut self, rng: &mut dyn RngSource) -> usize;
    /// Feed back the observed reward for `arm`.
    fn update(&mut self, arm: usize, reward: f64);
    /// Number of arms.
    fn num_arms(&self) -> usize;
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// ε-greedy bandit with incremental mean estimates — the single-state
/// Q-table instantiation of QTAccel.
#[derive(Debug, Clone)]
pub struct EpsilonGreedyBandit {
    epsilon_q32: u32,
    estimates: Vec<f64>,
    counts: Vec<u64>,
}

impl EpsilonGreedyBandit {
    /// `m` arms, exploration probability `epsilon`.
    pub fn new(m: usize, epsilon: f64) -> Self {
        assert!(m >= 1);
        Self {
            epsilon_q32: epsilon_to_q32(epsilon),
            estimates: vec![0.0; m],
            counts: vec![0; m],
        }
    }

    /// Current mean-reward estimate per arm.
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }
}

impl BanditAlgorithm for EpsilonGreedyBandit {
    fn select(&mut self, rng: &mut dyn RngSource) -> usize {
        if rng.explore(self.epsilon_q32) {
            rng.below(self.estimates.len() as u32) as usize
        } else {
            // Argmax with lowest-index ties, like the comparator tree.
            let mut best = 0;
            for i in 1..self.estimates.len() {
                if self.estimates[i] > self.estimates[best] {
                    best = i;
                }
            }
            best
        }
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.counts[arm] += 1;
        let n = self.counts[arm] as f64;
        self.estimates[arm] += (reward - self.estimates[arm]) / n;
    }

    fn num_arms(&self) -> usize {
        self.estimates.len()
    }

    fn name(&self) -> &'static str {
        "epsilon-greedy"
    }
}

/// UCB1 (Auer et al.): pull the arm maximizing
/// `estimate + sqrt(2 ln t / n_arm)`.
#[derive(Debug, Clone)]
pub struct Ucb1 {
    estimates: Vec<f64>,
    counts: Vec<u64>,
    t: u64,
}

impl Ucb1 {
    /// `m`-armed UCB1.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1);
        Self {
            estimates: vec![0.0; m],
            counts: vec![0; m],
            t: 0,
        }
    }
}

impl BanditAlgorithm for Ucb1 {
    fn select(&mut self, _rng: &mut dyn RngSource) -> usize {
        // Play each arm once first.
        if let Some(i) = self.counts.iter().position(|&c| c == 0) {
            return i;
        }
        let lt = (self.t as f64).ln();
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for i in 0..self.estimates.len() {
            let bonus = (2.0 * lt / self.counts[i] as f64).sqrt();
            let score = self.estimates[i] + bonus;
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.t += 1;
        self.counts[arm] += 1;
        let n = self.counts[arm] as f64;
        self.estimates[arm] += (reward - self.estimates[arm]) / n;
    }

    fn num_arms(&self) -> usize {
        self.estimates.len()
    }

    fn name(&self) -> &'static str {
        "ucb1"
    }
}

/// EXP3 for adversarial bandits (Auer et al.; the paper's Eq. 5):
///
/// `P(m) = (1−γ)·Q(m)/ΣQ + γ/M`, with `Q(m)` updated exponentially from
/// the importance-weighted reward. Rewards are assumed in `[0, 1]`
/// (clamped otherwise).
#[derive(Debug, Clone)]
pub struct Exp3 {
    gamma: f64,
    weights: Vec<f64>,
    last_probs: Vec<f64>,
}

impl Exp3 {
    /// `m` arms with mixing coefficient `gamma ∈ (0, 1]`.
    pub fn new(m: usize, gamma: f64) -> Self {
        assert!(m >= 1);
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0,1]");
        Self {
            gamma,
            weights: vec![1.0; m],
            last_probs: vec![1.0 / m as f64; m],
        }
    }

    /// Current arm-selection probabilities (Eq. 5).
    pub fn probabilities(&self) -> Vec<f64> {
        let m = self.weights.len() as f64;
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .map(|w| (1.0 - self.gamma) * w / total + self.gamma / m)
            .collect()
    }
}

impl BanditAlgorithm for Exp3 {
    fn select(&mut self, rng: &mut dyn RngSource) -> usize {
        self.last_probs = self.probabilities();
        // Cumulative draw — the hardware's probability-table binary search.
        let mut r = rng.next_f64();
        for (i, &p) in self.last_probs.iter().enumerate() {
            r -= p;
            if r < 0.0 {
                return i;
            }
        }
        self.last_probs.len() - 1
    }

    fn update(&mut self, arm: usize, reward: f64) {
        let m = self.weights.len() as f64;
        let x = reward.clamp(0.0, 1.0) / self.last_probs[arm].max(1e-12);
        self.weights[arm] *= (self.gamma * x / m).exp();
        // Renormalize to dodge overflow on long runs; the distribution is
        // scale-invariant.
        let max_w = self.weights.iter().cloned().fold(f64::MIN, f64::max);
        if max_w > 1e100 {
            for w in &mut self.weights {
                *w /= max_w;
            }
        }
    }

    fn num_arms(&self) -> usize {
        self.weights.len()
    }

    fn name(&self) -> &'static str {
        "exp3"
    }
}

/// Run `algo` against `bandit` for `rounds`, returning the cumulative
/// expected regret after each round.
pub fn run_regret(
    algo: &mut dyn BanditAlgorithm,
    bandit: &mut qtaccel_envs::GaussianBandit,
    rounds: usize,
    rng: &mut dyn RngSource,
) -> Vec<f64> {
    assert_eq!(algo.num_arms(), bandit.num_arms(), "arm count mismatch");
    let mut regret = Vec::with_capacity(rounds);
    let mut acc = 0.0;
    for _ in 0..rounds {
        let arm = algo.select(rng);
        let reward = bandit.pull(arm);
        algo.update(arm, reward);
        acc += bandit.gap(arm);
        regret.push(acc);
    }
    regret
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_envs::GaussianBandit;
    use qtaccel_hdl::lfsr::Lfsr32;

    fn bandit() -> GaussianBandit {
        GaussianBandit::linear_means(5, 0.2, 77)
    }

    #[test]
    fn epsilon_greedy_finds_best_arm() {
        let mut b = bandit();
        let mut algo = EpsilonGreedyBandit::new(5, 0.1);
        let mut rng = Lfsr32::new(1);
        run_regret(&mut algo, &mut b, 20_000, &mut rng);
        let best = algo
            .estimates()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 4);
    }

    #[test]
    fn regret_is_sublinear_for_ucb() {
        let mut b = bandit();
        let mut algo = Ucb1::new(5);
        let mut rng = Lfsr32::new(2);
        let regret = run_regret(&mut algo, &mut b, 20_000, &mut rng);
        let early_rate = regret[999] / 1000.0;
        let late_rate = (regret[19_999] - regret[9_999]) / 10_000.0;
        assert!(
            late_rate < early_rate / 2.0,
            "regret rate must fall: early {early_rate}, late {late_rate}"
        );
    }

    #[test]
    fn regret_is_monotone() {
        let mut b = bandit();
        let mut algo = EpsilonGreedyBandit::new(5, 0.1);
        let mut rng = Lfsr32::new(3);
        let regret = run_regret(&mut algo, &mut b, 2_000, &mut rng);
        for w in regret.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn exp3_probabilities_sum_to_one_and_favor_winner() {
        let mut b = GaussianBandit::linear_means(4, 0.1, 5);
        let mut algo = Exp3::new(4, 0.2);
        let mut rng = Lfsr32::new(4);
        // Rewards must be in [0,1]: linear_means(4) means are 0..0.75.
        run_regret(&mut algo, &mut b, 10_000, &mut rng);
        let probs = algo.probabilities();
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 3, "probs {probs:?}");
    }

    #[test]
    fn exp3_floor_probability() {
        // Every arm keeps at least gamma/M probability (Eq. 5's mixing
        // term) — the exploration guarantee.
        let algo = Exp3::new(4, 0.2);
        for p in algo.probabilities() {
            assert!(p >= 0.05 - 1e-12);
        }
    }

    #[test]
    fn exp3_survives_long_runs_without_overflow() {
        let mut algo = Exp3::new(3, 0.3);
        let mut rng = Lfsr32::new(6);
        for _ in 0..200_000 {
            let arm = algo.select(&mut rng);
            algo.update(arm, 1.0);
        }
        assert!(algo.probabilities().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn ucb_plays_every_arm_first() {
        let mut algo = Ucb1::new(5);
        let mut rng = Lfsr32::new(7);
        let mut seen = [false; 5];
        for _ in 0..5 {
            let arm = algo.select(&mut rng);
            assert!(!seen[arm], "arm {arm} repeated in warmup");
            seen[arm] = true;
            algo.update(arm, 0.0);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "arm count mismatch")]
    fn regret_validates_arms() {
        let mut b = bandit();
        let mut algo = Ucb1::new(3);
        let mut rng = Lfsr32::new(8);
        run_regret(&mut algo, &mut b, 10, &mut rng);
    }
}
