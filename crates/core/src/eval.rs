//! Policy-quality evaluation utilities.
//!
//! The paper's quality claim is implicit ("the agent … aims to reach a
//! goal cell"); these helpers make it checkable: roll a greedy policy out
//! from random starts, measure success rate and path-length optimality
//! against BFS ground truth.

use qtaccel_envs::{Action, Environment, State};
use qtaccel_hdl::rng::RngSource;

/// Outcome of a policy evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Episodes that reached a terminal state within the step cap.
    pub successes: u32,
    /// Episodes attempted.
    pub episodes: u32,
    /// Mean steps over successful episodes (0 if none).
    pub mean_steps: f64,
    /// Mean undiscounted return over all episodes.
    pub mean_return: f64,
}

impl EvalReport {
    /// Fraction of episodes that reached the goal.
    pub fn success_rate(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.successes as f64 / self.episodes as f64
        }
    }
}

/// Roll out `policy` greedily from `episodes` random starts, capping each
/// episode at `max_steps`.
pub fn evaluate_policy<E: Environment>(
    env: &E,
    policy: &[Action],
    episodes: u32,
    max_steps: u32,
    rng: &mut dyn RngSource,
) -> EvalReport {
    assert_eq!(policy.len(), env.num_states(), "policy length mismatch");
    let mut successes = 0u32;
    let mut steps_sum = 0u64;
    let mut return_sum = 0.0;
    for _ in 0..episodes {
        let mut s = env.random_start(rng);
        let mut ep_return = 0.0;
        for step in 1..=max_steps {
            let a = policy[s as usize];
            ep_return += env.reward(s, a);
            s = env.transition(s, a);
            if env.is_terminal(s) {
                successes += 1;
                steps_sum += step as u64;
                break;
            }
        }
        return_sum += ep_return;
    }
    EvalReport {
        successes,
        episodes,
        mean_steps: if successes == 0 {
            0.0
        } else {
            steps_sum as f64 / successes as f64
        },
        mean_return: return_sum / episodes.max(1) as f64,
    }
}

/// Fraction of reachable, non-terminal states whose greedy action is
/// *step-optimal*: it moves strictly one step closer to the goal
/// according to the BFS `distances` (as produced by
/// `GridWorld::shortest_distances`).
pub fn step_optimality<E: Environment>(
    env: &E,
    policy: &[Action],
    distances: &[Option<u32>],
) -> f64 {
    assert_eq!(policy.len(), env.num_states());
    assert_eq!(distances.len(), env.num_states());
    let mut optimal = 0u32;
    let mut total = 0u32;
    for s in 0..env.num_states() as State {
        if !env.is_valid_state(s) || env.is_terminal(s) {
            continue;
        }
        let Some(d) = distances[s as usize] else {
            continue;
        };
        total += 1;
        let next = env.transition(s, policy[s as usize]);
        if let Some(dn) = distances[next as usize] {
            if dn + 1 == d {
                optimal += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        optimal as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::q_learning;
    use qtaccel_envs::GridWorld;
    use qtaccel_hdl::lfsr::Lfsr32;

    #[test]
    fn trained_policy_evaluates_well() {
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        let mut t = q_learning::<f64, _>(g.clone(), 1);
        t.run_samples(100_000);
        let policy = t.greedy_policy();
        let mut rng = Lfsr32::new(2);
        let report = evaluate_policy(&g, &policy, 100, 50, &mut rng);
        assert_eq!(report.success_rate(), 1.0, "{report:?}");
        // Optimal mean path on a 4x4 grid from random starts is <= 6.
        assert!(report.mean_steps <= 6.0, "{report:?}");
        let opt = step_optimality(&g, &policy, &g.shortest_distances());
        assert_eq!(opt, 1.0);
    }

    #[test]
    fn bad_policy_evaluates_poorly() {
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        // Always move left: only cells already adjacent to nothing reach
        // the goal; success rate must be 0 (goal is to the right).
        let policy = vec![0; g.num_states()];
        let mut rng = Lfsr32::new(3);
        let report = evaluate_policy(&g, &policy, 50, 30, &mut rng);
        assert_eq!(report.successes, 0);
        let opt = step_optimality(&g, &policy, &g.shortest_distances());
        assert!(opt < 0.5, "left-only cannot be mostly optimal: {opt}");
        assert!(report.mean_return < 0.0, "wall-bumping is penalized");
    }

    #[test]
    fn empty_episode_count() {
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        let policy = vec![0; g.num_states()];
        let mut rng = Lfsr32::new(4);
        let report = evaluate_policy(&g, &policy, 0, 10, &mut rng);
        assert_eq!(report.success_rate(), 0.0);
        assert_eq!(report.mean_return, 0.0);
    }
}
