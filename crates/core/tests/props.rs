//! Property-based tests for the algorithm layer.

use proptest::prelude::*;
use qtaccel_core::qtable::{MaxMode, QTable, QmaxTable};
use qtaccel_core::trainer::{RefTrainer, TrainerConfig};
use qtaccel_envs::{ActionSet, Environment, GridWorld};
use qtaccel_fixed::Q8_8;
use qtaccel_hdl::lfsr::Lfsr32;
use qtaccel_hdl::rng::RngSource;

fn arb_grid() -> impl Strategy<Value = GridWorld> {
    (1u32..10_000, 0u32..20).prop_map(|(seed, density)| {
        let mut rng = Lfsr32::new(seed);
        GridWorld::random(8, 8, density, ActionSet::Four, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn q_values_stay_within_return_bounds(
        g in arb_grid(),
        seed in 1u64..10_000,
        alpha in 0.1f64..0.9,
        gamma in 0.1f64..0.95,
    ) {
        // |r| <= 1, so |Q| <= 1/(1-gamma) at all times, up to one
        // quantization step.
        let mut t = RefTrainer::<Q8_8, _>::new(
            g,
            TrainerConfig::q_learning()
                .with_seed(seed)
                .with_alpha(alpha)
                .with_gamma(gamma),
        );
        t.run_samples(5_000);
        let bound = 1.0 / (1.0 - gamma) + 1.0 / 256.0;
        for v in t.q().as_slice() {
            prop_assert!(v.to_f64().abs() <= bound,
                "Q={} exceeds bound {}", v.to_f64(), bound);
        }
    }

    #[test]
    fn qmax_dominates_row_max_throughout_training(
        g in arb_grid(),
        seed in 1u64..10_000,
    ) {
        let mut t = RefTrainer::<Q8_8, _>::new(
            g,
            TrainerConfig::q_learning().with_seed(seed),
        );
        for _ in 0..20 {
            t.run_samples(100);
            for s in 0..t.q().num_states() as u32 {
                let (_, row_max) = t.q().max_exact(s);
                prop_assert!(t.qmax().get(s).0 >= row_max, "state {}", s);
            }
        }
    }

    #[test]
    fn trainer_is_deterministic(g in arb_grid(), seed in 1u64..10_000) {
        let mut a = RefTrainer::<Q8_8, _>::new(
            g.clone(),
            TrainerConfig::q_learning().with_seed(seed),
        );
        let mut b = RefTrainer::<Q8_8, _>::new(
            g,
            TrainerConfig::q_learning().with_seed(seed),
        );
        a.run_samples(2_000);
        b.run_samples(2_000);
        prop_assert_eq!(a.q().as_slice(), b.q().as_slice());
    }

    #[test]
    fn visited_pairs_only(g in arb_grid(), seed in 1u64..10_000) {
        // Q entries for filler/obstacle states stay exactly zero: the
        // trainer never visits them.
        let mut t = RefTrainer::<Q8_8, _>::new(
            g.clone(),
            TrainerConfig::q_learning().with_seed(seed),
        );
        t.run_samples(5_000);
        for s in 0..g.num_states() as u32 {
            if !g.is_valid_state(s) || g.is_terminal(s) {
                for a in 0..g.num_actions() as u32 {
                    prop_assert_eq!(t.q().get(s, a), Q8_8::zero(),
                        "unvisitable state {} updated", s);
                }
            }
        }
    }

    #[test]
    fn sarsa_transitions_chain(g in arb_grid(), seed in 1u64..10_000) {
        // Trace invariant: s_{t+1} of one step is s_t of the next unless
        // an episode ended.
        let mut t = RefTrainer::<Q8_8, _>::new(
            g.clone(),
            TrainerConfig::sarsa(0.3).with_seed(seed),
        );
        let mut prev: Option<(u32, u32)> = None;
        for _ in 0..1_000 {
            let tr = t.step();
            prop_assert_eq!(tr.s_next, g.transition(tr.s, tr.a), "transition fn");
            if let Some((pn, pa)) = prev {
                if !g.is_terminal(pn) {
                    prop_assert_eq!(tr.s, pn);
                    prop_assert_eq!(tr.a, pa);
                }
            }
            prev = Some((tr.s_next, tr.a_next));
        }
    }

    #[test]
    fn rebuild_exact_is_idempotent_fixpoint(
        entries in prop::collection::vec(-10.0f64..10.0, 16),
    ) {
        let mut q = QTable::<f64>::new(4, 4);
        for (i, v) in entries.iter().enumerate() {
            q.set((i / 4) as u32, (i % 4) as u32, *v);
        }
        let mut m1 = QmaxTable::new(4);
        m1.rebuild_exact(&q);
        let mut m2 = m1.clone();
        m2.rebuild_exact(&q);
        prop_assert_eq!(&m1, &m2);
        // And the rebuilt table is tight: equals the row max exactly.
        for s in 0..4u32 {
            prop_assert_eq!(m1.get(s).0, q.max_exact(s).1);
        }
    }

    #[test]
    fn exact_scan_mode_is_tighter_or_equal(
        g in arb_grid(),
        seed in 1u64..10_000,
    ) {
        // The Qmax-array trainer's value estimates dominate the exact-scan
        // trainer's on the same trajectory prefix? Not in general (the
        // trajectories diverge once a stale max feeds back), but both must
        // remain within the return bounds and both must remain
        // deterministic — a cheap cross-mode sanity check.
        let mut a = RefTrainer::<Q8_8, _>::new(
            g.clone(),
            TrainerConfig::q_learning().with_seed(seed),
        );
        let mut b = RefTrainer::<Q8_8, _>::new(
            g,
            TrainerConfig::q_learning()
                .with_seed(seed)
                .with_max_mode(MaxMode::ExactScan),
        );
        a.run_samples(3_000);
        b.run_samples(3_000);
        let bound = 1.0 / (1.0 - 0.875) + 1.0 / 256.0;
        for (x, y) in a.q().as_slice().iter().zip(b.q().as_slice()) {
            prop_assert!(x.to_f64().abs() <= bound);
            prop_assert!(y.to_f64().abs() <= bound);
        }
    }

    #[test]
    fn policy_rng_contract_no_draws_for_unvisited_choice(
        seed in 1u32..10_000,
        eps in 0.0f64..1.0,
    ) {
        // ε-greedy consumes exactly one word per selection regardless of
        // outcome — the free-running-LFSR compatibility property.
        use qtaccel_core::policy::Policy;
        use qtaccel_hdl::rng::CountingRng;
        let q = QTable::<Q8_8>::new(4, 4);
        let m = QmaxTable::new(4);
        let mut rng = CountingRng::new(Lfsr32::new(seed));
        for i in 0..16 {
            Policy::EpsilonGreedy { epsilon: eps }.select(
                &q,
                &m,
                MaxMode::QmaxArray,
                i % 4,
                &mut rng,
            );
        }
        prop_assert_eq!(rng.drawn(), 16);
    }
}

#[test]
fn lfsr_driven_and_scripted_rng_agree_on_contract() {
    // The Environment::random_start contract holds for any RngSource.
    let mut rng = Lfsr32::new(3);
    let g = GridWorld::random(8, 8, 10, ActionSet::Four, &mut rng);
    let mut scripted = qtaccel_hdl::rng::ScriptedRng::new(vec![0, 1 << 28, 1 << 30, u32::MAX]);
    for _ in 0..8 {
        let s = g.random_start(&mut scripted);
        assert!(g.is_valid_state(s) && !g.is_terminal(s));
    }
    let _ = scripted.next_u32();
}
