//! Dense reward-table precomputation — the reward BRAM's initial contents.
//!
//! §IV-B resource (i): the accelerator stores "the Q values and reward
//! values for all state-action pairs" in two `|S|·|A|`-sized BRAM tables.
//! [`RewardTable`] materializes an [`crate::Environment`]'s reward function
//! into that dense layout, quantized to the datapath format — the software
//! equivalent of the memory-initialization file the synthesis flow loads.

use crate::env::{sa_index, Environment};
use qtaccel_fixed::QValue;

/// A dense `|S|·|A|` reward table in datapath format `V`.
#[derive(Debug, Clone)]
pub struct RewardTable<V> {
    values: Vec<V>,
    num_actions: usize,
}

impl<V: QValue> RewardTable<V> {
    /// Materialize the environment's reward function.
    pub fn from_env<E: Environment>(env: &E) -> Self {
        let (s, a) = (env.num_states(), env.num_actions());
        let mut values = Vec::with_capacity(s * a);
        for state in 0..s as u32 {
            for action in 0..a as u32 {
                values.push(V::from_f64(env.reward(state, action)));
            }
        }
        Self {
            values,
            num_actions: a,
        }
    }

    /// Reward for (s, a).
    #[inline]
    pub fn get(&self, s: u32, a: u32) -> V {
        self.values[sa_index(s, a, self.num_actions)]
    }

    /// Number of entries (`|S|·|A|`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table is empty (it never is for a valid environment).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw table in row-major (state-major) order.
    pub fn as_slice(&self) -> &[V] {
        &self.values
    }

    /// Re-encode every entry in place.
    ///
    /// The quantized-table layer uses this to snap the reward ROM onto the
    /// stored format's grid at enable time, so the reference trainer, the
    /// cycle-accurate pipeline and the packed fast path all read
    /// bit-identical (on-grid) rewards.
    pub fn map_values(&mut self, mut f: impl FnMut(V) -> V) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// Capacity in bits when stored at this format's width.
    pub fn capacity_bits(&self) -> u64 {
        self.values.len() as u64 * V::storage_bits() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridworld::GridWorld;
    use qtaccel_fixed::Q8_8;

    #[test]
    fn table_matches_env() {
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        let t = RewardTable::<f64>::from_env(&g);
        assert_eq!(t.len(), g.num_states() * g.num_actions());
        for s in 0..g.num_states() as u32 {
            for a in 0..g.num_actions() as u32 {
                assert_eq!(t.get(s, a), g.reward(s, a));
            }
        }
    }

    #[test]
    fn fixed_format_quantizes() {
        let g = GridWorld::builder(4, 4)
            .goal(3, 3)
            .step_reward(-0.01)
            .build();
        let t = RewardTable::<Q8_8>::from_env(&g);
        // -0.01 is not representable in Q8.8; nearest is -3/256 ≈ -0.0117
        // or -2/256; either way within half an epsilon.
        let got = t.get(g.state_of(1, 1), 2).to_f64();
        assert!((got - (-0.01)).abs() <= 0.5 / 256.0 + 1e-12, "{got}");
        assert_eq!(t.capacity_bits(), t.len() as u64 * 16);
    }
}
