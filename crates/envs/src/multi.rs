//! Multi-agent environment configurations (§VII-A).
//!
//! The paper's two parallel-pipeline modes need two environment shapes:
//!
//! * **State-sharing learners** (Fig. 8) reuse one environment instance —
//!   both pipelines call the same transition function and share the Q/R
//!   tables through the dual-port BRAM. No wrapper is needed; the shared
//!   accelerator takes one `&Environment`.
//! * **Independent learners** (Fig. 9) each own "a subset of the entire
//!   state space" — e.g. "launching multiple rovers to explore the
//!   geomorphological features of a ground surface, each responsible for
//!   a subset". [`PartitionedGrid`] builds N disjoint grid-world
//!   sub-environments of one large terrain, one per pipeline/BRAM bank.

use crate::gridworld::{ActionSet, GridWorld};
use qtaccel_hdl::rng::RngSource;

/// N disjoint sub-environments tiling one large terrain.
#[derive(Debug, Clone)]
pub struct PartitionedGrid {
    subs: Vec<GridWorld>,
    tiles_x: u32,
    tiles_y: u32,
}

impl PartitionedGrid {
    /// Split a `total_width`×`total_height` terrain into `tiles_x ×
    /// tiles_y` equal tiles, each a self-contained [`GridWorld`] with its
    /// own goal placed by `rng` (and optional random obstacles).
    ///
    /// # Panics
    /// If the terrain does not divide evenly into tiles or a tile would be
    /// smaller than 2×2.
    pub fn new(
        total_width: u32,
        total_height: u32,
        tiles_x: u32,
        tiles_y: u32,
        obstacle_pct: u32,
        actions: ActionSet,
        rng: &mut dyn RngSource,
    ) -> Self {
        assert!(tiles_x >= 1 && tiles_y >= 1);
        assert_eq!(total_width % tiles_x, 0, "width must divide into tiles");
        assert_eq!(total_height % tiles_y, 0, "height must divide into tiles");
        let w = total_width / tiles_x;
        let h = total_height / tiles_y;
        assert!(w >= 2 && h >= 2, "tiles must be at least 2x2");
        let subs = (0..tiles_x * tiles_y)
            .map(|_| GridWorld::random(w, h, obstacle_pct, actions, rng))
            .collect();
        Self {
            subs,
            tiles_x,
            tiles_y,
        }
    }

    /// Number of sub-environments (= pipelines = BRAM banks).
    pub fn num_partitions(&self) -> usize {
        self.subs.len()
    }

    /// The sub-environment for pipeline `i`.
    pub fn partition(&self, i: usize) -> &GridWorld {
        &self.subs[i]
    }

    /// All sub-environments.
    pub fn partitions(&self) -> &[GridWorld] {
        &self.subs
    }

    /// Iterate the sub-environments in pipeline order — the shard order
    /// the scale-out executor assigns banks in, so zipping this with a
    /// shard report lines indices up by construction.
    pub fn iter(&self) -> core::slice::Iter<'_, GridWorld> {
        self.subs.iter()
    }

    /// Total states across every partition (the terrain's full state
    /// space — what an aggregate samples/sec figure is normalized by).
    pub fn total_states(&self) -> usize {
        use crate::env::Environment;
        self.subs.iter().map(|g| g.num_states()).sum()
    }

    /// Tiling shape `(tiles_x, tiles_y)`.
    pub fn shape(&self) -> (u32, u32) {
        (self.tiles_x, self.tiles_y)
    }
}

impl<'a> IntoIterator for &'a PartitionedGrid {
    type Item = &'a GridWorld;
    type IntoIter = core::slice::Iter<'a, GridWorld>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Environment;
    use qtaccel_hdl::lfsr::Lfsr32;

    #[test]
    fn partitions_tile_the_terrain() {
        let mut rng = Lfsr32::new(3);
        let p = PartitionedGrid::new(16, 16, 4, 2, 10, ActionSet::Four, &mut rng);
        assert_eq!(p.num_partitions(), 8);
        assert_eq!(p.shape(), (4, 2));
        for i in 0..8 {
            let sub = p.partition(i);
            assert_eq!(sub.width(), 4);
            assert_eq!(sub.height(), 8);
            assert!(sub.num_states() >= 32);
        }
    }

    #[test]
    fn partitions_are_independent_worlds() {
        let mut rng = Lfsr32::new(5);
        let p = PartitionedGrid::new(8, 8, 2, 2, 0, ActionSet::Four, &mut rng);
        // With different RNG draws, goals generally differ across tiles.
        let goals: Vec<_> = p.partitions().iter().map(|g| g.goal_state()).collect();
        assert_eq!(goals.len(), 4);
    }

    #[test]
    fn iteration_matches_pipeline_order() {
        let mut rng = Lfsr32::new(7);
        let p = PartitionedGrid::new(16, 16, 2, 2, 10, ActionSet::Four, &mut rng);
        let by_iter: Vec<_> = p.iter().map(|g| g.goal_state()).collect();
        let by_index: Vec<_> = (0..p.num_partitions())
            .map(|i| p.partition(i).goal_state())
            .collect();
        assert_eq!(by_iter, by_index, "iter() must follow bank order");
        let by_for: Vec<_> = (&p).into_iter().map(|g| g.goal_state()).collect();
        assert_eq!(by_for, by_index);
        assert_eq!(p.total_states(), 16 * 16, "tiles cover the terrain");
    }

    #[test]
    #[should_panic(expected = "divide into tiles")]
    fn uneven_tiling_rejected() {
        let mut rng = Lfsr32::new(1);
        PartitionedGrid::new(10, 8, 4, 2, 0, ActionSet::Four, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn too_small_tiles_rejected() {
        let mut rng = Lfsr32::new(1);
        PartitionedGrid::new(4, 4, 4, 4, 0, ActionSet::Four, &mut rng);
    }
}
