#![deny(missing_docs)]

//! Environments and transition functions for the QTAccel suite.
//!
//! In the QTAccel architecture the environment appears as two hardware
//! artifacts (§IV-B): a **transition function** module ("acts as a black
//! box … takes as input the current state Sₜ and an action Aₜ, and outputs
//! the new state Sₜ₊₁") implemented as combinational logic, and a **reward
//! table** in BRAM addressed by state-action pair. The [`Environment`]
//! trait captures exactly that contract: deterministic
//! `transition(s, a) → s'` and tabular `reward(s, a)`.
//!
//! Provided environments:
//!
//! * [`GridWorld`] — the paper's evaluation workload (§VI-A): a robot on a
//!   grid of cells with obstacles and a goal, states encoded as packed
//!   (x, y) coordinate bits, 4- or 8-action move sets with the paper's
//!   exact binary encodings.
//! * [`CliffWalk`] — the classic cliff-walking task, used by the examples
//!   to show the on-policy (SARSA) vs off-policy (Q-Learning) behavioural
//!   difference.
//! * [`bandit::GaussianBandit`] — M-armed bandit with normally distributed
//!   rewards, the §VII-B Multi-Armed Bandit workload.
//! * [`multi::PartitionedGrid`] — N disjoint sub-environments for the
//!   independent-learners configuration (Fig. 9).

pub mod bandit;
pub mod cliff;
pub mod env;
pub mod gridworld;
pub mod multi;
pub mod reward_table;

pub use bandit::{ArmChain, GaussianBandit, StatefulBandit};
pub use cliff::CliffWalk;
pub use env::{sa_index, Action, Environment, State};
pub use gridworld::{ActionSet, GridWorld, GridWorldBuilder};
pub use multi::PartitionedGrid;
pub use reward_table::RewardTable;
