//! The grid-world robotics environment of §VI-A.
//!
//! "The environment is a grid of cells and the agent is the robot which
//! starts at one of the cells and its aim is to reach a goal cell while
//! avoiding obstacles (unreachable cells) and walls. Under this setting,
//! the states represent the cells and the actions represent the moves of
//! the robot."
//!
//! State encoding follows §VI-B exactly: the state address packs the x
//! coordinate in the most significant bits and the y coordinate in the
//! least significant bits ("when there are 256 total possible states, the
//! address of the state is an 8-bit binary value where the most
//! significant 4 bits represents the x-coordinate and the least
//! significant 4 bits represent the y-coordinate"). For non-power-of-two
//! grid dimensions the packed address space is larger than the cell count;
//! the filler addresses exist in the Q-table (as they would in the BRAM)
//! but are never visited.

use crate::env::{Action, Environment, State};
use qtaccel_hdl::rng::RngSource;
use std::collections::HashSet;
use std::collections::VecDeque;

/// Which move set the robot has (§VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActionSet {
    /// 4 actions: `00` left, `01` up, `10` right, `11` down.
    #[default]
    Four,
    /// 8 actions, 3-bit encoding clockwise from left: `000` left, `001`
    /// top-left, `010` up, `011` top-right, `100` right, `101`
    /// bottom-right, `110` down, `111` bottom-left.
    Eight,
}

impl ActionSet {
    /// Number of actions in the set.
    pub fn len(&self) -> usize {
        match self {
            ActionSet::Four => 4,
            ActionSet::Eight => 8,
        }
    }

    /// Always false — both sets are non-empty (clippy convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// (dx, dy) displacement for an action. `y` grows downward, so "up"
    /// is `dy = -1`.
    pub fn delta(&self, a: Action) -> (i64, i64) {
        match self {
            ActionSet::Four => match a {
                0 => (-1, 0), // left
                1 => (0, -1), // up
                2 => (1, 0),  // right
                3 => (0, 1),  // down
                _ => panic!("action {a} out of range for 4-action set"),
            },
            ActionSet::Eight => match a {
                0 => (-1, 0),  // left
                1 => (-1, -1), // top-left
                2 => (0, -1),  // up
                3 => (1, -1),  // top-right
                4 => (1, 0),   // right
                5 => (1, 1),   // bottom-right
                6 => (0, 1),   // down
                7 => (-1, 1),  // bottom-left
                _ => panic!("action {a} out of range for 8-action set"),
            },
        }
    }

    /// A glyph per action, for policy rendering.
    pub fn glyph(&self, a: Action) -> char {
        match self {
            ActionSet::Four => ['<', '^', '>', 'v'][a as usize],
            ActionSet::Eight => ['<', '\\', '^', '/', '>', '\\', 'v', '/'][a as usize],
        }
    }
}

/// Builder for [`GridWorld`]; see [`GridWorld::builder`].
#[derive(Debug, Clone)]
pub struct GridWorldBuilder {
    width: u32,
    height: u32,
    goal: Option<(u32, u32)>,
    obstacles: HashSet<(u32, u32)>,
    actions: ActionSet,
    goal_reward: f64,
    wall_penalty: f64,
    step_reward: f64,
}

impl GridWorldBuilder {
    /// Place the goal cell. Exactly one goal is required.
    pub fn goal(mut self, x: u32, y: u32) -> Self {
        self.goal = Some((x, y));
        self
    }

    /// Mark a cell as an obstacle (unreachable cell the robot bounces off).
    pub fn obstacle(mut self, x: u32, y: u32) -> Self {
        self.obstacles.insert((x, y));
        self
    }

    /// Mark many obstacle cells at once.
    pub fn obstacles<I: IntoIterator<Item = (u32, u32)>>(mut self, cells: I) -> Self {
        self.obstacles.extend(cells);
        self
    }

    /// Choose the move set (default: four actions).
    pub fn actions(mut self, set: ActionSet) -> Self {
        self.actions = set;
        self
    }

    /// Reward for a move that reaches the goal (default `+1.0`; the paper's
    /// example table uses `+255`, which needs a wide datapath format).
    pub fn goal_reward(mut self, r: f64) -> Self {
        self.goal_reward = r;
        self
    }

    /// Reward (typically negative) for a move blocked by a wall or
    /// obstacle (default `-1.0`).
    pub fn wall_penalty(mut self, r: f64) -> Self {
        self.wall_penalty = r;
        self
    }

    /// Reward for an ordinary move (default `0.0`, matching the paper's
    /// reward table, where only the goal and wall/obstacle hits carry
    /// reward — the discount factor γ already prefers shorter paths).
    ///
    /// Note for hardware-mode training (`MaxMode::QmaxArray`): the Qmax
    /// array is zero-initialized and only ever *increases*, so a reward
    /// scheme in which optimal Q-values are negative (e.g. a per-step
    /// cost with no positive goal reward reachable) leaves the greedy
    /// action selector stuck at action 0 forever. The paper's convention
    /// (positive goal reward, zero step cost) avoids this; keep it unless
    /// you also switch to `MaxMode::ExactScan`.
    pub fn step_reward(mut self, r: f64) -> Self {
        self.step_reward = r;
        self
    }

    /// Validate and construct the environment.
    ///
    /// # Panics
    /// If dimensions are < 2, the goal is missing/out of bounds/on an
    /// obstacle, or an obstacle is out of bounds.
    pub fn build(self) -> GridWorld {
        assert!(
            self.width >= 2 && self.height >= 2,
            "grid must be at least 2x2"
        );
        let goal = self.goal.expect("grid world needs a goal cell");
        assert!(
            goal.0 < self.width && goal.1 < self.height,
            "goal {goal:?} outside {}x{} grid",
            self.width,
            self.height
        );
        assert!(
            !self.obstacles.contains(&goal),
            "goal cell cannot be an obstacle"
        );
        for &(x, y) in &self.obstacles {
            assert!(
                x < self.width && y < self.height,
                "obstacle ({x},{y}) outside grid"
            );
        }
        let xbits = bits_for(self.width);
        let ybits = bits_for(self.height);
        let num_states = 1usize << (xbits + ybits);
        let mut obstacle_mask = vec![false; num_states];
        for &(x, y) in &self.obstacles {
            obstacle_mask[((x << ybits) | y) as usize] = true;
        }
        GridWorld {
            width: self.width,
            height: self.height,
            xbits,
            ybits,
            goal_state: (goal.0 << ybits) | goal.1,
            obstacle_mask,
            actions: self.actions,
            goal_reward: self.goal_reward,
            wall_penalty: self.wall_penalty,
            step_reward: self.step_reward,
        }
    }
}

/// Number of address bits for a coordinate in `0..n`.
fn bits_for(n: u32) -> u32 {
    debug_assert!(n >= 2);
    32 - (n - 1).leading_zeros()
}

/// The grid-world environment (see module docs).
#[derive(Debug, Clone)]
pub struct GridWorld {
    width: u32,
    height: u32,
    xbits: u32,
    ybits: u32,
    goal_state: State,
    obstacle_mask: Vec<bool>,
    actions: ActionSet,
    goal_reward: f64,
    wall_penalty: f64,
    step_reward: f64,
}

impl GridWorld {
    /// Start building a `width`×`height` grid.
    pub fn builder(width: u32, height: u32) -> GridWorldBuilder {
        GridWorldBuilder {
            width,
            height,
            goal: None,
            obstacles: HashSet::new(),
            actions: ActionSet::Four,
            goal_reward: 1.0,
            wall_penalty: -1.0,
            step_reward: 0.0,
        }
    }

    /// A random grid with ~`obstacle_pct` percent obstacle cells and the
    /// goal in a free cell, re-drawn until at least half the free cells
    /// can reach the goal. Used heavily by the property tests.
    pub fn random(
        width: u32,
        height: u32,
        obstacle_pct: u32,
        actions: ActionSet,
        rng: &mut dyn RngSource,
    ) -> GridWorld {
        assert!(obstacle_pct < 50, "obstacle density too high to stay solvable");
        loop {
            let mut b = GridWorld::builder(width, height).actions(actions);
            let mut free = Vec::new();
            for x in 0..width {
                for y in 0..height {
                    if rng.below(100) < obstacle_pct {
                        b = b.obstacle(x, y);
                    } else {
                        free.push((x, y));
                    }
                }
            }
            if free.is_empty() {
                continue;
            }
            let (gx, gy) = free[rng.below(free.len() as u32) as usize];
            let world = b.goal(gx, gy).build();
            let reachable = world
                .shortest_distances()
                .iter()
                .filter(|d| d.is_some())
                .count();
            if reachable * 2 >= free.len() {
                return world;
            }
        }
    }

    /// Grid width (cells in x).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height (cells in y).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The move set in use.
    pub fn action_set(&self) -> ActionSet {
        self.actions
    }

    /// The goal cell's packed state.
    pub fn goal_state(&self) -> State {
        self.goal_state
    }

    /// Pack (x, y) into a state address (§VI-B bit layout).
    pub fn state_of(&self, x: u32, y: u32) -> State {
        debug_assert!(x < self.width && y < self.height);
        (x << self.ybits) | y
    }

    /// Unpack a state address into (x, y).
    pub fn xy_of(&self, s: State) -> (u32, u32) {
        (s >> self.ybits, s & ((1 << self.ybits) - 1))
    }

    /// Is the packed address a real cell (inside the geometric grid)?
    pub fn in_grid(&self, s: State) -> bool {
        let (x, y) = self.xy_of(s);
        x < self.width && y < self.height
    }

    /// Is this cell an obstacle?
    pub fn is_obstacle(&self, s: State) -> bool {
        self.obstacle_mask[s as usize]
    }

    /// BFS distance (in moves) from every cell to the goal; `None` for
    /// unreachable cells, obstacles and filler addresses. Gives the
    /// optimal value function's support, used to verify learned policies.
    pub fn shortest_distances(&self) -> Vec<Option<u32>> {
        let n = self.num_states();
        let mut dist = vec![None; n];
        let mut queue = VecDeque::new();
        dist[self.goal_state as usize] = Some(0);
        queue.push_back(self.goal_state);
        while let Some(s) = queue.pop_front() {
            let d = dist[s as usize].unwrap();
            // Predecessors: any valid cell that moves to s in one action.
            for a in 0..self.num_actions() as Action {
                let (dx, dy) = self.actions.delta(a);
                let (x, y) = self.xy_of(s);
                let px = x as i64 - dx;
                let py = y as i64 - dy;
                if px < 0 || py < 0 || px >= self.width as i64 || py >= self.height as i64 {
                    continue;
                }
                let p = self.state_of(px as u32, py as u32);
                if self.is_obstacle(p) || p == self.goal_state {
                    continue;
                }
                if dist[p as usize].is_none() && self.transition(p, a) == s {
                    dist[p as usize] = Some(d + 1);
                    queue.push_back(p);
                }
            }
        }
        dist
    }

    /// Render a greedy policy (one action per state) as an ASCII map:
    /// `G` goal, `#` obstacle, arrows elsewhere.
    pub fn render_policy(&self, policy: &[Action]) -> String {
        assert_eq!(policy.len(), self.num_states(), "policy length mismatch");
        let mut out = String::with_capacity((self.width as usize + 1) * self.height as usize);
        for y in 0..self.height {
            for x in 0..self.width {
                let s = self.state_of(x, y);
                let c = if s == self.goal_state {
                    'G'
                } else if self.is_obstacle(s) {
                    '#'
                } else {
                    self.actions.glyph(policy[s as usize])
                };
                out.push(c);
            }
            out.push('\n');
        }
        out
    }
}

impl Environment for GridWorld {
    fn num_states(&self) -> usize {
        1usize << (self.xbits + self.ybits)
    }

    fn num_actions(&self) -> usize {
        self.actions.len()
    }

    fn transition(&self, s: State, a: Action) -> State {
        // Filler addresses, obstacles and the goal self-loop: the
        // combinational module outputs the unchanged state.
        if !self.in_grid(s) || self.is_obstacle(s) || s == self.goal_state {
            return s;
        }
        let (x, y) = self.xy_of(s);
        let (dx, dy) = self.actions.delta(a);
        let nx = x as i64 + dx;
        let ny = y as i64 + dy;
        if nx < 0 || ny < 0 || nx >= self.width as i64 || ny >= self.height as i64 {
            return s; // wall: bounce
        }
        let t = self.state_of(nx as u32, ny as u32);
        if self.is_obstacle(t) {
            s // obstacle: bounce
        } else {
            t
        }
    }

    fn reward(&self, s: State, a: Action) -> f64 {
        if !self.in_grid(s) || self.is_obstacle(s) || s == self.goal_state {
            return 0.0;
        }
        let t = self.transition(s, a);
        if t == self.goal_state {
            self.goal_reward
        } else if t == s {
            self.wall_penalty
        } else {
            self.step_reward
        }
    }

    fn is_terminal(&self, s: State) -> bool {
        s == self.goal_state
    }

    fn is_valid_state(&self, s: State) -> bool {
        self.in_grid(s) && !self.is_obstacle(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_hdl::lfsr::Lfsr32;

    fn grid4() -> GridWorld {
        GridWorld::builder(4, 4).goal(3, 3).build()
    }

    #[test]
    fn paper_bit_packing() {
        // 16x16 grid => 256 states, x in the top 4 bits.
        let g = GridWorld::builder(16, 16).goal(15, 15).build();
        assert_eq!(g.num_states(), 256);
        assert_eq!(g.state_of(0xA, 0x3), 0xA3);
        assert_eq!(g.xy_of(0xA3), (0xA, 0x3));
    }

    #[test]
    fn non_power_of_two_pads_address_space() {
        let g = GridWorld::builder(12, 4).goal(11, 3).build();
        // 12 columns need 4 bits, 4 rows need 2: 64 packed addresses.
        assert_eq!(g.num_states(), 64);
        assert!(g.in_grid(g.state_of(11, 3)));
        // Address with x = 13 is filler.
        let filler = (13u32 << 2) | 1;
        assert!(!g.in_grid(filler));
        assert!(!g.is_valid_state(filler));
        // Filler self-loops with zero reward.
        assert_eq!(g.transition(filler, 0), filler);
        assert_eq!(g.reward(filler, 0), 0.0);
    }

    #[test]
    fn four_action_encoding_matches_paper() {
        // 00 left, 01 up, 10 right, 11 down.
        let g = grid4();
        let s = g.state_of(1, 1);
        assert_eq!(g.transition(s, 0b00), g.state_of(0, 1));
        assert_eq!(g.transition(s, 0b01), g.state_of(1, 0));
        assert_eq!(g.transition(s, 0b10), g.state_of(2, 1));
        assert_eq!(g.transition(s, 0b11), g.state_of(1, 2));
    }

    #[test]
    fn eight_action_encoding_matches_paper() {
        // 000 left, 001 top-left, 010 up, 011 top-right, clockwise.
        let g = GridWorld::builder(4, 4)
            .goal(3, 3)
            .actions(ActionSet::Eight)
            .build();
        let s = g.state_of(1, 1);
        assert_eq!(g.transition(s, 0b000), g.state_of(0, 1));
        assert_eq!(g.transition(s, 0b001), g.state_of(0, 0));
        assert_eq!(g.transition(s, 0b010), g.state_of(1, 0));
        assert_eq!(g.transition(s, 0b011), g.state_of(2, 0));
        assert_eq!(g.transition(s, 0b100), g.state_of(2, 1));
        assert_eq!(g.transition(s, 0b101), g.state_of(2, 2));
        assert_eq!(g.transition(s, 0b110), g.state_of(1, 2));
        assert_eq!(g.transition(s, 0b111), g.state_of(0, 2));
    }

    #[test]
    fn walls_bounce() {
        let g = grid4();
        let corner = g.state_of(0, 0);
        assert_eq!(g.transition(corner, 0), corner, "left off grid");
        assert_eq!(g.transition(corner, 1), corner, "up off grid");
        assert_eq!(g.reward(corner, 0), -1.0, "wall penalty");
    }

    #[test]
    fn obstacles_bounce_and_are_invalid() {
        let g = GridWorld::builder(4, 4).goal(3, 3).obstacle(1, 0).build();
        let s = g.state_of(0, 0);
        let obst = g.state_of(1, 0);
        assert_eq!(g.transition(s, 2), s, "move into obstacle bounces");
        assert_eq!(g.reward(s, 2), -1.0);
        assert!(!g.is_valid_state(obst));
        assert_eq!(g.transition(obst, 2), obst, "obstacle self-loops");
    }

    #[test]
    fn goal_reward_and_terminal() {
        let g = grid4();
        let before = g.state_of(2, 3);
        assert_eq!(g.transition(before, 2), g.goal_state());
        assert_eq!(g.reward(before, 2), 1.0);
        assert!(g.is_terminal(g.goal_state()));
        assert!(!g.is_terminal(before));
        // Goal self-loops with zero reward (episode would restart).
        assert_eq!(g.transition(g.goal_state(), 0), g.goal_state());
        assert_eq!(g.reward(g.goal_state(), 0), 0.0);
    }

    #[test]
    fn custom_rewards() {
        let g = GridWorld::builder(4, 4)
            .goal(3, 3)
            .goal_reward(255.0)
            .wall_penalty(-255.0)
            .step_reward(0.0)
            .build();
        assert_eq!(g.reward(g.state_of(2, 3), 2), 255.0);
        assert_eq!(g.reward(g.state_of(0, 0), 0), -255.0);
        assert_eq!(g.reward(g.state_of(1, 1), 0), 0.0);
    }

    #[test]
    fn shortest_distances_bfs() {
        let g = grid4();
        let d = g.shortest_distances();
        assert_eq!(d[g.goal_state() as usize], Some(0));
        // Manhattan distance on an open 4-action grid.
        assert_eq!(d[g.state_of(0, 0) as usize], Some(6));
        assert_eq!(d[g.state_of(3, 2) as usize], Some(1));
    }

    #[test]
    fn shortest_distances_respect_obstacles() {
        // Wall across the middle with one gap at y = 0.
        let g = GridWorld::builder(4, 4)
            .goal(3, 3)
            .obstacles([(2, 1), (2, 2), (2, 3)])
            .build();
        let d = g.shortest_distances();
        // From (0,3) the path must detour via the top row.
        assert_eq!(d[g.state_of(0, 3) as usize], Some(9));
        assert_eq!(d[g.state_of(2, 2) as usize], None, "obstacle unreachable");
    }

    #[test]
    fn diagonal_moves_shorten_paths() {
        let g = GridWorld::builder(4, 4)
            .goal(3, 3)
            .actions(ActionSet::Eight)
            .build();
        let d = g.shortest_distances();
        assert_eq!(d[g.state_of(0, 0) as usize], Some(3), "diagonal run");
    }

    #[test]
    fn render_policy_shape() {
        let g = GridWorld::builder(4, 4).goal(3, 3).obstacle(1, 1).build();
        let policy = vec![2; g.num_states()];
        let map = g.render_policy(&policy);
        assert_eq!(map.lines().count(), 4);
        assert!(map.contains('G'));
        assert!(map.contains('#'));
        assert!(map.contains('>'));
    }

    #[test]
    fn random_grid_is_solvable() {
        let mut rng = Lfsr32::new(17);
        let g = GridWorld::random(8, 8, 20, ActionSet::Four, &mut rng);
        let reachable = g.shortest_distances().iter().flatten().count();
        assert!(reachable > 16, "reachable cells: {reachable}");
    }

    #[test]
    #[should_panic(expected = "needs a goal")]
    fn builder_requires_goal() {
        GridWorld::builder(4, 4).build();
    }

    #[test]
    #[should_panic(expected = "cannot be an obstacle")]
    fn builder_rejects_goal_on_obstacle() {
        GridWorld::builder(4, 4).goal(1, 1).obstacle(1, 1).build();
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn builder_rejects_out_of_bounds_goal() {
        GridWorld::builder(4, 4).goal(9, 9).build();
    }
}
