//! The cliff-walking task (Sutton & Barto, Example 6.6).
//!
//! Not part of the paper's evaluation, but the canonical scenario in which
//! the two algorithms QTAccel implements — off-policy Q-Learning and
//! on-policy SARSA — learn *different* policies: Q-Learning hugs the cliff
//! edge (optimal but risky under ε-greedy execution), SARSA detours around
//! it. The `sarsa_cliff` example uses this environment to demonstrate that
//! the accelerator engines reproduce the classical behaviour.

use crate::env::{Action, Environment, State};
use qtaccel_hdl::rng::RngSource;

/// A `width`×`height` grid with a cliff along the bottom row between the
/// start (bottom-left) and the goal (bottom-right).
///
/// Stepping into the cliff teleports the agent back to the start with a
/// large negative reward. States use the same packed (x, y) encoding as
/// [`crate::GridWorld`]; actions use the paper's 4-action encoding.
#[derive(Debug, Clone)]
pub struct CliffWalk {
    width: u32,
    height: u32,
    xbits: u32,
    ybits: u32,
    cliff_penalty: f64,
    step_reward: f64,
}

impl CliffWalk {
    /// The standard 12×4 cliff walk.
    pub fn standard() -> Self {
        Self::new(12, 4)
    }

    /// A `width`×`height` cliff walk (`width ≥ 3`, `height ≥ 2`).
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width >= 3, "cliff walk needs at least 3 columns");
        assert!(height >= 2, "cliff walk needs at least 2 rows");
        let xbits = 32 - (width - 1).leading_zeros();
        let ybits = 32 - (height - 1).leading_zeros();
        Self {
            width,
            height,
            xbits,
            ybits,
            cliff_penalty: -100.0,
            step_reward: -1.0,
        }
    }

    /// Override the cliff penalty (default −100).
    pub fn with_cliff_penalty(mut self, r: f64) -> Self {
        self.cliff_penalty = r;
        self
    }

    /// Pack (x, y).
    pub fn state_of(&self, x: u32, y: u32) -> State {
        (x << self.ybits) | y
    }

    /// Unpack.
    pub fn xy_of(&self, s: State) -> (u32, u32) {
        (s >> self.ybits, s & ((1 << self.ybits) - 1))
    }

    /// The fixed start cell (bottom-left).
    pub fn start_state(&self) -> State {
        self.state_of(0, self.height - 1)
    }

    /// The goal cell (bottom-right).
    pub fn goal_state(&self) -> State {
        self.state_of(self.width - 1, self.height - 1)
    }

    /// Is this cell part of the cliff?
    pub fn is_cliff(&self, s: State) -> bool {
        let (x, y) = self.xy_of(s);
        y == self.height - 1 && x > 0 && x < self.width - 1
    }

    fn in_grid(&self, s: State) -> bool {
        let (x, y) = self.xy_of(s);
        x < self.width && y < self.height
    }

    /// Does a greedy rollout of `policy` from the start reach the goal,
    /// and if so along which cells? Used to compare QL/SARSA paths.
    pub fn rollout(&self, policy: &[Action], max_steps: usize) -> Option<Vec<State>> {
        let mut s = self.start_state();
        let mut path = vec![s];
        for _ in 0..max_steps {
            s = self.transition(s, policy[s as usize]);
            path.push(s);
            if s == self.goal_state() {
                return Some(path);
            }
            if s == self.start_state() && path.len() > 1 {
                return None; // fell off the cliff
            }
        }
        None
    }
}

impl Environment for CliffWalk {
    fn num_states(&self) -> usize {
        1usize << (self.xbits + self.ybits)
    }

    fn num_actions(&self) -> usize {
        4
    }

    fn transition(&self, s: State, a: Action) -> State {
        if !self.in_grid(s) || self.is_cliff(s) || s == self.goal_state() {
            return s;
        }
        let (x, y) = self.xy_of(s);
        let (dx, dy) = match a {
            0 => (-1i64, 0i64), // left
            1 => (0, -1),       // up
            2 => (1, 0),        // right
            3 => (0, 1),        // down
            _ => panic!("action {a} out of range"),
        };
        let nx = x as i64 + dx;
        let ny = y as i64 + dy;
        if nx < 0 || ny < 0 || nx >= self.width as i64 || ny >= self.height as i64 {
            return s;
        }
        let t = self.state_of(nx as u32, ny as u32);
        if self.is_cliff(t) {
            self.start_state() // fall: teleport to start
        } else {
            t
        }
    }

    fn reward(&self, s: State, a: Action) -> f64 {
        if !self.in_grid(s) || self.is_cliff(s) || s == self.goal_state() {
            return 0.0;
        }
        let (x, y) = self.xy_of(s);
        let (dx, dy) = match a {
            0 => (-1i64, 0i64),
            1 => (0, -1),
            2 => (1, 0),
            3 => (0, 1),
            _ => panic!("action {a} out of range"),
        };
        let nx = x as i64 + dx;
        let ny = y as i64 + dy;
        if nx >= 0 && ny >= 0 && nx < self.width as i64 && ny < self.height as i64 {
            let t = self.state_of(nx as u32, ny as u32);
            if self.is_cliff(t) {
                return self.cliff_penalty;
            }
        }
        self.step_reward
    }

    fn is_terminal(&self, s: State) -> bool {
        s == self.goal_state()
    }

    fn is_valid_state(&self, s: State) -> bool {
        self.in_grid(s) && !self.is_cliff(s)
    }

    /// Episodes always restart at the fixed start cell — the defining
    /// feature of the cliff-walk task.
    fn random_start(&self, _rng: &mut dyn RngSource) -> State {
        self.start_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_hdl::lfsr::Lfsr32;

    #[test]
    fn geometry() {
        let c = CliffWalk::standard();
        assert_eq!(c.num_states(), 64); // 4 xbits + 2 ybits
        assert_eq!(c.start_state(), c.state_of(0, 3));
        assert_eq!(c.goal_state(), c.state_of(11, 3));
        assert!(c.is_cliff(c.state_of(5, 3)));
        assert!(!c.is_cliff(c.start_state()));
        assert!(!c.is_cliff(c.goal_state()));
        assert!(!c.is_cliff(c.state_of(5, 2)));
    }

    #[test]
    fn falling_teleports_to_start_with_penalty() {
        let c = CliffWalk::standard();
        let above_cliff = c.state_of(5, 2);
        assert_eq!(c.transition(above_cliff, 3), c.start_state());
        assert_eq!(c.reward(above_cliff, 3), -100.0);
        // Stepping right from start goes straight into the cliff.
        assert_eq!(c.transition(c.start_state(), 2), c.start_state());
        assert_eq!(c.reward(c.start_state(), 2), -100.0);
    }

    #[test]
    fn ordinary_moves_cost_one() {
        let c = CliffWalk::standard();
        let s = c.state_of(3, 1);
        assert_eq!(c.transition(s, 2), c.state_of(4, 1));
        assert_eq!(c.reward(s, 2), -1.0);
    }

    #[test]
    fn goal_is_terminal_and_absorbing() {
        let c = CliffWalk::standard();
        assert!(c.is_terminal(c.goal_state()));
        assert_eq!(c.transition(c.goal_state(), 1), c.goal_state());
    }

    #[test]
    fn fixed_start() {
        let c = CliffWalk::standard();
        let mut rng = Lfsr32::new(1);
        for _ in 0..10 {
            assert_eq!(c.random_start(&mut rng), c.start_state());
        }
    }

    #[test]
    fn edge_path_reaches_goal() {
        // The optimal (risky) policy: up from start, right along row 2,
        // then down into the goal.
        let c = CliffWalk::standard();
        let mut policy = vec![2u32; c.num_states()];
        policy[c.start_state() as usize] = 1; // up
        policy[c.state_of(11, 2) as usize] = 3; // down into goal
        let path = c.rollout(&policy, 20).expect("edge path must succeed");
        assert_eq!(path.len(), 14); // 1 up + 11 right + 1 down, +1 for start
    }

    #[test]
    fn rollout_detects_falls() {
        let c = CliffWalk::standard();
        // Everyone marches right: first move falls into the cliff.
        let policy = vec![2u32; c.num_states()];
        assert!(c.rollout(&policy, 50).is_none());
    }
}
