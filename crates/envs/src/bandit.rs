//! Multi-armed bandit workloads (§VII-B).
//!
//! "In MAB, the agent chooses one out of M arms where each arm is
//! associated with its own state Sₘ at time t and instantaneous reward
//! qₘ,ₜ which is obtained using some probability distribution (usually
//! normal distribution)."
//!
//! [`GaussianBandit`] is the stateless variant: no state, M arms, rewards
//! drawn from per-arm normal distributions via the hardware-style
//! Irwin–Hall sampler ([`qtaccel_hdl::NormalLfsr`]). It is deliberately
//! *not* an [`crate::Environment`]: rewards are stochastic, so the
//! reward-table contract does not apply — instead the bandit engine
//! replaces the reward table read with a sampler (exactly the change the
//! paper describes: "we can adapt our design to accelerate MAB with only
//! changes to the rewards table in the first stage").

use qtaccel_hdl::lfsr::NormalLfsr;

/// One arm's reward distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arm {
    /// Mean reward.
    pub mean: f64,
    /// Reward standard deviation.
    pub std: f64,
}

/// An M-armed bandit with Gaussian rewards.
#[derive(Debug, Clone)]
pub struct GaussianBandit {
    arms: Vec<Arm>,
    sampler: NormalLfsr,
}

impl GaussianBandit {
    /// Bandit with the given arms, rewards sampled by an Irwin–Hall
    /// normal sampler seeded with `seed`.
    pub fn new(arms: Vec<Arm>, seed: u32) -> Self {
        assert!(!arms.is_empty(), "bandit needs at least one arm");
        for (i, arm) in arms.iter().enumerate() {
            assert!(arm.std >= 0.0, "arm {i} has negative std");
        }
        Self {
            arms,
            sampler: NormalLfsr::new(seed),
        }
    }

    /// Convenience: `m` arms with means `0, 1/m, 2/m, …` and unit-free
    /// std `std` — a standard synthetic benchmark configuration.
    pub fn linear_means(m: usize, std: f64, seed: u32) -> Self {
        assert!(m >= 2, "need at least two arms");
        let arms = (0..m)
            .map(|i| Arm {
                mean: i as f64 / m as f64,
                std,
            })
            .collect();
        Self::new(arms, seed)
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.arms.len()
    }

    /// The arm descriptors.
    pub fn arms(&self) -> &[Arm] {
        &self.arms
    }

    /// Draw one reward for pulling `arm`.
    pub fn pull(&mut self, arm: usize) -> f64 {
        let a = self.arms[arm];
        self.sampler.sample(a.mean, a.std)
    }

    /// Index of the arm with the highest mean (ties: lowest index).
    pub fn optimal_arm(&self) -> usize {
        let mut best = 0;
        for (i, arm) in self.arms.iter().enumerate() {
            if arm.mean > self.arms[best].mean {
                best = i;
            }
        }
        best
    }

    /// Highest mean reward.
    pub fn optimal_mean(&self) -> f64 {
        self.arms[self.optimal_arm()].mean
    }

    /// Expected per-step regret of pulling `arm`.
    pub fn gap(&self, arm: usize) -> f64 {
        self.optimal_mean() - self.arms[arm].mean
    }
}

/// One arm of a stateful bandit: a small cyclic Markov chain whose state
/// determines the reward mean (§VII-B: "For Stateful Bandits, the state
/// space can be represented by concatenation of the states of individual
/// arms").
///
/// This is a *rested* bandit: an arm's chain advances only when the arm
/// is pulled (with probability `advance_prob`, cyclically).
#[derive(Debug, Clone, PartialEq)]
pub struct ArmChain {
    /// Reward mean per chain state (the chain has `means.len()` states).
    pub means: Vec<f64>,
    /// Reward standard deviation (shared across states).
    pub std: f64,
    /// Probability the chain advances to the next state on a pull.
    pub advance_prob: f64,
}

/// An M-armed *stateful* bandit over the concatenated arm-state space.
///
/// The global state is the mixed-radix encoding of all arm states, so
/// with the paper's "very small (≈5)" arm counts and a few states per
/// arm the Q-table stays tractable ("the size of the resulting table
/// will still be tractable").
#[derive(Debug, Clone)]
pub struct StatefulBandit {
    arms: Vec<ArmChain>,
    state: Vec<usize>,
    sampler: NormalLfsr,
    chain_rng: qtaccel_hdl::lfsr::Lfsr32,
    restless: bool,
}

impl StatefulBandit {
    /// Build from arm chains; `seed` drives both the reward sampler and
    /// the chain transitions.
    pub fn new(arms: Vec<ArmChain>, seed: u32) -> Self {
        assert!(!arms.is_empty(), "bandit needs at least one arm");
        for (i, arm) in arms.iter().enumerate() {
            assert!(!arm.means.is_empty(), "arm {i} needs at least one state");
            assert!(arm.std >= 0.0, "arm {i} has negative std");
            assert!(
                (0.0..=1.0).contains(&arm.advance_prob),
                "arm {i} advance probability out of range"
            );
        }
        let state = vec![0; arms.len()];
        Self {
            arms,
            state,
            sampler: NormalLfsr::new(seed),
            chain_rng: qtaccel_hdl::lfsr::Lfsr32::new(seed.wrapping_mul(2654435761).max(1)),
            restless: false,
        }
    }

    /// Switch to *restless* dynamics: every arm's chain advances (with
    /// its own probability) on every round, pulled or not — the §VII-B
    /// reading where "each arm is associated with its own state Sₘ at
    /// time t". Rested dynamics (the default) only advance the pulled
    /// arm; note that under rested cyclic chains a constant-arm policy
    /// already collects each chain's mean reward, so state-awareness
    /// only pays off under restless dynamics — which is what the
    /// `stateful_engine_beats_the_stateless_view` integration test
    /// demonstrates.
    pub fn restless(mut self) -> Self {
        self.restless = true;
        self
    }

    /// Number of arms (= actions).
    pub fn num_arms(&self) -> usize {
        self.arms.len()
    }

    /// Size of the concatenated state space (`Π` per-arm chain lengths).
    pub fn num_global_states(&self) -> usize {
        self.arms.iter().map(|a| a.means.len()).product()
    }

    /// Mixed-radix encoding of the current arm states.
    pub fn global_state(&self) -> u32 {
        let mut g = 0usize;
        for (arm, &s) in self.arms.iter().zip(&self.state) {
            g = g * arm.means.len() + s;
        }
        g as u32
    }

    /// Decode a global state into per-arm states.
    pub fn decode(&self, mut g: u32) -> Vec<usize> {
        let mut out = vec![0usize; self.arms.len()];
        for (i, arm) in self.arms.iter().enumerate().rev() {
            let k = arm.means.len() as u32;
            out[i] = (g % k) as usize;
            g /= k;
        }
        out
    }

    /// Expected reward of pulling `arm` in global state `g`.
    pub fn expected_reward(&self, g: u32, arm: usize) -> f64 {
        let states = self.decode(g);
        self.arms[arm].means[states[arm]]
    }

    /// The myopically optimal arm in global state `g` (highest current
    /// mean; ties to the lowest index).
    pub fn optimal_arm(&self, g: u32) -> usize {
        let states = self.decode(g);
        let mut best = 0;
        for i in 1..self.arms.len() {
            if self.arms[i].means[states[i]] > self.arms[best].means[states[best]] {
                best = i;
            }
        }
        best
    }

    /// Pull `arm`: sample its reward from the current chain state, then
    /// advance the pulled arm's chain (rested) or every chain
    /// (restless). Returns (reward, new global state).
    pub fn pull(&mut self, arm: usize) -> (f64, u32) {
        use qtaccel_hdl::rng::RngSource;
        let a = &self.arms[arm];
        let reward = self.sampler.sample(a.means[self.state[arm]], a.std);
        for i in 0..self.arms.len() {
            if i != arm && !self.restless {
                continue;
            }
            let thr = qtaccel_hdl::rng::epsilon_to_q32(self.arms[i].advance_prob);
            if self.chain_rng.explore(thr) {
                self.state[i] = (self.state[i] + 1) % self.arms[i].means.len();
            }
        }
        (reward, self.global_state())
    }

    /// Reset every chain to state 0.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|s| *s = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_statistics_match_arm() {
        let mut b = GaussianBandit::new(
            vec![
                Arm { mean: 0.0, std: 1.0 },
                Arm { mean: 5.0, std: 0.5 },
            ],
            42,
        );
        let n = 50_000;
        let mean1: f64 = (0..n).map(|_| b.pull(1)).sum::<f64>() / n as f64;
        assert!((mean1 - 5.0).abs() < 0.02, "mean {mean1}");
        let mean0: f64 = (0..n).map(|_| b.pull(0)).sum::<f64>() / n as f64;
        assert!(mean0.abs() < 0.02, "mean {mean0}");
    }

    #[test]
    fn zero_std_is_deterministic() {
        let mut b = GaussianBandit::new(vec![Arm { mean: 2.0, std: 0.0 }], 7);
        for _ in 0..10 {
            assert_eq!(b.pull(0), 2.0);
        }
    }

    #[test]
    fn optimal_arm_and_gap() {
        let b = GaussianBandit::linear_means(5, 0.1, 1);
        assert_eq!(b.num_arms(), 5);
        assert_eq!(b.optimal_arm(), 4);
        assert!((b.optimal_mean() - 0.8).abs() < 1e-12);
        assert!((b.gap(0) - 0.8).abs() < 1e-12);
        assert_eq!(b.gap(4), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = GaussianBandit::linear_means(3, 1.0, 9);
        let mut b = GaussianBandit::linear_means(3, 1.0, 9);
        for arm in [0usize, 1, 2, 1, 0] {
            assert_eq!(a.pull(arm), b.pull(arm));
        }
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_bandit_rejected() {
        GaussianBandit::new(vec![], 1);
    }

    fn stateful() -> StatefulBandit {
        StatefulBandit::new(
            vec![
                ArmChain {
                    means: vec![0.2, 0.9],
                    std: 0.0,
                    advance_prob: 1.0,
                },
                ArmChain {
                    means: vec![0.5, 0.1, 0.7],
                    std: 0.0,
                    advance_prob: 1.0,
                },
            ],
            7,
        )
    }

    #[test]
    fn stateful_global_state_roundtrip() {
        let b = stateful();
        assert_eq!(b.num_global_states(), 6);
        assert_eq!(b.global_state(), 0);
        for g in 0..6u32 {
            let states = b.decode(g);
            // Re-encode by hand.
            let enc = states[0] as u32 * 3 + states[1] as u32;
            assert_eq!(enc, g);
        }
    }

    #[test]
    fn stateful_pull_advances_only_the_pulled_arm() {
        let mut b = stateful();
        // Pull arm 0: its chain (length 2) advances deterministically,
        // arm 1 stays at state 0.
        let (r, g) = b.pull(0);
        assert_eq!(r, 0.2, "reward from the pre-pull state");
        assert_eq!(b.decode(g), vec![1, 0]);
        let (r, g) = b.pull(1);
        assert_eq!(r, 0.5);
        assert_eq!(b.decode(g), vec![1, 1]);
    }

    #[test]
    fn stateful_optimal_arm_depends_on_state() {
        let b = stateful();
        // State (0,0): means are (0.2, 0.5) -> arm 1.
        assert_eq!(b.optimal_arm(0), 1);
        // State (1,0): means are (0.9, 0.5) -> arm 0.
        assert_eq!(b.optimal_arm(3), 0);
        assert_eq!(b.expected_reward(3, 0), 0.9);
    }

    #[test]
    fn stateful_reset() {
        let mut b = stateful();
        b.pull(0);
        b.pull(1);
        assert_ne!(b.global_state(), 0);
        b.reset();
        assert_eq!(b.global_state(), 0);
    }

    #[test]
    fn stateful_chain_advance_probability() {
        let mut b = StatefulBandit::new(
            vec![ArmChain {
                means: vec![0.0, 1.0],
                std: 0.0,
                advance_prob: 0.25,
            }],
            99,
        );
        let n = 40_000;
        let mut advances = 0;
        let mut prev = 0u32;
        for _ in 0..n {
            let (_, g) = b.pull(0);
            if g != prev {
                advances += 1;
            }
            prev = g;
        }
        let frac = advances as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "advance fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn stateful_empty_chain_rejected() {
        StatefulBandit::new(
            vec![ArmChain {
                means: vec![],
                std: 0.0,
                advance_prob: 0.5,
            }],
            1,
        );
    }

    #[test]
    #[should_panic(expected = "negative std")]
    fn negative_std_rejected() {
        GaussianBandit::new(vec![Arm { mean: 0.0, std: -1.0 }], 1);
    }
}
