//! The [`Environment`] trait — the hardware's view of the world.

use qtaccel_hdl::rng::RngSource;

/// A state index. States address the Q-table directly, so they are plain
/// integers; structured state (grid coordinates) is packed into the bits,
/// exactly as the paper packs (x, y) into the BRAM address.
pub type State = u32;

/// An action index, `0 .. num_actions`.
pub type Action = u32;

/// Row-major index of a state-action pair in a dense `|S|·|A|` table —
/// the BRAM address computation (`addr = s·|A| + a`, a shift when `|A|`
/// is a power of two).
#[inline]
pub fn sa_index(s: State, a: Action, num_actions: usize) -> usize {
    s as usize * num_actions + a as usize
}

/// The environment contract the accelerator is built against.
///
/// Matches the paper's device model (§IV-A): the transition function is
/// deterministic combinational logic; rewards live in a table addressed by
/// (state, action); terminal detection restarts the episode at a random
/// state. All methods take `&self` — the environment is immutable during
/// training, as a synthesized circuit would be.
pub trait Environment {
    /// Number of addressable states (the Q-table height). Includes any
    /// unreachable filler states implied by bit packing, because the
    /// hardware's address space includes them too.
    fn num_states(&self) -> usize;

    /// Number of actions (the Q-table width).
    fn num_actions(&self) -> usize;

    /// Deterministic next state for (s, a) — the combinational transition
    /// module.
    fn transition(&self, s: State, a: Action) -> State;

    /// Reward for *taking* action `a` in state `s` — the reward BRAM entry
    /// at `sa_index(s, a)`.
    fn reward(&self, s: State, a: Action) -> f64;

    /// Does reaching `s` end the episode? (The pipeline then restarts from
    /// a random start state.)
    fn is_terminal(&self, s: State) -> bool;

    /// Is `s` a legal place to *be* (reachable, not an obstacle, not
    /// outside the geometric grid)? Used to filter random starts.
    fn is_valid_state(&self, s: State) -> bool {
        (s as usize) < self.num_states()
    }

    /// Draw a uniformly random valid non-terminal start state, the way the
    /// hardware's LFSR-driven start selector does (§IV-B step i).
    fn random_start(&self, rng: &mut dyn RngSource) -> State {
        debug_assert!(self.num_states() > 0);
        // Rejection sampling over the packed address space; every provided
        // environment has ≥ 1/4 of its address space valid so this
        // terminates quickly (and the hardware does the same re-draw).
        loop {
            let s = rng.below(self.num_states() as u32);
            if self.is_valid_state(s) && !self.is_terminal(s) {
                return s;
            }
        }
    }

    /// All (state, action) pair count — table sizing shorthand.
    fn num_pairs(&self) -> usize {
        self.num_states() * self.num_actions()
    }
}

/// Blanket impl so `&E` is itself an environment (lets trainers borrow).
impl<E: Environment + ?Sized> Environment for &E {
    fn num_states(&self) -> usize {
        (**self).num_states()
    }
    fn num_actions(&self) -> usize {
        (**self).num_actions()
    }
    fn transition(&self, s: State, a: Action) -> State {
        (**self).transition(s, a)
    }
    fn reward(&self, s: State, a: Action) -> f64 {
        (**self).reward(s, a)
    }
    fn is_terminal(&self, s: State) -> bool {
        (**self).is_terminal(s)
    }
    fn is_valid_state(&self, s: State) -> bool {
        (**self).is_valid_state(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_hdl::lfsr::Lfsr32;

    /// A 4-state ring with one terminal state, for trait-level tests.
    struct Ring;

    impl Environment for Ring {
        fn num_states(&self) -> usize {
            4
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn transition(&self, s: State, a: Action) -> State {
            match a {
                0 => (s + 1) % 4,
                _ => (s + 3) % 4,
            }
        }
        fn reward(&self, s: State, a: Action) -> f64 {
            if self.transition(s, a) == 3 {
                1.0
            } else {
                0.0
            }
        }
        fn is_terminal(&self, s: State) -> bool {
            s == 3
        }
    }

    #[test]
    fn sa_index_is_row_major() {
        assert_eq!(sa_index(0, 0, 4), 0);
        assert_eq!(sa_index(0, 3, 4), 3);
        assert_eq!(sa_index(2, 1, 4), 9);
    }

    #[test]
    fn random_start_avoids_terminal() {
        let mut rng = Lfsr32::new(7);
        let env = Ring;
        for _ in 0..100 {
            let s = env.random_start(&mut rng);
            assert!(s < 4);
            assert_ne!(s, 3, "terminal state drawn as start");
        }
    }

    #[test]
    fn random_start_covers_valid_states() {
        let mut rng = Lfsr32::new(11);
        let env = Ring;
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[env.random_start(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true, true, false]);
    }

    #[test]
    fn reference_env_delegates() {
        let env = Ring;
        let r = &env;
        assert_eq!(r.num_states(), 4);
        assert_eq!(r.transition(1, 0), 2);
        assert_eq!(r.num_pairs(), 8);
    }
}
