//! Property-based tests for the environments.

use proptest::prelude::*;
use qtaccel_envs::{ActionSet, CliffWalk, Environment, GridWorld};
use qtaccel_hdl::lfsr::Lfsr32;

fn arb_grid() -> impl Strategy<Value = GridWorld> {
    (1u32..10_000, 0u32..25, any::<bool>()).prop_map(|(seed, density, eight)| {
        let mut rng = Lfsr32::new(seed);
        let actions = if eight {
            ActionSet::Eight
        } else {
            ActionSet::Four
        };
        GridWorld::random(8, 8, density, actions, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transitions_stay_in_valid_states(g in arb_grid()) {
        for s in 0..g.num_states() as u32 {
            for a in 0..g.num_actions() as u32 {
                let t = g.transition(s, a);
                prop_assert!((t as usize) < g.num_states());
                if g.is_valid_state(s) {
                    // Valid states never transition into obstacles or
                    // off-grid filler.
                    prop_assert!(g.is_valid_state(t), "s={s} a={a} -> t={t}");
                }
            }
        }
    }

    #[test]
    fn invalid_states_self_loop_with_zero_reward(g in arb_grid()) {
        for s in 0..g.num_states() as u32 {
            if !g.is_valid_state(s) {
                for a in 0..g.num_actions() as u32 {
                    prop_assert_eq!(g.transition(s, a), s);
                    prop_assert_eq!(g.reward(s, a), 0.0);
                }
            }
        }
    }

    #[test]
    fn rewards_are_bounded(g in arb_grid()) {
        for s in 0..g.num_states() as u32 {
            for a in 0..g.num_actions() as u32 {
                let r = g.reward(s, a);
                prop_assert!((-1.0..=1.0).contains(&r), "r={r}");
            }
        }
    }

    #[test]
    fn xy_roundtrip(g in arb_grid()) {
        for x in 0..g.width() {
            for y in 0..g.height() {
                prop_assert_eq!(g.xy_of(g.state_of(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn bfs_distances_are_consistent(g in arb_grid()) {
        // Triangle property: a one-step transition changes the BFS
        // distance by at most 1 (and reaching the goal means d = 1).
        let d = g.shortest_distances();
        for s in 0..g.num_states() as u32 {
            if !g.is_valid_state(s) || g.is_terminal(s) {
                continue;
            }
            let Some(ds) = d[s as usize] else { continue };
            prop_assert!(ds >= 1);
            for a in 0..g.num_actions() as u32 {
                let t = g.transition(s, a);
                if let Some(dt) = d[t as usize] {
                    prop_assert!(dt + 1 >= ds, "s={s} (d={ds}) -> t={t} (d={dt})");
                }
            }
            // Some action must decrease the distance (BFS predecessor).
            let improves = (0..g.num_actions() as u32).any(|a| {
                let t = g.transition(s, a);
                d[t as usize].map(|dt| dt + 1 == ds).unwrap_or(false)
            });
            prop_assert!(improves, "state {s} has no improving action");
        }
    }

    #[test]
    fn goal_distance_zero_only_at_goal(g in arb_grid()) {
        let d = g.shortest_distances();
        for s in 0..g.num_states() as u32 {
            if d[s as usize] == Some(0) {
                prop_assert!(g.is_terminal(s));
            }
        }
    }

    #[test]
    fn random_start_is_always_valid(g in arb_grid(), seed in 1u32..10_000) {
        let mut rng = Lfsr32::new(seed);
        for _ in 0..32 {
            let s = g.random_start(&mut rng);
            prop_assert!(g.is_valid_state(s));
            prop_assert!(!g.is_terminal(s));
        }
    }

    #[test]
    fn cliff_walk_invariants(w in 3u32..16, h in 2u32..8) {
        let c = CliffWalk::new(w, h);
        // The start and goal are valid, every cliff cell is invalid.
        prop_assert!(c.is_valid_state(c.start_state()));
        prop_assert!(c.is_valid_state(c.goal_state()));
        for s in 0..c.num_states() as u32 {
            if c.is_cliff(s) {
                prop_assert!(!c.is_valid_state(s));
            }
            // All transitions land in-range.
            for a in 0..4 {
                prop_assert!((c.transition(s, a) as usize) < c.num_states());
            }
        }
        // Falling costs the cliff penalty and teleports to start.
        let above = c.transition(c.start_state(), 1); // up from start
        if c.is_valid_state(above) && h >= 2 && w > 2 {
            let back_down = c.transition(above, 3);
            prop_assert_eq!(back_down, c.start_state());
        }
    }
}
