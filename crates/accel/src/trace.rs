//! Pipeline occupancy tracing — a text waveform of the 4-stage pipe.
//!
//! [`PipelineTrace`] is a bounded [`TraceSink`]: attach one via
//! [`AccelPipeline::with_sink`](crate::AccelPipeline::with_sink) and
//! every retired iteration logs which cycle it occupied each stage. The
//! waveform renderer draws the classic pipeline diagram (stages as rows,
//! cycles as columns, iteration ids as cells), which makes the
//! architecture's behaviour directly visible: a solid diagonal at one
//! iteration per cycle under forwarding, bubbles opening up under
//! stall-only hazard handling, and the |A|-cycle gaps of the exact-scan
//! mode.
//!
//! Recording is **iteration-atomic**: an iteration either contributes all
//! four of its stage slots or none. A full trace never truncates an
//! iteration mid-flight (which used to leave a torn partial row in the
//! waveform); instead the iteration is counted in
//! [`dropped_iterations`](PipelineTrace::dropped_iterations), the same
//! accounting the telemetry ring sink reports.

use qtaccel_telemetry::{Event, TraceSink};

/// One stage occupancy record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock cycle.
    pub cycle: u64,
    /// Pipeline stage (1–4).
    pub stage: u8,
    /// Iteration (sample) index, 0-based.
    pub iteration: u64,
}

/// A bounded, iteration-atomic recording of stage occupancy.
#[derive(Debug, Clone)]
pub struct PipelineTrace {
    events: Vec<TraceEvent>,
    capacity: usize,
    // Stage events of the iteration currently being received through the
    // sink interface (the pipeline emits stages 1–4 back to back).
    staged: Vec<TraceEvent>,
    dropped_iterations: u64,
}

impl PipelineTrace {
    /// A trace that keeps the first `capacity` events (4 per iteration).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            events: Vec::new(),
            capacity,
            staged: Vec::with_capacity(4),
            dropped_iterations: 0,
        }
    }

    /// Record one iteration's four stage slots. `c1` is its stage-1
    /// cycle; stages 2–4 follow at `c1 + stalls + k` per the stall
    /// placement (stalls hold the iteration between stage 1 and the
    /// back half). Atomic: if the remaining capacity cannot hold all
    /// four slots the whole iteration is dropped (and counted), never
    /// truncated part-way.
    pub fn record_iteration(&mut self, iteration: u64, c1: u64, stalls: u64) {
        if self.events.len() + 4 > self.capacity {
            self.dropped_iterations += 1;
            return;
        }
        for (k, stage) in (1u8..=4).enumerate() {
            let cycle = if stage == 1 {
                c1
            } else {
                c1 + stalls + k as u64
            };
            self.events.push(TraceEvent {
                cycle,
                stage,
                iteration,
            });
        }
    }

    /// All recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Can the trace not accept another full iteration?
    pub fn is_full(&self) -> bool {
        self.events.len() + 4 > self.capacity
    }

    /// Iterations that arrived after the trace filled and were dropped
    /// whole (see the module docs on atomicity).
    pub fn dropped_iterations(&self) -> u64 {
        self.dropped_iterations
    }

    /// Render a text waveform covering cycles `[from, from + width)`.
    /// Rows are stages S1–S4; cells show `iteration % 10`, `.` for an
    /// idle slot.
    pub fn render_waveform(&self, from: u64, width: u64) -> String {
        let mut grid = vec![vec!['.'; width as usize]; 4];
        for e in &self.events {
            if e.cycle >= from && e.cycle < from + width {
                let col = (e.cycle - from) as usize;
                let row = (e.stage - 1) as usize;
                grid[row][col] =
                    char::from_digit((e.iteration % 10) as u32, 10).unwrap_or('?');
            }
        }
        let mut out = String::new();
        out.push_str(&format!("cycle {from:>6} +{width}\n"));
        for (row, name) in grid.iter().zip(["S1", "S2", "S3", "S4"]) {
            out.push_str(name);
            out.push(' ');
            out.extend(row.iter());
            out.push('\n');
        }
        out
    }

    /// Occupancy of a stage over the recorded window: fraction of cycles
    /// with an iteration present (1.0 = perfectly full pipe).
    pub fn occupancy(&self, stage: u8) -> f64 {
        let cycles: Vec<u64> = self
            .events
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.cycle)
            .collect();
        if cycles.is_empty() {
            return 0.0;
        }
        let span = cycles.iter().max().unwrap() - cycles.iter().min().unwrap() + 1;
        cycles.len() as f64 / span as f64
    }
}

impl TraceSink for PipelineTrace {
    const EVENTS: bool = true;
    const COUNTERS: bool = true;

    /// Collects the four `Event::Stage` records the pipeline emits per
    /// retirement (other event types pass through untracked — this sink
    /// renders occupancy, not the memory system) and commits them as one
    /// atomic iteration when stage 4 arrives.
    fn record(&mut self, ev: &Event) {
        if let Event::Stage {
            cycle,
            stage,
            iteration,
        } = *ev
        {
            if stage == 1 {
                self.staged.clear();
            }
            self.staged.push(TraceEvent {
                cycle,
                stage,
                iteration,
            });
            if stage == 4 {
                if self.events.len() + self.staged.len() <= self.capacity {
                    self.events.append(&mut self.staged);
                } else {
                    self.dropped_iterations += 1;
                    self.staged.clear();
                }
            }
        }
    }

    fn dropped_iterations(&self) -> u64 {
        self.dropped_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AccelConfig, HazardMode};
    use crate::pipeline::AccelPipeline;
    use qtaccel_envs::GridWorld;
    use qtaccel_fixed::Q8_8;

    #[test]
    fn records_four_events_per_iteration() {
        let mut t = PipelineTrace::new(100);
        t.record_iteration(0, 0, 0);
        t.record_iteration(1, 1, 0);
        assert_eq!(t.events().len(), 8);
        assert_eq!(t.events()[0], TraceEvent { cycle: 0, stage: 1, iteration: 0 });
        assert_eq!(t.events()[7], TraceEvent { cycle: 4, stage: 4, iteration: 1 });
    }

    #[test]
    fn capacity_is_iteration_atomic() {
        // Capacity 6 holds one whole iteration; the second no longer
        // half-fits (4 + 4 > 6) and is dropped whole, not truncated to a
        // torn 2-event stub as the pre-telemetry implementation did.
        let mut t = PipelineTrace::new(6);
        t.record_iteration(0, 0, 0);
        assert!(t.is_full());
        t.record_iteration(1, 1, 0);
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.dropped_iterations(), 1);
        t.record_iteration(2, 2, 0);
        assert_eq!(t.dropped_iterations(), 2);
    }

    #[test]
    fn sink_interface_matches_manual_recording() {
        // Driving the trace through the TraceSink interface (attached to
        // a pipeline) must record exactly what the manual bookkeeping
        // formulation does.
        let g = GridWorld::builder(2, 2).goal(1, 1).build();
        let cfg = AccelConfig::default()
            .with_seed(3)
            .with_hazard(HazardMode::StallOnly);
        let mut attached =
            AccelPipeline::<Q8_8, PipelineTrace>::with_sink(&g, cfg, 0, PipelineTrace::new(60));
        let mut manual_pipe = AccelPipeline::<Q8_8>::new(&g, cfg, 0);
        let mut manual = PipelineTrace::new(60);
        let mut c1 = 0u64;
        for i in 0..40 {
            attached.step(&g);
            let before = manual_pipe.stats();
            manual_pipe.step(&g);
            let stalls = manual_pipe.stats().stalls - before.stalls;
            manual.record_iteration(i, c1, stalls);
            c1 += stalls + 1;
        }
        assert_eq!(attached.sink().events(), manual.events());
        assert_eq!(
            attached.sink().dropped_iterations(),
            manual.dropped_iterations()
        );
        assert!(attached.sink().dropped_iterations() > 0, "60/4 < 40");
    }

    #[test]
    fn waveform_shows_the_full_diagonal_under_forwarding() {
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        let mut p = AccelPipeline::<Q8_8>::new(&g, AccelConfig::default().with_seed(1), 0);
        let mut trace = PipelineTrace::new(400);
        for _ in 0..100 {
            let c1 = p.stats().samples + p.stats().stalls; // next c1 in forwarding mode
            let before = p.stats();
            p.step(&g);
            let stalls = p.stats().stalls - before.stalls;
            trace.record_iteration(before.samples, c1, stalls);
        }
        // Steady state: every stage fully occupied.
        for stage in 1..=4u8 {
            assert!(
                trace.occupancy(stage) > 0.99,
                "stage {stage}: {}",
                trace.occupancy(stage)
            );
        }
        let wf = trace.render_waveform(4, 12);
        // The S1 row shows consecutive iteration digits with no dots.
        let s1 = wf.lines().nth(1).unwrap();
        assert!(!s1[3..].contains('.'), "{wf}");
        // The diagonal structure: iteration k is in S4 three cycles after S1.
        let s4 = wf.lines().nth(4).unwrap();
        assert_eq!(&s1[3..4], &s4[6..7], "{wf}");
    }

    #[test]
    fn waveform_shows_bubbles_under_stalling() {
        let g = GridWorld::builder(2, 2).goal(1, 1).build();
        let cfg = AccelConfig::default()
            .with_seed(3)
            .with_hazard(HazardMode::StallOnly);
        let mut p = AccelPipeline::<Q8_8>::new(&g, cfg, 0);
        let mut trace = PipelineTrace::new(4000);
        let mut c1 = 0u64;
        for i in 0..500 {
            let before = p.stats();
            p.step(&g);
            let stalls = p.stats().stalls - before.stalls;
            trace.record_iteration(i, c1, stalls);
            c1 += stalls + 1;
        }
        // Hazard-heavy 4-state world: the back half of the pipe has idle
        // slots (occupancy measurably below 1).
        assert!(
            trace.occupancy(4) < 0.95,
            "expected stall bubbles: {}",
            trace.occupancy(4)
        );
        let wf = trace.render_waveform(10, 40);
        assert!(wf.lines().nth(4).unwrap().contains('.'), "{wf}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        PipelineTrace::new(0);
    }
}
