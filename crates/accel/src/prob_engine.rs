//! The generic probability-distribution QRL engine (§VII-B, Eq. 4).
//!
//! "A policy in a RL algorithm is a probability distribution on the
//! actions conditional on the current state … P(aᵢ|Sⱼ) ∝ fₜ(Sⱼ, aᵢ) for
//! some temporal function fₜ that may be updated with every sample. To
//! implement such probability distribution based policies, we use a table
//! P which stores the probability value for each state-action pair. In
//! the second stage, the action selection will evaluate the next action
//! based on the probability distribution … a binary search can provide
//! the selected action in log nⱼ cycles … In the final stage, the
//! probability values need to be updated."
//!
//! [`ProbPolicyAccel`] is that third engine: alongside the Q and R tables
//! it keeps the **P table** (the third `|S|·|A|` BRAM the paper budgets:
//! "in that case 3 |S|·|A| sized tables would be required"). Stage 2
//! draws both the behaviour and update action from the P row by binary
//! search over its cumulative weights (charged at `⌈log₂|A|⌉` cycles per
//! sample); stage 4 writes the new Q-value back *and* refreshes the
//! visited pair's weight with the configured [`WeightRule`].
//!
//! Note the faithful quirk: only the *visited* (s, a) weight is updated
//! per sample, so the P row holds weights computed from Q-values of
//! different ages — a lagged Boltzmann policy, not the textbook one that
//! re-exponentiates the whole row every step. The tests show it still
//! drives the policy toward the greedy optimum.

use crate::config::AccelConfig;
use crate::resources::{AccelResources, EngineKind};
use qtaccel_core::policy::ProbTablePolicy;
use qtaccel_core::qtable::QTable;
use qtaccel_core::trainer::{seed_unit, Transition};
use qtaccel_envs::{Action, Environment, RewardTable, State};
use qtaccel_fixed::QValue;
use qtaccel_hdl::bram::blocks_for;
use qtaccel_hdl::explut::ExpLut;
use qtaccel_hdl::lfsr::Lfsr32;
use qtaccel_hdl::pipeline::CycleStats;
use qtaccel_hdl::rng::SeedSequence;

const FILL: u64 = 3;

/// How the stage-4 probability update derives a weight from the fresh
/// Q-value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightRule {
    /// Boltzmann: `w = exp(Q / T)`, realized as a block-ROM lookup table
    /// ([`ExpLut`]) indexed by the top bits of the Q word — the fabric
    /// cannot exponentiate. Inputs beyond ±20·T saturate (the table
    /// covers the range where the output stays within a practical word).
    Boltzmann {
        /// Temperature (> 0). Lower is greedier.
        temperature: f64,
    },
    /// Proportional-with-floor: `w = max(Q, floor)` — the cheapest
    /// monotone rule (no LUT), usable when Q-values are non-negative.
    Proportional {
        /// Minimum weight, keeping every action selectable (> 0).
        floor: f64,
    },
}

impl WeightRule {
    /// Build the ROM this rule needs (`None` for LUT-free rules).
    fn build_lut(&self) -> Option<ExpLut> {
        match *self {
            WeightRule::Boltzmann { temperature } => {
                assert!(temperature > 0.0, "temperature must be > 0");
                // Cover the exponent range +/-20 with a 12-bit table.
                Some(ExpLut::new(
                    -20.0 * temperature,
                    20.0 * temperature,
                    temperature,
                    12,
                    16,
                ))
            }
            WeightRule::Proportional { floor } => {
                assert!(floor > 0.0, "floor must be > 0");
                None
            }
        }
    }

    fn weight(&self, q: f64, lut: Option<&ExpLut>) -> f64 {
        match *self {
            WeightRule::Boltzmann { .. } => lut.expect("Boltzmann rule carries a LUT").eval(q),
            WeightRule::Proportional { floor } => q.max(floor),
        }
    }
}

/// The generic probability-table QRL accelerator.
#[derive(Debug, Clone)]
pub struct ProbPolicyAccel<V> {
    num_states: usize,
    num_actions: usize,
    config: AccelConfig,
    rule: WeightRule,
    exp_lut: Option<ExpLut>,
    alpha_v: V,
    one_minus_alpha: V,
    alpha_gamma: V,
    q: QTable<V>,
    p: ProbTablePolicy,
    rewards: RewardTable<V>,
    start_rng: Lfsr32,
    select_rng: Lfsr32,
    carry: Option<State>,
    stats: CycleStats,
}

impl<V: QValue> ProbPolicyAccel<V> {
    /// Build the engine for `env` with the given weight rule. The policy
    /// starts uniform (all weights 1), matching an all-ones P BRAM init.
    pub fn new<E: Environment>(env: &E, config: AccelConfig, rule: WeightRule) -> Self {
        let seeds = SeedSequence::new(config.trainer.seed);
        let alpha_v = V::from_f64(config.trainer.alpha);
        let gamma_v = V::from_f64(config.trainer.gamma);
        let (s, a) = (env.num_states(), env.num_actions());
        Self {
            num_states: s,
            num_actions: a,
            exp_lut: rule.build_lut(),
            rule,
            alpha_v,
            one_minus_alpha: alpha_v.one_minus(),
            alpha_gamma: alpha_v.mul(gamma_v),
            q: QTable::new(s, a),
            p: ProbTablePolicy::uniform(s, a),
            rewards: RewardTable::from_env(env),
            start_rng: Lfsr32::new(seeds.derive(seed_unit::of(0, seed_unit::START))),
            select_rng: Lfsr32::new(seeds.derive(seed_unit::of(0, seed_unit::UPDATE))),
            carry: None,
            stats: CycleStats {
                fill_bubbles: FILL,
                ..CycleStats::default()
            },
            config,
        }
    }

    /// The learned Q-table.
    pub fn q_table(&self) -> &QTable<V> {
        &self.q
    }

    /// Current selection probability of (s, a) under the P table.
    pub fn probability(&mut self, s: State, a: Action) -> f64 {
        self.p.probability(s, a)
    }

    /// Cycle counters.
    pub fn stats(&self) -> CycleStats {
        self.stats
    }

    /// Exact greedy policy from the Q-table.
    pub fn greedy_policy(&self) -> Vec<Action> {
        self.q.greedy_policy()
    }

    /// One sample: P-table behaviour selection, transition, P-table next
    /// selection, Eq. (3) update, stage-4 writeback of Q and the visited
    /// pair's weight.
    pub fn step<E: Environment>(&mut self, env: &E) -> Transition<V> {
        debug_assert_eq!(env.num_states(), self.num_states, "environment mismatch");
        let mut stall = 0u64;
        // Stage 1: state + behaviour action from the P table.
        let s = match self.carry.take() {
            Some(s) => s,
            None => env.random_start(&mut self.start_rng),
        };
        let (a, cycles) = self.p.select(s, &mut self.select_rng);
        stall += cycles as u64 - 1;
        let s_next = env.transition(s, a);
        let r = self.rewards.get(s, a);
        let q_sa = self.q.get(s, a);

        // Stage 2: next action from the P table (on-policy target).
        let (a_next, cycles) = self.p.select(s_next, &mut self.select_rng);
        stall += cycles as u64 - 1;
        let q_next = self.q.get(s_next, a_next);

        // Stage 3: Eq. (3).
        let q_new = self
            .one_minus_alpha
            .mul(q_sa)
            .add(self.alpha_v.mul(r))
            .add(self.alpha_gamma.mul(q_next));

        // Stage 4: writeback + probability update for the visited pair.
        self.q.set(s, a, q_new);
        self.p
            .set_weight(s, a, self.rule.weight(q_new.to_f64(), self.exp_lut.as_ref()));

        self.stats.samples += 1;
        self.stats.stalls += stall;
        self.stats.cycles = self.stats.samples + self.stats.stalls + FILL;
        self.carry = if env.is_terminal(s_next) {
            None
        } else {
            Some(s_next)
        };
        Transition {
            s,
            a,
            r,
            s_next,
            a_next,
            q_new,
        }
    }

    /// Run `n` samples.
    pub fn train_samples<E: Environment>(&mut self, env: &E, n: u64) -> CycleStats {
        for _ in 0..n {
            self.step(env);
        }
        self.stats
    }

    /// Structural resources: **three** `|S|·|A|` tables (Q, R, P) plus
    /// the datapath — the §IV-B budget for distribution-based policies.
    pub fn resources(&self) -> AccelResources {
        let mut r = crate::resources::analyze(
            self.num_states,
            self.num_actions,
            V::storage_bits(),
            EngineKind::Sarsa, // on-policy shape: LFSR bank present
            &self.config,
            self.stats.samples_per_cycle().max(if self.stats.samples == 0 {
                1.0 / (usize::BITS - (self.num_actions - 1).leading_zeros()).max(1) as f64
            } else {
                0.0
            }),
        );
        // Add the P table (weights at datapath width) and, for Boltzmann,
        // the exp ROM.
        r.report.bram36 += blocks_for(
            (self.num_states * self.num_actions) as u64,
            V::storage_bits(),
        );
        if let Some(lut) = &self.exp_lut {
            r.report.bram36 += lut.rom_bits().div_ceil(36 * 1024);
        }
        r.utilization = r.report.utilization(&self.config.device);
        r.power_mw = self.config.power.power_mw(&r.report, r.fmax_mhz);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_core::eval::step_optimality;
    use qtaccel_envs::GridWorld;
    use qtaccel_fixed::Q8_8;

    fn grid() -> GridWorld {
        GridWorld::builder(8, 8).goal(7, 7).build()
    }

    fn cfg() -> AccelConfig {
        AccelConfig::default().with_seed(0xF00D)
    }

    #[test]
    fn boltzmann_rule_learns_the_grid() {
        let g = grid();
        let mut e = ProbPolicyAccel::<Q8_8>::new(
            &g,
            cfg(),
            WeightRule::Boltzmann { temperature: 0.1 },
        );
        e.train_samples(&g, 600_000);
        let opt = step_optimality(&g, &e.greedy_policy(), &g.shortest_distances());
        assert!(opt > 0.9, "step-optimality {opt}");
    }

    #[test]
    fn policy_concentrates_on_good_actions() {
        let g = grid();
        let mut e = ProbPolicyAccel::<Q8_8>::new(
            &g,
            cfg(),
            WeightRule::Boltzmann { temperature: 0.05 },
        );
        e.train_samples(&g, 400_000);
        // Next to the goal, the P table should overwhelmingly prefer the
        // goal-entering action (right, from (6,7)).
        let s = g.state_of(6, 7);
        let p_right = e.probability(s, 2);
        assert!(p_right > 0.8, "P(right | goal-left) = {p_right}");
    }

    #[test]
    fn selection_costs_log2_actions_cycles() {
        let g = grid(); // 4 actions: log2 = 2 cycles per selection.
        let mut e = ProbPolicyAccel::<Q8_8>::new(
            &g,
            cfg(),
            WeightRule::Boltzmann { temperature: 0.1 },
        );
        e.train_samples(&g, 10_000);
        let s = e.stats();
        // Two selections per sample (behaviour + update), each costing
        // one extra cycle beyond the pipelined slot.
        assert_eq!(s.stalls, 2 * 10_000);
        assert!((s.samples_per_cycle() - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn proportional_rule_works_for_nonnegative_values() {
        let g = grid();
        let mut e = ProbPolicyAccel::<Q8_8>::new(
            &g,
            cfg(),
            WeightRule::Proportional { floor: 0.02 },
        );
        e.train_samples(&g, 600_000);
        let opt = step_optimality(&g, &e.greedy_policy(), &g.shortest_distances());
        assert!(opt > 0.8, "step-optimality {opt}");
    }

    #[test]
    fn resources_include_the_third_table() {
        let g = grid();
        let prob = ProbPolicyAccel::<Q8_8>::new(
            &g,
            cfg(),
            WeightRule::Boltzmann { temperature: 0.1 },
        );
        let ql = crate::qlearning::QLearningAccel::<Q8_8>::new(&g, cfg());
        assert!(
            prob.resources().report.bram36 > ql.resources().report.bram36,
            "P table must cost BRAM"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid();
        let rule = WeightRule::Boltzmann { temperature: 0.1 };
        let mut a = ProbPolicyAccel::<Q8_8>::new(&g, cfg(), rule);
        let mut b = ProbPolicyAccel::<Q8_8>::new(&g, cfg(), rule);
        a.train_samples(&g, 5_000);
        b.train_samples(&g, 5_000);
        assert_eq!(a.q_table().as_slice(), b.q_table().as_slice());
    }

    #[test]
    #[should_panic(expected = "temperature must be > 0")]
    fn zero_temperature_rejected() {
        WeightRule::Boltzmann { temperature: 0.0 }.build_lut();
    }

    #[test]
    fn boltzmann_lut_matches_exact_exponential_in_range() {
        let rule = WeightRule::Boltzmann { temperature: 0.5 };
        let lut = rule.build_lut().unwrap();
        for q in [-5.0, -1.0, 0.0, 0.5, 3.0, 9.9] {
            let exact = (q / 0.5f64).exp();
            let got = rule.weight(q, Some(&lut));
            assert!(
                (got - exact).abs() / exact < 0.02,
                "q={q}: {got} vs {exact}"
            );
        }
        // Beyond the covered exponent range the ROM saturates.
        assert_eq!(rule.weight(100.0, Some(&lut)), rule.weight(10.0, Some(&lut)));
    }
}
