//! The Q-Learning engine (§V-A).
//!
//! Behaviour policy: uniform random action selection from an LFSR.
//! Update policy: greedy, realized as a *single* Qmax-array read instead
//! of an |A|-wide row scan — the optimization that, together with the
//! constant multiplier count, lets the design scale "to large state
//! spaces" where the FSM-per-pair baseline cannot.

use crate::checkpoint::CheckpointError;
use crate::config::AccelConfig;
use crate::fault::{FaultConfig, FaultStats};
use crate::pipeline::{AccelPipeline, FastLayout};
use crate::resources::{
    analyze_stored, with_health_probes, with_histogram_regfile, with_perf_regfile, with_secded,
    AccelResources, EngineKind,
};
use qtaccel_core::policy::Policy;
use qtaccel_core::qtable::{PackedQTable, QTable, QmaxTable};
use qtaccel_core::trainer::Transition;
use qtaccel_envs::{Action, Environment};
use qtaccel_fixed::{QValue, QuantPolicy};
use qtaccel_hdl::pipeline::CycleStats;
use qtaccel_telemetry::{CounterBank, NullSink, TraceSink};
use std::path::Path;

/// The Q-Learning accelerator instance.
///
/// Generic over a [`TraceSink`] (default [`NullSink`] = telemetry off,
/// zero cost); see [`QLearningAccel::with_sink`].
#[derive(Debug, Clone)]
pub struct QLearningAccel<V, S: TraceSink = NullSink> {
    pipe: AccelPipeline<V, S>,
}

impl<V: QValue> QLearningAccel<V> {
    /// Build an engine sized for `env`. The configured behaviour/update
    /// policies are overridden to the Q-Learning fixture (random /
    /// greedy); α, γ, seed, hazard mode and Qmax semantics are honoured.
    pub fn new<E: Environment>(env: &E, config: AccelConfig) -> Self {
        Self::with_sink(env, config, NullSink)
    }
}

impl<V: QValue, S: TraceSink> QLearningAccel<V, S> {
    /// Build an instrumented engine: like [`QLearningAccel::new`] but
    /// attaching a telemetry `sink` (see [`TraceSink`]).
    pub fn with_sink<E: Environment>(env: &E, mut config: AccelConfig, sink: S) -> Self {
        config.trainer.behavior = Policy::Random;
        config.trainer.update = Policy::Greedy;
        config.trainer.forward_next_action = false;
        Self {
            pipe: AccelPipeline::with_sink(env, config, 0, sink),
        }
    }

    /// The pipeline's perf-counter bank (all-zero unless a
    /// counter-bearing sink is attached).
    pub fn counters(&self) -> &CounterBank {
        self.pipe.counters()
    }

    /// The attached trace sink.
    pub fn sink(&self) -> &S {
        self.pipe.sink()
    }

    /// Mutable access to the attached trace sink.
    pub fn sink_mut(&mut self) -> &mut S {
        self.pipe.sink_mut()
    }

    /// Consume the engine and return its sink.
    pub fn into_sink(self) -> S {
        self.pipe.into_sink()
    }

    /// The sink's training-health probe, when one is attached (see
    /// `qtaccel_telemetry::HealthSink`; `None` for every other sink).
    pub fn health_probe(&self) -> Option<&qtaccel_telemetry::HealthProbe> {
        self.pipe.health_probe()
    }

    /// Run `n` Q-value updates and return the cumulative cycle counters.
    pub fn train_samples<E: Environment>(&mut self, env: &E, n: u64) -> CycleStats {
        self.pipe.run_samples(env, n)
    }

    /// Run `n` Q-value updates through the fast-path executor — results
    /// bit-identical to [`train_samples`](Self::train_samples), host
    /// throughput much higher (see `AccelPipeline::run_samples_fast`).
    pub fn train_samples_fast<E: Environment>(&mut self, env: &E, n: u64) -> CycleStats {
        self.pipe.run_samples_fast(env, n)
    }

    /// [`train_samples_fast`](Self::train_samples_fast) with an explicit
    /// Q-table traversal layout — the cache-blocking knob batch training
    /// tunes per shard (see [`FastLayout`]). Results are bit-identical
    /// under every layout.
    pub fn train_samples_fast_planned<E: Environment>(
        &mut self,
        env: &E,
        n: u64,
        layout: FastLayout,
    ) -> CycleStats {
        self.pipe.run_samples_fast_planned(env, n, layout)
    }

    /// One update, exposed for tracing.
    pub fn step<E: Environment>(&mut self, env: &E) -> Transition<V> {
        self.pipe.step(env)
    }

    /// Cycle counters so far.
    pub fn stats(&self) -> CycleStats {
        self.pipe.stats()
    }

    /// The learned Q-table (architectural view).
    pub fn q_table(&self) -> QTable<V> {
        self.pipe.q_table()
    }

    /// The Qmax array (architectural view).
    pub fn qmax_table(&self) -> QmaxTable<V> {
        self.pipe.qmax_table()
    }

    /// Exact greedy policy extraction.
    pub fn greedy_policy(&self) -> Vec<Action> {
        self.pipe.greedy_policy()
    }

    /// Inject a single-event upset into the committed Q BRAM word (see
    /// `AccelPipeline::inject_q_bit_flip`); drives the `seu_robustness`
    /// experiment.
    pub fn inject_q_bit_flip(&mut self, s: qtaccel_envs::State, a: Action, bit: u32) {
        self.pipe.inject_q_bit_flip(s, a, bit);
    }

    /// Attach the fault-tolerance runtime — online SEU injection, SECDED
    /// protection, Qmax scrubbing (see
    /// `AccelPipeline::enable_faults` and [`FaultConfig`]).
    pub fn enable_faults(&mut self, config: FaultConfig) {
        self.pipe.enable_faults(config);
    }

    /// Switch to a quantized stored Q-table format — entries held on
    /// `policy`'s grid, writebacks stochastically rounded (see
    /// `AccelPipeline::enable_quant` and DESIGN.md §2.14). Must be
    /// called before training starts.
    pub fn enable_quant(&mut self, policy: QuantPolicy) {
        self.pipe.enable_quant(policy);
    }

    /// The quantization policy in force, if any.
    pub fn quant(&self) -> Option<&QuantPolicy> {
        self.pipe.quant()
    }

    /// The learned Q-table in its packed stored form (`None` unless
    /// quantization is enabled; see `AccelPipeline::packed_q_table`).
    pub fn packed_q_table(&self) -> Option<PackedQTable> {
        self.pipe.packed_q_table()
    }

    /// The fault configuration in force, if any.
    pub fn fault_config(&self) -> Option<FaultConfig> {
        self.pipe.fault_config()
    }

    /// Fault-campaign counters, if a fault runtime is attached.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.pipe.fault_stats()
    }

    /// Durably checkpoint the full training state to `path` (see
    /// `AccelPipeline::save_checkpoint`).
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), CheckpointError> {
        self.pipe.save_checkpoint(path)
    }

    /// Restore training state from a checkpoint file; resume is
    /// bit-exact (see `AccelPipeline::restore_checkpoint`).
    pub fn restore_checkpoint(&mut self, path: &Path) -> Result<(), CheckpointError> {
        self.pipe.restore_checkpoint(path)
    }

    /// Structural resources, modeled fmax/throughput/power for this
    /// instance (Figs. 3, 4, 6). When a counter-bearing sink is attached
    /// the perf-counter bank's fabric cost is included (see
    /// [`with_perf_regfile`]); an event-emitting sink additionally folds
    /// in the stall-run-length histogram monitor
    /// ([`with_histogram_regfile`] — the monitor is fed from the stall
    /// event stream, so it only exists when that stream does); with
    /// telemetry off the report is the uninstrumented baseline.
    pub fn resources(&self) -> AccelResources {
        // A quantized table narrows the stored word everywhere the
        // model prices memory: the base tables, the health probe's rail
        // comparators, and the SECDED codewords all see `stored_bits`.
        let stored_bits = self
            .pipe
            .quant()
            .map_or(V::storage_bits(), |p| p.stored_bits());
        let res = analyze_stored(
            self.pipe.num_states(),
            self.pipe.num_actions(),
            V::storage_bits(),
            stored_bits,
            EngineKind::QLearning,
            self.pipe.config(),
            self.pipe.stats().samples_per_cycle().max(
                // Before any sample retires, report the design rate.
                if self.pipe.stats().samples == 0 { 1.0 } else { 0.0 },
            ),
        );
        let mut res = if S::COUNTERS {
            with_perf_regfile(res, self.pipe.config())
        } else {
            res
        };
        if S::EVENTS {
            res = with_histogram_regfile(res, self.pipe.config());
        }
        // A health-probing sink brings the probe block (TD monitor,
        // rail comparators, coverage bitset — [`with_health_probes`]).
        if S::HEALTH {
            res = with_health_probes(
                res,
                self.pipe.config(),
                self.pipe.num_states(),
                stored_bits,
            );
        }
        // ECC-protected memories carry their codecs and widened words
        // (over the stored width — narrow payloads pay proportionally
        // more check bits; see the resources test suite).
        if self.pipe.fault_config().is_some_and(|c| c.ecc) {
            res = with_secded(
                res,
                self.pipe.config(),
                self.pipe.num_states(),
                self.pipe.num_actions(),
                stored_bits,
            );
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_envs::{ActionSet, GridWorld};
    use qtaccel_fixed::Q8_8;

    #[test]
    fn engine_forces_q_learning_policies() {
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        let mut cfg = AccelConfig::default();
        // Even if the caller misconfigures policies, the engine fixes them.
        cfg.trainer.behavior = Policy::Greedy;
        cfg.trainer.forward_next_action = true;
        let a = QLearningAccel::<Q8_8>::new(&g, cfg);
        assert_eq!(a.pipe.config().trainer.behavior, Policy::Random);
        assert_eq!(a.pipe.config().trainer.update, Policy::Greedy);
        assert!(!a.pipe.config().trainer.forward_next_action);
    }

    #[test]
    fn trains_at_one_sample_per_cycle() {
        let g = GridWorld::builder(16, 16)
            .goal(15, 15)
            .actions(ActionSet::Eight)
            .build();
        let mut a = QLearningAccel::<Q8_8>::new(&g, AccelConfig::default());
        let stats = a.train_samples(&g, 50_000);
        assert_eq!(stats.samples, 50_000);
        assert_eq!(stats.cycles, 50_003);
    }

    #[test]
    fn resources_match_paper_shape() {
        let g = GridWorld::builder(512, 512)
            .goal(511, 511)
            .actions(ActionSet::Eight)
            .build();
        let a = QLearningAccel::<Q8_8>::new(&g, AccelConfig::default());
        let r = a.resources();
        assert_eq!(r.report.dsp, 4);
        assert!(r.utilization.bram_pct > 70.0);
        assert!((150.0..160.0).contains(&r.throughput_msps));
    }
}
