//! A *structural* model of the Q-Learning pipeline, built from the
//! `qtaccel-hdl` primitives the way an RTL designer would wire them:
//! explicit [`Bram`] instances with port assignments, per-stage pipeline
//! registers, forwarding muxes, and write-history registers.
//!
//! The behavioral model in [`crate::pipeline`] tracks commit times with
//! queues — fast and convenient, but its fidelity rests on analysis. This
//! module re-implements the same micro-architecture *positionally*, one
//! clock at a time, and the test suite proves the two are **bit-exact**
//! over long runs. Where the behavioral model abstracts, this one has to
//! make the hardware decisions explicit, which surfaced a structural
//! requirement the paper does not spell out:
//!
//! * **The Qmax array needs three accesses per cycle** — the stage-2
//!   greedy read of `Qmax[Sₜ₊₁]`, the read-modify-write *read* of
//!   `Qmax[Sₜ]`, and the stage-4 conditional write. True dual-port BRAM
//!   offers two ports, so the array must be **replicated** (both replicas
//!   written every update; one serves each read stream) — a standard
//!   FPGA many-port idiom whose BRAM cost the resource model includes
//!   implicitly via the Qmax block count (a second copy of the |S|-entry
//!   array is small next to the |S|·|A| Q/R tables).
//!
//! ## Port map
//!
//! | memory   | port A                   | port B              |
//! |----------|--------------------------|---------------------|
//! | Q        | stage-1 read `Q(Sₜ,Aₜ)`  | stage-4 write       |
//! | R        | stage-1 read `R(Sₜ,Aₜ)`  | —                   |
//! | Qmax (A) | stage-2 read `[Sₜ₊₁]`    | stage-4 write       |
//! | Qmax (B) | stage-2 read `[Sₜ]` (RMW)| stage-4 write       |
//!
//! ## Forwarding network
//!
//! With reads issued 2–3 cycles before their operands are consumed, the
//! values written by the previous one, two and three iterations are not
//! yet visible in BRAM. The muxes below select, youngest first, from:
//! the stage-4 register (iteration i−1), write-history register W1
//! (i−2), W2 (i−3), then the BRAM-latched word.
//!
//! Only the Q-Learning fixture is modelled (random behaviour, greedy via
//! Qmax) — enough to pin the behavioral model; SARSA differs only in the
//! selection units, which the behavioral equivalence tests already cover
//! against the software reference. The port analysis for SARSA is still
//! worth recording: its ε-greedy *explore* path reads `Q(Sₜ₊₁, Aᵣₐₙ𝒹)`
//! in stage 2, which would need a third Q port — except that on-policy
//! action forwarding makes iteration i+1's stage-1 read redundant
//! (`Q(Sₜ₊₁, Aₜ₊₁)` is exactly the value stage 2 of iteration i just
//! obtained), freeing the stage-1 read port for the explore read. The
//! paper's §V-B forwarding sentence is therefore not just a convenience:
//! it is what keeps the SARSA engine within dual-port BRAM limits.

use crate::config::AccelConfig;
use qtaccel_core::policy::Policy;
use qtaccel_core::qtable::QTable;
use qtaccel_core::trainer::seed_unit;
use qtaccel_envs::{sa_index, Action, Environment, RewardTable, State};
use qtaccel_fixed::QValue;
use qtaccel_hdl::bram::{Bram, BramPort};
use qtaccel_hdl::lfsr::Lfsr32;
use qtaccel_hdl::pipeline::CycleStats;
use qtaccel_hdl::rng::{RngSource, SeedSequence};

/// Iteration state carried from stage 1 into stage 2.
#[derive(Debug, Clone, Copy)]
struct S2Reg {
    s: State,
    a: Action,
    s_next: State,
}

/// Iteration state carried from stage 2 into stage 3.
#[derive(Debug, Clone, Copy)]
struct S3Reg<V> {
    s: State,
    a: Action,
    s_next: State,
    /// BRAM-latched `Q(Sₜ,Aₜ)` (pre-forwarding).
    q_sa_bram: V,
    /// BRAM-latched reward.
    r: V,
}

/// Iteration state carried from stage 3 into stage 4.
#[derive(Debug, Clone, Copy)]
struct S4Reg<V> {
    s: State,
    a: Action,
    q_new: V,
    /// BRAM-latched `Qmax[Sₜ]` for the read-modify-write
    /// (pre-forwarding).
    qmax_rmw_bram: (V, Action),
}

/// A retired write, held in the write-history shift register.
#[derive(Debug, Clone, Copy)]
struct HistQ<V> {
    addr: usize,
    value: V,
}

/// A retired (conditional) Qmax write.
#[derive(Debug, Clone, Copy)]
struct HistQmax<V> {
    s: State,
    value: (V, Action),
}

/// The structural Q-Learning pipeline.
#[derive(Debug, Clone)]
pub struct StructuralQLearning<V> {
    num_states: usize,
    num_actions: usize,
    alpha_v: V,
    one_minus_alpha: V,
    alpha_gamma: V,
    q_bram: Bram<V>,
    r_bram: Bram<V>,
    qmax_a: Bram<(V, Action)>,
    qmax_b: Bram<(V, Action)>,
    start_rng: Lfsr32,
    behavior_rng: Lfsr32,
    // Architectural state registers.
    cur_state: State,
    restart: bool,
    // Pipeline registers.
    s2: Option<S2Reg>,
    s3: Option<S3Reg<V>>,
    s4: Option<S4Reg<V>>,
    // Write-history shift registers (W1 = last cycle, W2 = two ago).
    w1: Option<HistQ<V>>,
    w2: Option<HistQ<V>>,
    w1_qmax: Option<HistQmax<V>>,
    w2_qmax: Option<HistQmax<V>>,
    stats: CycleStats,
}

impl<V: QValue> StructuralQLearning<V> {
    /// Build the structural pipeline for `env`. Policies are fixed to the
    /// Q-Learning fixture; α, γ and the seed come from `config`.
    pub fn new<E: Environment>(env: &E, config: AccelConfig) -> Self {
        assert_eq!(
            config.trainer.behavior,
            Policy::Random,
            "structural model implements the Q-Learning fixture"
        );
        let seeds = SeedSequence::new(config.trainer.seed);
        let alpha_v = V::from_f64(config.trainer.alpha);
        let gamma_v = V::from_f64(config.trainer.gamma);
        let (s, a) = (env.num_states(), env.num_actions());
        let width = V::storage_bits();

        let mut r_bram = Bram::<V>::new(s * a, width);
        let rewards = RewardTable::<V>::from_env(env);
        for (i, v) in rewards.as_slice().iter().enumerate() {
            r_bram.poke(i, *v);
        }
        // Qmax init file: random action fields, identical stream to the
        // behavioral model (seed bank 0).
        let mut qmax_a = Bram::<(V, Action)>::new(s, width + 8);
        let mut qmax_b = Bram::<(V, Action)>::new(s, width + 8);
        let mut init_rng = Lfsr32::new(seeds.derive(seed_unit::of(0, seed_unit::QMAX_INIT)));
        for i in 0..s {
            let a0 = init_rng.below(a as u32);
            qmax_a.poke(i, (V::zero(), a0));
            qmax_b.poke(i, (V::zero(), a0));
        }

        Self {
            num_states: s,
            num_actions: a,
            alpha_v,
            one_minus_alpha: alpha_v.one_minus(),
            alpha_gamma: alpha_v.mul(gamma_v),
            q_bram: Bram::new(s * a, width),
            r_bram,
            qmax_a,
            qmax_b,
            start_rng: Lfsr32::new(seeds.derive(seed_unit::of(0, seed_unit::START))),
            behavior_rng: Lfsr32::new(seeds.derive(seed_unit::of(0, seed_unit::BEHAVIOR))),
            cur_state: 0,
            restart: true,
            s2: None,
            s3: None,
            s4: None,
            w1: None,
            w2: None,
            w1_qmax: None,
            w2_qmax: None,
            stats: CycleStats {
                fill_bubbles: 3,
                ..CycleStats::default()
            },
        }
    }

    /// The freshest visible value for Q address `addr` at a stage-3
    /// consumer: stage-4 register → W1 → W2 → BRAM-latched word.
    fn forward_q(&mut self, addr: usize, bram_value: V) -> V {
        if let Some(s4) = &self.s4 {
            if sa_index(s4.s, s4.a, self.num_actions) == addr {
                self.stats.forwards += 1;
                return s4.q_new;
            }
        }
        if let Some(w) = &self.w1 {
            if w.addr == addr {
                self.stats.forwards += 1;
                return w.value;
            }
        }
        if let Some(w) = &self.w2 {
            if w.addr == addr {
                self.stats.forwards += 1;
                return w.value;
            }
        }
        bram_value
    }

    /// The freshest visible Qmax entry for state `s` given the sources
    /// younger than a read issued in the previous cycle: the i−1 write
    /// (W1) and the i−2 write (W2). (The stage-4 register's write happens
    /// this cycle and is handled by the caller where architecture
    /// requires it.)
    fn forward_qmax_hist(&mut self, s: State, latched: (V, Action)) -> (V, Action) {
        if let Some(w) = &self.w1_qmax {
            if w.s == s {
                self.stats.forwards += 1;
                return w.value;
            }
        }
        if let Some(w) = &self.w2_qmax {
            if w.s == s {
                self.stats.forwards += 1;
                return w.value;
            }
        }
        latched
    }

    /// Advance one clock cycle. At steady state one sample retires per
    /// call.
    pub fn tick<E: Environment>(&mut self, env: &E) {
        debug_assert_eq!(env.num_states(), self.num_states);
        debug_assert_eq!(env.num_actions(), self.num_actions);

        // ---- Stage 4: writeback (iteration i−3) ------------------------
        // Runs first: its q_new must be visible to stage 3's forwarding
        // mux in the same cycle (the classic EX→MEM bypass direction).
        let mut retiring: Option<(HistQ<V>, Option<HistQmax<V>>)> = None;
        if let Some(s4) = self.s4 {
            let addr = sa_index(s4.s, s4.a, self.num_actions);
            self.q_bram.issue_write(BramPort::B, addr, s4.q_new);
            // RMW comparator: freshest Qmax[s] = W1/W2 forwards over the
            // BRAM-latched word.
            let current = self.forward_qmax_hist(s4.s, s4.qmax_rmw_bram);
            let qmax_write = if s4.q_new.vcmp(current.0) == core::cmp::Ordering::Greater {
                let entry = (s4.q_new, s4.a);
                self.qmax_a.issue_write(BramPort::B, s4.s as usize, entry);
                self.qmax_b.issue_write(BramPort::B, s4.s as usize, entry);
                Some(HistQmax {
                    s: s4.s,
                    value: entry,
                })
            } else {
                None
            };
            retiring = Some((
                HistQ {
                    addr,
                    value: s4.q_new,
                },
                qmax_write,
            ));
            self.stats.samples += 1;
        }

        // ---- Stage 3: compute (iteration i−2) --------------------------
        let new_s4 = if let Some(s3) = self.s3 {
            let addr = sa_index(s3.s, s3.a, self.num_actions);
            let q_sa = self.forward_q(addr, s3.q_sa_bram);
            // Greedy target: Qmax[Sₜ₊₁] read issued by stage 2 last
            // cycle on replica A; forward from the i−1 stage-4 write
            // (performed above, captured in `retiring`) and the history.
            let latched = self
                .qmax_a
                .read_data(BramPort::A)
                .expect("stage-2 qmax read in flight");
            let mut q_next_entry = self.forward_qmax_hist(s3.s_next, latched);
            if let Some((_, Some(qw))) = &retiring {
                if qw.s == s3.s_next {
                    self.stats.forwards += 1;
                    q_next_entry = qw.value;
                }
            }
            // The RMW read of Qmax[Sₜ] issued last cycle on replica B;
            // its forwarding (i−1, i−2 relative to the *consumer*)
            // happens at stage 4 next cycle via the history registers,
            // but the i−1 write retiring THIS cycle must be captured now
            // or it would age out of the 2-deep history by then.
            let mut rmw = self
                .qmax_b
                .read_data(BramPort::A)
                .expect("stage-2 rmw read in flight");
            if let Some((_, Some(qw))) = &retiring {
                if qw.s == s3.s {
                    rmw = qw.value;
                }
            }
            let q_new = self
                .one_minus_alpha
                .mul(q_sa)
                .add(self.alpha_v.mul(s3.r))
                .add(self.alpha_gamma.mul(q_next_entry.0));
            Some(S4Reg {
                s: s3.s,
                a: s3.a,
                q_new,
                qmax_rmw_bram: rmw,
            })
        } else {
            None
        };

        // ---- Stage 2: latch stage-1 reads, issue stage-2 reads ---------
        let new_s3 = if let Some(s2) = self.s2 {
            let q_sa_bram = self
                .q_bram
                .read_data(BramPort::A)
                .expect("stage-1 Q read in flight");
            let r = self
                .r_bram
                .read_data(BramPort::A)
                .expect("stage-1 R read in flight");
            // Issue the greedy read for Sₜ₊₁ (replica A) and the RMW
            // read for Sₜ (replica B).
            self.qmax_a.issue_read(BramPort::A, s2.s_next as usize);
            self.qmax_b.issue_read(BramPort::A, s2.s as usize);
            Some(S3Reg {
                s: s2.s,
                a: s2.a,
                s_next: s2.s_next,
                q_sa_bram,
                r,
            })
        } else {
            None
        };

        // ---- Stage 1: select state + action, transition, issue reads ---
        let s = if self.restart {
            env.random_start(&mut self.start_rng)
        } else {
            self.cur_state
        };
        let a = self.behavior_rng.below(self.num_actions as u32);
        let s_next = env.transition(s, a);
        self.q_bram
            .issue_read(BramPort::A, sa_index(s, a, self.num_actions));
        self.r_bram
            .issue_read(BramPort::A, sa_index(s, a, self.num_actions));
        self.cur_state = s_next;
        self.restart = env.is_terminal(s_next);
        let new_s2 = Some(S2Reg { s, a, s_next });

        // ---- Clock edge: commit BRAM ops, rotate registers -------------
        self.q_bram.tick();
        self.r_bram.tick();
        self.qmax_a.tick();
        self.qmax_b.tick();
        self.s4 = new_s4;
        self.s3 = new_s3;
        self.s2 = new_s2;
        if let Some((hq, hqm)) = retiring {
            self.w2 = self.w1.take();
            self.w1 = Some(hq);
            self.w2_qmax = self.w1_qmax.take();
            // Shift in this cycle's qmax write (or an empty slot, keeping
            // the age structure when no write happened).
            self.w1_qmax = hqm;
        }
        self.stats.cycles += 1;
    }

    /// Run until `n` samples retire.
    pub fn run_samples<E: Environment>(&mut self, env: &E, n: u64) -> CycleStats {
        let target = self.stats.samples + n;
        while self.stats.samples < target {
            self.tick(env);
        }
        self.stats
    }

    /// Cycle counters.
    pub fn stats(&self) -> CycleStats {
        self.stats
    }

    /// Extract the architectural Q-table: BRAM contents plus in-flight
    /// pipeline values, applied oldest → youngest.
    pub fn q_table(&self) -> QTable<V> {
        let mut mem: Vec<V> = self.q_bram.contents().to_vec();
        for h in [&self.w2, &self.w1].into_iter().flatten() {
            mem[h.addr] = h.value;
        }
        if let Some(s4) = &self.s4 {
            mem[sa_index(s4.s, s4.a, self.num_actions)] = s4.q_new;
        }
        let mut q = QTable::new(self.num_states, self.num_actions);
        for s in 0..self.num_states as State {
            for a in 0..self.num_actions as Action {
                q.set(s, a, mem[sa_index(s, a, self.num_actions)]);
            }
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AccelPipeline;
    use qtaccel_envs::{ActionSet, GridWorld};
    use qtaccel_fixed::{Q16_16, Q8_8};

    fn cfg(seed: u64) -> AccelConfig {
        AccelConfig::default().with_seed(seed)
    }

    #[test]
    fn one_sample_per_cycle_after_fill() {
        let g = GridWorld::builder(8, 8).goal(7, 7).build();
        let mut p = StructuralQLearning::<Q8_8>::new(&g, cfg(1));
        let stats = p.run_samples(&g, 10_000);
        assert_eq!(stats.samples, 10_000);
        assert_eq!(stats.cycles, 10_003, "3-cycle fill, then 1/cycle");
    }

    #[test]
    fn structural_matches_behavioral_bit_exactly() {
        for seed in [1u64, 7, 42, 999] {
            let g = GridWorld::builder(8, 8).goal(7, 7).obstacle(3, 3).build();
            let mut structural = StructuralQLearning::<Q8_8>::new(&g, cfg(seed));
            let mut behavioral = AccelPipeline::<Q8_8>::new(&g, cfg(seed), 0);
            structural.run_samples(&g, 30_000);
            behavioral.run_samples(&g, 30_000);
            assert_eq!(
                structural.q_table().as_slice(),
                behavioral.q_table().as_slice(),
                "seed {seed}: structural wiring diverged from behavioral model"
            );
        }
    }

    #[test]
    fn structural_matches_behavioral_on_tiny_hazard_heavy_worlds() {
        // 2x2 worlds maximize consecutive-update hazards: every forwarding
        // path gets exercised.
        for seed in [3u64, 11, 77] {
            let g = GridWorld::builder(2, 2).goal(1, 1).build();
            let mut structural = StructuralQLearning::<Q16_16>::new(&g, cfg(seed));
            let mut behavioral = AccelPipeline::<Q16_16>::new(&g, cfg(seed), 0);
            structural.run_samples(&g, 20_000);
            behavioral.run_samples(&g, 20_000);
            assert_eq!(
                structural.q_table().as_slice(),
                behavioral.q_table().as_slice(),
                "seed {seed}"
            );
            assert!(structural.stats().forwards > 0, "hazards must fire");
        }
    }

    #[test]
    fn structural_matches_on_eight_action_grids() {
        let g = GridWorld::builder(4, 4)
            .goal(3, 3)
            .actions(ActionSet::Eight)
            .build();
        let mut structural = StructuralQLearning::<Q8_8>::new(&g, cfg(5));
        let mut behavioral = AccelPipeline::<Q8_8>::new(&g, cfg(5), 0);
        structural.run_samples(&g, 25_000);
        behavioral.run_samples(&g, 25_000);
        assert_eq!(
            structural.q_table().as_slice(),
            behavioral.q_table().as_slice()
        );
    }

    #[test]
    fn bram_port_activity_is_within_dual_port_limits() {
        // Every memory sees at most one read and one write per cycle —
        // the constraint that forced the Qmax replication.
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        let mut p = StructuralQLearning::<Q8_8>::new(&g, cfg(9));
        let n = 5_000;
        p.run_samples(&g, n);
        let cycles = p.stats().cycles;
        assert!(p.q_bram.stats().reads <= cycles);
        assert!(p.q_bram.stats().writes <= cycles);
        assert!(p.qmax_a.stats().reads <= cycles);
        assert!(p.qmax_b.stats().reads <= cycles);
        // The reward BRAM is read-only.
        assert_eq!(p.r_bram.stats().writes, 0);
    }

    #[test]
    #[should_panic(expected = "Q-Learning fixture")]
    fn rejects_non_q_learning_config() {
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        let mut c = cfg(1);
        c.trainer.behavior = Policy::Greedy;
        StructuralQLearning::<Q8_8>::new(&g, c);
    }
}
