#![deny(missing_docs)]

//! QTAccel — the cycle-accurate model of the paper's contribution.
//!
//! This crate implements the generic 4-stage pipelined QRL accelerator of
//! §IV (Fig. 1) as a cycle-accurate simulator:
//!
//! * [`pipeline`] — the pipeline core: per-cycle stage scheduling,
//!   one-cycle-latency BRAM images, and the **hazard network** that
//!   handles the read-after-write dependencies between consecutive
//!   updates. Three hazard modes make the headline claim testable:
//!   [`HazardMode::Forwarding`] (the paper's design: one sample retired
//!   every clock), [`HazardMode::StallOnly`] (a naive design that holds
//!   the front end instead — the `ablation_forwarding` experiment), and
//!   [`HazardMode::Ignore`] (no interlock at all: stale operands, wrong
//!   values — demonstrates that the dependency handling is *necessary*).
//! * [`qlearning`] / [`sarsa`] — the two §V engine customizations:
//!   Q-Learning (random behaviour, greedy update via the Qmax array) and
//!   SARSA (ε-greedy, on-policy action forwarding from stage 2 to
//!   stage 1).
//! * [`multi`] — the §VII-A parallel-pipeline configurations: two
//!   state-sharing pipelines over dual-port BRAM with write-collision
//!   arbitration (Fig. 8) and N independent pipelines over partitioned
//!   state spaces (Fig. 9).
//! * `interleave` (crate-internal) — the K-way interleaved multi-stream fast path
//!   (DESIGN.md §2.12): several pipelines' sample streams advanced one
//!   step per round in one loop, so their Q-row loads overlap as
//!   independent dependency chains; packed transition/reward words and
//!   batched LFSR leaps supply the data-level parallelism. Reached via
//!   [`FastLayout::Interleaved`] and
//!   `IndependentPipelines::train_batch_with`.
//! * [`executor`] — the host-side scale-out layer: a persistent
//!   [`ShardedExecutor`] worker pool with a chunked work queue that runs
//!   the `multi` configurations on however many cores the host offers
//!   (bit-identical results at any worker count), plus the sharded
//!   `train_batch` API with cache-blocked Q-table layouts. Pools built
//!   with [`ShardedExecutor::new_instrumented`] expose
//!   [`ExecutorMetrics`] — per-worker busy/idle time, chunk-latency
//!   histograms, queue-depth gauges — for the DESIGN.md §2.10 metrics
//!   service.
//! * [`bandit`] — the §VII-B Multi-Armed Bandit customization: the reward
//!   table is replaced by Irwin–Hall LFSR normal samplers; ε-greedy and
//!   EXP3 (probability-table) arm selection.
//! * [`resources`] — the structural resource model (DSP/BRAM/FF/LUT)
//!   behind Figs. 3, 4, 5 and the modeled throughput behind Fig. 6.
//! * [`fault`] — the fault-tolerance runtime: online SEU injection
//!   against the Q/Qmax memories, the SECDED protection model (codec in
//!   `qtaccel-hdl`), and the background Qmax scrubbing engine that
//!   un-poisons the §V-A monotone latch.
//! * [`checkpoint`] — crash-safe checkpoint/restore of the full training
//!   state (atomic write-then-rename, CRC-32-protected, versioned) with
//!   bit-exact resume.
//!
//! Every engine is generic over a `qtaccel_telemetry::TraceSink`
//! (default `NullSink` = telemetry off): attach a counter-bearing sink
//! via the `with_sink` constructors to collect the hardware-style
//! perf-counter bank and structured event trace described in DESIGN.md
//! §2.6 — with the default sink the instrumentation compiles out and the
//! fast path is bit- and speed-identical to the uninstrumented build.
//!
//! The central correctness property, asserted by this crate's tests and
//! the workspace integration tests: **with forwarding enabled, an engine
//! seeded with master seed k produces a bit-identical Q-table to the
//! software golden reference (`qtaccel_core::RefTrainer`) with the same
//! seed, format and Qmax semantics** — while retiring one sample per
//! clock cycle after the 3-cycle fill.

pub mod bandit;
pub mod checkpoint;
pub mod config;
pub mod executor;
pub mod fault;
pub(crate) mod interleave;
pub mod multi;
pub mod pipeline;
pub mod prob_engine;
pub mod qlearning;
pub mod resources;
pub mod sarsa;
pub mod structural;
pub mod trace;

pub use bandit::{BanditAccel, BanditPolicy, StatefulBanditAccel};
pub use checkpoint::CheckpointError;
pub use config::{AccelConfig, HazardMode};
pub use fault::{FaultConfig, FaultStats};
pub use executor::{ExecutorMetrics, ShardedExecutor, WorkerSnapshot};
pub use multi::{
    shard_checkpoint_path, BatchReport, DualPipelineShared, IndependentPipelines, LeaseError,
    ShardRun,
};
pub use pipeline::{AccelPipeline, FastLayout};
pub use prob_engine::{ProbPolicyAccel, WeightRule};
pub use qlearning::QLearningAccel;
pub use resources::AccelResources;
pub use sarsa::SarsaAccel;
pub use structural::StructuralQLearning;
pub use trace::{PipelineTrace, TraceEvent};
