//! The accelerator's fault-tolerance runtime: online SEU injection,
//! a behavioural SECDED protection model, and the Qmax scrubbing engine.
//!
//! ## Why this exists
//!
//! The SEU study (`qtaccel-bench::experiments::seu`) demonstrated that
//! the §V-A Qmax array breaks the Q-table's natural self-healing: the
//! monotone update latches a corrupted maximum forever. A
//! radiation-tolerant deployment therefore needs *online* defences, not
//! post-mortem analysis. This module supplies the two the hardware would
//! carry:
//!
//! * **SECDED ECC** on the Q and Qmax BRAMs (the literal codec lives in
//!   [`qtaccel_hdl::fault::Secded`]; its fabric cost in
//!   [`qtaccel_hdl::resource::secded_report`]). The runtime models it
//!   behaviourally: a strike against a protected memory is *recorded*
//!   (address, bit, and a snapshot of the stored word) instead of
//!   applied, because the read path corrects single-bit errors
//!   combinationally — every consumer sees corrected data, and the
//!   corrected count increments at strike time. A second strike on a
//!   word whose stored value is unchanged since the first is a genuine
//!   double-bit error: both flips land and the uncorrectable count
//!   increments. If the word was rewritten in between, the write
//!   re-encoded it and cleared the latent error, so the new strike
//!   simply replaces the record. (Comparing value snapshots detects
//!   rewrites without hooking every commit; a rewrite that stores the
//!   *identical* word is conservatively treated as no rewrite.)
//! * **Qmax scrubbing** — a background sweep, one state per
//!   [`FaultConfig::scrub_period`] retired samples, that rebuilds the
//!   Qmax entry exactly from the committed Q row (the
//!   `QmaxTable::rebuild_exact` operation, pipelined into idle slots
//!   one entry at a time). This bounds the lifetime of a latched
//!   corrupted maximum to one sweep instead of forever.
//!
//! ## Zero cost when off
//!
//! The pipeline stores the runtime as `Option<Box<FaultRt>>` — `None`
//! unless [`AccelPipeline::enable_faults`] was called — and every hook is
//! gated on `is_some()`, so the fault-free path (including the fused
//! window-register executor and its NullSink throughput gate) is
//! untouched. With a fault config attached the fused executor is
//! ineligible and both remaining engines take the per-sample hook.
//!
//! Note that an *active* scrub is deliberately a behaviour change even
//! without injected faults: in fault-free runs the monotone Qmax entry
//! can sit above the current row maximum (values decay after the latch),
//! and the scrub lowers it to the exact maximum — a drift toward
//! `MaxMode::ExactScan` semantics. Bit-exactness against the unprotected
//! engines is guaranteed precisely when no fault config is attached.
//!
//! [`AccelPipeline::enable_faults`]: crate::AccelPipeline::enable_faults

use qtaccel_fixed::QValue;
use qtaccel_hdl::fault::FaultInjector;
use qtaccel_hdl::rng::SeedSequence;
use qtaccel_telemetry::MetricsRegistry;

/// Fault-environment configuration: SEU rates, protection, scrubbing.
///
/// Rates are per *retired sample* per memory (one Bernoulli opportunity
/// per memory per sample), the natural unit for degradation curves:
/// a rate of `1e-4` means one expected strike per 10 000 samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed for the injectors (campaigns are reproducible).
    pub seed: u64,
    /// SEU probability per retired sample against the Q BRAM.
    pub q_seu_rate: f64,
    /// SEU probability per retired sample against the Qmax BRAM.
    pub qmax_seu_rate: f64,
    /// SECDED-protect the Q and Qmax memories (single-bit correction,
    /// double-bit detection; prices the wider words + codec logic into
    /// the resource report).
    pub ecc: bool,
    /// Scrub one Qmax entry every this many retired samples (0 = off).
    /// A full sweep takes `num_states × scrub_period` samples.
    pub scrub_period: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0xFA_017,
            q_seu_rate: 0.0,
            qmax_seu_rate: 0.0,
            ecc: false,
            scrub_period: 0,
        }
    }
}

impl FaultConfig {
    /// Replace the injector master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the same SEU rate for both memories.
    pub fn with_seu_rate(mut self, rate: f64) -> Self {
        self.q_seu_rate = rate;
        self.qmax_seu_rate = rate;
        self
    }

    /// Set the Q-memory SEU rate only.
    pub fn with_q_seu_rate(mut self, rate: f64) -> Self {
        self.q_seu_rate = rate;
        self
    }

    /// Set the Qmax-memory SEU rate only.
    pub fn with_qmax_seu_rate(mut self, rate: f64) -> Self {
        self.qmax_seu_rate = rate;
        self
    }

    /// Enable/disable SECDED protection.
    pub fn with_ecc(mut self, ecc: bool) -> Self {
        self.ecc = ecc;
        self
    }

    /// Set the scrub cadence (samples per scrubbed entry; 0 disables).
    pub fn with_scrub_period(mut self, period: u64) -> Self {
        self.scrub_period = period;
        self
    }
}

/// Cumulative fault-campaign counters, published as `qtaccel_fault_*`
/// metrics via [`FaultStats::register_into`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Strikes landed against the Q memory.
    pub injected_q: u64,
    /// Strikes landed against the Qmax memory.
    pub injected_qmax: u64,
    /// Single-bit errors corrected by the SECDED read path.
    pub corrected: u64,
    /// Double-bit errors detected but not correctable (data corrupted).
    pub detected_uncorrectable: u64,
    /// Qmax entries visited by the scrubbing engine.
    pub scrub_entries: u64,
    /// Full Qmax sweeps completed.
    pub scrub_rounds: u64,
    /// Scrubbed entries that actually differed from the exact row max
    /// (i.e. repairs, including un-poisoning latched corruption).
    pub scrub_repairs: u64,
}

impl FaultStats {
    /// Total strikes across both memories.
    pub fn injected_total(&self) -> u64 {
        self.injected_q + self.injected_qmax
    }

    /// Publish the counters under the `qtaccel_fault_*` namespace.
    pub fn register_into(&self, reg: &mut MetricsRegistry) {
        reg.set_counter(
            "qtaccel_fault_injected_total",
            "SEU strikes injected across protected memories",
            self.injected_total(),
        );
        reg.set_counter(
            "qtaccel_fault_injected_q_total",
            "SEU strikes injected against the Q BRAM",
            self.injected_q,
        );
        reg.set_counter(
            "qtaccel_fault_injected_qmax_total",
            "SEU strikes injected against the Qmax BRAM",
            self.injected_qmax,
        );
        reg.set_counter(
            "qtaccel_fault_corrected_total",
            "single-bit errors corrected by SECDED",
            self.corrected,
        );
        reg.set_counter(
            "qtaccel_fault_uncorrectable_total",
            "double-bit errors detected but uncorrectable",
            self.detected_uncorrectable,
        );
        reg.set_counter(
            "qtaccel_fault_scrub_entries_total",
            "Qmax entries visited by the scrubbing engine",
            self.scrub_entries,
        );
        reg.set_counter(
            "qtaccel_fault_scrub_rounds_total",
            "full Qmax scrub sweeps completed",
            self.scrub_rounds,
        );
        reg.set_counter(
            "qtaccel_fault_scrub_repairs_total",
            "scrubbed Qmax entries that differed from the exact row max",
            self.scrub_repairs,
        );
    }
}

/// A recorded-but-not-applied strike against an ECC-protected word:
/// the read path corrects it, so memory still holds the clean value;
/// the record is what turns a second hit into a double error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LatentError {
    pub(crate) addr: usize,
    pub(crate) bit: u32,
    /// The stored word (as [`QValue::to_bits`]) at strike time; a later
    /// mismatch means the word was rewritten (re-encoded) in between.
    pub(crate) snapshot: u64,
}

/// Per-pipeline fault runtime, boxed behind `Option` on the pipeline so
/// the fault-free path carries one pointer-sized `None`.
#[derive(Debug, Clone)]
pub(crate) struct FaultRt {
    pub(crate) config: FaultConfig,
    pub(crate) q_inj: FaultInjector,
    pub(crate) qmax_inj: FaultInjector,
    pub(crate) q_latent: Vec<LatentError>,
    pub(crate) qmax_latent: Vec<LatentError>,
    pub(crate) scrub_cursor: usize,
    pub(crate) samples_since_scrub: u64,
    pub(crate) stats: FaultStats,
}

/// Seed-derivation indices for the per-memory injectors (disjoint from
/// nothing — the fault seed space is its own `SeedSequence`).
const SEED_Q: u64 = 0;
const SEED_QMAX: u64 = 1;

impl FaultRt {
    pub(crate) fn new(config: FaultConfig) -> Self {
        let seeds = SeedSequence::new(config.seed);
        Self {
            config,
            q_inj: FaultInjector::new(seeds.derive(SEED_Q), config.q_seu_rate),
            qmax_inj: FaultInjector::new(seeds.derive(SEED_QMAX), config.qmax_seu_rate),
            q_latent: Vec::new(),
            qmax_latent: Vec::new(),
            scrub_cursor: 0,
            samples_since_scrub: 0,
            stats: FaultStats::default(),
        }
    }
}

/// Land one strike on a stored word under the configured protection.
/// Returns `Some(new_word)` when the memory content actually changes
/// (unprotected hit, or a double error breaking through ECC).
pub(crate) fn strike_word<V: QValue>(
    current: V,
    latents: &mut Vec<LatentError>,
    stats: &mut FaultStats,
    ecc: bool,
    addr: usize,
    bit: u32,
) -> Option<V> {
    if !ecc {
        return Some(current.flip_bit(bit));
    }
    match latents.iter().position(|l| l.addr == addr) {
        Some(i) if latents[i].snapshot == QValue::to_bits(current) => {
            let l = latents[i];
            if l.bit == bit {
                // The same cell flipped twice: physically restored.
                // Nothing is in error any more; drop the record.
                latents.swap_remove(i);
                return None;
            }
            // Two live flips in one codeword: detected, not correctable.
            // Both land in the stored data from here on.
            latents.swap_remove(i);
            stats.detected_uncorrectable += 1;
            Some(V::from_bits(l.snapshot).flip_bit(l.bit).flip_bit(bit))
        }
        Some(i) => {
            // The word was rewritten since the recorded strike — the
            // write re-encoded it, clearing the old latent error. The
            // new strike starts a fresh single-bit record.
            latents[i] = LatentError {
                addr,
                bit,
                snapshot: QValue::to_bits(current),
            };
            stats.corrected += 1;
            None
        }
        None => {
            latents.push(LatentError {
                addr,
                bit,
                snapshot: QValue::to_bits(current),
            });
            stats.corrected += 1;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_fixed::Q8_8;

    #[test]
    fn unprotected_strike_flips_the_word() {
        let mut latents = Vec::new();
        let mut stats = FaultStats::default();
        let v = Q8_8::from_f64(1.5);
        let hit = strike_word(v, &mut latents, &mut stats, false, 7, 15);
        assert_eq!(hit, Some(v.flip_bit(15)));
        assert!(latents.is_empty());
        assert_eq!(stats.corrected, 0);
    }

    #[test]
    fn ecc_corrects_single_and_detects_double() {
        let mut latents = Vec::new();
        let mut stats = FaultStats::default();
        let v = Q8_8::from_f64(2.0);
        // First strike: latent, corrected on read, memory clean.
        assert_eq!(strike_word(v, &mut latents, &mut stats, true, 3, 5), None);
        assert_eq!(stats.corrected, 1);
        assert_eq!(latents.len(), 1);
        // Second strike on the same unchanged word, different bit:
        // double error — both flips land.
        let hit = strike_word(v, &mut latents, &mut stats, true, 3, 9);
        assert_eq!(hit, Some(v.flip_bit(5).flip_bit(9)));
        assert_eq!(stats.detected_uncorrectable, 1);
        assert!(latents.is_empty());
    }

    #[test]
    fn rewrite_between_strikes_clears_the_latent_error() {
        let mut latents = Vec::new();
        let mut stats = FaultStats::default();
        let v0 = Q8_8::from_f64(1.0);
        assert_eq!(strike_word(v0, &mut latents, &mut stats, true, 3, 5), None);
        // The training loop rewrote the word (different value): the next
        // strike is a fresh single-bit error, not a double.
        let v1 = Q8_8::from_f64(1.25);
        assert_eq!(strike_word(v1, &mut latents, &mut stats, true, 3, 9), None);
        assert_eq!(stats.corrected, 2);
        assert_eq!(stats.detected_uncorrectable, 0);
        assert_eq!(latents[0].bit, 9);
        assert_eq!(latents[0].snapshot, QValue::to_bits(v1));
    }

    #[test]
    fn same_bit_twice_restores_the_cell() {
        let mut latents = Vec::new();
        let mut stats = FaultStats::default();
        let v = Q8_8::from_f64(1.0);
        assert_eq!(strike_word(v, &mut latents, &mut stats, true, 4, 8), None);
        assert_eq!(strike_word(v, &mut latents, &mut stats, true, 4, 8), None);
        assert!(latents.is_empty(), "toggled-back cell must clear the record");
        assert_eq!(stats.detected_uncorrectable, 0);
    }

    #[test]
    fn config_builders_compose() {
        let c = FaultConfig::default()
            .with_seed(9)
            .with_seu_rate(1e-3)
            .with_qmax_seu_rate(5e-4)
            .with_ecc(true)
            .with_scrub_period(64);
        assert_eq!(c.seed, 9);
        assert_eq!(c.q_seu_rate, 1e-3);
        assert_eq!(c.qmax_seu_rate, 5e-4);
        assert!(c.ecc);
        assert_eq!(c.scrub_period, 64);
    }

    #[test]
    fn stats_publish_under_fault_namespace() {
        let stats = FaultStats {
            injected_q: 3,
            injected_qmax: 2,
            corrected: 4,
            detected_uncorrectable: 1,
            scrub_entries: 10,
            scrub_rounds: 1,
            scrub_repairs: 2,
        };
        let mut reg = MetricsRegistry::new();
        stats.register_into(&mut reg);
        assert_eq!(
            reg.get("qtaccel_fault_injected_total"),
            Some(&qtaccel_telemetry::MetricValue::Counter(5))
        );
        assert_eq!(
            reg.get("qtaccel_fault_corrected_total"),
            Some(&qtaccel_telemetry::MetricValue::Counter(4))
        );
        assert!(reg.get("qtaccel_fault_scrub_repairs_total").is_some());
    }
}
