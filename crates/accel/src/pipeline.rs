//! The cycle-accurate 4-stage pipeline core (Fig. 1).
//!
//! ## Stage timing
//!
//! Iteration *i* enters stage 1 at cycle `c1(i)` and proceeds one stage
//! per cycle:
//!
//! | cycle      | stage | work |
//! |------------|-------|------|
//! | `c1`       | 1     | state select (random start or forwarded Sₜ₊₁), behaviour action, transition function, issue Q(Sₜ,Aₜ) and R(Sₜ,Aₜ) reads, derive `1−α`, `α·γ` |
//! | `c1+1`     | 2     | update-policy action for Sₜ₊₁, issue Q(Sₜ₊₁,Aₜ₊₁) / Qmax(Sₜ₊₁) read |
//! | `c1+2`     | 3     | three multiplies + adder tree (Eq. 3) |
//! | `c1+3`     | 4     | write back Q(Sₜ,Aₜ); monotone Qmax update |
//!
//! With no stalls, `c1(i+1) = c1(i) + 1` — one sample per clock after the
//! 3-cycle fill.
//!
//! ## Hazards
//!
//! A BRAM write issued at cycle `w` is visible only to reads issued at
//! cycles `> w` (read-first port semantics). Consecutive iterations
//! re-read locations the previous 1–3 iterations are still updating, so
//! the design needs the forwarding network of [`HazardMode::Forwarding`]:
//! every read consults the queue of in-flight (pending) writes and the
//! youngest matching value bypasses the BRAM. The model implements all
//! three hazard policies of [`HazardMode`] over an explicitly *delayed*
//! memory image — `q_mem` holds only committed writes, and the pending
//! queue carries (commit-cycle, address, value) triples — so stale reads
//! in `Ignore` mode are real stale values, not emulation shortcuts.
//!
//! ## Host-side cost of the forwarding network
//!
//! The queues are drained once per step (the per-step commit point at the
//! top of [`AccelPipeline::step`]) instead of before every read, and each
//! read resolves its newest in-flight writer through [`FwdIndex`] — an
//! O(1) direct-mapped last-writer map — instead of a linear queue scan.
//! Reads that race a write committing mid-step compare the entry's commit
//! cycle against the read cycle, so cycle/stall/forward/bubble counters
//! are bit-identical to the scan-per-read formulation (pinned by the
//! `hazard_mode_cycle_stats_are_pinned` regression test). This is the
//! cycle-accurate engine; [`AccelPipeline::run_samples_fast`] is the
//! bit-exact fast path that skips the per-cycle bookkeeping entirely.

use std::collections::VecDeque;
use std::path::Path;

use crate::checkpoint::{self, CheckpointError, WordReader, WordWriter};
use crate::config::{AccelConfig, HazardMode};
use crate::fault::{strike_word, FaultConfig, FaultRt, FaultStats, LatentError};
use qtaccel_core::policy::Policy;
use qtaccel_core::qtable::{MaxMode, PackedQTable, QTable, QmaxTable};
use qtaccel_core::trainer::{seed_unit, Transition};
use qtaccel_envs::{sa_index, Action, Environment, RewardTable, State};
use qtaccel_fixed::{QValue, QuantPolicy};
use qtaccel_hdl::lfsr::{Lfsr32, Lfsr32Unrolled};
use qtaccel_hdl::pipeline::CycleStats;
use qtaccel_hdl::rng::{epsilon_greedy_draw, epsilon_to_q32, RngSource, SeedSequence};
use qtaccel_telemetry::{CounterBank, CounterId, Event, MemKind, NullSink, TraceSink};

/// Stage-4 offset from stage 1.
const WRITE_OFFSET: u64 = 3;
/// Pipeline fill depth (cycles before the first retirement).
const FILL: u64 = 3;

/// A write travelling down the pipe, not yet visible in the BRAM image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending<T> {
    commit_cycle: u64,
    addr: usize,
    value: T,
}

/// Number of slots in the direct-mapped forwarding index. Must be a power
/// of two; 64 keeps the whole index in one cache line pair while making
/// address aliasing rare even on large grids.
const FWD_SLOTS: usize = 64;

/// Result of an O(1) last-writer lookup.
enum FwdHit<T> {
    /// No in-flight write maps to the address's slot: a definite miss.
    Miss,
    /// The newest in-flight write to this exact address.
    Newest(Pending<T>),
    /// The slot is occupied by a different address (hash aliasing): the
    /// queue itself must be consulted.
    Aliased,
}

/// Direct-mapped map from BRAM address to the *newest* in-flight write,
/// maintained alongside a pending queue on every push and retirement.
///
/// Soundness relies on two queue invariants: pushes carry strictly
/// increasing commit cycles (each slot therefore always holds the newest
/// write hashing to it), and retirements pop oldest-first (so the slot's
/// entry can only be retired once every same-slot entry is, at which
/// point the slot count reaches zero). A zero count is thus a definite
/// miss, a slot hit on the exact address is the newest matching writer,
/// and only hash aliasing falls back to a linear scan.
#[derive(Debug, Clone)]
struct FwdIndex<T> {
    /// In-flight writes hashing to each slot (exact count).
    counts: [u32; FWD_SLOTS],
    /// Newest in-flight write hashing to each slot.
    slots: [Option<Pending<T>>; FWD_SLOTS],
}

impl<T: Copy> FwdIndex<T> {
    fn new() -> Self {
        Self {
            counts: [0; FWD_SLOTS],
            slots: [None; FWD_SLOTS],
        }
    }

    #[inline(always)]
    fn slot_of(addr: usize) -> usize {
        addr & (FWD_SLOTS - 1)
    }

    /// Record a write pushed onto the companion queue.
    #[inline(always)]
    fn push(&mut self, p: Pending<T>) {
        let h = Self::slot_of(p.addr);
        self.counts[h] += 1;
        self.slots[h] = Some(p);
    }

    /// Record the retirement (commit) of the queue's front entry.
    #[inline(always)]
    fn retire(&mut self, addr: usize) {
        let h = Self::slot_of(addr);
        debug_assert!(self.counts[h] > 0, "retire without matching push");
        self.counts[h] -= 1;
        if self.counts[h] == 0 {
            self.slots[h] = None;
        }
    }

    /// O(1) newest-writer lookup for `addr`.
    #[inline(always)]
    fn newest(&self, addr: usize) -> FwdHit<T> {
        let h = Self::slot_of(addr);
        if self.counts[h] == 0 {
            return FwdHit::Miss;
        }
        match self.slots[h] {
            Some(p) if p.addr == addr => FwdHit::Newest(p),
            _ => FwdHit::Aliased,
        }
    }

    /// Forget everything (companion queue was emptied wholesale).
    fn clear(&mut self) {
        self.counts = [0; FWD_SLOTS];
        self.slots = [None; FWD_SLOTS];
    }
}

/// Capacity of the fast path's in-flight write window. Writes land
/// `WRITE_OFFSET` cycles after issue and stage-1 cycles advance by at
/// least one per sample, so at most `WRITE_OFFSET + 1` writes can be
/// in flight around any read — the hardware's forwarding window.
const FAST_RING: usize = 4;

/// Fixed-capacity ordered window of the most recent writes, the fast
/// path's replacement for a pending queue: no allocation, no per-cycle
/// draining, at most [`FAST_RING`] entries scanned per lookup.
#[derive(Debug, Clone)]
struct WriteRing<T> {
    buf: [Option<Pending<T>>; FAST_RING],
    head: usize,
    len: usize,
}

impl<T: Copy> WriteRing<T> {
    fn new() -> Self {
        Self {
            buf: [None; FAST_RING],
            head: 0,
            len: 0,
        }
    }

    /// Append the newest write, evicting the oldest when full. Eviction
    /// is only legal when the ring mirrors writes already materialized
    /// in memory (the immediate-commit modes); the delayed-commit user
    /// never fills past capacity by the in-flight bound above.
    #[inline(always)]
    fn push(&mut self, p: Pending<T>) {
        if self.len == FAST_RING {
            self.head = (self.head + 1) % FAST_RING;
            self.len -= 1;
        }
        self.buf[(self.head + self.len) % FAST_RING] = Some(p);
        self.len += 1;
    }

    /// Commit cycle of the newest entry for `addr`, if any.
    #[inline(always)]
    fn newest_cc(&self, addr: usize) -> Option<u64> {
        for i in (0..self.len).rev() {
            if let Some(p) = self.buf[(self.head + i) % FAST_RING] {
                if p.addr == addr {
                    return Some(p.commit_cycle);
                }
            }
        }
        None
    }

    /// Apply every write due strictly before `cycle` to `mem`, oldest
    /// first (the delayed-commit drain).
    #[inline(always)]
    fn retire_due<M: FnMut(usize, T)>(&mut self, cycle: u64, mut apply: M) {
        while self.len > 0 {
            let p = self.buf[self.head].expect("ring slot within len");
            if p.commit_cycle >= cycle {
                break;
            }
            apply(p.addr, p.value);
            self.buf[self.head] = None;
            self.head = (self.head + 1) % FAST_RING;
            self.len -= 1;
        }
    }

    /// Entries oldest → newest.
    fn iter(&self) -> impl Iterator<Item = Pending<T>> + '_ {
        (0..self.len).filter_map(move |i| self.buf[(self.head + i) % FAST_RING])
    }
}

/// Fused per-`(s, a)` record for the window-register executor: packed
/// transition (next state in the low bits, terminal flag in bit 31),
/// reward, and the live Q word, interleaved so every table word an
/// iteration touches shares one contiguous slab (a single cache line per
/// state row for `Q8_8` × 8 actions, versus three separate arrays).
///
/// The transition/reward columns are a BRAM-style image of the
/// environment, snapshotted on first fast-path use — exactly as the
/// reward table is snapshotted at construction, and as the hardware keeps
/// both tables memory-resident. The Q column is loaded from the committed
/// `q_mem` at executor entry and written back at exit.
#[derive(Debug, Clone, Copy)]
struct FastCell<V> {
    next_packed: u32,
    reward: V,
    q: V,
}

/// Terminal-state flag in [`FastCell::next_packed`] (and in the low word
/// of the interleaved executor's packed transition image — see
/// `crate::interleave`).
pub(crate) const TERMINAL_BIT: u32 = 1 << 31;

/// Quantized-storage runtime (DESIGN.md §2.14): the stored-format policy
/// plus the dedicated stochastic-rounding dither LFSR unit
/// (`seed_unit::QUANT`), consumed once per retired sample in retirement
/// order by every executor.
#[derive(Debug, Clone)]
struct QuantRt {
    policy: QuantPolicy,
    rng: Lfsr32,
}

/// Split (structure-of-arrays) environment image for the *packed
/// quantized* executor: an aligned `u32` per `(s, a)` that packs the
/// next state (low 22 bits), the terminal flag and the reward's stored
/// code, next to a mutable working-format Q column kept *on the storage
/// grid* (every write runs the stochastic rounder, so dequantized codes
/// are the only values the column ever holds). Holding the live column
/// in the working format is a host-executor representation choice, not
/// a semantic one: the architectural stored image is `stored_bits` wide
/// — [`PackedQTable`] materialises it, the resource model prices it —
/// and the on-grid column round-trips through it losslessly, while the
/// hot loop keeps only the writeback rounder on its dependency chain
/// (no per-read dequantize, no per-write encode). The split still
/// narrows the read-only transition stream to half of [`FastCell`]'s
/// 8 bytes.
#[derive(Debug, Clone)]
struct PackedImage<V> {
    nr: Vec<u32>,
    q: Vec<V>,
}

/// Next-state field of [`PackedImage::nr`] words (the packed executor
/// requires `|S| ≤ 2^22`).
const PK_STATE_MASK: u32 = (1 << 22) - 1;
/// Terminal-state flag in [`PackedImage::nr`] words.
const PK_TERMINAL: u32 = 1 << 22;
/// Bit offset of the reward's stored code in [`PackedImage::nr`] words
/// (requires `stored_bits ≤ 8`).
const PK_REWARD_SHIFT: u32 = 24;

/// Invalid window-register address: no real write can carry it (the
/// fused and interleaved executors track only 3-slot address windows).
pub(crate) const NO_ADDR: usize = usize::MAX;

/// Q-table traversal layout for the fast-path executor — the
/// cache-blocking knob batch training tunes per shard.
///
/// Both layouts are bit-identical in results (the `fast_path` and
/// `scaling` equivalence suites pin this); they differ only in how the
/// working set streams through the host cache hierarchy:
///
/// * [`ActionMajor`](Self::ActionMajor) — the fused [`FastCell`] slab:
///   each state row's transition/reward/Q words interleave contiguously
///   (one cache line per `Q8_8` × 8-action row). Fastest when the slab
///   fits in-cache; costs an `O(|S|·|A|)` image build on first use and
///   triples the bytes per row when it misses.
/// * [`StateMajor`](Self::StateMajor) — the general fast path over the
///   separate Q/reward/transition columns: each access touches only the
///   2-byte Q word plus the column entries, the smaller footprint when
///   the table far exceeds cache (and the only executor for
///   instrumented sinks and non-default hazard/Qmax configs).
/// * [`Auto`](Self::Auto) — the historical heuristic: divert to the
///   fused slab when the configuration allows it and the run is long
///   enough to amortize the image build.
/// * [`Interleaved`](Self::Interleaved) — the K-way multi-stream
///   executor (`crate::interleave`, DESIGN.md §2.12): single-pipeline
///   runs step one stream through it; `IndependentPipelines::
///   train_batch_with` interleaves several pipelines' sample streams in
///   one loop so their Q-row loads overlap. Eligibility mirrors the
///   fused slab plus a ≤32-bit storage width (the packed transition
///   image carries the reward in the upper lanes of a `u64` word).
///
/// `bench_scaling` measures the crossover; `IndependentPipelines::
/// train_batch` picks a layout per shard from its table footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastLayout {
    /// Divert to the fused slab when eligible and amortized (default).
    Auto,
    /// Force the fused interleaved slab whenever the config is eligible.
    ActionMajor,
    /// Force the general separate-column executor.
    StateMajor,
    /// Force the K-way interleaved multi-stream executor whenever the
    /// config is eligible (falls back to the general executor, like a
    /// forced `ActionMajor`, when it is not).
    Interleaved,
}

/// A pipeline's architectural state checked out to the interleaved
/// multi-stream executor (`crate::interleave`) for the duration of one
/// group run, and checked back in at exit.
///
/// The Q and Qmax tables are *moved* out (the interleaved loop writes
/// them directly under immediate-commit semantics — no column resync at
/// entry or exit, unlike the fused slab), the RNG registers are copied,
/// and the 3-slot forwarding address windows carry the in-flight write
/// history exactly as `run_fast_forwarding_qmax` tracks it. The loop
/// constants (`num_actions`, stage-1 derived multiplier values) ride
/// along so the executor never needs the pipeline reference mid-run.
pub(crate) struct FastLane<V> {
    pub(crate) q: Vec<V>,
    pub(crate) qmax: Vec<(V, Action)>,
    pub(crate) start_rng: Lfsr32,
    pub(crate) behavior_rng: Lfsr32,
    pub(crate) update_rng: Lfsr32,
    pub(crate) carry: Option<(State, Option<Action>)>,
    /// Addresses of the 3 youngest in-flight Q writes ([0] = newest).
    pub(crate) qw_addr: [usize; 3],
    /// Addresses of the 3 youngest in-flight Qmax writes.
    pub(crate) mw_addr: [usize; 3],
    pub(crate) entry_c1: u64,
    pub(crate) num_actions: usize,
    pub(crate) one_minus_alpha: V,
    pub(crate) alpha_v: V,
    pub(crate) alpha_gamma: V,
}

/// The pipeline core shared by the Q-Learning and SARSA engines (and, in
/// pairs, by the dual-pipeline configuration).
///
/// Generic over a [`TraceSink`] chosen at compile time. With the default
/// [`NullSink`] every instrumentation site monomorphizes away and the
/// specialized fast executors stay engaged — zero cost when telemetry is
/// off. An instrumented sink maintains the [`CounterBank`] (and, for
/// event-bearing sinks, receives cycle-stamped [`Event`]s from the
/// cycle-accurate engine; the fast path mirrors the counters but emits no
/// events — see [`run_samples_fast`](Self::run_samples_fast)).
#[derive(Debug, Clone)]
pub struct AccelPipeline<V, S: TraceSink = NullSink> {
    num_states: usize,
    num_actions: usize,
    config: AccelConfig,
    // Which RNG seed bank this pipeline draws from (multi-pipeline
    // configurations stride their units by this index).
    pipeline_index: u64,
    // Stage-1 derived constants.
    alpha_v: V,
    one_minus_alpha: V,
    alpha_gamma: V,
    // Enable-gated LFSR units.
    start_rng: Lfsr32,
    behavior_rng: Lfsr32,
    update_rng: Lfsr32,
    // Committed memory images (the BRAM contents).
    q_mem: Vec<V>,
    qmax_mem: Vec<(V, Action)>,
    rewards: RewardTable<V>,
    // Fused (transition, reward, Q) image for the window-register
    // executor, built once on first use (see `run_fast_forwarding_qmax`).
    fast_image: Option<Vec<FastCell<V>>>,
    // Packed (transition, reward) words for the interleaved multi-stream
    // executor, built once on first use and shared (`Arc`) across the
    // streams of a group when their environments coincide (see
    // `crate::interleave`). Like `fast_image`, a derived cache of
    // immutable environment data — never checkpointed.
    tr_image: Option<std::sync::Arc<Vec<u64>>>,
    // Split (transition | terminal | reward code) + on-grid Q-column
    // image for the packed quantized executor; built on first use,
    // invalidated whenever the quantization policy changes.
    packed_image: Option<PackedImage<V>>,
    // In-flight writes (queues are the source of truth; the indices are
    // O(1) newest-writer accelerators kept in sync on push/retire).
    pending_q: VecDeque<Pending<V>>,
    pending_qmax: VecDeque<Pending<(V, Action)>>,
    fwd_q: FwdIndex<V>,
    fwd_qmax: FwdIndex<(V, Action)>,
    // Forwarding-network visibility horizons. The BRAM controller
    // retires every write due before the highest cycle it has serviced
    // so far — notably the stage-4 read-modify-write at `c1 + 3`, which
    // runs *ahead* of the next iteration's stage-1/2 reads. A write
    // whose commit cycle falls below the horizon has left the pipe and
    // is invisible to the forwarding network (no forward counted, no
    // stall imposed) even for a read issued before its commit cycle.
    drain_horizon_q: u64,
    drain_horizon_qmax: u64,
    // Inter-iteration carry: (state, forwarded on-policy action).
    carry: Option<(State, Option<Action>)>,
    next_c1: u64,
    stats: CycleStats,
    // Telemetry: perf-counter bank (live only when `S::COUNTERS`) and
    // the event sink (fed only when `S::EVENTS`).
    counters: CounterBank,
    sink: S,
    // Fault-tolerance runtime (None = fault-free: every hook compiles
    // to one branch on a pointer-sized option, and the fused executor
    // stays engaged).
    fault: Option<Box<FaultRt>>,
    // Quantized-storage runtime (None = full-width storage: the
    // writeback hook is one branch on the option, and the unquantized
    // fast paths stay engaged — DESIGN.md §2.14).
    quant: Option<QuantRt>,
    // Lease-fencing epoch (DESIGN.md §2.16): the cluster worker stamps
    // this before each durable save so a checkpoint names the
    // assignment epoch it was written under. 0 outside cluster runs.
    lease_epoch: u64,
}

impl<V: QValue> AccelPipeline<V> {
    /// Build a pipeline for `env`'s dimensions. `pipeline_index` selects
    /// the RNG seed bank (0 for single-pipeline configurations — the bank
    /// the software golden reference uses). Telemetry is disabled
    /// ([`NullSink`]); use [`AccelPipeline::with_sink`] to instrument.
    pub fn new<E: Environment>(env: &E, config: AccelConfig, pipeline_index: u64) -> Self {
        Self::with_sink(env, config, pipeline_index, NullSink)
    }
}

impl<V: QValue, S: TraceSink> AccelPipeline<V, S> {
    /// Build an instrumented pipeline: like [`AccelPipeline::new`] but
    /// attaching `sink`, which selects the telemetry level at compile
    /// time (see [`TraceSink`]).
    pub fn with_sink<E: Environment>(
        env: &E,
        config: AccelConfig,
        pipeline_index: u64,
        sink: S,
    ) -> Self {
        let seeds = SeedSequence::new(config.trainer.seed);
        let alpha_v = V::from_f64(config.trainer.alpha);
        let gamma_v = V::from_f64(config.trainer.gamma);
        let (s, a) = (env.num_states(), env.num_actions());
        assert!(s > 0 && a > 0, "environment must be non-empty");
        // Qmax BRAM init file: random greedy-action fields (see
        // QmaxTable::randomize_actions for why this is required).
        let mut qmax_mem = vec![(V::zero(), 0 as Action); s];
        let mut init_rng = Lfsr32::new(
            seeds.derive(seed_unit::of(pipeline_index, seed_unit::QMAX_INIT)),
        );
        for e in &mut qmax_mem {
            e.1 = init_rng.below(a as u32);
        }
        let mut counters = CounterBank::new();
        if S::COUNTERS {
            // The pipeline-fill bubbles are a property of the pipe, not
            // of any iteration: account them at construction, matching
            // `CycleStats::fill_bubbles`.
            counters.add(CounterId::FillCycles, FILL);
        }
        let mut sink = sink;
        if S::HEALTH {
            // Size the probe's coverage bitset and denominator now so
            // coverage reads correctly even before the state space is
            // fully explored.
            if let Some(probe) = sink.health_mut() {
                probe.bind_states(s as u64);
            }
        }
        Self {
            num_states: s,
            num_actions: a,
            config,
            pipeline_index,
            alpha_v,
            one_minus_alpha: alpha_v.one_minus(),
            alpha_gamma: alpha_v.mul(gamma_v),
            start_rng: Lfsr32::new(seeds.derive(seed_unit::of(pipeline_index, seed_unit::START))),
            behavior_rng: Lfsr32::new(
                seeds.derive(seed_unit::of(pipeline_index, seed_unit::BEHAVIOR)),
            ),
            update_rng: Lfsr32::new(
                seeds.derive(seed_unit::of(pipeline_index, seed_unit::UPDATE)),
            ),
            q_mem: vec![V::zero(); s * a],
            qmax_mem,
            rewards: RewardTable::from_env(env),
            fast_image: None,
            tr_image: None,
            packed_image: None,
            pending_q: VecDeque::new(),
            pending_qmax: VecDeque::new(),
            fwd_q: FwdIndex::new(),
            fwd_qmax: FwdIndex::new(),
            drain_horizon_q: 0,
            drain_horizon_qmax: 0,
            carry: None,
            next_c1: 0,
            stats: CycleStats {
                fill_bubbles: FILL,
                ..CycleStats::default()
            },
            counters,
            sink,
            fault: None,
            quant: None,
            lease_epoch: 0,
        }
    }

    /// Switch the pipeline to a quantized stored Q-table format
    /// (DESIGN.md §2.14): Q entries are held on `policy`'s grid, every
    /// writeback is stochastically rounded using the dedicated
    /// `seed_unit::QUANT` dither LFSR, and the reward ROM is snapped to
    /// the same grid — so the reference trainer, the cycle-accurate
    /// engine and every fast executor compute bit-identical updates.
    /// Must be called before training starts (mid-run adoption happens
    /// only through checkpoint restore).
    pub fn enable_quant(&mut self, policy: QuantPolicy) {
        assert_eq!(
            self.stats.samples, 0,
            "enable_quant before training starts"
        );
        policy.validate_for::<V>();
        self.rewards.map_values(|v| policy.round_nearest(v));
        // Re-encode the (still initial) memory images onto the grid so
        // the on-grid invariant holds from the first sample.
        for v in &mut self.q_mem {
            *v = policy.round_nearest(*v);
        }
        for e in &mut self.qmax_mem {
            e.0 = policy.round_nearest(e.0);
        }
        // Derived caches embed rewards / Q codes: rebuild on next use.
        self.fast_image = None;
        self.tr_image = None;
        self.packed_image = None;
        let seeds = SeedSequence::new(self.config.trainer.seed);
        let rng = Lfsr32::new(
            seeds.derive(seed_unit::of(self.pipeline_index, seed_unit::QUANT)),
        );
        self.quant = Some(QuantRt { policy, rng });
    }

    /// The quantization policy in force, if any.
    pub fn quant(&self) -> Option<&QuantPolicy> {
        self.quant.as_ref().map(|q| &q.policy)
    }

    /// The architectural Q-table in its packed stored form — the BRAM
    /// image a synthesized quantized design would hold (`⌊64/b⌋` codes
    /// per word). `None` unless quantization is enabled. The pack is
    /// lossless because every architectural Q word is on the stored
    /// grid.
    pub fn packed_q_table(&self) -> Option<PackedQTable> {
        self.quant
            .as_ref()
            .map(|q| PackedQTable::from_qtable(&self.q_table(), q.policy))
    }

    /// The configuration in force.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// The perf-counter bank. All-zero when `S::COUNTERS` is false
    /// (except that nothing is ever accumulated, so reads are valid
    /// regardless).
    pub fn counters(&self) -> &CounterBank {
        &self.counters
    }

    /// The attached trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The sink's health probe, when one is attached (`None` for every
    /// sink that doesn't opt into `HEALTH` — the default).
    pub fn health_probe(&self) -> Option<&qtaccel_telemetry::HealthProbe> {
        self.sink.health()
    }

    /// Mutable access to the attached trace sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consume the pipeline and return its sink (e.g. to recover a
    /// captured event buffer).
    pub fn into_sink(mut self) -> S {
        self.sink.flush();
        self.sink
    }

    /// Cycle statistics so far.
    pub fn stats(&self) -> CycleStats {
        self.stats
    }

    /// Number of states the tables are sized for.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of actions the tables are sized for.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Bytes of the fused fast-path slab ([`FastLayout::ActionMajor`]'s
    /// working set): `|S|·|A|` interleaved transition/reward/Q cells.
    /// The cache-blocking layout pick in `train_batch` compares this
    /// against its per-shard cache budget.
    pub fn fast_slab_bytes(&self) -> usize {
        self.num_states
            .saturating_mul(self.num_actions)
            .saturating_mul(core::mem::size_of::<FastCell<V>>())
    }

    // ---- memory model -------------------------------------------------

    fn commit_q_until(&mut self, cycle: u64) {
        while let Some(p) = self.pending_q.front() {
            if p.commit_cycle < cycle {
                if S::EVENTS {
                    self.sink.record(&Event::Commit {
                        cycle: p.commit_cycle,
                        mem: MemKind::Q,
                        addr: p.addr as u64,
                    });
                }
                self.q_mem[p.addr] = p.value;
                self.fwd_q.retire(p.addr);
                self.pending_q.pop_front();
            } else {
                break;
            }
        }
    }

    fn commit_qmax_until(&mut self, cycle: u64) {
        while let Some(p) = self.pending_qmax.front() {
            if p.commit_cycle < cycle {
                if S::EVENTS {
                    self.sink.record(&Event::Commit {
                        cycle: p.commit_cycle,
                        mem: MemKind::Qmax,
                        addr: p.addr as u64,
                    });
                }
                self.qmax_mem[p.addr] = p.value;
                self.fwd_qmax.retire(p.addr);
                self.pending_qmax.pop_front();
            } else {
                break;
            }
        }
    }

    /// Newest in-flight Q write to `idx`: O(1) index hit or miss, linear
    /// queue scan only under slot aliasing.
    #[inline(always)]
    fn newest_q(&self, idx: usize) -> Option<Pending<V>> {
        match self.fwd_q.newest(idx) {
            FwdHit::Miss => None,
            FwdHit::Newest(p) => Some(p),
            FwdHit::Aliased => self.pending_q.iter().rev().find(|p| p.addr == idx).copied(),
        }
    }

    /// Newest in-flight Qmax write to `idx`.
    #[inline(always)]
    fn newest_qmax(&self, idx: usize) -> Option<Pending<(V, Action)>> {
        match self.fwd_qmax.newest(idx) {
            FwdHit::Miss => None,
            FwdHit::Newest(p) => Some(p),
            FwdHit::Aliased => self
                .pending_qmax
                .iter()
                .rev()
                .find(|p| p.addr == idx)
                .copied(),
        }
    }

    /// Read Q(s, a) as issued at `cycle`. Returns the operand value and
    /// the stall delay this read imposes (nonzero only in stall-only
    /// mode).
    ///
    /// Queues are only drained up to the step's `c1`, so an in-flight
    /// entry whose commit cycle already passed is *logically* committed:
    /// its value equals the BRAM word the drain-per-read formulation
    /// would read, it merely has not been folded into `q_mem` yet. The
    /// visibility-horizon comparison below keeps forwarding counts and
    /// stall delays identical to physically draining at every service
    /// point: an entry still forwards (or stalls the front end) only
    /// while its commit cycle is at or above the highest cycle the
    /// memory controller has serviced.
    fn read_q(&mut self, s: State, a: Action, cycle: u64) -> (V, u64) {
        let idx = sa_index(s, a, self.num_actions);
        if S::COUNTERS {
            self.counters.inc(CounterId::QReads);
        }
        match self.config.hazard {
            HazardMode::Forwarding => {
                let h = self.drain_horizon_q.max(cycle);
                self.drain_horizon_q = h;
                match self.newest_q(idx) {
                    Some(p) => {
                        if p.commit_cycle >= h {
                            self.stats.forwards += 1;
                            if S::COUNTERS {
                                self.counters.inc(CounterId::FwdQHit);
                            }
                            if S::EVENTS {
                                self.sink.record(&Event::Hazard {
                                    cycle,
                                    mem: MemKind::Q,
                                    addr: idx as u64,
                                });
                                self.sink.record(&Event::Forward {
                                    cycle,
                                    mem: MemKind::Q,
                                    addr: idx as u64,
                                });
                            }
                        } else if S::COUNTERS {
                            self.counters.inc(CounterId::FwdMiss);
                        }
                        (p.value, 0)
                    }
                    None => {
                        if S::COUNTERS {
                            self.counters.inc(CounterId::FwdMiss);
                        }
                        (self.q_mem[idx], 0)
                    }
                }
            }
            HazardMode::Ignore => {
                // The stale-BRAM image must be materialized at the read
                // cycle (mid-step commits are architecturally visible
                // here). Amortized O(1): the per-step commit point has
                // already caught the queue up to c1.
                self.commit_q_until(cycle);
                (self.q_mem[idx], 0)
            }
            HazardMode::StallOnly => {
                let h = self.drain_horizon_q.max(cycle);
                self.drain_horizon_q = h;
                match self.newest_q(idx) {
                    // Hold the front end until the write commits, then
                    // the read returns the fresh value.
                    Some(p) if p.commit_cycle >= h => {
                        let d = p.commit_cycle + 1 - cycle;
                        if S::EVENTS {
                            self.sink.record(&Event::Hazard {
                                cycle,
                                mem: MemKind::Q,
                                addr: idx as u64,
                            });
                            self.sink.record(&Event::StallBegin {
                                cycle,
                                mem: MemKind::Q,
                                addr: idx as u64,
                            });
                            self.sink.record(&Event::StallEnd { cycle: cycle + d });
                        }
                        (p.value, d)
                    }
                    Some(p) => (p.value, 0),
                    None => (self.q_mem[idx], 0),
                }
            }
        }
    }

    /// Read the Qmax entry for `s` as issued at `cycle`.
    fn read_qmax(&mut self, s: State, cycle: u64) -> ((V, Action), u64) {
        let idx = s as usize;
        if S::COUNTERS {
            self.counters.inc(CounterId::QmaxReads);
        }
        match self.config.hazard {
            HazardMode::Forwarding => {
                let h = self.drain_horizon_qmax.max(cycle);
                self.drain_horizon_qmax = h;
                match self.newest_qmax(idx) {
                    Some(p) => {
                        if p.commit_cycle >= h {
                            self.stats.forwards += 1;
                            if S::COUNTERS {
                                self.counters.inc(CounterId::FwdQmaxHit);
                            }
                            if S::EVENTS {
                                self.sink.record(&Event::Hazard {
                                    cycle,
                                    mem: MemKind::Qmax,
                                    addr: idx as u64,
                                });
                                self.sink.record(&Event::Forward {
                                    cycle,
                                    mem: MemKind::Qmax,
                                    addr: idx as u64,
                                });
                            }
                        } else if S::COUNTERS {
                            self.counters.inc(CounterId::FwdMiss);
                        }
                        (p.value, 0)
                    }
                    None => {
                        if S::COUNTERS {
                            self.counters.inc(CounterId::FwdMiss);
                        }
                        (self.qmax_mem[idx], 0)
                    }
                }
            }
            HazardMode::Ignore => {
                self.commit_qmax_until(cycle);
                (self.qmax_mem[idx], 0)
            }
            HazardMode::StallOnly => {
                let h = self.drain_horizon_qmax.max(cycle);
                self.drain_horizon_qmax = h;
                match self.newest_qmax(idx) {
                    Some(p) if p.commit_cycle >= h => {
                        let d = p.commit_cycle + 1 - cycle;
                        if S::EVENTS {
                            self.sink.record(&Event::Hazard {
                                cycle,
                                mem: MemKind::Qmax,
                                addr: idx as u64,
                            });
                            self.sink.record(&Event::StallBegin {
                                cycle,
                                mem: MemKind::Qmax,
                                addr: idx as u64,
                            });
                            self.sink.record(&Event::StallEnd { cycle: cycle + d });
                        }
                        (p.value, d)
                    }
                    Some(p) => (p.value, 0),
                    None => (self.qmax_mem[idx], 0),
                }
            }
        }
    }

    /// Row-maximum read per the configured [`MaxMode`]: a single Qmax
    /// access (0 extra cycles) or the unoptimized |A|-read row scan
    /// (|A|−1 extra stage-2 cycles — the design point §V-A eliminates;
    /// quantified by the `ablation_qmax` experiment).
    fn read_max(&mut self, s: State, cycle: u64) -> (V, Action, u64) {
        match self.config.trainer.max_mode {
            MaxMode::QmaxArray => {
                let ((v, a), d) = self.read_qmax(s, cycle);
                (v, a, d)
            }
            MaxMode::ExactScan => {
                let mut delay = 0u64;
                let (mut best_v, mut best_a) = {
                    let (v, d) = self.read_q(s, 0, cycle);
                    delay = delay.max(d);
                    (v, 0u32)
                };
                for a in 1..self.num_actions as Action {
                    let (v, d) = self.read_q(s, a, cycle + a as u64);
                    delay = delay.max(d);
                    if v.vcmp(best_v) == core::cmp::Ordering::Greater {
                        best_v = v;
                        best_a = a;
                    }
                }
                // The scan occupies stage 2 for |A| cycles instead of 1.
                (best_v, best_a, delay + self.num_actions as u64 - 1)
            }
        }
    }

    /// Stage-4 Qmax read-modify-write. Returns `(wrote, flip)`: whether
    /// the comparator improved the entry, and whether that write changed
    /// the stored greedy action — the health layer's policy-churn signal
    /// (`flip` is only computed under `S::HEALTH` and is `false`
    /// otherwise).
    fn qmax_writeback(&mut self, s: State, a: Action, v: V, cycle: u64) -> (bool, bool) {
        let idx = s as usize;
        if S::COUNTERS {
            // The RMW's read half always accesses the Qmax port.
            self.counters.inc(CounterId::QmaxReads);
        }
        // The comparator's view of the current maximum: through the
        // forwarding network normally, the stale BRAM word in Ignore mode.
        // A pending entry whose commit cycle already passed holds exactly
        // the value the BRAM would after draining, so the newest-writer
        // lookup needs no commit-cycle filter here.
        let (current, current_a) = match self.config.hazard {
            HazardMode::Ignore => {
                self.commit_qmax_until(cycle);
                self.qmax_mem[idx]
            }
            _ => {
                // The controller services the RMW at the write cycle,
                // retiring everything due before it: raise the
                // visibility horizon past the next iteration's reads.
                self.drain_horizon_qmax = self.drain_horizon_qmax.max(cycle);
                self.newest_qmax(idx)
                    .map(|p| p.value)
                    .unwrap_or(self.qmax_mem[idx])
            }
        };
        if v.vcmp(current) == core::cmp::Ordering::Greater {
            if S::COUNTERS {
                self.counters.inc(CounterId::QmaxWrites);
            }
            let p = Pending {
                commit_cycle: cycle,
                addr: idx,
                value: (v, a),
            };
            self.pending_qmax.push_back(p);
            self.fwd_qmax.push(p);
            (true, S::HEALTH && a != current_a)
        } else {
            (false, false)
        }
    }

    /// Feed one retired sample to the sink's health probe (no-op unless
    /// `S::HEALTH`; call sites are additionally gated on the const so the
    /// `NullSink` build monomorphizes this away entirely). Both engines
    /// call this once per retired sample, in retirement order, with
    /// identical arguments — the probe strides internally, so its state
    /// is bit-exact across executors at any stride.
    #[inline]
    fn health_tick(
        &mut self,
        write_cycle: u64,
        s: State,
        q_sa: V,
        q_new: V,
        qmax_wrote: bool,
        greedy_flip: bool,
    ) {
        if let Some(probe) = self.sink.health_mut() {
            // With a quantized table the *stored* format's rails are the
            // saturation boundary, not the working format's: feed the
            // probe stored codes at the stored width so rail-proximity
            // counters fire on (say) a 4-bit table long before the
            // 16-bit rails are near. Both values are on the stored grid
            // here (q_sa was read from the table, q_new was quantized
            // before this hook), so the zero-dither encode is exact. TD
            // magnitudes are then measured in stored-grid steps.
            let (qa, qb, bits) = match &self.quant {
                Some(qr) => (
                    qr.policy.quantize(q_sa, 0),
                    qr.policy.quantize(q_new, 0),
                    qr.policy.stored_bits(),
                ),
                None => (V::to_bits(q_sa), V::to_bits(q_new), V::storage_bits()),
            };
            probe.observe_sample(
                write_cycle,
                s as u64,
                qa,
                qb,
                bits,
                qmax_wrote,
                greedy_flip,
            );
        }
    }

    /// Stochastically round a freshly computed Q-value onto the stored
    /// grid (identity when quantization is off). One dither draw per
    /// retired sample, consumed in retirement order — the property that
    /// keeps every executor on the same RNG stream.
    #[inline(always)]
    fn quantize_writeback(&mut self, q_new: V) -> V {
        match &mut self.quant {
            Some(qr) => qr.policy.apply(q_new, u64::from(qr.rng.next_u32())),
            None => q_new,
        }
    }

    // ---- policy units --------------------------------------------------

    /// Stage-1 behaviour action selection; returns the action and any
    /// stall delay from the Qmax read of a greedy component.
    fn behavior_select(&mut self, s: State, cycle: u64) -> (Action, u64) {
        let n = self.num_actions as u32;
        match self.config.trainer.behavior {
            Policy::Random => {
                if S::COUNTERS {
                    self.counters.inc(CounterId::LfsrDraws);
                }
                (self.behavior_rng.below(n), 0)
            }
            Policy::Greedy => {
                let (v, a, d) = self.read_max(s, cycle);
                let _ = v;
                (a, d)
            }
            Policy::EpsilonGreedy { epsilon } => {
                if S::COUNTERS {
                    self.counters.inc(CounterId::LfsrDraws);
                }
                match epsilon_greedy_draw(&mut self.behavior_rng, epsilon_to_q32(epsilon), n) {
                    Some(a) => (a, 0),
                    None => {
                        let (_, a, d) = self.read_max(s, cycle);
                        (a, d)
                    }
                }
            }
            Policy::Boltzmann { .. } => panic!(
                "Boltzmann behaviour policy is not synthesizable on the QRL engine; \
                 use the probability-table bandit engine (qtaccel_accel::bandit)"
            ),
        }
    }

    /// Stage-2 update-policy selection: the next action *and* the Q-value
    /// operand for the Eq. (3) multiply.
    fn update_select(&mut self, s_next: State, cycle: u64) -> (Action, V, u64) {
        let n = self.num_actions as u32;
        match self.config.trainer.update {
            Policy::Greedy => {
                let (v, a, d) = self.read_max(s_next, cycle);
                (a, v, d)
            }
            Policy::Random => {
                if S::COUNTERS {
                    self.counters.inc(CounterId::LfsrDraws);
                }
                let a = self.update_rng.below(n);
                let (v, d) = self.read_q(s_next, a, cycle);
                (a, v, d)
            }
            Policy::EpsilonGreedy { epsilon } => {
                if S::COUNTERS {
                    self.counters.inc(CounterId::LfsrDraws);
                }
                match epsilon_greedy_draw(&mut self.update_rng, epsilon_to_q32(epsilon), n) {
                    Some(a) => {
                        let (v, d) = self.read_q(s_next, a, cycle);
                        (a, v, d)
                    }
                    None => {
                        let (v, a, d) = self.read_max(s_next, cycle);
                        (a, v, d)
                    }
                }
            }
            Policy::Boltzmann { .. } => panic!(
                "Boltzmann update policy is not synthesizable on the QRL engine; \
                 use the probability-table bandit engine (qtaccel_accel::bandit)"
            ),
        }
    }

    // ---- execution ------------------------------------------------------

    /// Push one iteration down the pipe: one retired sample. Returns the
    /// transition for tracing.
    pub fn step<E: Environment>(&mut self, env: &E) -> Transition<V> {
        debug_assert_eq!(env.num_states(), self.num_states, "environment mismatch");
        debug_assert_eq!(env.num_actions(), self.num_actions, "environment mismatch");
        let c1 = self.next_c1;

        // Per-step commit point: retire every write due before this
        // step's stage 1. Reads further into the step resolve any write
        // committing mid-step through the commit-cycle filters in
        // read_q/read_qmax, so this is the only drain the common path
        // performs.
        self.commit_q_until(c1);
        self.commit_qmax_until(c1);

        // Stage 1: state + behaviour action + transition + reads.
        let (s, a, d1) = match self.carry.take() {
            None => {
                if S::COUNTERS {
                    // One draw per reset call (rejection re-draws inside
                    // `random_start` stay internal to the unit).
                    self.counters.inc(CounterId::LfsrDraws);
                }
                let s = env.random_start(&mut self.start_rng);
                let (a, d) = self.behavior_select(s, c1);
                (s, a, d)
            }
            Some((s, Some(a))) => (s, a, 0), // forwarded on-policy action
            Some((s, None)) => {
                let (a, d) = self.behavior_select(s, c1);
                (s, a, d)
            }
        };
        let s_next = env.transition(s, a);
        let r = self.rewards.get(s, a);
        let (q_sa, dq) = self.read_q(s, a, c1 + d1);
        let d1 = d1 + dq;

        // Stage 2 (cycle c1 + d1 + 1): next action + its Q operand.
        let c2 = c1 + d1 + 1;
        let (a_next, q_next, d2) = self.update_select(s_next, c2);

        // Stage 3: Eq. (3), then the quantizer on the writeback path.
        let q_new = self
            .one_minus_alpha
            .mul(q_sa)
            .add(self.alpha_v.mul(r))
            .add(self.alpha_gamma.mul(q_next));
        let q_new = self.quantize_writeback(q_new);

        // Stage 4 (cycle c1 + stalls + 3): writeback.
        let stalls = d1 + d2;
        let write_cycle = c1 + stalls + WRITE_OFFSET;
        let p = Pending {
            commit_cycle: write_cycle,
            addr: sa_index(s, a, self.num_actions),
            value: q_new,
        };
        self.pending_q.push_back(p);
        self.fwd_q.push(p);
        if S::COUNTERS {
            self.counters.inc(CounterId::QWrites);
        }
        let (qmax_wrote, greedy_flip) = self.qmax_writeback(s, a, q_new, write_cycle);
        if S::HEALTH {
            self.health_tick(write_cycle, s, q_sa, q_new, qmax_wrote, greedy_flip);
        }

        let iteration = self.stats.samples;
        self.stats.samples += 1;
        self.stats.stalls += stalls;
        self.stats.cycles = write_cycle + 1;
        self.next_c1 = c1 + stalls + 1;
        if S::COUNTERS {
            self.counters.inc(CounterId::SamplesRetired);
            // Stall cycles attributed to the stage whose read imposed
            // them; the two counters sum to `CycleStats::stalls`.
            self.counters.add(CounterId::StallStage1, d1);
            self.counters.add(CounterId::StallStage2, d2);
        }
        if S::EVENTS {
            // Stage occupancy, matching PipelineTrace::record_iteration's
            // long-standing placement: stage 1 at issue, stages 2–4
            // compressed behind the stalls.
            self.sink.record(&Event::Stage {
                cycle: c1,
                stage: 1,
                iteration,
            });
            for k in 1..=3u64 {
                self.sink.record(&Event::Stage {
                    cycle: c1 + stalls + k,
                    stage: (k + 1) as u8,
                    iteration,
                });
            }
        }

        self.carry = if env.is_terminal(s_next) {
            None
        } else {
            Some((
                s_next,
                if self.config.trainer.forward_next_action {
                    Some(a_next)
                } else {
                    None
                },
            ))
        };

        self.fault_tick();

        Transition {
            s,
            a,
            r,
            s_next,
            a_next,
            q_new,
        }
    }

    /// Run `n` iterations.
    pub fn run_samples<E: Environment>(&mut self, env: &E, n: u64) -> CycleStats {
        for _ in 0..n {
            self.step(env);
        }
        self.stats
    }

    // ---- fast path ------------------------------------------------------

    /// Fast read of Q(s, a) at `cycle`. In the immediate-commit modes
    /// (`Forwarding`/`StallOnly`) `q_mem` already holds the newest value
    /// for every address — exactly what the forwarding network or the
    /// post-stall read would return — so the ring is consulted only for
    /// the commit cycle (forward counting / stall delay). In `Ignore`
    /// mode the ring carries genuinely uncommitted values and is drained
    /// to the read cycle first, reproducing the stale BRAM image.
    #[inline(always)]
    fn fast_read_q(&mut self, qring: &mut WriteRing<V>, idx: usize, cycle: u64) -> (V, u64) {
        if S::COUNTERS {
            self.counters.inc(CounterId::QReads);
        }
        match self.config.hazard {
            HazardMode::Forwarding => {
                let h = self.drain_horizon_q.max(cycle);
                self.drain_horizon_q = h;
                if matches!(qring.newest_cc(idx), Some(cc) if cc >= h) {
                    self.stats.forwards += 1;
                    if S::COUNTERS {
                        self.counters.inc(CounterId::FwdQHit);
                    }
                } else if S::COUNTERS {
                    self.counters.inc(CounterId::FwdMiss);
                }
                (self.q_mem[idx], 0)
            }
            HazardMode::Ignore => {
                let mem = &mut self.q_mem;
                qring.retire_due(cycle, |a, v| mem[a] = v);
                (self.q_mem[idx], 0)
            }
            HazardMode::StallOnly => {
                let h = self.drain_horizon_q.max(cycle);
                self.drain_horizon_q = h;
                let d = match qring.newest_cc(idx) {
                    Some(cc) if cc >= h => cc + 1 - cycle,
                    _ => 0,
                };
                (self.q_mem[idx], d)
            }
        }
    }

    /// Fast read of the Qmax entry for `s` at `cycle`.
    #[inline(always)]
    fn fast_read_qmax(
        &mut self,
        mring: &mut WriteRing<(V, Action)>,
        idx: usize,
        cycle: u64,
    ) -> ((V, Action), u64) {
        if S::COUNTERS {
            self.counters.inc(CounterId::QmaxReads);
        }
        match self.config.hazard {
            HazardMode::Forwarding => {
                let h = self.drain_horizon_qmax.max(cycle);
                self.drain_horizon_qmax = h;
                if matches!(mring.newest_cc(idx), Some(cc) if cc >= h) {
                    self.stats.forwards += 1;
                    if S::COUNTERS {
                        self.counters.inc(CounterId::FwdQmaxHit);
                    }
                } else if S::COUNTERS {
                    self.counters.inc(CounterId::FwdMiss);
                }
                (self.qmax_mem[idx], 0)
            }
            HazardMode::Ignore => {
                let mem = &mut self.qmax_mem;
                mring.retire_due(cycle, |a, v| mem[a] = v);
                (self.qmax_mem[idx], 0)
            }
            HazardMode::StallOnly => {
                let h = self.drain_horizon_qmax.max(cycle);
                self.drain_horizon_qmax = h;
                let d = match mring.newest_cc(idx) {
                    Some(cc) if cc >= h => cc + 1 - cycle,
                    _ => 0,
                };
                (self.qmax_mem[idx], d)
            }
        }
    }

    /// Fast-path mirror of [`read_max`](Self::read_max).
    #[inline(always)]
    fn fast_read_max(
        &mut self,
        qring: &mut WriteRing<V>,
        mring: &mut WriteRing<(V, Action)>,
        s: State,
        cycle: u64,
    ) -> (V, Action, u64) {
        match self.config.trainer.max_mode {
            MaxMode::QmaxArray => {
                let ((v, a), d) = self.fast_read_qmax(mring, s as usize, cycle);
                (v, a, d)
            }
            MaxMode::ExactScan => {
                let mut delay = 0u64;
                let (mut best_v, mut best_a) = {
                    let (v, d) = self.fast_read_q(qring, sa_index(s, 0, self.num_actions), cycle);
                    delay = delay.max(d);
                    (v, 0u32)
                };
                for a in 1..self.num_actions as Action {
                    let (v, d) = self.fast_read_q(
                        qring,
                        sa_index(s, a, self.num_actions),
                        cycle + a as u64,
                    );
                    delay = delay.max(d);
                    if v.vcmp(best_v) == core::cmp::Ordering::Greater {
                        best_v = v;
                        best_a = a;
                    }
                }
                (best_v, best_a, delay + self.num_actions as u64 - 1)
            }
        }
    }

    /// Fast-path mirror of [`behavior_select`](Self::behavior_select):
    /// identical policy dispatch and RNG draw order.
    #[inline(always)]
    fn fast_behavior_select(
        &mut self,
        qring: &mut WriteRing<V>,
        mring: &mut WriteRing<(V, Action)>,
        s: State,
        cycle: u64,
    ) -> (Action, u64) {
        let n = self.num_actions as u32;
        match self.config.trainer.behavior {
            Policy::Random => {
                if S::COUNTERS {
                    self.counters.inc(CounterId::LfsrDraws);
                }
                (self.behavior_rng.below(n), 0)
            }
            Policy::Greedy => {
                let (_, a, d) = self.fast_read_max(qring, mring, s, cycle);
                (a, d)
            }
            Policy::EpsilonGreedy { epsilon } => {
                if S::COUNTERS {
                    self.counters.inc(CounterId::LfsrDraws);
                }
                match epsilon_greedy_draw(&mut self.behavior_rng, epsilon_to_q32(epsilon), n) {
                    Some(a) => (a, 0),
                    None => {
                        let (_, a, d) = self.fast_read_max(qring, mring, s, cycle);
                        (a, d)
                    }
                }
            }
            Policy::Boltzmann { .. } => panic!(
                "Boltzmann behaviour policy is not synthesizable on the QRL engine; \
                 use the probability-table bandit engine (qtaccel_accel::bandit)"
            ),
        }
    }

    /// Fast-path mirror of [`update_select`](Self::update_select).
    #[inline(always)]
    fn fast_update_select(
        &mut self,
        qring: &mut WriteRing<V>,
        mring: &mut WriteRing<(V, Action)>,
        s_next: State,
        cycle: u64,
    ) -> (Action, V, u64) {
        let n = self.num_actions as u32;
        match self.config.trainer.update {
            Policy::Greedy => {
                let (v, a, d) = self.fast_read_max(qring, mring, s_next, cycle);
                (a, v, d)
            }
            Policy::Random => {
                if S::COUNTERS {
                    self.counters.inc(CounterId::LfsrDraws);
                }
                let a = self.update_rng.below(n);
                let (v, d) =
                    self.fast_read_q(qring, sa_index(s_next, a, self.num_actions), cycle);
                (a, v, d)
            }
            Policy::EpsilonGreedy { epsilon } => {
                if S::COUNTERS {
                    self.counters.inc(CounterId::LfsrDraws);
                }
                match epsilon_greedy_draw(&mut self.update_rng, epsilon_to_q32(epsilon), n) {
                    Some(a) => {
                        let (v, d) =
                            self.fast_read_q(qring, sa_index(s_next, a, self.num_actions), cycle);
                        (a, v, d)
                    }
                    None => {
                        let (v, a, d) = self.fast_read_max(qring, mring, s_next, cycle);
                        (a, v, d)
                    }
                }
            }
            Policy::Boltzmann { .. } => panic!(
                "Boltzmann update policy is not synthesizable on the QRL engine; \
                 use the probability-table bandit engine (qtaccel_accel::bandit)"
            ),
        }
    }

    /// Run `n` iterations through the fast-path executor: one sample per
    /// loop iteration, closed-form cycle accounting, no per-cycle queue
    /// bookkeeping — and bit-identical results.
    ///
    /// The architectural trick: in `Forwarding` and `StallOnly` modes
    /// every read returns the *newest* write to its address (via the
    /// forwarding network, or because the front end stalled until the
    /// write landed). So the fast path commits writes to memory
    /// immediately and keeps only a [`FAST_RING`]-entry window of
    /// `(address, commit cycle)` history to reproduce the forward counts
    /// and stall delays the real pipeline reports. `Ignore` mode is the
    /// one place stale values are architecturally visible, so there the
    /// ring carries real delayed writes, drained per read — still O(1),
    /// still allocation-free.
    ///
    /// Entry/exit protocols convert between the cycle-accurate pending
    /// queues and the ring so the two executors can be interleaved freely
    /// on one pipeline: final Q-table, Qmax table, and [`CycleStats`] are
    /// bit-identical to [`run_samples`](Self::run_samples) (enforced by
    /// the `fast_path` equivalence tests). One observable caveat: the raw
    /// *committed* BRAM image may lead the cycle-accurate formulation by
    /// up to the pipeline depth at the moment of return, which matters
    /// only to [`inject_q_bit_flip`](Self::inject_q_bit_flip) racing an
    /// in-flight write.
    pub fn run_samples_fast<E: Environment>(&mut self, env: &E, n: u64) -> CycleStats {
        self.run_samples_fast_planned(env, n, FastLayout::Auto)
    }

    /// [`run_samples_fast`](Self::run_samples_fast) with an explicit
    /// Q-table traversal [`FastLayout`] — bit-identical results under
    /// every layout, different cache behaviour (see [`FastLayout`]).
    /// A forced [`FastLayout::ActionMajor`] falls back to the general
    /// executor when the configuration is ineligible for the fused slab
    /// (instrumented sink, non-forwarding hazard, exact-scan Qmax).
    pub fn run_samples_fast_planned<E: Environment>(
        &mut self,
        env: &E,
        n: u64,
        layout: FastLayout,
    ) -> CycleStats {
        debug_assert_eq!(env.num_states(), self.num_states, "environment mismatch");
        debug_assert_eq!(env.num_actions(), self.num_actions, "environment mismatch");

        // The default Forwarding + Qmax-array configuration never stalls,
        // which collapses the visibility horizons to fixed sample
        // distances: take the window-register executor. Its fused
        // environment image costs O(|S|·|A|) to build, so `Auto` only
        // diverts once a run is long enough to amortize the build —
        // after which the cached image makes the executor worthwhile at
        // any length. The executor is uninstrumented by design (its
        // whole point is eliding per-access bookkeeping), so an
        // instrumented sink takes the general fast path below, which
        // mirrors every counter.
        let fused_eligible = n > 0
            && !S::COUNTERS
            && !S::EVENTS
            && !S::HEALTH
            && self.fault.is_none()
            && self.quant.is_none()
            && self.config.hazard == HazardMode::Forwarding
            && self.config.trainer.max_mode == MaxMode::QmaxArray
            && self.num_states < (1usize << 31);
        let take_fused = match layout {
            FastLayout::ActionMajor => fused_eligible,
            FastLayout::StateMajor | FastLayout::Interleaved => false,
            FastLayout::Auto => {
                fused_eligible
                    && (self.fast_image.is_some()
                        || n as u128 >= (self.num_states * self.num_actions) as u128)
            }
        };
        if take_fused {
            return self.run_fast_forwarding_qmax(env, n);
        }
        // Quantized counterpart of the fused executor: same predicate
        // shape, but the table must fit the [`PackedImage`] lanes (|S| ≤
        // 2^22, stored codes ≤ 8 bits). Ineligible quantized configs
        // fall through to the general executor (or the cycle engine),
        // which applies the identical writeback quantizer — results stay
        // bit-exact in every hazard mode.
        let packed_eligible = n > 0
            && !S::COUNTERS
            && !S::EVENTS
            && !S::HEALTH
            && self.fault.is_none()
            && self.config.hazard == HazardMode::Forwarding
            && self.config.trainer.max_mode == MaxMode::QmaxArray
            && self.num_states <= (1usize << 22)
            && self
                .quant
                .as_ref()
                .is_some_and(|q| q.policy.stored_bits() <= 8);
        let take_packed = match layout {
            FastLayout::ActionMajor | FastLayout::Interleaved => packed_eligible,
            FastLayout::StateMajor => false,
            FastLayout::Auto => {
                packed_eligible
                    && (self.packed_image.is_some()
                        || n as u128 >= (self.num_states * self.num_actions) as u128)
            }
        };
        if take_packed {
            return self.run_fast_forwarding_qmax_packed(env, n);
        }
        // A forced Interleaved layout runs the K-way executor as a group
        // of one stream (the multi-pipeline grouping lives in
        // `IndependentPipelines::train_batch_with`); ineligible configs
        // fall through to the general executor below, bit-identically.
        if layout == FastLayout::Interleaved && self.interleave_eligible(n) {
            return crate::interleave::run_single(self, env, n);
        }

        let immediate = self.config.hazard != HazardMode::Ignore;

        // Entry: fold the pending queues into the ring window. In the
        // immediate-commit modes the values land in memory right away
        // (memory = newest image); in Ignore mode they stay in flight.
        let mut qring = WriteRing::<V>::new();
        let mut mring = WriteRing::<(V, Action)>::new();
        while let Some(p) = self.pending_q.pop_front() {
            if immediate {
                self.q_mem[p.addr] = p.value;
            }
            qring.push(p);
        }
        while let Some(p) = self.pending_qmax.pop_front() {
            if immediate {
                self.qmax_mem[p.addr] = p.value;
            }
            mring.push(p);
        }
        self.fwd_q.clear();
        self.fwd_qmax.clear();

        for _ in 0..n {
            let c1 = self.next_c1;
            if !immediate {
                // Delayed-commit drain, same point as the cycle-accurate
                // engine's per-step commit.
                let qmem = &mut self.q_mem;
                qring.retire_due(c1, |a, v| qmem[a] = v);
                let mmem = &mut self.qmax_mem;
                mring.retire_due(c1, |a, v| mmem[a] = v);
            }

            // Stage 1.
            let (s, a, d1) = match self.carry.take() {
                None => {
                    if S::COUNTERS {
                        self.counters.inc(CounterId::LfsrDraws);
                    }
                    let s = env.random_start(&mut self.start_rng);
                    let (a, d) = self.fast_behavior_select(&mut qring, &mut mring, s, c1);
                    (s, a, d)
                }
                Some((s, Some(a))) => (s, a, 0),
                Some((s, None)) => {
                    let (a, d) = self.fast_behavior_select(&mut qring, &mut mring, s, c1);
                    (s, a, d)
                }
            };
            let s_next = env.transition(s, a);
            let r = self.rewards.get(s, a);
            let (q_sa, dq) =
                self.fast_read_q(&mut qring, sa_index(s, a, self.num_actions), c1 + d1);
            let d1 = d1 + dq;

            // Stage 2.
            let c2 = c1 + d1 + 1;
            let (a_next, q_next, d2) = self.fast_update_select(&mut qring, &mut mring, s_next, c2);

            // Stage 3, then the quantizer on the writeback path.
            let q_new = self
                .one_minus_alpha
                .mul(q_sa)
                .add(self.alpha_v.mul(r))
                .add(self.alpha_gamma.mul(q_next));
            let q_new = self.quantize_writeback(q_new);

            // Stage 4.
            let stalls = d1 + d2;
            let write_cycle = c1 + stalls + WRITE_OFFSET;
            let qaddr = sa_index(s, a, self.num_actions);
            if immediate {
                self.q_mem[qaddr] = q_new;
            }
            qring.push(Pending {
                commit_cycle: write_cycle,
                addr: qaddr,
                value: q_new,
            });
            if S::COUNTERS {
                self.counters.inc(CounterId::QWrites);
                // The stage-4 RMW's read half (the cycle engine counts
                // it inside qmax_writeback).
                self.counters.inc(CounterId::QmaxReads);
            }

            // Qmax read-modify-write. In the immediate-commit modes
            // memory already holds the newest image, so the stored pair
            // read here is exactly what the cycle engine's forwarding
            // lookup would return — the greedy-flip signal matches.
            let midx = s as usize;
            let (current, current_a) = if immediate {
                self.drain_horizon_qmax = self.drain_horizon_qmax.max(write_cycle);
                self.qmax_mem[midx]
            } else {
                let mmem = &mut self.qmax_mem;
                mring.retire_due(write_cycle, |a, v| mmem[a] = v);
                self.qmax_mem[midx]
            };
            let mut qmax_wrote = false;
            if q_new.vcmp(current) == core::cmp::Ordering::Greater {
                qmax_wrote = true;
                if S::COUNTERS {
                    self.counters.inc(CounterId::QmaxWrites);
                }
                if immediate {
                    self.qmax_mem[midx] = (q_new, a);
                }
                debug_assert!(immediate || mring.len < FAST_RING, "qmax window overflow");
                mring.push(Pending {
                    commit_cycle: write_cycle,
                    addr: midx,
                    value: (q_new, a),
                });
            }
            if S::HEALTH {
                let flip = qmax_wrote && a != current_a;
                self.health_tick(write_cycle, s, q_sa, q_new, qmax_wrote, flip);
            }

            self.stats.samples += 1;
            self.stats.stalls += stalls;
            self.stats.cycles = write_cycle + 1;
            self.next_c1 = c1 + stalls + 1;
            if S::COUNTERS {
                self.counters.inc(CounterId::SamplesRetired);
                self.counters.add(CounterId::StallStage1, d1);
                self.counters.add(CounterId::StallStage2, d2);
            }

            self.carry = if env.is_terminal(s_next) {
                None
            } else {
                Some((
                    s_next,
                    if self.config.trainer.forward_next_action {
                        Some(a_next)
                    } else {
                        None
                    },
                ))
            };

            self.fault_tick();
        }

        // Exit: reconstruct the pending queues so a subsequent
        // cycle-accurate run observes the same forwarding behaviour. In
        // the immediate-commit modes only writes still in flight relative
        // to the next stage-1 cycle matter (older ring history is already
        // architecturally committed); in Ignore mode every ring entry is
        // a real uncommitted write.
        for p in qring.iter() {
            if !immediate || p.commit_cycle >= self.next_c1 {
                self.pending_q.push_back(p);
                self.fwd_q.push(p);
            }
        }
        for p in mring.iter() {
            if !immediate || p.commit_cycle >= self.next_c1 {
                self.pending_qmax.push_back(p);
                self.fwd_qmax.push(p);
            }
        }
        self.stats
    }

    /// The window-register executor for `Forwarding` + `QmaxArray`.
    ///
    /// In that configuration every read delay is zero, so stage-1 issues
    /// at consecutive cycles and every write lands exactly
    /// [`WRITE_OFFSET`] cycles after its iteration's stage 1. The
    /// drain-horizon visibility tests then collapse to *fixed sample
    /// distances*:
    ///
    /// - a stage-1 Q read (cycle `c1`, horizon ≤ `c1`) forwards iff its
    ///   address was written by one of the previous **3** iterations;
    /// - a stage-2 Q read (cycle `c1 + 1`) forwards iff its address was
    ///   written by one of the previous **2** iterations;
    /// - a Qmax read (horizon pinned to the previous iteration's RMW at
    ///   `c1 + 2`) forwards iff the previous iteration *improved* that
    ///   entry.
    ///
    /// So the whole forwarding network reduces to three address
    /// registers rotated once per sample — no ring scans, no cycle
    /// arithmetic in the loop. A dense `|S|·|A|` LUT of packed
    /// `(next_state, terminal)` words replaces the per-sample transition
    /// call, and the ε-greedy comparator thresholds are hoisted out of
    /// the loop; the RNG draw sequence is unchanged, so results stay
    /// bit-identical (the `fast_path` equivalence tests run this
    /// executor wherever the config matches).
    fn run_fast_forwarding_qmax<E: Environment>(&mut self, env: &E, n: u64) -> CycleStats {
        debug_assert!(n > 0);
        let na = self.num_actions;
        let entry_c1 = self.next_c1;

        // Pre-resolved policy units (identical draw order to the
        // cycle-accurate selectors; Boltzmann is rejected exactly as
        // behavior_select/update_select would).
        #[derive(Clone, Copy)]
        enum FastPolicy {
            Random,
            Greedy,
            Eps(u32),
        }
        let resolve = |p: Policy, role: &str| match p {
            Policy::Random => FastPolicy::Random,
            Policy::Greedy => FastPolicy::Greedy,
            Policy::EpsilonGreedy { epsilon } => FastPolicy::Eps(epsilon_to_q32(epsilon)),
            Policy::Boltzmann { .. } => panic!(
                "Boltzmann {role} policy is not synthesizable on the QRL engine; \
                 use the probability-table bandit engine (qtaccel_accel::bandit)"
            ),
        };
        let behavior = resolve(self.config.trainer.behavior, "behaviour");
        let update = resolve(self.config.trainer.update, "update");
        let forward_action = self.config.trainer.forward_next_action;

        // Entry: commit every pending write (memory = newest image) and
        // load the window registers from the writes still visible to the
        // forwarding network. Invalid window slots use an address no real
        // write can carry.
        // Only *addresses* are tracked in the windows: every read is
        // served by the immediately-committed tables, and every consumer
        // of the reconstructed pending queues (forwarding lookup, in-order
        // commit, `q_table`) observes the newest write per address — so
        // the exit protocol can recover each window value from the
        // committed image instead of rotating values through the loop.
        let mut qw_addr = [NO_ADDR; 3]; // [0] = previous iteration
        while let Some(p) = self.pending_q.pop_front() {
            self.q_mem[p.addr] = p.value;
            debug_assert!(p.commit_cycle <= entry_c1 + 2, "stall-free write bound");
            if p.commit_cycle >= entry_c1 {
                let slot = (entry_c1 + 2 - p.commit_cycle) as usize;
                qw_addr[slot] = p.addr;
            }
        }
        let mut mw_addr = [NO_ADDR; 3];
        while let Some(p) = self.pending_qmax.pop_front() {
            self.qmax_mem[p.addr] = p.value;
            debug_assert!(p.commit_cycle <= entry_c1 + 2, "stall-free write bound");
            if p.commit_cycle >= entry_c1 {
                let slot = (entry_c1 + 2 - p.commit_cycle) as usize;
                mw_addr[slot] = p.addr;
            }
        }
        self.fwd_q.clear();
        self.fwd_qmax.clear();

        // Build the fused environment image on first use (see
        // [`FastCell`]); afterwards only the Q column needs a linear
        // resync from the freshly committed `q_mem`.
        if self.fast_image.is_none() {
            let mut cells = Vec::with_capacity(self.num_states * na);
            for s in 0..self.num_states as State {
                for a in 0..na as Action {
                    let t = env.transition(s, a);
                    cells.push(FastCell {
                        next_packed: t | if env.is_terminal(t) { TERMINAL_BIT } else { 0 },
                        reward: self.rewards.get(s, a),
                        q: V::zero(),
                    });
                }
            }
            self.fast_image = Some(cells);
        }
        let cells = self.fast_image.as_mut().expect("image just ensured");
        for (c, &q) in cells.iter_mut().zip(self.q_mem.iter()) {
            c.q = q;
        }
        let cells = &mut cells[..];

        let mut carry = self.carry.take();
        let mut forwards = 0u64;
        // Did the final iteration's update policy read the Q BRAM (rather
        // than the Qmax array)? Decides the exit Q-read horizon.
        let mut last_update_read_q = false;

        let qmax = &mut self.qmax_mem[..];
        let (one_minus_alpha, alpha_v, alpha_gamma) =
            (self.one_minus_alpha, self.alpha_v, self.alpha_gamma);

        // Two-ahead unrolled views of the policy RNGs (bit-identical
        // streams, half the serial leap latency per draw); collapsed back
        // into the registers at exit.
        let mut behavior_rng = Lfsr32Unrolled::new(&self.behavior_rng);
        let mut update_rng = Lfsr32Unrolled::new(&self.update_rng);

        for _ in 0..n {
            // Stage 1: state + behaviour action.
            let (s, carried_a) = match carry.take() {
                None => (env.random_start(&mut self.start_rng), None),
                Some((s, a)) => (s, a),
            };
            let a = match carried_a {
                Some(a) => a,
                None => match behavior {
                    FastPolicy::Random => {
                        ((behavior_rng.next_u32() as u64 * na as u64) >> 32) as u32
                    }
                    FastPolicy::Greedy => {
                        forwards += u64::from(mw_addr[0] == s as usize);
                        qmax[s as usize].1
                    }
                    FastPolicy::Eps(thr) => {
                        let x = behavior_rng.next_u32();
                        if x < thr {
                            ((x as u64 * na as u64) / thr as u64) as u32
                        } else {
                            forwards += u64::from(mw_addr[0] == s as usize);
                            qmax[s as usize].1
                        }
                    }
                },
            };
            let qaddr = s as usize * na + a as usize;
            let cell = cells[qaddr];
            let packed = cell.next_packed;
            let s_next = packed & !TERMINAL_BIT;
            forwards += u64::from(
                qaddr == qw_addr[0] || qaddr == qw_addr[1] || qaddr == qw_addr[2],
            );

            // Stage 2: update selection one cycle later, so only the two
            // youngest Q writes are still in flight.
            let read_q2 = |rng: &mut Lfsr32Unrolled, x: Option<u32>, thr: u32| {
                let an = match x {
                    Some(x) => ((x as u64 * na as u64) / thr as u64) as u32,
                    None => ((rng.next_u32() as u64 * na as u64) >> 32) as u32,
                };
                (an, sa_index(s_next, an, na))
            };
            let (a_next, q_next) = match update {
                FastPolicy::Greedy => {
                    last_update_read_q = false;
                    forwards += u64::from(mw_addr[0] == s_next as usize);
                    let (v, an) = qmax[s_next as usize];
                    (an, v)
                }
                FastPolicy::Random => {
                    let (an, addr) = read_q2(&mut update_rng, None, 0);
                    last_update_read_q = true;
                    forwards += u64::from(addr == qw_addr[0] || addr == qw_addr[1]);
                    (an, cells[addr].q)
                }
                FastPolicy::Eps(thr) => {
                    let x = update_rng.next_u32();
                    if x < thr {
                        let (an, addr) = read_q2(&mut update_rng, Some(x), thr);
                        last_update_read_q = true;
                        forwards += u64::from(addr == qw_addr[0] || addr == qw_addr[1]);
                        (an, cells[addr].q)
                    } else {
                        last_update_read_q = false;
                        forwards += u64::from(mw_addr[0] == s_next as usize);
                        let (v, an) = qmax[s_next as usize];
                        (an, v)
                    }
                }
            };

            // Stage 3: Eq. (3).
            let q_new = one_minus_alpha
                .mul(cell.q)
                .add(alpha_v.mul(cell.reward))
                .add(alpha_gamma.mul(q_next));

            // Stage 4: writeback + Qmax RMW, then age the address windows.
            cells[qaddr].q = q_new;
            qw_addr[2] = qw_addr[1];
            qw_addr[1] = qw_addr[0];
            qw_addr[0] = qaddr;

            mw_addr[2] = mw_addr[1];
            mw_addr[1] = mw_addr[0];
            if q_new.vcmp(qmax[s as usize].0) == core::cmp::Ordering::Greater {
                qmax[s as usize] = (q_new, a);
                mw_addr[0] = s as usize;
            } else {
                mw_addr[0] = NO_ADDR;
            }

            carry = if packed & TERMINAL_BIT != 0 {
                None
            } else {
                Some((s_next, if forward_action { Some(a_next) } else { None }))
            };
        }

        // Write the live Q column back into the committed BRAM image and
        // resynchronise the serial RNG registers.
        for (dst, c) in self.q_mem.iter_mut().zip(cells.iter()) {
            *dst = c.q;
        }
        self.behavior_rng = behavior_rng.into_lfsr();
        self.update_rng = update_rng.into_lfsr();

        // Exit: closed-form cycle accounting and pending-queue
        // reconstruction, so a subsequent cycle-accurate run (or the
        // general fast path) observes identical state.
        self.carry = carry;
        let end_c1 = entry_c1 + n;
        self.next_c1 = end_c1;
        self.stats.samples += n;
        self.stats.forwards += forwards;
        self.stats.cycles = end_c1 - 1 + WRITE_OFFSET + 1;
        self.drain_horizon_q = end_c1 - 1 + u64::from(last_update_read_q);
        self.drain_horizon_qmax = end_c1 - 1 + WRITE_OFFSET;
        // Window values are recovered from the committed tables: if one
        // address appears in two slots the older entry also gets the
        // newest value, which is unobservable — forwarding and `q_table`
        // read the newest writer per address, and in-order commit makes
        // the newest value land last regardless.
        for slot in (0..3).rev() {
            if qw_addr[slot] != NO_ADDR {
                let p = Pending {
                    commit_cycle: end_c1 + 2 - slot as u64,
                    addr: qw_addr[slot],
                    value: self.q_mem[qw_addr[slot]],
                };
                self.pending_q.push_back(p);
                self.fwd_q.push(p);
            }
            if mw_addr[slot] != NO_ADDR {
                let p = Pending {
                    commit_cycle: end_c1 + 2 - slot as u64,
                    addr: mw_addr[slot],
                    value: self.qmax_mem[mw_addr[slot]],
                };
                self.pending_qmax.push_back(p);
                self.fwd_qmax.push(p);
            }
        }
        self.stats
    }

    /// The packed-table counterpart of
    /// [`run_fast_forwarding_qmax`](Self::run_fast_forwarding_qmax):
    /// same window-register forwarding collapse, but the environment
    /// image is the split [`PackedImage`] (4-byte transition words plus
    /// an on-grid working-format Q column) instead of 8-byte fused
    /// cells, and every writeback runs the stochastic rounder inline
    /// with a dedicated unrolled dither LFSR. Bit-exact against the
    /// general fast path and the cycle-accurate engine (the `quant`
    /// test suite pins this): because the column only ever holds
    /// dequantized codes, reading it directly equals
    /// dequantize-after-load, and the raw-domain writeback rounder
    /// ([`QuantPolicy::apply`]) is exactly the hook the other executors
    /// run; the RNG draw order (behaviour → update → dither, per
    /// retired sample) is identical.
    fn run_fast_forwarding_qmax_packed<E: Environment>(&mut self, env: &E, n: u64) -> CycleStats {
        debug_assert!(n > 0);
        let na = self.num_actions;
        let entry_c1 = self.next_c1;
        let mut quant = self.quant.take().expect("packed executor requires quant");
        let policy = quant.policy;

        #[derive(Clone, Copy)]
        enum FastPolicy {
            Random,
            Greedy,
            Eps(u32),
        }
        let resolve = |p: Policy, role: &str| match p {
            Policy::Random => FastPolicy::Random,
            Policy::Greedy => FastPolicy::Greedy,
            Policy::EpsilonGreedy { epsilon } => FastPolicy::Eps(epsilon_to_q32(epsilon)),
            Policy::Boltzmann { .. } => panic!(
                "Boltzmann {role} policy is not synthesizable on the QRL engine; \
                 use the probability-table bandit engine (qtaccel_accel::bandit)"
            ),
        };
        let behavior = resolve(self.config.trainer.behavior, "behaviour");
        let update = resolve(self.config.trainer.update, "update");
        let forward_action = self.config.trainer.forward_next_action;

        // Entry protocol: identical to the fused executor.
        let mut qw_addr = [NO_ADDR; 3]; // [0] = previous iteration
        while let Some(p) = self.pending_q.pop_front() {
            self.q_mem[p.addr] = p.value;
            debug_assert!(p.commit_cycle <= entry_c1 + 2, "stall-free write bound");
            if p.commit_cycle >= entry_c1 {
                let slot = (entry_c1 + 2 - p.commit_cycle) as usize;
                qw_addr[slot] = p.addr;
            }
        }
        let mut mw_addr = [NO_ADDR; 3];
        while let Some(p) = self.pending_qmax.pop_front() {
            self.qmax_mem[p.addr] = p.value;
            debug_assert!(p.commit_cycle <= entry_c1 + 2, "stall-free write bound");
            if p.commit_cycle >= entry_c1 {
                let slot = (entry_c1 + 2 - p.commit_cycle) as usize;
                mw_addr[slot] = p.addr;
            }
        }
        self.fwd_q.clear();
        self.fwd_qmax.clear();

        // Build the packed environment image on first use. Rewards were
        // snapped to the stored grid by `enable_quant`, so their codes
        // are exact; the Q column is resynced below on every entry.
        if self.packed_image.is_none() {
            let mut nr = Vec::with_capacity(self.num_states * na);
            for s in 0..self.num_states as State {
                for a in 0..na as Action {
                    let t = env.transition(s, a);
                    let rc = policy
                        .try_code(self.rewards.get(s, a))
                        .expect("quantized rewards are on-grid") as u32;
                    nr.push(
                        (t & PK_STATE_MASK)
                            | if env.is_terminal(t) { PK_TERMINAL } else { 0 }
                            | (rc << PK_REWARD_SHIFT),
                    );
                }
            }
            self.packed_image = Some(PackedImage {
                nr,
                q: self.q_mem.clone(),
            });
        }
        let image = self.packed_image.as_mut().expect("image just ensured");
        // On-grid invariant: with quantization active every committed Q
        // word sits on the stored grid (writes are quantized, SEU
        // strikes flip code-domain bits), so the working-format copy is
        // exactly the dequantized stored image.
        debug_assert!(
            self.q_mem.iter().all(|&q| policy.try_code(q).is_some()),
            "quantized q_mem is on-grid"
        );
        image.q.copy_from_slice(&self.q_mem);
        let nr_tab = &image.nr[..];
        let qcol = &mut image.q[..];

        let mut carry = self.carry.take();
        let mut forwards = 0u64;
        let mut last_update_read_q = false;

        let qmax = &mut self.qmax_mem[..];
        let (one_minus_alpha, alpha_v, alpha_gamma) =
            (self.one_minus_alpha, self.alpha_v, self.alpha_gamma);

        let mut behavior_rng = Lfsr32Unrolled::new(&self.behavior_rng);
        let mut update_rng = Lfsr32Unrolled::new(&self.update_rng);
        let mut quant_rng = Lfsr32Unrolled::new(&quant.rng);

        for _ in 0..n {
            // Stage 1: state + behaviour action.
            let (s, carried_a) = match carry.take() {
                None => (env.random_start(&mut self.start_rng), None),
                Some((s, a)) => (s, a),
            };
            let a = match carried_a {
                Some(a) => a,
                None => match behavior {
                    FastPolicy::Random => {
                        ((behavior_rng.next_u32() as u64 * na as u64) >> 32) as u32
                    }
                    FastPolicy::Greedy => {
                        forwards += u64::from(mw_addr[0] == s as usize);
                        qmax[s as usize].1
                    }
                    FastPolicy::Eps(thr) => {
                        let x = behavior_rng.next_u32();
                        if x < thr {
                            ((x as u64 * na as u64) / thr as u64) as u32
                        } else {
                            forwards += u64::from(mw_addr[0] == s as usize);
                            qmax[s as usize].1
                        }
                    }
                },
            };
            let qaddr = s as usize * na + a as usize;
            let packed = nr_tab[qaddr];
            let q_sa = qcol[qaddr];
            let s_next = packed & PK_STATE_MASK;
            forwards += u64::from(
                qaddr == qw_addr[0] || qaddr == qw_addr[1] || qaddr == qw_addr[2],
            );

            // Stage 2: update selection one cycle later.
            let read_q2 = |rng: &mut Lfsr32Unrolled, x: Option<u32>, thr: u32| {
                let an = match x {
                    Some(x) => ((x as u64 * na as u64) / thr as u64) as u32,
                    None => ((rng.next_u32() as u64 * na as u64) >> 32) as u32,
                };
                (an, sa_index(s_next, an, na))
            };
            let (a_next, q_next) = match update {
                FastPolicy::Greedy => {
                    last_update_read_q = false;
                    forwards += u64::from(mw_addr[0] == s_next as usize);
                    let (v, an) = qmax[s_next as usize];
                    (an, v)
                }
                FastPolicy::Random => {
                    let (an, addr) = read_q2(&mut update_rng, None, 0);
                    last_update_read_q = true;
                    forwards += u64::from(addr == qw_addr[0] || addr == qw_addr[1]);
                    (an, qcol[addr])
                }
                FastPolicy::Eps(thr) => {
                    let x = update_rng.next_u32();
                    if x < thr {
                        let (an, addr) = read_q2(&mut update_rng, Some(x), thr);
                        last_update_read_q = true;
                        forwards += u64::from(addr == qw_addr[0] || addr == qw_addr[1]);
                        (an, qcol[addr])
                    } else {
                        last_update_read_q = false;
                        forwards += u64::from(mw_addr[0] == s_next as usize);
                        let (v, an) = qmax[s_next as usize];
                        (an, v)
                    }
                }
            };

            // Stage 3: Eq. (3) in the working format (the column is
            // already dequantized), then the stochastic rounder on the
            // writeback path.
            let reward = policy.dequantize::<V>(u64::from(packed >> PK_REWARD_SHIFT));
            let q_raw = one_minus_alpha
                .mul(q_sa)
                .add(alpha_v.mul(reward))
                .add(alpha_gamma.mul(q_next));
            let q_new = policy.apply(q_raw, u64::from(quant_rng.next_u32()));

            // Stage 4: writeback + Qmax RMW, then age the address windows.
            qcol[qaddr] = q_new;
            qw_addr[2] = qw_addr[1];
            qw_addr[1] = qw_addr[0];
            qw_addr[0] = qaddr;

            mw_addr[2] = mw_addr[1];
            mw_addr[1] = mw_addr[0];
            if q_new.vcmp(qmax[s as usize].0) == core::cmp::Ordering::Greater {
                qmax[s as usize] = (q_new, a);
                mw_addr[0] = s as usize;
            } else {
                mw_addr[0] = NO_ADDR;
            }

            carry = if packed & PK_TERMINAL != 0 {
                None
            } else {
                Some((s_next, if forward_action { Some(a_next) } else { None }))
            };
        }

        // Write the live Q column (already in the working format, still
        // on-grid) back into the committed BRAM image and resynchronise
        // the serial RNG registers.
        self.q_mem.copy_from_slice(qcol);
        self.behavior_rng = behavior_rng.into_lfsr();
        self.update_rng = update_rng.into_lfsr();
        quant.rng = quant_rng.into_lfsr();
        self.quant = Some(quant);

        // Exit: closed-form cycle accounting and pending-queue
        // reconstruction, line for line the fused executor's exit.
        self.carry = carry;
        let end_c1 = entry_c1 + n;
        self.next_c1 = end_c1;
        self.stats.samples += n;
        self.stats.forwards += forwards;
        self.stats.cycles = end_c1 - 1 + WRITE_OFFSET + 1;
        self.drain_horizon_q = end_c1 - 1 + u64::from(last_update_read_q);
        self.drain_horizon_qmax = end_c1 - 1 + WRITE_OFFSET;
        for slot in (0..3).rev() {
            if qw_addr[slot] != NO_ADDR {
                let p = Pending {
                    commit_cycle: end_c1 + 2 - slot as u64,
                    addr: qw_addr[slot],
                    value: self.q_mem[qw_addr[slot]],
                };
                self.pending_q.push_back(p);
                self.fwd_q.push(p);
            }
            if mw_addr[slot] != NO_ADDR {
                let p = Pending {
                    commit_cycle: end_c1 + 2 - slot as u64,
                    addr: mw_addr[slot],
                    value: self.qmax_mem[mw_addr[slot]],
                };
                self.pending_qmax.push_back(p);
                self.fwd_qmax.push(p);
            }
        }
        self.stats
    }

    /// Whether a run of `n` samples may take the interleaved
    /// multi-stream executor: the fused-slab predicate (uninstrumented,
    /// fault-free, forwarding hazards, Qmax-array maxima) plus a ≤32-bit
    /// storage width, because the packed transition image carries the
    /// reward word in the upper lanes of each 64-bit entry.
    pub(crate) fn interleave_eligible(&self, n: u64) -> bool {
        n > 0
            && !S::COUNTERS
            && !S::EVENTS
            && !S::HEALTH
            && self.fault.is_none()
            && self.quant.is_none()
            && self.config.hazard == HazardMode::Forwarding
            && self.config.trainer.max_mode == MaxMode::QmaxArray
            && self.num_states < (1usize << 31)
            && V::storage_bits() <= 32
    }

    /// Packed `(transition, reward)` image for the interleaved executor:
    /// word `s·|A| + a` holds the fused-style `next_packed` (next state
    /// | [`TERMINAL_BIT`]) in the low 32 bits and the reward's storage
    /// word in the lane starting at bit 32, so one 64-bit load serves
    /// both stage-1 reads. Built on first use and cached, like
    /// `fast_image`; the `Arc` lets a stream group share one copy (see
    /// [`share_tr_image`](Self::share_tr_image)).
    pub(crate) fn ensure_tr_image<E: Environment>(
        &mut self,
        env: &E,
    ) -> std::sync::Arc<Vec<u64>> {
        if self.tr_image.is_none() {
            let na = self.num_actions;
            let rew_lane = qtaccel_fixed::lanes::lanes_per_u64::<V>() / 2;
            let mut words = Vec::with_capacity(self.num_states * na);
            for s in 0..self.num_states as State {
                for a in 0..na as Action {
                    let t = env.transition(s, a);
                    let packed = t | if env.is_terminal(t) { TERMINAL_BIT } else { 0 };
                    words.push(qtaccel_fixed::lanes::insert_lane(
                        packed as u64,
                        rew_lane,
                        self.rewards.get(s, a),
                    ));
                }
            }
            self.tr_image = Some(std::sync::Arc::new(words));
        }
        self.tr_image.clone().expect("image just ensured")
    }

    /// Deduplicate this pipeline's cached transition image against a
    /// group leader's: if the contents coincide (same environment, same
    /// rewards), drop the private copy and adopt the shared `Arc`, so a
    /// K-stream group touches one image instead of K. Returns the image
    /// this pipeline should stream from. The content compare runs once —
    /// after adoption, `Arc::ptr_eq` short-circuits every later call.
    pub(crate) fn share_tr_image(
        &mut self,
        shared: &std::sync::Arc<Vec<u64>>,
    ) -> std::sync::Arc<Vec<u64>> {
        let mine = self.tr_image.as_ref().expect("ensure_tr_image first");
        if !std::sync::Arc::ptr_eq(mine, shared) && **mine == **shared {
            self.tr_image = Some(shared.clone());
        }
        self.tr_image.clone().expect("image present")
    }

    /// Entry protocol of the interleaved executor: commit every pending
    /// write, capture the forwarding window addresses, and move the
    /// architectural state out into a [`FastLane`]. Identical to
    /// [`run_fast_forwarding_qmax`]'s entry (same immediate-commit
    /// semantics, same stall-free write bound), except the Q table
    /// itself travels — there is no slab column to resync.
    ///
    /// [`run_fast_forwarding_qmax`]: Self::run_fast_forwarding_qmax
    pub(crate) fn interleave_checkout(&mut self) -> FastLane<V> {
        let entry_c1 = self.next_c1;
        let mut qw_addr = [NO_ADDR; 3]; // [0] = previous iteration
        while let Some(p) = self.pending_q.pop_front() {
            self.q_mem[p.addr] = p.value;
            debug_assert!(p.commit_cycle <= entry_c1 + 2, "stall-free write bound");
            if p.commit_cycle >= entry_c1 {
                let slot = (entry_c1 + 2 - p.commit_cycle) as usize;
                qw_addr[slot] = p.addr;
            }
        }
        let mut mw_addr = [NO_ADDR; 3];
        while let Some(p) = self.pending_qmax.pop_front() {
            self.qmax_mem[p.addr] = p.value;
            debug_assert!(p.commit_cycle <= entry_c1 + 2, "stall-free write bound");
            if p.commit_cycle >= entry_c1 {
                let slot = (entry_c1 + 2 - p.commit_cycle) as usize;
                mw_addr[slot] = p.addr;
            }
        }
        self.fwd_q.clear();
        self.fwd_qmax.clear();
        FastLane {
            q: core::mem::take(&mut self.q_mem),
            qmax: core::mem::take(&mut self.qmax_mem),
            start_rng: self.start_rng.clone(),
            behavior_rng: self.behavior_rng.clone(),
            update_rng: self.update_rng.clone(),
            carry: self.carry.take(),
            qw_addr,
            mw_addr,
            entry_c1,
            num_actions: self.num_actions,
            one_minus_alpha: self.one_minus_alpha,
            alpha_v: self.alpha_v,
            alpha_gamma: self.alpha_gamma,
        }
    }

    /// Exit protocol of the interleaved executor: move the tables back,
    /// apply the closed-form cycle accounting, and reconstruct the
    /// pending queues from the forwarding windows — line for line the
    /// exit of [`run_fast_forwarding_qmax`], so a subsequent
    /// cycle-accurate run (or any other executor) observes identical
    /// state. `n` must be the lane's retired sample count (> 0).
    ///
    /// [`run_fast_forwarding_qmax`]: Self::run_fast_forwarding_qmax
    pub(crate) fn interleave_checkin(
        &mut self,
        lane: FastLane<V>,
        n: u64,
        forwards: u64,
        last_update_read_q: bool,
    ) {
        debug_assert!(n > 0, "zero-sample lanes must never be checked out");
        self.q_mem = lane.q;
        self.qmax_mem = lane.qmax;
        self.start_rng = lane.start_rng;
        self.behavior_rng = lane.behavior_rng;
        self.update_rng = lane.update_rng;
        self.carry = lane.carry;
        let end_c1 = lane.entry_c1 + n;
        self.next_c1 = end_c1;
        self.stats.samples += n;
        self.stats.forwards += forwards;
        self.stats.cycles = end_c1 - 1 + WRITE_OFFSET + 1;
        self.drain_horizon_q = end_c1 - 1 + u64::from(last_update_read_q);
        self.drain_horizon_qmax = end_c1 - 1 + WRITE_OFFSET;
        // Window values are recovered from the committed tables (same
        // argument as the fused exit: forwarding and `q_table` only ever
        // observe the newest writer per address).
        for slot in (0..3).rev() {
            if lane.qw_addr[slot] != NO_ADDR {
                let p = Pending {
                    commit_cycle: end_c1 + 2 - slot as u64,
                    addr: lane.qw_addr[slot],
                    value: self.q_mem[lane.qw_addr[slot]],
                };
                self.pending_q.push_back(p);
                self.fwd_q.push(p);
            }
            if lane.mw_addr[slot] != NO_ADDR {
                let p = Pending {
                    commit_cycle: end_c1 + 2 - slot as u64,
                    addr: lane.mw_addr[slot],
                    value: self.qmax_mem[lane.mw_addr[slot]],
                };
                self.pending_qmax.push_back(p);
                self.fwd_qmax.push(p);
            }
        }
    }

    /// Inject a single-event upset: flip `bit` of the *committed* Q BRAM
    /// word for (s, a). Models a radiation-induced soft error in the
    /// on-chip memory (in-flight pipeline values are unaffected, exactly
    /// as a BRAM cell flip would behave). Used by the `seu_robustness`
    /// experiment.
    pub fn inject_q_bit_flip(&mut self, s: State, a: Action, bit: u32) {
        let idx = sa_index(s, a, self.num_actions);
        // Under a quantized table the physical cell is `stored_bits`
        // wide: fold the requested bit into the code domain so the
        // struck word stays representable on the stored grid.
        let bit = match &self.quant {
            Some(qr) => (bit % qr.policy.stored_bits()) + qr.policy.shift(),
            None => bit,
        };
        self.q_mem[idx] = self.q_mem[idx].flip_bit(bit);
    }

    /// Extract the architectural Q-table (committed image plus in-flight
    /// writes, applied in order — what reading back the BRAM after
    /// drain would show).
    pub fn q_table(&self) -> QTable<V> {
        let mut q = QTable::new(self.num_states, self.num_actions);
        let mut mem = self.q_mem.clone();
        for p in &self.pending_q {
            mem[p.addr] = p.value;
        }
        for s in 0..self.num_states as State {
            for a in 0..self.num_actions as Action {
                q.set(s, a, mem[sa_index(s, a, self.num_actions)]);
            }
        }
        q
    }

    /// Extract the architectural Qmax array.
    pub fn qmax_table(&self) -> QmaxTable<V> {
        let mut mem = self.qmax_mem.clone();
        for p in &self.pending_qmax {
            mem[p.addr] = p.value;
        }
        let mut t = QmaxTable::new(self.num_states);
        for (s, (v, a)) in mem.iter().enumerate() {
            t.poke(s as State, *v, *a);
        }
        t
    }

    /// Exact greedy policy from the architectural Q-table.
    pub fn greedy_policy(&self) -> Vec<Action> {
        self.q_table().greedy_policy()
    }

    // ---- fault-tolerance runtime ---------------------------------------

    /// Attach (or replace) the fault-tolerance runtime: online SEU
    /// injection against the Q/Qmax memories, the SECDED protection
    /// model, and the background Qmax scrubbing engine (see
    /// [`FaultConfig`] and the `crate::fault` module docs).
    ///
    /// With a runtime attached the fused window-register executor is
    /// ineligible (the general fast path and the cycle-accurate engine
    /// both take the per-retired-sample fault hook); without one, every
    /// execution path is bit-identical to a build without this feature.
    /// Replacing the runtime resets its counters and injector streams.
    pub fn enable_faults(&mut self, config: FaultConfig) {
        self.fault = Some(Box::new(FaultRt::new(config)));
    }

    /// Detach the fault runtime (fault-free operation resumes; any
    /// corruption already landed in the tables of course remains).
    pub fn disable_faults(&mut self) {
        self.fault = None;
    }

    /// The fault configuration in force, if a runtime is attached.
    pub fn fault_config(&self) -> Option<FaultConfig> {
        self.fault.as_ref().map(|f| f.config)
    }

    /// Snapshot of the fault-campaign counters, if a runtime is attached.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.as_ref().map(|f| f.stats)
    }

    /// Per-retired-sample fault hook: one SEU opportunity per memory,
    /// then one scrub slot. A single `None` check on the fault-free path.
    #[inline(always)]
    fn fault_tick(&mut self) {
        if self.fault.is_some() {
            self.fault_tick_active();
        }
    }

    /// The active-runtime body of [`fault_tick`](Self::fault_tick),
    /// out-of-line so the fault-free loops stay tight.
    fn fault_tick_active(&mut self) {
        let mut f = self.fault.take().expect("caller checked is_some");
        // With a quantized table the BRAM cell holds `stored_bits` code
        // bits, so strikes draw over the code domain and land at raw bit
        // `code_bit + shift` — which keeps the struck word on the stored
        // grid (the on-grid invariant the packed paths rely on) and
        // models the physically narrower word.
        let (width, shift) = match &self.quant {
            Some(qr) => (qr.policy.stored_bits(), qr.policy.shift()),
            None => (V::storage_bits(), 0),
        };
        // Strikes land in the *committed* BRAM images — an in-flight
        // pipeline value is flip-flop state, not a memory cell, and a
        // pending write that later commits over a struck word rewrites
        // (re-encodes) it, exactly as the hardware would.
        if let Some((addr, bit)) = f.q_inj.maybe_strike(self.q_mem.len(), width) {
            f.stats.injected_q += 1;
            if let Some(v) = strike_word(
                self.q_mem[addr],
                &mut f.q_latent,
                &mut f.stats,
                f.config.ecc,
                addr,
                bit + shift,
            ) {
                self.q_mem[addr] = v;
            }
        }
        // The Qmax strike model targets the value field (the wide,
        // latch-poisoning-prone part of the word); the narrow action
        // field shares the codeword under ECC but its upset cross
        // section is a rounding error next to the value bits.
        if let Some((addr, bit)) = f.qmax_inj.maybe_strike(self.qmax_mem.len(), width) {
            f.stats.injected_qmax += 1;
            if let Some(v) = strike_word(
                self.qmax_mem[addr].0,
                &mut f.qmax_latent,
                &mut f.stats,
                f.config.ecc,
                addr,
                bit + shift,
            ) {
                self.qmax_mem[addr].0 = v;
            }
        }
        if f.config.scrub_period > 0 {
            f.samples_since_scrub += 1;
            if f.samples_since_scrub >= f.config.scrub_period {
                f.samples_since_scrub = 0;
                self.scrub_slot(&mut f);
            }
        }
        self.fault = Some(f);
    }

    /// One scrub engine slot: rebuild the Qmax entry under the cursor
    /// exactly from the committed Q row (value *and* greedy-action
    /// field, ties to the lowest action — `QmaxTable::rebuild_exact`
    /// semantics, one state at a time).
    fn scrub_slot(&mut self, f: &mut FaultRt) {
        let s = f.scrub_cursor;
        let base = s * self.num_actions;
        let mut best_v = self.q_mem[base];
        let mut best_a = 0 as Action;
        for a in 1..self.num_actions {
            let v = self.q_mem[base + a];
            if v.vcmp(best_v) == core::cmp::Ordering::Greater {
                best_v = v;
                best_a = a as Action;
            }
        }
        f.stats.scrub_entries += 1;
        let cur = self.qmax_mem[s];
        if QValue::to_bits(cur.0) != QValue::to_bits(best_v) || cur.1 != best_a {
            self.qmax_mem[s] = (best_v, best_a);
            f.stats.scrub_repairs += 1;
            // The scrub writeback re-encodes the word: a recorded latent
            // ECC error on it is gone.
            f.qmax_latent.retain(|l| l.addr != s);
        }
        f.scrub_cursor += 1;
        if f.scrub_cursor >= self.num_states {
            f.scrub_cursor = 0;
            f.stats.scrub_rounds += 1;
        }
    }

    // ---- checkpoint / restore ------------------------------------------

    /// Serialize the full mutable training state into a checkpoint
    /// container (see `crate::checkpoint` for the format): Q/Qmax
    /// images, the three LFSR unit states, cycle statistics, the
    /// inter-iteration carry, in-flight write queues (the pipeline is
    /// *not* quiesced — resume is bit-exact mid-flight), and the fault
    /// runtime if one is attached. Telemetry (counter bank, event sink)
    /// is observability, not architectural state, and is not captured —
    /// with one exception: an attached health probe *is* captured, so a
    /// resumed run probes exactly the samples the unbroken run would
    /// (the stride cursor is part of the sampling plan).
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut w = WordWriter::with_header();
        w.push_str(&V::format_name());
        w.push(V::storage_bits() as u64);
        w.push(self.num_states as u64);
        w.push(self.num_actions as u64);
        // Cycle statistics.
        w.push(self.stats.cycles);
        w.push(self.stats.samples);
        w.push(self.stats.stalls);
        w.push(self.stats.fill_bubbles);
        w.push(self.stats.forwards);
        // LFSR unit states (peek/new round-trips exactly; a live LFSR
        // state is never zero, so the zero-seed remap cannot fire).
        w.push(self.start_rng.peek() as u64);
        w.push(self.behavior_rng.peek() as u64);
        w.push(self.update_rng.peek() as u64);
        // Control state.
        let (tag, cs, ca) = match self.carry {
            None => (0u64, 0u64, 0u64),
            Some((s, None)) => (1, s as u64, 0),
            Some((s, Some(a))) => (2, s as u64, a as u64),
        };
        w.push(tag);
        w.push(cs);
        w.push(ca);
        w.push(self.next_c1);
        w.push(self.drain_horizon_q);
        w.push(self.drain_horizon_qmax);
        // Memory images.
        for &v in &self.q_mem {
            w.push(QValue::to_bits(v));
        }
        for &(v, a) in &self.qmax_mem {
            w.push(QValue::to_bits(v));
            w.push(a as u64);
        }
        // In-flight write queues.
        w.push(self.pending_q.len() as u64);
        for p in &self.pending_q {
            w.push(p.commit_cycle);
            w.push(p.addr as u64);
            w.push(QValue::to_bits(p.value));
        }
        w.push(self.pending_qmax.len() as u64);
        for p in &self.pending_qmax {
            w.push(p.commit_cycle);
            w.push(p.addr as u64);
            w.push(QValue::to_bits(p.value.0));
            w.push(p.value.1 as u64);
        }
        // Fault runtime.
        match &self.fault {
            None => w.push(0),
            Some(f) => {
                w.push(1);
                w.push(f.config.seed);
                w.push_f64(f.config.q_seu_rate);
                w.push_f64(f.config.qmax_seu_rate);
                w.push(f.config.ecc as u64);
                w.push(f.config.scrub_period);
                w.push(f.q_inj.rng_state() as u64);
                w.push(f.q_inj.injected());
                w.push(f.qmax_inj.rng_state() as u64);
                w.push(f.qmax_inj.injected());
                w.push(f.scrub_cursor as u64);
                w.push(f.samples_since_scrub);
                w.push(f.stats.injected_q);
                w.push(f.stats.injected_qmax);
                w.push(f.stats.corrected);
                w.push(f.stats.detected_uncorrectable);
                w.push(f.stats.scrub_entries);
                w.push(f.stats.scrub_rounds);
                w.push(f.stats.scrub_repairs);
                for latents in [&f.q_latent, &f.qmax_latent] {
                    w.push(latents.len() as u64);
                    for l in latents {
                        w.push(l.addr as u64);
                        w.push(l.bit as u64);
                        w.push(l.snapshot);
                    }
                }
            }
        }
        // Health probe (length-prefixed so readers without the section
        // still parse; readers of older checkpoints see it absent).
        match self.sink.health() {
            None => w.push(0),
            Some(probe) => {
                w.push(1);
                let words = probe.checkpoint_words();
                w.push(words.len() as u64);
                for word in words {
                    w.push(word);
                }
            }
        }
        // Quantized-storage section (trailing, same absent-tag scheme:
        // readers of older checkpoints see it absent). The Q/Qmax images
        // above stay working-format words — they are on the stored grid,
        // so the round trip is exact and unquantized readers still parse.
        match &self.quant {
            None => w.push(0),
            Some(qr) => {
                w.push(1);
                w.push(qr.policy.stored_bits() as u64);
                w.push(qr.policy.shift() as u64);
                w.push(qr.rng.peek() as u64);
            }
        }
        // Lease-epoch section (trailing, same absent-tag scheme). Only
        // written when non-zero so non-cluster checkpoints stay
        // byte-identical to what earlier releases wrote.
        if self.lease_epoch != 0 {
            w.push(1);
            w.push(self.lease_epoch);
        }
        w.finish()
    }

    /// Restore state captured by [`checkpoint_bytes`](Self::checkpoint_bytes)
    /// into this pipeline. The pipeline must have been built for the
    /// same environment dimensions, value format *and configuration* as
    /// the checkpointed one (dimensions and format are verified;
    /// trainer/hazard configuration is the caller's contract — restoring
    /// under a different config is well-defined but obviously not a
    /// bit-exact resume of the original run).
    ///
    /// All-or-nothing: on any error the pipeline is left untouched.
    pub fn restore_checkpoint_bytes(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let mut r = WordReader::parse(bytes)?;
        let found = r.next_str()?;
        let expected = V::format_name();
        if found != expected {
            return Err(CheckpointError::Mismatch {
                field: "value format",
                expected,
                found,
            });
        }
        let bits = r.next()?;
        if bits != V::storage_bits() as u64 {
            return Err(CheckpointError::Mismatch {
                field: "storage bits",
                expected: V::storage_bits().to_string(),
                found: bits.to_string(),
            });
        }
        let ns = r.next()?;
        if ns != self.num_states as u64 {
            return Err(CheckpointError::Mismatch {
                field: "num_states",
                expected: self.num_states.to_string(),
                found: ns.to_string(),
            });
        }
        let na = r.next()?;
        if na != self.num_actions as u64 {
            return Err(CheckpointError::Mismatch {
                field: "num_actions",
                expected: self.num_actions.to_string(),
                found: na.to_string(),
            });
        }
        // Decode everything into temporaries first so a short payload
        // cannot leave the pipeline half-restored.
        let stats = CycleStats {
            cycles: r.next()?,
            samples: r.next()?,
            stalls: r.next()?,
            fill_bubbles: r.next()?,
            forwards: r.next()?,
        };
        let start_rng = Lfsr32::new(r.next()? as u32);
        let behavior_rng = Lfsr32::new(r.next()? as u32);
        let update_rng = Lfsr32::new(r.next()? as u32);
        let (tag, cs, ca) = (r.next()?, r.next()? as State, r.next()? as Action);
        let carry = match tag {
            0 => None,
            1 => Some((cs, None)),
            _ => Some((cs, Some(ca))),
        };
        let next_c1 = r.next()?;
        let drain_horizon_q = r.next()?;
        let drain_horizon_qmax = r.next()?;
        let mut q_mem = Vec::with_capacity(self.q_mem.len());
        for _ in 0..self.q_mem.len() {
            q_mem.push(V::from_bits(r.next()?));
        }
        let mut qmax_mem = Vec::with_capacity(self.qmax_mem.len());
        for _ in 0..self.qmax_mem.len() {
            let v = V::from_bits(r.next()?);
            qmax_mem.push((v, r.next()? as Action));
        }
        let nq = r.next()? as usize;
        let mut pending_q = VecDeque::with_capacity(nq);
        for _ in 0..nq {
            pending_q.push_back(Pending {
                commit_cycle: r.next()?,
                addr: r.next()? as usize,
                value: V::from_bits(r.next()?),
            });
        }
        let nm = r.next()? as usize;
        let mut pending_qmax = VecDeque::with_capacity(nm);
        for _ in 0..nm {
            pending_qmax.push_back(Pending {
                commit_cycle: r.next()?,
                addr: r.next()? as usize,
                value: {
                    let v = V::from_bits(r.next()?);
                    (v, r.next()? as Action)
                },
            });
        }
        let fault = if r.next()? == 0 {
            None
        } else {
            let config = FaultConfig {
                seed: r.next()?,
                q_seu_rate: r.next_f64()?,
                qmax_seu_rate: r.next_f64()?,
                ecc: r.next()? != 0,
                scrub_period: r.next()?,
            };
            let mut f = FaultRt::new(config);
            let (qs, qi) = (r.next()? as u32, r.next()?);
            f.q_inj.restore(qs, qi);
            let (ms, mi) = (r.next()? as u32, r.next()?);
            f.qmax_inj.restore(ms, mi);
            f.scrub_cursor = r.next()? as usize;
            f.samples_since_scrub = r.next()?;
            f.stats = FaultStats {
                injected_q: r.next()?,
                injected_qmax: r.next()?,
                corrected: r.next()?,
                detected_uncorrectable: r.next()?,
                scrub_entries: r.next()?,
                scrub_rounds: r.next()?,
                scrub_repairs: r.next()?,
            };
            for latents in [&mut f.q_latent, &mut f.qmax_latent] {
                let n = r.next()? as usize;
                for _ in 0..n {
                    latents.push(LatentError {
                        addr: r.next()? as usize,
                        bit: r.next()? as u32,
                        snapshot: r.next()?,
                    });
                }
            }
            Some(Box::new(f))
        };
        // Health probe section. Checkpoints written before health
        // instrumentation existed simply end here — treat that exactly
        // like a health-absent checkpoint. Decoded (and validated)
        // before the commit phase, like everything else.
        let health = if r.remaining() == 0 || r.next()? == 0 {
            None
        } else {
            let nwords = r.next()? as usize;
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(r.next()?);
            }
            let mut probe = qtaccel_telemetry::HealthProbe::new(
                qtaccel_telemetry::HealthConfig::default(),
            );
            probe
                .restore_from_words(&words)
                .map_err(|e| CheckpointError::Mismatch {
                    field: "health probe",
                    expected: "internally consistent probe section".to_string(),
                    found: e,
                })?;
            if probe.num_states() != 0 && probe.num_states() != self.num_states as u64 {
                return Err(CheckpointError::Mismatch {
                    field: "health probe num_states",
                    expected: self.num_states.to_string(),
                    found: probe.num_states().to_string(),
                });
            }
            Some(probe)
        };
        // Quantized-storage section. Checkpoints written before
        // quantization existed end here — treat that as quant-absent.
        // Validated manually (typed error, not a panic) before commit.
        let quant = if r.remaining() == 0 || r.next()? == 0 {
            None
        } else {
            let stored_bits = r.next()? as u32;
            let shift = r.next()? as u32;
            let w = V::storage_bits();
            let valid = (2..=32).contains(&stored_bits)
                && shift < 32
                && stored_bits < w
                && stored_bits + shift <= w;
            if !valid {
                return Err(CheckpointError::Mismatch {
                    field: "quant policy",
                    expected: format!("stored_bits in [2, {w}), stored_bits + shift <= {w}"),
                    found: format!("stored_bits {stored_bits}, shift {shift}"),
                });
            }
            let rng = Lfsr32::new(r.next()? as u32);
            Some(QuantRt {
                policy: QuantPolicy::new(stored_bits, shift),
                rng,
            })
        };
        // Lease-epoch section. Absent (older or non-cluster checkpoint)
        // means epoch 0.
        let lease_epoch = if r.remaining() == 0 || r.next()? == 0 {
            0
        } else {
            r.next()?
        };

        // Commit.
        self.stats = stats;
        self.start_rng = start_rng;
        self.behavior_rng = behavior_rng;
        self.update_rng = update_rng;
        self.carry = carry;
        self.next_c1 = next_c1;
        self.drain_horizon_q = drain_horizon_q;
        self.drain_horizon_qmax = drain_horizon_qmax;
        self.q_mem = q_mem;
        self.qmax_mem = qmax_mem;
        self.pending_q = pending_q;
        self.pending_qmax = pending_qmax;
        self.fwd_q.clear();
        for &p in &self.pending_q {
            self.fwd_q.push(p);
        }
        self.fwd_qmax.clear();
        for &p in &self.pending_qmax {
            self.fwd_qmax.push(p);
        }
        self.fault = fault;
        // Adopt the checkpoint's quantization state wholesale. A
        // quant-absent checkpoint restored into a quant-enabled pipeline
        // (or vice versa) is a configuration mismatch like restoring
        // under a different trainer config — well-defined (the restored
        // state simply runs under the restored quant mode) but not a
        // bit-exact resume; matching configs is the caller's contract.
        if let Some(qr) = &quant {
            // Rewards are not checkpointed: snap them to the restored
            // grid (idempotent when they already are).
            let policy = qr.policy;
            self.rewards.map_values(|v| policy.round_nearest(v));
        }
        self.quant = quant;
        self.lease_epoch = lease_epoch;
        // Derived caches embed rewards / stored codes.
        self.fast_image = None;
        self.tr_image = None;
        self.packed_image = None;
        if S::HEALTH {
            if let Some(slot) = self.sink.health_mut() {
                match health {
                    Some(probe) => *slot = probe,
                    // Pre-health checkpoint: the resumed run's probe
                    // starts fresh (its binding survives the reset).
                    None => slot.reset(),
                }
            }
        }
        Ok(())
    }

    /// Durably write a checkpoint to `path` (atomic write-then-rename:
    /// a crash leaves either the previous or the new complete file).
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), CheckpointError> {
        checkpoint::atomic_write(path, &self.checkpoint_bytes())
    }

    /// Restore from a checkpoint file written by
    /// [`save_checkpoint`](Self::save_checkpoint). Truncated, corrupt,
    /// wrong-version or wrong-shape files are refused with a typed
    /// [`CheckpointError`] and leave the pipeline untouched.
    pub fn restore_checkpoint(&mut self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = std::fs::read(path)?;
        self.restore_checkpoint_bytes(&bytes)
    }

    /// The lease-fencing epoch the pipeline currently trains under
    /// (stamped into every checkpoint it saves; 0 outside cluster runs).
    pub fn lease_epoch(&self) -> u64 {
        self.lease_epoch
    }

    /// Stamp the lease-fencing epoch. The cluster worker sets this when
    /// it picks a lease up, so checkpoints written from a superseded
    /// assignment are distinguishable from the live one. Epoch state is
    /// metadata only — it never feeds the training datapath, so stamping
    /// it cannot perturb bit-exactness.
    pub fn set_lease_epoch(&mut self, epoch: u64) {
        self.lease_epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_core::trainer::{RefTrainer, TrainerConfig};
    use qtaccel_envs::GridWorld;
    use qtaccel_fixed::{Q16_16, Q8_8};

    fn grid() -> GridWorld {
        GridWorld::builder(8, 8).goal(7, 7).build()
    }

    fn config(seed: u64) -> AccelConfig {
        AccelConfig::default().with_seed(seed)
    }

    #[test]
    fn one_sample_per_cycle_with_forwarding() {
        let g = grid();
        let mut p = AccelPipeline::<Q8_8>::new(&g, config(1), 0);
        let stats = p.run_samples(&g, 10_000);
        assert_eq!(stats.samples, 10_000);
        assert_eq!(stats.stalls, 0, "forwarding never stalls");
        assert_eq!(stats.cycles, 10_000 + FILL, "fill + 1/cycle");
        assert!(stats.samples_per_cycle() > 0.999);
    }

    #[test]
    fn forwarding_events_happen() {
        // Consecutive updates do collide on this small world; the
        // forwarding network must actually fire.
        let g = GridWorld::builder(2, 2).goal(1, 1).build();
        let mut p = AccelPipeline::<Q8_8>::new(&g, config(2), 0);
        let stats = p.run_samples(&g, 5_000);
        assert!(stats.forwards > 0, "no hazards on a 4-state world?");
    }

    #[test]
    fn bit_exact_vs_golden_reference_q_learning() {
        let g = grid();
        for seed in [1u64, 7, 42, 12345] {
            let mut hw = AccelPipeline::<Q8_8>::new(&g, config(seed), 0);
            let mut sw = RefTrainer::<Q8_8, _>::new(
                g.clone(),
                TrainerConfig::q_learning().with_seed(seed),
            );
            hw.run_samples(&g, 20_000);
            sw.run_samples(20_000);
            assert_eq!(
                hw.q_table().as_slice(),
                sw.q().as_slice(),
                "seed {seed}: pipeline diverged from sequential reference"
            );
        }
    }

    #[test]
    fn bit_exact_vs_golden_reference_sarsa() {
        let g = grid();
        for seed in [3u64, 99] {
            let mut cfg = config(seed);
            cfg.trainer = TrainerConfig::sarsa(0.2).with_seed(seed);
            let mut hw = AccelPipeline::<Q8_8>::new(&g, cfg, 0);
            let mut sw =
                RefTrainer::<Q8_8, _>::new(g.clone(), TrainerConfig::sarsa(0.2).with_seed(seed));
            hw.run_samples(&g, 20_000);
            sw.run_samples(20_000);
            assert_eq!(
                hw.q_table().as_slice(),
                sw.q().as_slice(),
                "seed {seed}: SARSA pipeline diverged"
            );
        }
    }

    #[test]
    fn stall_mode_is_slower_but_value_identical() {
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        let mut fwd = AccelPipeline::<Q8_8>::new(&g, config(5), 0);
        let mut stall =
            AccelPipeline::<Q8_8>::new(&g, config(5).with_hazard(HazardMode::StallOnly), 0);
        let sf = fwd.run_samples(&g, 10_000);
        let ss = stall.run_samples(&g, 10_000);
        assert_eq!(
            fwd.q_table().as_slice(),
            stall.q_table().as_slice(),
            "stalling must preserve values"
        );
        assert!(ss.stalls > 0, "small world must provoke stalls");
        assert!(
            ss.cycles > sf.cycles,
            "stall-only must be slower: {} vs {}",
            ss.cycles,
            sf.cycles
        );
        assert!(ss.samples_per_cycle() < 1.0);
    }

    #[test]
    fn ignore_mode_diverges_from_reference() {
        // Without dependency handling the pipeline reads stale operands;
        // on a tiny world the trajectories must diverge measurably.
        let g = GridWorld::builder(2, 2).goal(1, 1).build();
        let mut bad =
            AccelPipeline::<Q16_16>::new(&g, config(6).with_hazard(HazardMode::Ignore), 0);
        let mut sw = RefTrainer::<Q16_16, _>::new(
            g.clone(),
            TrainerConfig::q_learning().with_seed(6),
        );
        // Compare step by step: both trajectories eventually converge to
        // the same fixed point, so the corruption is visible mid-flight,
        // not necessarily in the final table.
        let mut diverged = false;
        for _ in 0..2_000 {
            let th = bad.step(&g);
            let ts = sw.step();
            // Same RNG units => identical (s, a) streams until values
            // feed back into action selection; q_new differs as soon as a
            // stale operand is consumed.
            if th.q_new != ts.q_new || th.s != ts.s || th.a != ts.a {
                diverged = true;
                break;
            }
        }
        assert!(
            diverged,
            "stale reads should corrupt at least one update on a 4-state world"
        );
        // But it still runs at full throughput — that is the trap.
        assert_eq!(bad.stats().stalls, 0);
    }

    #[test]
    fn exact_scan_mode_matches_reference_and_costs_cycles() {
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        let cfg = config(8).with_max_mode(MaxMode::ExactScan);
        let mut hw = AccelPipeline::<Q8_8>::new(&g, cfg, 0);
        let mut sw = RefTrainer::<Q8_8, _>::new(
            g.clone(),
            TrainerConfig::q_learning()
                .with_seed(8)
                .with_max_mode(MaxMode::ExactScan),
        );
        let stats = hw.run_samples(&g, 5_000);
        sw.run_samples(5_000);
        assert_eq!(hw.q_table().as_slice(), sw.q().as_slice());
        // Every sample pays the |A|-1 = 3 extra scan cycles.
        assert!(stats.stalls >= 3 * 5_000, "stalls {}", stats.stalls);
        assert!(stats.samples_per_cycle() < 0.3);
    }

    #[test]
    fn pipeline_learns_the_grid() {
        let g = grid();
        let mut p = AccelPipeline::<Q16_16>::new(&g, config(11), 0);
        p.run_samples(&g, 400_000);
        let policy = p.greedy_policy();
        let opt = qtaccel_core::eval::step_optimality(&g, &policy, &g.shortest_distances());
        assert!(opt > 0.95, "step-optimality {opt}");
    }

    #[test]
    fn qmax_extraction_is_upper_bound() {
        let g = grid();
        let mut p = AccelPipeline::<Q8_8>::new(&g, config(13), 0);
        p.run_samples(&g, 50_000);
        let q = p.q_table();
        let qmax = p.qmax_table();
        for s in 0..g.num_states() as State {
            let (_, true_max) = q.max_exact(s);
            assert!(qmax.get(s).0 >= true_max, "state {s}");
        }
    }

    #[test]
    #[should_panic(expected = "not synthesizable")]
    fn boltzmann_rejected_on_qrl_engine() {
        let g = grid();
        let mut cfg = config(1);
        cfg.trainer.behavior = Policy::Boltzmann { temperature: 1.0 };
        let mut p = AccelPipeline::<Q8_8>::new(&g, cfg, 0);
        p.step(&g);
    }

    /// Every CycleStats counter pinned to the values the scan-per-read,
    /// drain-per-read formulation produced (captured from the
    /// pre-refactor engine). Guards the O(1) forwarding index and the
    /// per-step commit point against any silent accounting drift, in
    /// every hazard mode.
    #[test]
    fn hazard_mode_cycle_stats_are_pinned() {
        struct Gold {
            w: u32,
            h: u32,
            seed: u64,
            hazard: HazardMode,
            n: u64,
            cycles: u64,
            stalls: u64,
            forwards: u64,
        }
        let golds = [
            Gold { w: 2, h: 2, seed: 21, hazard: HazardMode::Forwarding, n: 7_000, cycles: 7_003, stalls: 0, forwards: 1_859 },
            Gold { w: 4, h: 4, seed: 9, hazard: HazardMode::Forwarding, n: 12_000, cycles: 12_003, stalls: 0, forwards: 1_714 },
            Gold { w: 8, h: 8, seed: 5, hazard: HazardMode::Forwarding, n: 20_000, cycles: 20_003, stalls: 0, forwards: 2_433 },
            Gold { w: 2, h: 2, seed: 21, hazard: HazardMode::StallOnly, n: 7_000, cycles: 10_853, stalls: 3_850, forwards: 0 },
            Gold { w: 4, h: 4, seed: 9, hazard: HazardMode::StallOnly, n: 12_000, cycles: 15_351, stalls: 3_348, forwards: 0 },
            Gold { w: 8, h: 8, seed: 5, hazard: HazardMode::StallOnly, n: 20_000, cycles: 24_312, stalls: 4_309, forwards: 0 },
            Gold { w: 2, h: 2, seed: 21, hazard: HazardMode::Ignore, n: 7_000, cycles: 7_003, stalls: 0, forwards: 0 },
            Gold { w: 4, h: 4, seed: 9, hazard: HazardMode::Ignore, n: 12_000, cycles: 12_003, stalls: 0, forwards: 0 },
            Gold { w: 8, h: 8, seed: 5, hazard: HazardMode::Ignore, n: 20_000, cycles: 20_003, stalls: 0, forwards: 0 },
        ];
        for g in &golds {
            let env = GridWorld::builder(g.w, g.h).goal(g.w - 1, g.h - 1).build();
            let cfg = AccelConfig::default().with_seed(g.seed).with_hazard(g.hazard);
            let mut p = AccelPipeline::<Q8_8>::new(&env, cfg, 0);
            let stats = p.run_samples(&env, g.n);
            assert_eq!(
                (stats.cycles, stats.stalls, stats.forwards, stats.fill_bubbles),
                (g.cycles, g.stalls, g.forwards, FILL),
                "{}x{} seed {} {:?}",
                g.w, g.h, g.seed, g.hazard
            );
        }

        // SARSA exercises the ε-greedy stage-2 Q read path.
        let env = GridWorld::builder(4, 4).goal(3, 3).build();
        for (hazard, cycles, stalls) in [
            (HazardMode::StallOnly, 18_168u64, 3_165u64),
            (HazardMode::Ignore, 15_003, 0),
        ] {
            let mut cfg = AccelConfig::default().with_hazard(hazard);
            cfg.trainer = TrainerConfig::sarsa(0.2).with_seed(17);
            cfg.hazard = hazard;
            let mut p = AccelPipeline::<Q8_8>::new(&env, cfg, 0);
            let stats = p.run_samples(&env, 15_000);
            assert_eq!((stats.cycles, stats.stalls), (cycles, stalls), "sarsa {hazard:?}");
        }

        // ExactScan exercises the multi-cycle stage-2 row scan.
        let cfg = AccelConfig::default()
            .with_seed(13)
            .with_hazard(HazardMode::StallOnly)
            .with_max_mode(MaxMode::ExactScan);
        let mut p = AccelPipeline::<Q8_8>::new(&env, cfg, 0);
        let stats = p.run_samples(&env, 8_000);
        assert_eq!((stats.cycles, stats.stalls), (34_617, 26_614), "exact-scan stall-only");
    }

    /// The O(1) forwarding index must agree with a linear newest-writer
    /// scan of the queue for arbitrary push/retire interleavings —
    /// including addresses chosen to alias in the direct-mapped slots.
    #[test]
    fn index_matches_linear_scan() {
        let mut rng = Lfsr32::new(0xDEAD_BEEF);
        // 97 addresses over 64 slots: aliasing guaranteed.
        const ADDRS: usize = 97;
        let mut queue: VecDeque<Pending<u64>> = VecDeque::new();
        let mut index: FwdIndex<u64> = FwdIndex::new();
        let mut next_cc = 0u64;
        for op in 0..50_000u64 {
            match rng.below(3) {
                0 | 1 => {
                    // Push with strictly increasing commit cycles (the
                    // queue invariant the index relies on).
                    next_cc += 1 + rng.below(3) as u64;
                    let p = Pending {
                        commit_cycle: next_cc,
                        addr: rng.below(ADDRS as u32) as usize,
                        value: op,
                    };
                    queue.push_back(p);
                    index.push(p);
                }
                _ => {
                    if let Some(p) = queue.pop_front() {
                        index.retire(p.addr);
                    }
                }
            }
            // Cross-check the index against the model on a probe address.
            let probe = rng.below(ADDRS as u32) as usize;
            let model = queue.iter().rev().find(|p| p.addr == probe).copied();
            let got = match index.newest(probe) {
                FwdHit::Miss => None,
                FwdHit::Newest(p) => Some(p),
                FwdHit::Aliased => queue.iter().rev().find(|p| p.addr == probe).copied(),
            };
            assert_eq!(got, model, "op {op} probe {probe}");
            // A slot hit must never silently shadow a different address.
            if let FwdHit::Newest(p) = index.newest(probe) {
                assert_eq!(p.addr, probe);
            }
        }
        assert!(!queue.is_empty(), "interleaving should leave in-flight writes");
    }
}
