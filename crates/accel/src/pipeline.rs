//! The cycle-accurate 4-stage pipeline core (Fig. 1).
//!
//! ## Stage timing
//!
//! Iteration *i* enters stage 1 at cycle `c1(i)` and proceeds one stage
//! per cycle:
//!
//! | cycle      | stage | work |
//! |------------|-------|------|
//! | `c1`       | 1     | state select (random start or forwarded Sₜ₊₁), behaviour action, transition function, issue Q(Sₜ,Aₜ) and R(Sₜ,Aₜ) reads, derive `1−α`, `α·γ` |
//! | `c1+1`     | 2     | update-policy action for Sₜ₊₁, issue Q(Sₜ₊₁,Aₜ₊₁) / Qmax(Sₜ₊₁) read |
//! | `c1+2`     | 3     | three multiplies + adder tree (Eq. 3) |
//! | `c1+3`     | 4     | write back Q(Sₜ,Aₜ); monotone Qmax update |
//!
//! With no stalls, `c1(i+1) = c1(i) + 1` — one sample per clock after the
//! 3-cycle fill.
//!
//! ## Hazards
//!
//! A BRAM write issued at cycle `w` is visible only to reads issued at
//! cycles `> w` (read-first port semantics). Consecutive iterations
//! re-read locations the previous 1–3 iterations are still updating, so
//! the design needs the forwarding network of [`HazardMode::Forwarding`]:
//! every read consults the queue of in-flight (pending) writes and the
//! youngest matching value bypasses the BRAM. The model implements all
//! three hazard policies of [`HazardMode`] over an explicitly *delayed*
//! memory image — `q_mem` holds only committed writes, and the pending
//! queue carries (commit-cycle, address, value) triples — so stale reads
//! in `Ignore` mode are real stale values, not emulation shortcuts.

use std::collections::VecDeque;

use crate::config::{AccelConfig, HazardMode};
use qtaccel_core::policy::Policy;
use qtaccel_core::qtable::{MaxMode, QTable, QmaxTable};
use qtaccel_core::trainer::{seed_unit, Transition};
use qtaccel_envs::{sa_index, Action, Environment, RewardTable, State};
use qtaccel_fixed::QValue;
use qtaccel_hdl::lfsr::Lfsr32;
use qtaccel_hdl::pipeline::CycleStats;
use qtaccel_hdl::rng::{epsilon_greedy_draw, epsilon_to_q32, RngSource, SeedSequence};

/// Stage-4 offset from stage 1.
const WRITE_OFFSET: u64 = 3;
/// Pipeline fill depth (cycles before the first retirement).
const FILL: u64 = 3;

/// A write travelling down the pipe, not yet visible in the BRAM image.
#[derive(Debug, Clone, Copy)]
struct Pending<T> {
    commit_cycle: u64,
    addr: usize,
    value: T,
}

/// The pipeline core shared by the Q-Learning and SARSA engines (and, in
/// pairs, by the dual-pipeline configuration).
#[derive(Debug, Clone)]
pub struct AccelPipeline<V> {
    num_states: usize,
    num_actions: usize,
    config: AccelConfig,
    // Stage-1 derived constants.
    alpha_v: V,
    one_minus_alpha: V,
    alpha_gamma: V,
    // Enable-gated LFSR units.
    start_rng: Lfsr32,
    behavior_rng: Lfsr32,
    update_rng: Lfsr32,
    // Committed memory images (the BRAM contents).
    q_mem: Vec<V>,
    qmax_mem: Vec<(V, Action)>,
    rewards: RewardTable<V>,
    // In-flight writes.
    pending_q: VecDeque<Pending<V>>,
    pending_qmax: VecDeque<Pending<(V, Action)>>,
    // Inter-iteration carry: (state, forwarded on-policy action).
    carry: Option<(State, Option<Action>)>,
    next_c1: u64,
    stats: CycleStats,
}

impl<V: QValue> AccelPipeline<V> {
    /// Build a pipeline for `env`'s dimensions. `pipeline_index` selects
    /// the RNG seed bank (0 for single-pipeline configurations — the bank
    /// the software golden reference uses).
    pub fn new<E: Environment>(env: &E, config: AccelConfig, pipeline_index: u64) -> Self {
        let seeds = SeedSequence::new(config.trainer.seed);
        let alpha_v = V::from_f64(config.trainer.alpha);
        let gamma_v = V::from_f64(config.trainer.gamma);
        let (s, a) = (env.num_states(), env.num_actions());
        assert!(s > 0 && a > 0, "environment must be non-empty");
        // Qmax BRAM init file: random greedy-action fields (see
        // QmaxTable::randomize_actions for why this is required).
        let mut qmax_mem = vec![(V::zero(), 0 as Action); s];
        let mut init_rng = Lfsr32::new(
            seeds.derive(seed_unit::of(pipeline_index, seed_unit::QMAX_INIT)),
        );
        for e in &mut qmax_mem {
            e.1 = init_rng.below(a as u32);
        }
        Self {
            num_states: s,
            num_actions: a,
            config,
            alpha_v,
            one_minus_alpha: alpha_v.one_minus(),
            alpha_gamma: alpha_v.mul(gamma_v),
            start_rng: Lfsr32::new(seeds.derive(seed_unit::of(pipeline_index, seed_unit::START))),
            behavior_rng: Lfsr32::new(
                seeds.derive(seed_unit::of(pipeline_index, seed_unit::BEHAVIOR)),
            ),
            update_rng: Lfsr32::new(
                seeds.derive(seed_unit::of(pipeline_index, seed_unit::UPDATE)),
            ),
            q_mem: vec![V::zero(); s * a],
            qmax_mem,
            rewards: RewardTable::from_env(env),
            pending_q: VecDeque::new(),
            pending_qmax: VecDeque::new(),
            carry: None,
            next_c1: 0,
            stats: CycleStats {
                fill_bubbles: FILL,
                ..CycleStats::default()
            },
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Cycle statistics so far.
    pub fn stats(&self) -> CycleStats {
        self.stats
    }

    /// Number of states the tables are sized for.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of actions the tables are sized for.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    // ---- memory model -------------------------------------------------

    fn commit_q_until(&mut self, cycle: u64) {
        while let Some(p) = self.pending_q.front() {
            if p.commit_cycle < cycle {
                self.q_mem[p.addr] = p.value;
                self.pending_q.pop_front();
            } else {
                break;
            }
        }
    }

    fn commit_qmax_until(&mut self, cycle: u64) {
        while let Some(p) = self.pending_qmax.front() {
            if p.commit_cycle < cycle {
                self.qmax_mem[p.addr] = p.value;
                self.pending_qmax.pop_front();
            } else {
                break;
            }
        }
    }

    /// Read Q(s, a) as issued at `cycle`. Returns the operand value and
    /// the stall delay this read imposes (nonzero only in stall-only
    /// mode).
    fn read_q(&mut self, s: State, a: Action, cycle: u64) -> (V, u64) {
        self.commit_q_until(cycle);
        let idx = sa_index(s, a, self.num_actions);
        let newest = self.pending_q.iter().rev().find(|p| p.addr == idx);
        match self.config.hazard {
            HazardMode::Forwarding => match newest {
                Some(p) => {
                    self.stats.forwards += 1;
                    (p.value, 0)
                }
                None => (self.q_mem[idx], 0),
            },
            HazardMode::Ignore => (self.q_mem[idx], 0),
            HazardMode::StallOnly => match newest {
                // Hold the front end until the write commits, then the
                // read returns the fresh value.
                Some(p) => (p.value, p.commit_cycle + 1 - cycle),
                None => (self.q_mem[idx], 0),
            },
        }
    }

    /// Read the Qmax entry for `s` as issued at `cycle`.
    fn read_qmax(&mut self, s: State, cycle: u64) -> ((V, Action), u64) {
        self.commit_qmax_until(cycle);
        let idx = s as usize;
        let newest = self.pending_qmax.iter().rev().find(|p| p.addr == idx);
        match self.config.hazard {
            HazardMode::Forwarding => match newest {
                Some(p) => {
                    self.stats.forwards += 1;
                    (p.value, 0)
                }
                None => (self.qmax_mem[idx], 0),
            },
            HazardMode::Ignore => (self.qmax_mem[idx], 0),
            HazardMode::StallOnly => match newest {
                Some(p) => (p.value, p.commit_cycle + 1 - cycle),
                None => (self.qmax_mem[idx], 0),
            },
        }
    }

    /// Row-maximum read per the configured [`MaxMode`]: a single Qmax
    /// access (0 extra cycles) or the unoptimized |A|-read row scan
    /// (|A|−1 extra stage-2 cycles — the design point §V-A eliminates;
    /// quantified by the `ablation_qmax` experiment).
    fn read_max(&mut self, s: State, cycle: u64) -> (V, Action, u64) {
        match self.config.trainer.max_mode {
            MaxMode::QmaxArray => {
                let ((v, a), d) = self.read_qmax(s, cycle);
                (v, a, d)
            }
            MaxMode::ExactScan => {
                let mut delay = 0u64;
                let (mut best_v, mut best_a) = {
                    let (v, d) = self.read_q(s, 0, cycle);
                    delay = delay.max(d);
                    (v, 0u32)
                };
                for a in 1..self.num_actions as Action {
                    let (v, d) = self.read_q(s, a, cycle + a as u64);
                    delay = delay.max(d);
                    if v.vcmp(best_v) == core::cmp::Ordering::Greater {
                        best_v = v;
                        best_a = a;
                    }
                }
                // The scan occupies stage 2 for |A| cycles instead of 1.
                (best_v, best_a, delay + self.num_actions as u64 - 1)
            }
        }
    }

    /// Stage-4 Qmax read-modify-write.
    fn qmax_writeback(&mut self, s: State, a: Action, v: V, cycle: u64) {
        self.commit_qmax_until(cycle);
        let idx = s as usize;
        // The comparator's view of the current maximum: through the
        // forwarding network normally, the stale BRAM word in Ignore mode.
        let current = match self.config.hazard {
            HazardMode::Ignore => self.qmax_mem[idx].0,
            _ => self
                .pending_qmax
                .iter()
                .rev()
                .find(|p| p.addr == idx)
                .map(|p| p.value.0)
                .unwrap_or(self.qmax_mem[idx].0),
        };
        if v.vcmp(current) == core::cmp::Ordering::Greater {
            self.pending_qmax.push_back(Pending {
                commit_cycle: cycle,
                addr: idx,
                value: (v, a),
            });
        }
    }

    // ---- policy units --------------------------------------------------

    /// Stage-1 behaviour action selection; returns the action and any
    /// stall delay from the Qmax read of a greedy component.
    fn behavior_select(&mut self, s: State, cycle: u64) -> (Action, u64) {
        let n = self.num_actions as u32;
        match self.config.trainer.behavior {
            Policy::Random => (self.behavior_rng.below(n), 0),
            Policy::Greedy => {
                let (v, a, d) = self.read_max(s, cycle);
                let _ = v;
                (a, d)
            }
            Policy::EpsilonGreedy { epsilon } => {
                match epsilon_greedy_draw(&mut self.behavior_rng, epsilon_to_q32(epsilon), n) {
                    Some(a) => (a, 0),
                    None => {
                        let (_, a, d) = self.read_max(s, cycle);
                        (a, d)
                    }
                }
            }
            Policy::Boltzmann { .. } => panic!(
                "Boltzmann behaviour policy is not synthesizable on the QRL engine; \
                 use the probability-table bandit engine (qtaccel_accel::bandit)"
            ),
        }
    }

    /// Stage-2 update-policy selection: the next action *and* the Q-value
    /// operand for the Eq. (3) multiply.
    fn update_select(&mut self, s_next: State, cycle: u64) -> (Action, V, u64) {
        let n = self.num_actions as u32;
        match self.config.trainer.update {
            Policy::Greedy => {
                let (v, a, d) = self.read_max(s_next, cycle);
                (a, v, d)
            }
            Policy::Random => {
                let a = self.update_rng.below(n);
                let (v, d) = self.read_q(s_next, a, cycle);
                (a, v, d)
            }
            Policy::EpsilonGreedy { epsilon } => {
                match epsilon_greedy_draw(&mut self.update_rng, epsilon_to_q32(epsilon), n) {
                    Some(a) => {
                        let (v, d) = self.read_q(s_next, a, cycle);
                        (a, v, d)
                    }
                    None => {
                        let (v, a, d) = self.read_max(s_next, cycle);
                        (a, v, d)
                    }
                }
            }
            Policy::Boltzmann { .. } => panic!(
                "Boltzmann update policy is not synthesizable on the QRL engine; \
                 use the probability-table bandit engine (qtaccel_accel::bandit)"
            ),
        }
    }

    // ---- execution ------------------------------------------------------

    /// Push one iteration down the pipe: one retired sample. Returns the
    /// transition for tracing.
    pub fn step<E: Environment>(&mut self, env: &E) -> Transition<V> {
        debug_assert_eq!(env.num_states(), self.num_states, "environment mismatch");
        debug_assert_eq!(env.num_actions(), self.num_actions, "environment mismatch");
        let c1 = self.next_c1;

        // Stage 1: state + behaviour action + transition + reads.
        let (s, a, d1) = match self.carry.take() {
            None => {
                let s = env.random_start(&mut self.start_rng);
                let (a, d) = self.behavior_select(s, c1);
                (s, a, d)
            }
            Some((s, Some(a))) => (s, a, 0), // forwarded on-policy action
            Some((s, None)) => {
                let (a, d) = self.behavior_select(s, c1);
                (s, a, d)
            }
        };
        let s_next = env.transition(s, a);
        let r = self.rewards.get(s, a);
        let (q_sa, dq) = self.read_q(s, a, c1 + d1);
        let d1 = d1 + dq;

        // Stage 2 (cycle c1 + d1 + 1): next action + its Q operand.
        let c2 = c1 + d1 + 1;
        let (a_next, q_next, d2) = self.update_select(s_next, c2);

        // Stage 3: Eq. (3).
        let q_new = self
            .one_minus_alpha
            .mul(q_sa)
            .add(self.alpha_v.mul(r))
            .add(self.alpha_gamma.mul(q_next));

        // Stage 4 (cycle c1 + stalls + 3): writeback.
        let stalls = d1 + d2;
        let write_cycle = c1 + stalls + WRITE_OFFSET;
        self.pending_q.push_back(Pending {
            commit_cycle: write_cycle,
            addr: sa_index(s, a, self.num_actions),
            value: q_new,
        });
        self.qmax_writeback(s, a, q_new, write_cycle);

        self.stats.samples += 1;
        self.stats.stalls += stalls;
        self.stats.cycles = write_cycle + 1;
        self.next_c1 = c1 + stalls + 1;

        self.carry = if env.is_terminal(s_next) {
            None
        } else {
            Some((
                s_next,
                if self.config.trainer.forward_next_action {
                    Some(a_next)
                } else {
                    None
                },
            ))
        };

        Transition {
            s,
            a,
            r,
            s_next,
            a_next,
            q_new,
        }
    }

    /// Run `n` iterations.
    pub fn run_samples<E: Environment>(&mut self, env: &E, n: u64) -> CycleStats {
        for _ in 0..n {
            self.step(env);
        }
        self.stats
    }

    /// Inject a single-event upset: flip `bit` of the *committed* Q BRAM
    /// word for (s, a). Models a radiation-induced soft error in the
    /// on-chip memory (in-flight pipeline values are unaffected, exactly
    /// as a BRAM cell flip would behave). Used by the `seu_robustness`
    /// experiment.
    pub fn inject_q_bit_flip(&mut self, s: State, a: Action, bit: u32) {
        let idx = sa_index(s, a, self.num_actions);
        self.q_mem[idx] = self.q_mem[idx].flip_bit(bit);
    }

    /// Extract the architectural Q-table (committed image plus in-flight
    /// writes, applied in order — what reading back the BRAM after
    /// drain would show).
    pub fn q_table(&self) -> QTable<V> {
        let mut q = QTable::new(self.num_states, self.num_actions);
        let mut mem = self.q_mem.clone();
        for p in &self.pending_q {
            mem[p.addr] = p.value;
        }
        for s in 0..self.num_states as State {
            for a in 0..self.num_actions as Action {
                q.set(s, a, mem[sa_index(s, a, self.num_actions)]);
            }
        }
        q
    }

    /// Extract the architectural Qmax array.
    pub fn qmax_table(&self) -> QmaxTable<V> {
        let mut mem = self.qmax_mem.clone();
        for p in &self.pending_qmax {
            mem[p.addr] = p.value;
        }
        let mut t = QmaxTable::new(self.num_states);
        for (s, (v, a)) in mem.iter().enumerate() {
            t.poke(s as State, *v, *a);
        }
        t
    }

    /// Exact greedy policy from the architectural Q-table.
    pub fn greedy_policy(&self) -> Vec<Action> {
        self.q_table().greedy_policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_core::trainer::{RefTrainer, TrainerConfig};
    use qtaccel_envs::GridWorld;
    use qtaccel_fixed::{Q16_16, Q8_8};

    fn grid() -> GridWorld {
        GridWorld::builder(8, 8).goal(7, 7).build()
    }

    fn config(seed: u64) -> AccelConfig {
        AccelConfig::default().with_seed(seed)
    }

    #[test]
    fn one_sample_per_cycle_with_forwarding() {
        let g = grid();
        let mut p = AccelPipeline::<Q8_8>::new(&g, config(1), 0);
        let stats = p.run_samples(&g, 10_000);
        assert_eq!(stats.samples, 10_000);
        assert_eq!(stats.stalls, 0, "forwarding never stalls");
        assert_eq!(stats.cycles, 10_000 + FILL, "fill + 1/cycle");
        assert!(stats.samples_per_cycle() > 0.999);
    }

    #[test]
    fn forwarding_events_happen() {
        // Consecutive updates do collide on this small world; the
        // forwarding network must actually fire.
        let g = GridWorld::builder(2, 2).goal(1, 1).build();
        let mut p = AccelPipeline::<Q8_8>::new(&g, config(2), 0);
        let stats = p.run_samples(&g, 5_000);
        assert!(stats.forwards > 0, "no hazards on a 4-state world?");
    }

    #[test]
    fn bit_exact_vs_golden_reference_q_learning() {
        let g = grid();
        for seed in [1u64, 7, 42, 12345] {
            let mut hw = AccelPipeline::<Q8_8>::new(&g, config(seed), 0);
            let mut sw = RefTrainer::<Q8_8, _>::new(
                g.clone(),
                TrainerConfig::q_learning().with_seed(seed),
            );
            hw.run_samples(&g, 20_000);
            sw.run_samples(20_000);
            assert_eq!(
                hw.q_table().as_slice(),
                sw.q().as_slice(),
                "seed {seed}: pipeline diverged from sequential reference"
            );
        }
    }

    #[test]
    fn bit_exact_vs_golden_reference_sarsa() {
        let g = grid();
        for seed in [3u64, 99] {
            let mut cfg = config(seed);
            cfg.trainer = TrainerConfig::sarsa(0.2).with_seed(seed);
            let mut hw = AccelPipeline::<Q8_8>::new(&g, cfg, 0);
            let mut sw =
                RefTrainer::<Q8_8, _>::new(g.clone(), TrainerConfig::sarsa(0.2).with_seed(seed));
            hw.run_samples(&g, 20_000);
            sw.run_samples(20_000);
            assert_eq!(
                hw.q_table().as_slice(),
                sw.q().as_slice(),
                "seed {seed}: SARSA pipeline diverged"
            );
        }
    }

    #[test]
    fn stall_mode_is_slower_but_value_identical() {
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        let mut fwd = AccelPipeline::<Q8_8>::new(&g, config(5), 0);
        let mut stall =
            AccelPipeline::<Q8_8>::new(&g, config(5).with_hazard(HazardMode::StallOnly), 0);
        let sf = fwd.run_samples(&g, 10_000);
        let ss = stall.run_samples(&g, 10_000);
        assert_eq!(
            fwd.q_table().as_slice(),
            stall.q_table().as_slice(),
            "stalling must preserve values"
        );
        assert!(ss.stalls > 0, "small world must provoke stalls");
        assert!(
            ss.cycles > sf.cycles,
            "stall-only must be slower: {} vs {}",
            ss.cycles,
            sf.cycles
        );
        assert!(ss.samples_per_cycle() < 1.0);
    }

    #[test]
    fn ignore_mode_diverges_from_reference() {
        // Without dependency handling the pipeline reads stale operands;
        // on a tiny world the trajectories must diverge measurably.
        let g = GridWorld::builder(2, 2).goal(1, 1).build();
        let mut bad =
            AccelPipeline::<Q16_16>::new(&g, config(6).with_hazard(HazardMode::Ignore), 0);
        let mut sw = RefTrainer::<Q16_16, _>::new(
            g.clone(),
            TrainerConfig::q_learning().with_seed(6),
        );
        // Compare step by step: both trajectories eventually converge to
        // the same fixed point, so the corruption is visible mid-flight,
        // not necessarily in the final table.
        let mut diverged = false;
        for _ in 0..2_000 {
            let th = bad.step(&g);
            let ts = sw.step();
            // Same RNG units => identical (s, a) streams until values
            // feed back into action selection; q_new differs as soon as a
            // stale operand is consumed.
            if th.q_new != ts.q_new || th.s != ts.s || th.a != ts.a {
                diverged = true;
                break;
            }
        }
        assert!(
            diverged,
            "stale reads should corrupt at least one update on a 4-state world"
        );
        // But it still runs at full throughput — that is the trap.
        assert_eq!(bad.stats().stalls, 0);
    }

    #[test]
    fn exact_scan_mode_matches_reference_and_costs_cycles() {
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        let cfg = config(8).with_max_mode(MaxMode::ExactScan);
        let mut hw = AccelPipeline::<Q8_8>::new(&g, cfg, 0);
        let mut sw = RefTrainer::<Q8_8, _>::new(
            g.clone(),
            TrainerConfig::q_learning()
                .with_seed(8)
                .with_max_mode(MaxMode::ExactScan),
        );
        let stats = hw.run_samples(&g, 5_000);
        sw.run_samples(5_000);
        assert_eq!(hw.q_table().as_slice(), sw.q().as_slice());
        // Every sample pays the |A|-1 = 3 extra scan cycles.
        assert!(stats.stalls >= 3 * 5_000, "stalls {}", stats.stalls);
        assert!(stats.samples_per_cycle() < 0.3);
    }

    #[test]
    fn pipeline_learns_the_grid() {
        let g = grid();
        let mut p = AccelPipeline::<Q16_16>::new(&g, config(11), 0);
        p.run_samples(&g, 400_000);
        let policy = p.greedy_policy();
        let opt = qtaccel_core::eval::step_optimality(&g, &policy, &g.shortest_distances());
        assert!(opt > 0.95, "step-optimality {opt}");
    }

    #[test]
    fn qmax_extraction_is_upper_bound() {
        let g = grid();
        let mut p = AccelPipeline::<Q8_8>::new(&g, config(13), 0);
        p.run_samples(&g, 50_000);
        let q = p.q_table();
        let qmax = p.qmax_table();
        for s in 0..g.num_states() as State {
            let (_, true_max) = q.max_exact(s);
            assert!(qmax.get(s).0 >= true_max, "state {s}");
        }
    }

    #[test]
    #[should_panic(expected = "not synthesizable")]
    fn boltzmann_rejected_on_qrl_engine() {
        let g = grid();
        let mut cfg = config(1);
        cfg.trainer.behavior = Policy::Boltzmann { temperature: 1.0 };
        let mut p = AccelPipeline::<Q8_8>::new(&g, cfg, 0);
        p.step(&g);
    }
}
