//! The K-way interleaved multi-stream fast-path executor (DESIGN.md
//! §2.12).
//!
//! The fused window-register executor (`run_fast_forwarding_qmax`) runs
//! one sample stream at the host's memory-latency floor: every iteration
//! chains a Q-row load into a dependent update, so throughput is bounded
//! by one L2-latency round trip per sample, not by bandwidth. This
//! module drives the same loop body over **K independent pipelines'
//! streams interleaved** — one step per stream per round — so the K
//! Q-row loads are independent dependency chains the out-of-order core
//! overlaps. Data-level parallelism comes from two packings:
//!
//! * the per-`(s, a)` transition *and* reward collapse into one `u64`
//!   word (`next_packed` in the low 32 bits, the reward's ≤32-bit
//!   storage word in the upper lanes — `qtaccel_fixed::lanes`), one
//!   load where the fused cell streams 8 bytes for the same fields;
//! * each stream's policy RNGs run as [`Lfsr32Batched`] views, whose
//!   `32·K`-shift leap tables keep every lane's refill off the critical
//!   path.
//!
//! On top of the K-way round-robin, each stream is **software
//! pipelined**: the sample front end (stages 1–2 — selection, RNG
//! draws, the transition-word and Q-operand loads) runs at the end of
//! the *previous* step ([`Stream::advance_front`]), so its loads have a
//! full round of the other streams' work to complete before
//! [`Stream::step`] consumes them.
//!
//! Bit-exactness is the contract, per pipeline: the loop body computes
//! exactly the fused executor's sample (same RNG draw order per
//! register, same forward counting against the 3-slot address windows,
//! same carry semantics — the front-end hoist is a pure reorder across
//! the inter-sample boundary, where no conflicting access sits between),
//! and entry/exit go through [`AccelPipeline::interleave_checkout`] /
//! [`interleave_checkin`] — the fused entry/exit protocols verbatim —
//! so every stream's tables, stats and pending queues land exactly
//! where any other executor would put them (enforced by
//! `tests/interleave.rs`). Ineligible pipelines (instrumented sink,
//! fault runtime, non-forwarding hazards, exact-scan maxima, >32-bit
//! values) never enter a group: they are routed to the general
//! executor, bit-identically.
//!
//! [`interleave_checkin`]: AccelPipeline::interleave_checkin

use std::sync::Arc;

use crate::pipeline::{AccelPipeline, FastLane, FastLayout, NO_ADDR, TERMINAL_BIT};
use qtaccel_core::policy::Policy;
use qtaccel_envs::{sa_index, Environment};
use qtaccel_fixed::{lanes, QValue};
use qtaccel_hdl::lfsr::Lfsr32Batched;
use qtaccel_hdl::pipeline::CycleStats;
use qtaccel_hdl::rng::epsilon_to_q32;
use qtaccel_telemetry::TraceSink;

/// Pre-resolved policy unit — the same compaction the fused executor
/// applies (identical draw order to the cycle-accurate selectors).
#[derive(Clone, Copy)]
enum FastPolicy {
    Random,
    Greedy,
    Eps(u32),
}

fn resolve(p: Policy, role: &str) -> FastPolicy {
    match p {
        Policy::Random => FastPolicy::Random,
        Policy::Greedy => FastPolicy::Greedy,
        Policy::EpsilonGreedy { epsilon } => FastPolicy::Eps(epsilon_to_q32(epsilon)),
        Policy::Boltzmann { .. } => panic!(
            "Boltzmann {role} policy is not synthesizable on the QRL engine; \
             use the probability-table bandit engine (qtaccel_accel::bandit)"
        ),
    }
}

/// The software-pipelined front end of one sample: everything the
/// fused executor's stages 1–2 produce (state, behaviour action, the
/// packed transition word's fields, the Q operands and the update
/// selection). [`Stream::advance_front`] computes it at the **end** of
/// the previous step, so by the time [`Stream::step`] consumes these
/// operands the loads have had a full round of other streams' work to
/// complete — the table loads of the K streams pipeline instead of
/// serializing on one stream's carry chain.
#[derive(Clone, Copy)]
struct Front<V> {
    s: u32,
    a: u32,
    qaddr: usize,
    packed: u32,
    s_next: u32,
    q_sa: V,
    reward: V,
    a_next: u32,
    q_next: V,
    read_q: bool,
}

/// One pipeline's in-flight stream state: the checked-out [`FastLane`],
/// its shard of the packed transition image, batched RNG views, and the
/// per-stream accounting the exit protocol needs.
struct Stream<'a, V, E> {
    /// Index into the caller's leg slice (for check-in).
    leg: usize,
    lane: FastLane<V>,
    tr: Arc<Vec<u64>>,
    env: &'a E,
    behavior_rng: Lfsr32Batched<2>,
    update_rng: Lfsr32Batched<2>,
    behavior: FastPolicy,
    update: FastPolicy,
    forward_action: bool,
    /// Lane of the reward word inside a transition-image entry.
    rew_lane: u32,
    /// In-flight operands of the next sample (valid while
    /// `done < budget`; primed once before the rounds loop).
    front: Front<V>,
    forwards: u64,
    last_update_read_q: bool,
    done: u64,
    budget: u64,
}

impl<'a, V: QValue, E: Environment> Stream<'a, V, E> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        leg: usize,
        lane: FastLane<V>,
        tr: Arc<Vec<u64>>,
        env: &'a E,
        behavior: FastPolicy,
        update: FastPolicy,
        forward_action: bool,
        budget: u64,
    ) -> Self {
        let behavior_rng = Lfsr32Batched::<2>::new(&lane.behavior_rng);
        let update_rng = Lfsr32Batched::<2>::new(&lane.update_rng);
        let mut st = Self {
            leg,
            lane,
            tr,
            env,
            behavior_rng,
            update_rng,
            behavior,
            update,
            forward_action,
            rew_lane: lanes::lanes_per_u64::<V>() / 2,
            front: Front {
                s: 0,
                a: 0,
                qaddr: 0,
                packed: 0,
                s_next: 0,
                q_sa: V::zero(),
                reward: V::zero(),
                a_next: 0,
                q_next: V::zero(),
                read_q: false,
            },
            forwards: 0,
            last_update_read_q: false,
            done: 0,
            budget,
        };
        // Prime the first sample's operands (budget ≥ 1 by construction).
        st.advance_front();
        st
    }

    /// Stages 1–2 of the **next** sample — the fused executor's
    /// selection and load front end, run at the end of the previous
    /// step. Bit-exactness holds because nothing executes between one
    /// sample's stage-4 commit and the next sample's stage-1/2 reads:
    /// the address windows have already rotated, the Q/Qmax writes have
    /// already committed, the transition image is immutable during a
    /// run, and each policy draws from its own LFSR register so draw
    /// order per register is unchanged. Must only run when another
    /// sample is owed (`done < budget`), so RNG registers and the start
    /// draw never run ahead of the serial machine.
    #[inline(always)]
    fn advance_front(&mut self) {
        let lane = &mut self.lane;
        let na = lane.num_actions;

        // Stage 1: state + behaviour action.
        let (s, carried_a) = match lane.carry.take() {
            None => (self.env.random_start(&mut lane.start_rng), None),
            Some((s, a)) => (s, a),
        };
        let a = match carried_a {
            Some(a) => a,
            None => match self.behavior {
                FastPolicy::Random => {
                    ((self.behavior_rng.next_u32() as u64 * na as u64) >> 32) as u32
                }
                FastPolicy::Greedy => {
                    self.forwards += u64::from(lane.mw_addr[0] == s as usize);
                    lane.qmax[s as usize].1
                }
                FastPolicy::Eps(thr) => {
                    let x = self.behavior_rng.next_u32();
                    if x < thr {
                        ((x as u64 * na as u64) / thr as u64) as u32
                    } else {
                        self.forwards += u64::from(lane.mw_addr[0] == s as usize);
                        lane.qmax[s as usize].1
                    }
                }
            },
        };
        let qaddr = s as usize * na + a as usize;
        let word = self.tr[qaddr];
        let packed = word as u32;
        let s_next = packed & !TERMINAL_BIT;
        let q_sa = lane.q[qaddr];
        let reward: V = lanes::extract_lane(word, self.rew_lane);
        self.forwards += u64::from(
            qaddr == lane.qw_addr[0] || qaddr == lane.qw_addr[1] || qaddr == lane.qw_addr[2],
        );

        // Stage 2: update selection one cycle later — only the two
        // youngest Q writes are still in flight.
        let (a_next, q_next, read_q) = match self.update {
            FastPolicy::Greedy => {
                self.forwards += u64::from(lane.mw_addr[0] == s_next as usize);
                let (v, an) = lane.qmax[s_next as usize];
                (an, v, false)
            }
            FastPolicy::Random => {
                let an = ((self.update_rng.next_u32() as u64 * na as u64) >> 32) as u32;
                let addr = sa_index(s_next, an, na);
                self.forwards +=
                    u64::from(addr == lane.qw_addr[0] || addr == lane.qw_addr[1]);
                (an, lane.q[addr], true)
            }
            FastPolicy::Eps(thr) => {
                let x = self.update_rng.next_u32();
                if x < thr {
                    let an = ((x as u64 * na as u64) / thr as u64) as u32;
                    let addr = sa_index(s_next, an, na);
                    self.forwards +=
                        u64::from(addr == lane.qw_addr[0] || addr == lane.qw_addr[1]);
                    (an, lane.q[addr], true)
                } else {
                    self.forwards += u64::from(lane.mw_addr[0] == s_next as usize);
                    let (v, an) = lane.qmax[s_next as usize];
                    (an, v, false)
                }
            }
        };
        self.front = Front {
            s,
            a,
            qaddr,
            packed,
            s_next,
            q_sa,
            reward,
            a_next,
            q_next,
            read_q,
        };
    }

    /// One sample — commit the in-flight front (the fused executor's
    /// stages 3–4: Eq. (3), writeback, Qmax RMW, window aging, carry),
    /// then pipeline the next sample's front end so its loads issue a
    /// full round before their use.
    #[inline(always)]
    fn step(&mut self) {
        let f = self.front;
        let lane = &mut self.lane;

        // Stage 3: Eq. (3).
        let q_new = lane
            .one_minus_alpha
            .mul(f.q_sa)
            .add(lane.alpha_v.mul(f.reward))
            .add(lane.alpha_gamma.mul(f.q_next));

        // Stage 4: writeback + Qmax RMW, then age the address windows.
        lane.q[f.qaddr] = q_new;
        lane.qw_addr[2] = lane.qw_addr[1];
        lane.qw_addr[1] = lane.qw_addr[0];
        lane.qw_addr[0] = f.qaddr;

        lane.mw_addr[2] = lane.mw_addr[1];
        lane.mw_addr[1] = lane.mw_addr[0];
        if q_new.vcmp(lane.qmax[f.s as usize].0) == core::cmp::Ordering::Greater {
            lane.qmax[f.s as usize] = (q_new, f.a);
            lane.mw_addr[0] = f.s as usize;
        } else {
            lane.mw_addr[0] = NO_ADDR;
        }

        lane.carry = if f.packed & TERMINAL_BIT != 0 {
            None
        } else {
            Some((
                f.s_next,
                if self.forward_action {
                    Some(f.a_next)
                } else {
                    None
                },
            ))
        };
        self.last_update_read_q = f.read_q;
        self.done += 1;
        if self.done < self.budget {
            self.advance_front();
        }
    }
}

/// Run a group of pipelines' sample budgets with their streams
/// interleaved: each round advances every active stream by one sample,
/// so the streams' table loads overlap instead of serializing. Streams
/// with exhausted budgets retire; the survivors keep interleaving (a
/// group degrades gracefully to the single-stream loop). Per pipeline,
/// results are bit-identical to running its budget through any other
/// executor. Legs whose pipeline is ineligible for the interleaved path
/// (see [`AccelPipeline::interleave_eligible`]) run their budget
/// through the general fast-path executor instead — same contract, no
/// error.
pub(crate) fn run_interleaved_group<V, S, E>(legs: &mut [(&mut AccelPipeline<V, S>, &E, u64)])
where
    V: QValue,
    S: TraceSink,
    E: Environment,
{
    let mut active: Vec<Stream<'_, V, E>> = Vec::with_capacity(legs.len());
    let mut shared_tr: Option<Arc<Vec<u64>>> = None;
    for (i, (pipe, env, n)) in legs.iter_mut().enumerate() {
        if *n == 0 {
            continue;
        }
        if !pipe.interleave_eligible(*n) {
            // Eligibility ladder: yield to the general executor
            // (bit-identical results; handles counters, events, faults
            // and every hazard/Qmax mode).
            pipe.run_samples_fast_planned(*env, *n, FastLayout::StateMajor);
            continue;
        }
        let behavior = resolve(pipe.config().trainer.behavior, "behaviour");
        let update = resolve(pipe.config().trainer.update, "update");
        let forward_action = pipe.config().trainer.forward_next_action;
        let tr = pipe.ensure_tr_image(*env);
        let tr = match &shared_tr {
            // Streams over the same environment share one image.
            Some(s) => pipe.share_tr_image(s),
            None => {
                shared_tr = Some(tr.clone());
                tr
            }
        };
        let lane = pipe.interleave_checkout();
        active.push(Stream::new(
            i,
            lane,
            tr,
            *env,
            behavior,
            update,
            forward_action,
            *n,
        ));
    }

    let mut finished: Vec<Stream<'_, V, E>> = Vec::with_capacity(active.len());
    while !active.is_empty() {
        // The streams stay in lockstep until the smallest remaining
        // budget drains; then the exhausted streams retire and the
        // survivors re-enter at the new (smaller) width.
        let rounds = active
            .iter()
            .map(|st| st.budget - st.done)
            .min()
            .expect("non-empty");
        for _ in 0..rounds {
            for st in active.iter_mut() {
                st.step();
            }
        }
        let mut i = 0;
        while i < active.len() {
            if active[i].done == active[i].budget {
                finished.push(active.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }

    for st in finished {
        let Stream {
            leg,
            mut lane,
            behavior_rng,
            update_rng,
            forwards,
            last_update_read_q,
            done,
            ..
        } = st;
        // Collapse the batched RNG views back into the serial registers.
        lane.behavior_rng = behavior_rng.into_lfsr();
        lane.update_rng = update_rng.into_lfsr();
        legs[leg].0.interleave_checkin(lane, done, forwards, last_update_read_q);
    }
}

/// Single-pipeline entry point for the `FastLayout::Interleaved`
/// dispatch in [`AccelPipeline::run_samples_fast_planned`]: a group of
/// one stream. The caller has already established eligibility.
pub(crate) fn run_single<V, S, E>(
    pipe: &mut AccelPipeline<V, S>,
    env: &E,
    n: u64,
) -> CycleStats
where
    V: QValue,
    S: TraceSink,
    E: Environment,
{
    debug_assert!(pipe.interleave_eligible(n));
    {
        let mut legs = [(&mut *pipe, env, n)];
        run_interleaved_group(&mut legs);
    }
    pipe.stats()
}
