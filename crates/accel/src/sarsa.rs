//! The SARSA engine (§V-B) — the first FPGA SARSA design in the paper.
//!
//! Behaviour and update policy are the same ε-greedy distribution
//! (on-policy): a single LFSR word per selection decides explore/exploit
//! and, when exploring, directly indexes the action. The stage-2 sampled
//! action is forwarded to stage 1 as the next iteration's behaviour
//! action ("Since SARSA is on-policy … the sampled action which is
//! available at the beginning of 3rd stage will be forwarded to the 1st
//! stage as the next-step action").

use crate::checkpoint::CheckpointError;
use crate::config::AccelConfig;
use crate::fault::{FaultConfig, FaultStats};
use crate::pipeline::{AccelPipeline, FastLayout};
use crate::resources::{
    analyze_stored, with_health_probes, with_histogram_regfile, with_perf_regfile, with_secded,
    AccelResources, EngineKind,
};
use qtaccel_core::policy::Policy;
use qtaccel_core::qtable::{PackedQTable, QTable, QmaxTable};
use qtaccel_core::trainer::Transition;
use qtaccel_envs::{Action, Environment};
use qtaccel_fixed::{QValue, QuantPolicy};
use qtaccel_hdl::pipeline::CycleStats;
use qtaccel_telemetry::{CounterBank, NullSink, TraceSink};
use std::path::Path;

/// The SARSA accelerator instance.
///
/// Generic over a [`TraceSink`] (default [`NullSink`] = telemetry off,
/// zero cost); see [`SarsaAccel::with_sink`].
#[derive(Debug, Clone)]
pub struct SarsaAccel<V, S: TraceSink = NullSink> {
    pipe: AccelPipeline<V, S>,
}

impl<V: QValue> SarsaAccel<V> {
    /// Build an engine sized for `env` with exploration probability
    /// `epsilon`. Policies are overridden to the SARSA fixture; α, γ,
    /// seed, hazard mode and Qmax semantics are honoured.
    pub fn new<E: Environment>(env: &E, config: AccelConfig, epsilon: f64) -> Self {
        Self::with_sink(env, config, epsilon, NullSink)
    }
}

impl<V: QValue, S: TraceSink> SarsaAccel<V, S> {
    /// Build an instrumented engine: like [`SarsaAccel::new`] but
    /// attaching a telemetry `sink` (see [`TraceSink`]).
    pub fn with_sink<E: Environment>(
        env: &E,
        mut config: AccelConfig,
        epsilon: f64,
        sink: S,
    ) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        config.trainer.behavior = Policy::EpsilonGreedy { epsilon };
        config.trainer.update = Policy::EpsilonGreedy { epsilon };
        config.trainer.forward_next_action = true;
        Self {
            pipe: AccelPipeline::with_sink(env, config, 0, sink),
        }
    }

    /// The pipeline's perf-counter bank (all-zero unless a
    /// counter-bearing sink is attached).
    pub fn counters(&self) -> &CounterBank {
        self.pipe.counters()
    }

    /// The attached trace sink.
    pub fn sink(&self) -> &S {
        self.pipe.sink()
    }

    /// Mutable access to the attached trace sink.
    pub fn sink_mut(&mut self) -> &mut S {
        self.pipe.sink_mut()
    }

    /// Consume the engine and return its sink.
    pub fn into_sink(self) -> S {
        self.pipe.into_sink()
    }

    /// The sink's training-health probe, when one is attached (see
    /// `qtaccel_telemetry::HealthSink`; `None` for every other sink).
    pub fn health_probe(&self) -> Option<&qtaccel_telemetry::HealthProbe> {
        self.pipe.health_probe()
    }

    /// Run `n` Q-value updates and return the cumulative cycle counters.
    pub fn train_samples<E: Environment>(&mut self, env: &E, n: u64) -> CycleStats {
        self.pipe.run_samples(env, n)
    }

    /// Run `n` Q-value updates through the fast-path executor — results
    /// bit-identical to [`train_samples`](Self::train_samples), host
    /// throughput much higher (see `AccelPipeline::run_samples_fast`).
    pub fn train_samples_fast<E: Environment>(&mut self, env: &E, n: u64) -> CycleStats {
        self.pipe.run_samples_fast(env, n)
    }

    /// [`train_samples_fast`](Self::train_samples_fast) with an explicit
    /// Q-table traversal layout — the cache-blocking knob batch training
    /// tunes per shard (see [`FastLayout`]). Results are bit-identical
    /// under every layout.
    pub fn train_samples_fast_planned<E: Environment>(
        &mut self,
        env: &E,
        n: u64,
        layout: FastLayout,
    ) -> CycleStats {
        self.pipe.run_samples_fast_planned(env, n, layout)
    }

    /// One update, exposed for tracing.
    pub fn step<E: Environment>(&mut self, env: &E) -> Transition<V> {
        self.pipe.step(env)
    }

    /// Cycle counters so far.
    pub fn stats(&self) -> CycleStats {
        self.pipe.stats()
    }

    /// The learned Q-table (architectural view).
    pub fn q_table(&self) -> QTable<V> {
        self.pipe.q_table()
    }

    /// The Qmax array (architectural view).
    pub fn qmax_table(&self) -> QmaxTable<V> {
        self.pipe.qmax_table()
    }

    /// Exact greedy policy extraction.
    pub fn greedy_policy(&self) -> Vec<Action> {
        self.pipe.greedy_policy()
    }

    /// Attach the fault-tolerance runtime — online SEU injection, SECDED
    /// protection, Qmax scrubbing (see
    /// `AccelPipeline::enable_faults` and [`FaultConfig`]).
    pub fn enable_faults(&mut self, config: FaultConfig) {
        self.pipe.enable_faults(config);
    }

    /// Switch to a quantized stored Q-table format — entries held on
    /// `policy`'s grid, writebacks stochastically rounded (see
    /// `AccelPipeline::enable_quant` and DESIGN.md §2.14). Must be
    /// called before training starts.
    pub fn enable_quant(&mut self, policy: QuantPolicy) {
        self.pipe.enable_quant(policy);
    }

    /// The quantization policy in force, if any.
    pub fn quant(&self) -> Option<&QuantPolicy> {
        self.pipe.quant()
    }

    /// The learned Q-table in its packed stored form (`None` unless
    /// quantization is enabled; see `AccelPipeline::packed_q_table`).
    pub fn packed_q_table(&self) -> Option<PackedQTable> {
        self.pipe.packed_q_table()
    }

    /// The fault configuration in force, if any.
    pub fn fault_config(&self) -> Option<FaultConfig> {
        self.pipe.fault_config()
    }

    /// Fault-campaign counters, if a fault runtime is attached.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.pipe.fault_stats()
    }

    /// Durably checkpoint the full training state to `path` (see
    /// `AccelPipeline::save_checkpoint`).
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), CheckpointError> {
        self.pipe.save_checkpoint(path)
    }

    /// Restore training state from a checkpoint file; resume is
    /// bit-exact (see `AccelPipeline::restore_checkpoint`).
    pub fn restore_checkpoint(&mut self, path: &Path) -> Result<(), CheckpointError> {
        self.pipe.restore_checkpoint(path)
    }

    /// Structural resources, modeled fmax/throughput/power (Figs. 4, 5,
    /// 6). When a counter-bearing sink is attached the perf-counter
    /// bank's fabric cost is included (see [`with_perf_regfile`]); an
    /// event-emitting sink additionally folds in the stall-run-length
    /// histogram monitor ([`with_histogram_regfile`]).
    pub fn resources(&self) -> AccelResources {
        // A quantized table narrows the stored word everywhere the
        // model prices memory (see `QLearningAccel::resources`).
        let stored_bits = self
            .pipe
            .quant()
            .map_or(V::storage_bits(), |p| p.stored_bits());
        let res = analyze_stored(
            self.pipe.num_states(),
            self.pipe.num_actions(),
            V::storage_bits(),
            stored_bits,
            EngineKind::Sarsa,
            self.pipe.config(),
            self.pipe.stats().samples_per_cycle().max(
                if self.pipe.stats().samples == 0 { 1.0 } else { 0.0 },
            ),
        );
        let mut res = if S::COUNTERS {
            with_perf_regfile(res, self.pipe.config())
        } else {
            res
        };
        if S::EVENTS {
            res = with_histogram_regfile(res, self.pipe.config());
        }
        // A health-probing sink brings the probe block
        // ([`with_health_probes`]).
        if S::HEALTH {
            res = with_health_probes(
                res,
                self.pipe.config(),
                self.pipe.num_states(),
                stored_bits,
            );
        }
        // ECC-protected memories carry their codecs and widened words
        // (over the stored width).
        if self.pipe.fault_config().is_some_and(|c| c.ecc) {
            res = with_secded(
                res,
                self.pipe.config(),
                self.pipe.num_states(),
                self.pipe.num_actions(),
                stored_bits,
            );
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_envs::{Environment, GridWorld};
    use qtaccel_fixed::Q8_8;

    #[test]
    fn sarsa_runs_one_sample_per_cycle() {
        let g = GridWorld::builder(8, 8).goal(7, 7).build();
        let mut s = SarsaAccel::<Q8_8>::new(&g, AccelConfig::default(), 0.2);
        let stats = s.train_samples(&g, 20_000);
        assert_eq!(stats.samples, 20_000);
        assert_eq!(stats.cycles, 20_003, "ε-greedy must not cost cycles");
    }

    #[test]
    fn on_policy_forwarding_is_active() {
        let g = GridWorld::builder(8, 8).goal(7, 7).build();
        let mut s = SarsaAccel::<Q8_8>::new(&g, AccelConfig::default(), 0.3);
        let mut prev: Option<Transition<Q8_8>> = None;
        for _ in 0..500 {
            let tr = s.step(&g);
            if let Some(p) = prev {
                if !g.is_terminal(p.s_next) {
                    assert_eq!(tr.a, p.a_next, "stage-2 action must be forwarded");
                }
            }
            prev = Some(tr);
        }
    }

    #[test]
    fn sarsa_learns_a_usable_policy() {
        let g = GridWorld::builder(8, 8).goal(7, 7).build();
        let mut s = SarsaAccel::<Q8_8>::new(&g, AccelConfig::default(), 0.25);
        s.train_samples(&g, 300_000);
        let opt =
            qtaccel_core::eval::step_optimality(&g, &s.greedy_policy(), &g.shortest_distances());
        assert!(opt > 0.85, "step-optimality {opt}");
    }

    #[test]
    fn resources_show_the_lfsr_overhead() {
        let g = GridWorld::builder(8, 8).goal(7, 7).build();
        let s = SarsaAccel::<Q8_8>::new(&g, AccelConfig::default(), 0.2);
        let q = crate::qlearning::QLearningAccel::<Q8_8>::new(&g, AccelConfig::default());
        let (rs, rq) = (s.resources(), q.resources());
        assert_eq!(rs.report.dsp, rq.report.dsp);
        assert_eq!(rs.report.bram36, rq.report.bram36);
        assert!(rs.report.ff > rq.report.ff);
        assert!(rs.power_mw > rq.power_mw, "Fig. 5 vs Fig. 3 power gap");
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn epsilon_validated() {
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        SarsaAccel::<Q8_8>::new(&g, AccelConfig::default(), 1.5);
    }
}
