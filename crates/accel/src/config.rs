//! Accelerator configuration.

use qtaccel_core::trainer::TrainerConfig;
use qtaccel_core::MaxMode;
use qtaccel_hdl::resource::{Device, FmaxModel, PowerModel};

/// How read-after-write hazards between consecutive updates are handled.
///
/// The paper's design point is `Forwarding`: "Our pipelined implementation
/// fully handles the dependencies between consecutive updates allowing it
/// to process one sample every clock cycle." The other two modes exist to
/// quantify that choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HazardMode {
    /// Full forwarding network: in-flight results bypass the BRAM into
    /// younger stages. One sample per cycle; values identical to
    /// sequential execution.
    #[default]
    Forwarding,
    /// No forwarding: the front end stalls until the conflicting write
    /// commits. Values identical to sequential execution, throughput
    /// degraded (the `ablation_forwarding` experiment).
    StallOnly,
    /// No interlock at all: reads return stale BRAM contents when a
    /// dependent write is in flight. Full throughput but *wrong* values —
    /// included to demonstrate the dependency handling is load-bearing.
    Ignore,
}

/// Full configuration of one accelerator instance.
#[derive(Debug, Clone, Copy)]
pub struct AccelConfig {
    /// Algorithm hyper-parameters and policies (shared with the software
    /// golden reference, which is what makes equivalence testable).
    pub trainer: TrainerConfig,
    /// Hazard handling mode.
    pub hazard: HazardMode,
    /// Target device for resource utilization and fmax modelling.
    pub device: Device,
    /// The calibrated clock model (Fig. 6).
    pub fmax: FmaxModel,
    /// The calibrated power model (Figs. 3/5).
    pub power: PowerModel,
}

impl Default for AccelConfig {
    fn default() -> Self {
        Self {
            trainer: TrainerConfig::q_learning(),
            hazard: HazardMode::default(),
            device: Device::XCVU13P,
            fmax: FmaxModel::default(),
            power: PowerModel::default(),
        }
    }
}

impl AccelConfig {
    /// Replace the learning rate α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.trainer = self.trainer.with_alpha(alpha);
        self
    }

    /// Replace the discount factor γ.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.trainer = self.trainer.with_gamma(gamma);
        self
    }

    /// Replace the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.trainer = self.trainer.with_seed(seed);
        self
    }

    /// Replace the hazard mode.
    pub fn with_hazard(mut self, hazard: HazardMode) -> Self {
        self.hazard = hazard;
        self
    }

    /// Replace the max-selection semantics (Qmax array vs exact scan).
    pub fn with_max_mode(mut self, mode: MaxMode) -> Self {
        self.trainer = self.trainer.with_max_mode(mode);
        self
    }

    /// Replace the target device.
    pub fn with_device(mut self, device: Device) -> Self {
        self.device = device;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_q_learning_forwarding_on_vu13p() {
        let c = AccelConfig::default();
        assert_eq!(c.hazard, HazardMode::Forwarding);
        assert_eq!(c.device.name, "xcvu13p");
        assert!(!c.trainer.forward_next_action);
    }

    #[test]
    fn builders_compose() {
        let c = AccelConfig::default()
            .with_alpha(0.25)
            .with_gamma(0.5)
            .with_seed(99)
            .with_hazard(HazardMode::StallOnly);
        assert_eq!(c.trainer.alpha, 0.25);
        assert_eq!(c.trainer.gamma, 0.5);
        assert_eq!(c.trainer.seed, 99);
        assert_eq!(c.hazard, HazardMode::StallOnly);
    }
}
