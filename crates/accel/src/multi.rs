//! Parallel-pipeline configurations (§VII-A, Figs. 8 and 9).
//!
//! * [`DualPipelineShared`] — two agents exploring the *same* environment
//!   and updating *shared* Q/R/Qmax tables through the two ports of
//!   dual-port BRAM. Same-cycle writes to the same address are
//!   arbitrated: port A (pipeline 0) "arbitrarily overwrites the other".
//!   Throughput doubles; convergence is unaffected as long as the agents
//!   rarely collide on the same state (the paper's argument, measured
//!   here by the collision counter).
//! * [`IndependentPipelines`] — N agents on N disjoint sub-environments,
//!   each with its own BRAM bank ("each accessing a separate memory
//!   block"). Linear throughput scaling bounded only by memory.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::checkpoint::{self, CheckpointError};
use crate::config::{AccelConfig, HazardMode};
use crate::executor::{chunk_samples, ShardJob, ShardedExecutor};
use crate::fault::FaultConfig;
use crate::pipeline::{AccelPipeline, FastLayout};
use crate::resources::{analyze, resource_report, AccelResources, EngineKind};
use qtaccel_core::policy::Policy;
use qtaccel_core::qtable::{MaxMode, QTable, QmaxTable};
use qtaccel_core::trainer::{seed_unit, Transition};
use qtaccel_envs::{sa_index, Action, Environment, RewardTable, State};
use qtaccel_fixed::QValue;
use qtaccel_hdl::lfsr::Lfsr32;
use qtaccel_hdl::pipeline::CycleStats;
use qtaccel_hdl::rng::{epsilon_greedy_draw, epsilon_to_q32, RngSource, SeedSequence};
use qtaccel_telemetry::{
    ActiveSpan, CounterBank, CounterId, NullSink, SpanContext, SpanTracer, TraceSink,
};

const WRITE_OFFSET: u64 = 3;
const FILL: u64 = 3;

#[derive(Debug, Clone, Copy)]
struct Pending<T> {
    commit_cycle: u64,
    addr: usize,
    value: T,
    /// Lost a same-cycle write collision: visible to the owning
    /// pipeline's forwarding network (the datapath tap) but never
    /// committed to the shared BRAM.
    squashed: bool,
}

#[derive(Debug, Clone)]
struct AgentCtx {
    start_rng: Lfsr32,
    behavior_rng: Lfsr32,
    update_rng: Lfsr32,
    carry: Option<(State, Option<Action>)>,
}

impl AgentCtx {
    fn new(seed: u64, pipeline: u64) -> Self {
        let seeds = SeedSequence::new(seed);
        Self {
            start_rng: Lfsr32::new(seeds.derive(seed_unit::of(pipeline, seed_unit::START))),
            behavior_rng: Lfsr32::new(seeds.derive(seed_unit::of(pipeline, seed_unit::BEHAVIOR))),
            update_rng: Lfsr32::new(seeds.derive(seed_unit::of(pipeline, seed_unit::UPDATE))),
            carry: None,
        }
    }
}

/// Two state-sharing pipelines over dual-port shared tables (Fig. 8).
#[derive(Debug, Clone)]
pub struct DualPipelineShared<V> {
    num_states: usize,
    num_actions: usize,
    config: AccelConfig,
    alpha_v: V,
    one_minus_alpha: V,
    alpha_gamma: V,
    q_mem: Vec<V>,
    qmax_mem: Vec<(V, Action)>,
    rewards: RewardTable<V>,
    pending_q: [VecDeque<Pending<V>>; 2],
    pending_qmax: [VecDeque<Pending<(V, Action)>>; 2],
    agents: [AgentCtx; 2],
    cycle: u64,
    samples: u64,
    fwd_q: u64,
    fwd_qmax: u64,
    qmax_writes: u64,
    q_collisions: u64,
    qmax_collisions: u64,
}

impl<V: QValue> DualPipelineShared<V> {
    /// Build a dual-pipeline instance over `env`'s dimensions.
    ///
    /// # Panics
    /// If the hazard mode is not `Forwarding` — the shared configuration
    /// is only specified for the paper's design point.
    pub fn new<E: Environment>(env: &E, config: AccelConfig) -> Self {
        assert_eq!(
            config.hazard,
            HazardMode::Forwarding,
            "dual-pipeline mode models the forwarding design only"
        );
        let alpha_v = V::from_f64(config.trainer.alpha);
        let gamma_v = V::from_f64(config.trainer.gamma);
        let (s, a) = (env.num_states(), env.num_actions());
        // Shared Qmax BRAM init file (same stream as single-pipeline
        // configurations: seed bank 0).
        let mut qmax_mem = vec![(V::zero(), 0 as Action); s];
        let mut init_rng = Lfsr32::new(
            SeedSequence::new(config.trainer.seed)
                .derive(seed_unit::of(0, seed_unit::QMAX_INIT)),
        );
        for e in &mut qmax_mem {
            e.1 = init_rng.below(a as u32);
        }
        Self {
            num_states: s,
            num_actions: a,
            alpha_v,
            one_minus_alpha: alpha_v.one_minus(),
            alpha_gamma: alpha_v.mul(gamma_v),
            q_mem: vec![V::zero(); s * a],
            qmax_mem,
            rewards: RewardTable::from_env(env),
            pending_q: [VecDeque::new(), VecDeque::new()],
            pending_qmax: [VecDeque::new(), VecDeque::new()],
            agents: [
                AgentCtx::new(config.trainer.seed, 0),
                AgentCtx::new(config.trainer.seed, 1),
            ],
            cycle: 0,
            samples: 0,
            fwd_q: 0,
            fwd_qmax: 0,
            qmax_writes: 0,
            q_collisions: 0,
            qmax_collisions: 0,
            config,
        }
    }

    fn commit_q_until(&mut self, cycle: u64) {
        for p in 0..2 {
            while let Some(w) = self.pending_q[p].front() {
                if w.commit_cycle < cycle {
                    if !w.squashed {
                        self.q_mem[w.addr] = w.value;
                    }
                    self.pending_q[p].pop_front();
                } else {
                    break;
                }
            }
        }
    }

    fn commit_qmax_until(&mut self, cycle: u64) {
        for p in 0..2 {
            while let Some(w) = self.pending_qmax[p].front() {
                if w.commit_cycle < cycle {
                    if !w.squashed {
                        self.qmax_mem[w.addr] = w.value;
                    }
                    self.pending_qmax[p].pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Read through pipeline `p`'s forwarding network: own pending writes
    /// bypass; the other pipeline's in-flight writes are invisible (there
    /// is no cross-pipeline forwarding in the design).
    fn read_q(&mut self, p: usize, s: State, a: Action, cycle: u64) -> V {
        self.commit_q_until(cycle);
        let idx = sa_index(s, a, self.num_actions);
        if let Some(w) = self.pending_q[p].iter().rev().find(|w| w.addr == idx) {
            self.fwd_q += 1;
            w.value
        } else {
            self.q_mem[idx]
        }
    }

    fn read_qmax(&mut self, p: usize, s: State, cycle: u64) -> (V, Action) {
        self.commit_qmax_until(cycle);
        let idx = s as usize;
        if let Some(w) = self.pending_qmax[p].iter().rev().find(|w| w.addr == idx) {
            self.fwd_qmax += 1;
            w.value
        } else {
            self.qmax_mem[idx]
        }
    }

    fn read_max(&mut self, p: usize, s: State, cycle: u64) -> (V, Action) {
        match self.config.trainer.max_mode {
            MaxMode::QmaxArray => self.read_qmax(p, s, cycle),
            MaxMode::ExactScan => {
                let mut best = (self.read_q(p, s, 0, cycle), 0u32);
                for a in 1..self.num_actions as Action {
                    let v = self.read_q(p, s, a, cycle);
                    if v.vcmp(best.0) == core::cmp::Ordering::Greater {
                        best = (v, a);
                    }
                }
                best
            }
        }
    }

    fn select_behavior(&mut self, p: usize, s: State, cycle: u64) -> Action {
        let n = self.num_actions as u32;
        match self.config.trainer.behavior {
            Policy::Random => self.agents[p].behavior_rng.below(n),
            Policy::Greedy => self.read_max(p, s, cycle).1,
            Policy::EpsilonGreedy { epsilon } => {
                let thr = epsilon_to_q32(epsilon);
                match epsilon_greedy_draw(&mut self.agents[p].behavior_rng, thr, n) {
                    Some(a) => a,
                    None => self.read_max(p, s, cycle).1,
                }
            }
            Policy::Boltzmann { .. } => {
                panic!("Boltzmann is not synthesizable on the QRL engine")
            }
        }
    }

    fn select_update(&mut self, p: usize, s_next: State, cycle: u64) -> (Action, V) {
        let n = self.num_actions as u32;
        match self.config.trainer.update {
            Policy::Greedy => {
                let (v, a) = self.read_max(p, s_next, cycle);
                (a, v)
            }
            Policy::Random => {
                let a = self.agents[p].update_rng.below(n);
                (a, self.read_q(p, s_next, a, cycle))
            }
            Policy::EpsilonGreedy { epsilon } => {
                let thr = epsilon_to_q32(epsilon);
                match epsilon_greedy_draw(&mut self.agents[p].update_rng, thr, n) {
                    Some(a) => (a, self.read_q(p, s_next, a, cycle)),
                    None => {
                        let (v, a) = self.read_max(p, s_next, cycle);
                        (a, v)
                    }
                }
            }
            Policy::Boltzmann { .. } => {
                panic!("Boltzmann is not synthesizable on the QRL engine")
            }
        }
    }

    /// Advance one clock: both pipelines retire one sample each.
    pub fn step_cycle<E: Environment>(&mut self, env: &E) -> [Transition<V>; 2] {
        let c1 = self.cycle;
        let write_cycle = c1 + WRITE_OFFSET;
        let mut results: [Option<Transition<V>>; 2] = [None, None];
        let mut writes: [Option<(usize, V, State, Action)>; 2] = [None, None];

        for p in 0..2 {
            // Stage 1.
            let (s, a) = match self.agents[p].carry.take() {
                None => {
                    let s = env.random_start(&mut self.agents[p].start_rng);
                    let a = self.select_behavior(p, s, c1);
                    (s, a)
                }
                Some((s, Some(a))) => (s, a),
                Some((s, None)) => {
                    let a = self.select_behavior(p, s, c1);
                    (s, a)
                }
            };
            let s_next = env.transition(s, a);
            let r = self.rewards.get(s, a);
            let q_sa = self.read_q(p, s, a, c1);
            // Stage 2.
            let (a_next, q_next) = self.select_update(p, s_next, c1 + 1);
            // Stage 3.
            let q_new = self
                .one_minus_alpha
                .mul(q_sa)
                .add(self.alpha_v.mul(r))
                .add(self.alpha_gamma.mul(q_next));
            writes[p] = Some((sa_index(s, a, self.num_actions), q_new, s, a));
            self.agents[p].carry = if env.is_terminal(s_next) {
                None
            } else {
                Some((
                    s_next,
                    if self.config.trainer.forward_next_action {
                        Some(a_next)
                    } else {
                        None
                    },
                ))
            };
            results[p] = Some(Transition {
                s,
                a,
                r,
                s_next,
                a_next,
                q_new,
            });
        }

        // Stage 4: arbitrated writeback.
        let (w0, w1) = (writes[0].unwrap(), writes[1].unwrap());
        let q_collision = w0.0 == w1.0;
        if q_collision {
            self.q_collisions += 1;
        }
        for (p, w) in [(0usize, w0), (1usize, w1)] {
            self.pending_q[p].push_back(Pending {
                commit_cycle: write_cycle,
                addr: w.0,
                value: w.1,
                // Port A (pipeline 0) wins collisions.
                squashed: q_collision && p == 1,
            });
        }
        // Qmax read-modify-write per pipeline, then arbitration.
        let mut qmax_writes: [Option<(usize, (V, Action))>; 2] = [None, None];
        for (p, w) in [(0usize, w0), (1usize, w1)] {
            self.commit_qmax_until(write_cycle);
            let idx = w.2 as usize;
            let current = self.pending_qmax[p]
                .iter()
                .rev()
                .find(|x| x.addr == idx)
                .map(|x| x.value.0)
                .unwrap_or(self.qmax_mem[idx].0);
            if w.1.vcmp(current) == core::cmp::Ordering::Greater {
                qmax_writes[p] = Some((idx, (w.1, w.3)));
            }
        }
        let qmax_collision = matches!((qmax_writes[0], qmax_writes[1]),
            (Some((a0, _)), Some((a1, _))) if a0 == a1);
        if qmax_collision {
            self.qmax_collisions += 1;
        }
        for (p, w) in qmax_writes.iter().enumerate() {
            if let Some((addr, value)) = w {
                self.qmax_writes += 1;
                self.pending_qmax[p].push_back(Pending {
                    commit_cycle: write_cycle,
                    addr: *addr,
                    value: *value,
                    squashed: qmax_collision && p == 1,
                });
            }
        }

        self.cycle += 1;
        self.samples += 2;
        [results[0].take().unwrap(), results[1].take().unwrap()]
    }

    /// Run `cycles` clock cycles (2 samples each).
    pub fn train_cycles<E: Environment>(&mut self, env: &E, cycles: u64) -> CycleStats {
        for _ in 0..cycles {
            self.step_cycle(env);
        }
        self.stats()
    }

    /// Merged cycle counters: 2 samples per cycle.
    pub fn stats(&self) -> CycleStats {
        CycleStats {
            cycles: if self.cycle == 0 { 0 } else { self.cycle + FILL },
            samples: self.samples,
            stalls: 0,
            fill_bubbles: FILL,
            forwards: self.fwd_q + self.fwd_qmax,
        }
    }

    /// Same-cycle Q-write collisions (one write lost each).
    pub fn q_collisions(&self) -> u64 {
        self.q_collisions
    }

    /// Same-cycle Qmax-write collisions.
    pub fn qmax_collisions(&self) -> u64 {
        self.qmax_collisions
    }

    /// A perf-counter snapshot over the shared-table unit, keyed to the
    /// same register map as the single-pipeline bank (DESIGN.md §2.6).
    /// Derived counters: samples/fill from the clock bookkeeping, one Q
    /// write per retired sample, and port-arbitration losses surfaced as
    /// [`CounterId::PortConflicts`]. Counters this unit does not model
    /// (per-port read totals, LFSR draws) stay zero.
    pub fn counters(&self) -> CounterBank {
        let mut bank = CounterBank::new();
        bank.add(CounterId::SamplesRetired, self.samples);
        bank.add(CounterId::FillCycles, FILL);
        bank.add(CounterId::QWrites, self.samples);
        bank.add(CounterId::QmaxWrites, self.qmax_writes);
        bank.add(CounterId::FwdQHit, self.fwd_q);
        bank.add(CounterId::FwdQmaxHit, self.fwd_qmax);
        bank.add(
            CounterId::PortConflicts,
            self.q_collisions + self.qmax_collisions,
        );
        bank
    }

    /// The shared Q-table (committed image plus surviving in-flight
    /// writes).
    pub fn q_table(&self) -> QTable<V> {
        let mut mem = self.q_mem.clone();
        // Apply both pipelines' unsquashed pending writes in cycle order.
        let mut all: Vec<&Pending<V>> = self
            .pending_q
            .iter()
            .flatten()
            .filter(|w| !w.squashed)
            .collect();
        all.sort_by_key(|w| w.commit_cycle);
        for w in all {
            mem[w.addr] = w.value;
        }
        let mut q = QTable::new(self.num_states, self.num_actions);
        for s in 0..self.num_states as State {
            for a in 0..self.num_actions as Action {
                q.set(s, a, mem[sa_index(s, a, self.num_actions)]);
            }
        }
        q
    }

    /// Exact greedy policy from the shared table.
    pub fn greedy_policy(&self) -> Vec<Action> {
        self.q_table().greedy_policy()
    }

    /// Resources: two datapaths (2× DSP/FF/LUT), *shared* tables — the
    /// paper's point that dual-port BRAM gives the second pipeline for
    /// free memory-wise.
    pub fn resources(&self) -> AccelResources {
        let kind = if self.config.trainer.forward_next_action {
            EngineKind::Sarsa
        } else {
            EngineKind::QLearning
        };
        let single = resource_report(self.num_states, self.num_actions, V::storage_bits(), kind);
        let mut r = analyze(
            self.num_states,
            self.num_actions,
            V::storage_bits(),
            kind,
            &self.config,
            2.0,
        );
        r.report.dsp = 2 * single.dsp;
        r.report.ff = 2 * single.ff;
        r.report.lut = 2 * single.lut;
        r.utilization = r.report.utilization(&self.config.device);
        r.power_mw = self.config.power.power_mw(&r.report, r.fmax_mhz);
        r
    }
}

/// One shard's slice of a [`train_batch`] run.
///
/// [`train_batch`]: IndependentPipelines::train_batch
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRun {
    /// Pipeline (= BRAM bank) index.
    pub pipeline: usize,
    /// Samples assigned to this shard by the deterministic split.
    pub samples: u64,
    /// Deterministic chunk size the work queue re-entered the shard at.
    pub chunk: u64,
    /// Q-table traversal layout the cache-blocking pick selected.
    pub layout: FastLayout,
    /// Streams interleaved in this shard's executor loop (1 for the
    /// scalar layouts; K for [`FastLayout::Interleaved`] groups, where
    /// one shard drives K pipelines — see
    /// [`train_batch_with`](IndependentPipelines::train_batch_with)).
    pub streams: usize,
}

/// What a [`train_batch`] call did: merged cycle counters plus the
/// per-shard plan, for scaling reports.
///
/// [`train_batch`]: IndependentPipelines::train_batch
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Merged cycle counters (wall-clock = slowest shard, samples sum).
    pub stats: CycleStats,
    /// Worker threads in the executor that ran the batch.
    pub workers: usize,
    /// The deterministic per-shard plan that was executed.
    pub shards: Vec<ShardRun>,
    /// Cumulative iterations whose events the attached sinks have had to
    /// drop, summed across banks as of batch completion (bounded sinks
    /// like `RingSink` evict; the fast path itself emits no events, so
    /// nonzero values originate from cycle-accurate runs on the same
    /// sinks). Zero for unbounded and no-op sinks — a nonzero value
    /// flags that the retained trace is *not* the complete run.
    pub dropped_iterations: u64,
    /// Spans evicted from the attached [`SpanTracer`]'s bounded ring as
    /// of batch completion (cumulative, like `dropped_iterations`).
    /// Zero with no tracer attached — nonzero flags that the retained
    /// span tree is *not* the complete batch.
    pub dropped_spans: u64,
    /// The batch's root span context, when a tracer was attached: the
    /// trace id every chunk/checkpoint/scrub span of this batch nests
    /// under, and the parent to tag follow-on events (e.g. watchdog
    /// alerts) into the same trace.
    pub trace: Option<SpanContext>,
}

/// Where [`train_batch_durable`] keeps shard `i`'s checkpoint inside its
/// checkpoint directory.
///
/// [`train_batch_durable`]: IndependentPipelines::train_batch_durable
pub fn shard_checkpoint_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard{i}.ckpt"))
}

/// Why a lease-granular durable run ([`train_shard_durable`]) was
/// refused.
///
/// [`train_shard_durable`]: IndependentPipelines::train_shard_durable
#[derive(Debug)]
pub enum LeaseError {
    /// The shard checkpoint could not be read, restored, or written.
    Checkpoint(CheckpointError),
    /// The on-disk checkpoint was sealed under a *newer* fencing epoch
    /// than the caller holds: the lease was reassigned and this caller
    /// is a zombie. Training is refused so a superseded worker can
    /// never clobber the live assignment's state.
    FencedEpoch {
        /// The epoch the caller holds its lease under.
        held: u64,
        /// The newer epoch found stamped in the checkpoint.
        found: u64,
    },
}

impl From<CheckpointError> for LeaseError {
    fn from(e: CheckpointError) -> Self {
        LeaseError::Checkpoint(e)
    }
}

impl core::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LeaseError::Checkpoint(e) => write!(f, "lease checkpoint error: {e}"),
            LeaseError::FencedEpoch { held, found } => write!(
                f,
                "lease fenced: caller holds epoch {held} but the checkpoint \
                 was sealed under epoch {found} (lease was reassigned)"
            ),
        }
    }
}

impl std::error::Error for LeaseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LeaseError::Checkpoint(e) => Some(e),
            LeaseError::FencedEpoch { .. } => None,
        }
    }
}

/// Per-shard working set (the fused fast-path slab) above which
/// [`train_batch`] switches from the action-major interleaved layout to
/// the state-major separate-column layout. `bench_scaling`'s layout
/// sweep (BENCH_scaling.json `layout_rows`) measured the fused slab
/// winning at *every* Table I size on the reference host — a ~4 MB slab
/// at |S| = 65536 × 8 actions still ran ~1.8× the column layout — so
/// the crossover sits above the swept range and state-major only
/// engages for tables far beyond the paper's (it stays reachable
/// explicitly via [`FastLayout::StateMajor`]). See DESIGN.md §2.9.
const CACHE_BLOCK_BYTES: usize = 1 << 26;

/// N independent pipelines over disjoint sub-environments (Fig. 9).
///
/// Generic over a [`TraceSink`] (default [`NullSink`] = telemetry off,
/// zero cost): attach one sink per bank via
/// [`with_sinks`](Self::with_sinks) and each pipeline keeps its own
/// counter bank, mirroring the hardware where every memory bank carries
/// its own monitor registers.
///
/// Training calls run on a persistent [`ShardedExecutor`] — the
/// process-global pool by default, or a caller-supplied one via
/// [`with_executor`](Self::with_executor). Results are bit-identical at
/// every worker count (each pipeline's samples execute strictly in
/// order; only scheduling varies), pinned by `tests/scaling.rs`.
#[derive(Debug, Clone)]
pub struct IndependentPipelines<V, S: TraceSink = NullSink> {
    pipes: Vec<AccelPipeline<V, S>>,
    /// `None` = the process-global pool.
    executor: Option<Arc<ShardedExecutor>>,
    /// `None` = span tracing off (the default; batch paths stay on the
    /// uninstrumented fast lane, costing one `Option` test per chunk).
    tracer: Option<Arc<SpanTracer>>,
}

impl<V: QValue> IndependentPipelines<V> {
    /// One pipeline per environment, each with its own RNG seed bank and
    /// its own BRAM banks.
    pub fn new<E: Environment>(envs: &[E], config: AccelConfig) -> Self {
        assert!(!envs.is_empty(), "need at least one sub-environment");
        Self {
            pipes: envs
                .iter()
                .enumerate()
                .map(|(i, e)| AccelPipeline::new(e, config, i as u64))
                .collect(),
            executor: None,
            tracer: None,
        }
    }
}

impl<V: QValue, S: TraceSink> IndependentPipelines<V, S> {
    /// Instrumented construction: like [`new`](Self::new) but attaching
    /// one telemetry sink per pipeline (`sinks.len()` must equal
    /// `envs.len()`).
    pub fn with_sinks<E: Environment>(envs: &[E], config: AccelConfig, sinks: Vec<S>) -> Self {
        assert!(!envs.is_empty(), "need at least one sub-environment");
        assert_eq!(envs.len(), sinks.len(), "one sink per pipeline");
        Self {
            pipes: envs
                .iter()
                .zip(sinks)
                .enumerate()
                .map(|(i, (e, sink))| AccelPipeline::with_sink(e, config, i as u64, sink))
                .collect(),
            executor: None,
            tracer: None,
        }
    }

    /// Run training calls on `executor` instead of the process-global
    /// pool (e.g. a pool pinned to a specific worker count for scaling
    /// sweeps). Clones share the pool.
    pub fn with_executor(mut self, executor: Arc<ShardedExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Attach a structured span tracer: the batch entry points
    /// ([`train_batch`](Self::train_batch) and friends) start one trace
    /// per call with per-shard chunk spans (plus checkpoint and scrub
    /// children where those happen), all deterministically identified —
    /// same seed and batch plan give bit-identical span trees at any
    /// worker count. Clones share the tracer.
    pub fn with_tracer(mut self, tracer: Arc<SpanTracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The attached span tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<SpanTracer>> {
        self.tracer.as_ref()
    }

    /// Spans evicted from the attached tracer's bounded ring so far
    /// (see [`BatchReport::dropped_spans`]). Zero with no tracer.
    pub fn dropped_spans(&self) -> u64 {
        self.tracer.as_ref().map_or(0, |t| t.dropped_spans())
    }

    /// Arm fault injection on pipeline `i` (a forwarding convenience
    /// for batch tests that want scrub activity on specific shards).
    pub fn enable_faults(&mut self, i: usize, config: FaultConfig) {
        self.pipes[i].enable_faults(config);
    }

    /// Worker threads in the executor training calls run on.
    pub fn workers(&self) -> usize {
        match self.executor.as_deref() {
            Some(pool) => pool.workers(),
            None => ShardedExecutor::global().workers(),
        }
    }

    /// Pipeline `i`'s perf-counter bank (all-zero unless a
    /// counter-bearing sink is attached).
    pub fn counters(&self, i: usize) -> &CounterBank {
        self.pipes[i].counters()
    }

    /// Pipeline `i`'s attached trace sink.
    pub fn sink(&self, i: usize) -> &S {
        self.pipes[i].sink()
    }

    /// Number of pipelines.
    pub fn len(&self) -> usize {
        self.pipes.len()
    }

    /// Whether there are no pipelines (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.pipes.is_empty()
    }

    /// Submit one shard per pipeline to the executor: shard `i` runs
    /// `budgets[i]` samples through `run`, re-entered in deterministic
    /// chunks so the pool's work queue can interleave P ≫ C shards.
    /// Blocks until the batch completes; per-shard state (tables, stats,
    /// counter banks) is written lock-free by the owning shard and read
    /// here only after the join.
    ///
    /// When a tracer is attached *and* `ctx` carries a batch root, every
    /// chunk re-entry is wrapped in a `chunk` span (lane = shard index,
    /// ordinal = chunk number) parented under the root — span context
    /// crosses the executor's worker threads, so one trace covers the
    /// whole batch — and a shard whose scrub engine advanced during the
    /// chunk gets a `scrub` instant child. The chunk's own context is
    /// handed to `run` so deeper work (checkpoint writes) can nest under
    /// it. With no tracer the entire block is one `Option` test per
    /// chunk re-entry — chunks are ≥ 2^16 samples, so the fast paths
    /// are untouched.
    fn drive<E, F>(
        &mut self,
        envs: &[E],
        budgets: &[u64],
        ctx: Option<SpanContext>,
        run: F,
    ) -> CycleStats
    where
        E: Environment + Sync,
        S: Send,
        F: Fn(usize, &mut AccelPipeline<V, S>, &E, u64, Option<SpanContext>) + Sync,
    {
        assert_eq!(envs.len(), self.pipes.len(), "one environment per pipeline");
        assert_eq!(budgets.len(), self.pipes.len(), "one budget per pipeline");
        if budgets.iter().all(|&b| b == 0) {
            return self.stats();
        }
        // Clone the Arcs so the pool/tracer references cannot alias
        // `self.pipes`.
        let owned = self.executor.clone();
        let pool: &ShardedExecutor = match owned.as_deref() {
            Some(pool) => pool,
            None => ShardedExecutor::global(),
        };
        let tracing = self.tracer.clone().zip(ctx);
        let run = &run;
        let shards: Vec<ShardJob<'_>> = self
            .pipes
            .iter_mut()
            .zip(envs)
            .zip(budgets)
            .enumerate()
            .filter(|(_, ((_, _), &budget))| budget > 0)
            .map(|(i, ((pipe, env), &budget))| {
                let chunk = chunk_samples(budget, pipe.num_states(), pipe.num_actions());
                let mut left = budget;
                let mut chunk_idx = 0u64;
                let tracing = tracing.clone();
                Box::new(move || {
                    let take = chunk.min(left);
                    match &tracing {
                        Some((tracer, root)) => {
                            let span = tracer.begin(
                                root.trace,
                                Some(root.span),
                                "chunk",
                                i as u32,
                                chunk_idx,
                            );
                            let scrub_before =
                                pipe.fault_stats().map(|f| f.scrub_rounds).unwrap_or(0);
                            run(i, pipe, env, take, Some(span.context()));
                            let scrub_after =
                                pipe.fault_stats().map(|f| f.scrub_rounds).unwrap_or(0);
                            if scrub_after > scrub_before {
                                tracer.instant(
                                    root.trace,
                                    Some(span.context().span),
                                    "scrub",
                                    i as u32,
                                    scrub_after,
                                );
                            }
                            tracer.end(span);
                        }
                        None => run(i, pipe, env, take, None),
                    }
                    chunk_idx += 1;
                    left -= take;
                    left > 0
                }) as ShardJob<'_>
            })
            .collect();
        pool.run_shards(shards);
        self.stats()
    }

    /// Train every pipeline for `samples_each` updates on its own
    /// environment. Shards run on the persistent [`ShardedExecutor`]
    /// worker pool — they share no state, exactly like the hardware
    /// banks, so results are bit-identical to
    /// [`train_samples_sequential`](Self::train_samples_sequential) at
    /// any worker count.
    pub fn train_samples<E: Environment + Sync>(
        &mut self,
        envs: &[E],
        samples_each: u64,
    ) -> CycleStats
    where
        S: Send,
    {
        let budgets = vec![samples_each; self.pipes.len()];
        self.drive(envs, &budgets, None, |_, pipe, env, n, _| {
            pipe.run_samples(env, n);
        })
    }

    /// [`train_samples`](Self::train_samples) through the fast-path
    /// executor on every bank — bit-identical results (see
    /// `AccelPipeline::run_samples_fast`).
    pub fn train_samples_fast<E: Environment + Sync>(
        &mut self,
        envs: &[E],
        samples_each: u64,
    ) -> CycleStats
    where
        S: Send,
    {
        let budgets = vec![samples_each; self.pipes.len()];
        self.drive(envs, &budgets, None, |_, pipe, env, n, _| {
            pipe.run_samples_fast(env, n);
        })
    }

    /// The sequential reference for [`train_samples`](Self::train_samples):
    /// every pipeline runs to completion on the calling thread, no
    /// executor, no chunking. The scale-out determinism tests pin the
    /// parallel paths bit-exactly to this.
    pub fn train_samples_sequential<E: Environment>(
        &mut self,
        envs: &[E],
        samples_each: u64,
    ) -> CycleStats {
        assert_eq!(envs.len(), self.pipes.len(), "one environment per pipeline");
        for (pipe, env) in self.pipes.iter_mut().zip(envs) {
            pipe.run_samples(env, samples_each);
        }
        self.stats()
    }

    /// The sequential reference for
    /// [`train_samples_fast`](Self::train_samples_fast).
    pub fn train_samples_fast_sequential<E: Environment>(
        &mut self,
        envs: &[E],
        samples_each: u64,
    ) -> CycleStats {
        assert_eq!(envs.len(), self.pipes.len(), "one environment per pipeline");
        for (pipe, env) in self.pipes.iter_mut().zip(envs) {
            pipe.run_samples_fast(env, samples_each);
        }
        self.stats()
    }

    /// Open a batch root span when a tracer is attached: a fresh trace
    /// whose id derives from the tracer seed and trace ordinal, with
    /// the batch total as the root span's ordinal — fully deterministic
    /// for a fixed seed and call sequence. The caller ends the returned
    /// active span after the batch joins.
    fn begin_batch_root(
        &self,
        name: &'static str,
        total_samples: u64,
    ) -> Option<(Arc<SpanTracer>, ActiveSpan)> {
        self.tracer.clone().map(|t| {
            let trace = t.start_trace();
            let root = t.begin(trace, None, name, 0, total_samples);
            (t, root)
        })
    }

    /// Sharded batch training: split a *total* sample budget across the
    /// banks (deterministically — shard `i` gets `total/P`, plus one of
    /// the `total % P` remainder samples for `i < total % P`) and drive
    /// every shard through the fast-path executor with a cache-blocked
    /// Q-table layout picked per shard: the fused action-major slab when
    /// the shard's working set fits the cache block, the leaner
    /// state-major columns when it would thrash (see [`FastLayout`];
    /// `bench_scaling` measures the crossover). Results are
    /// bit-identical to running the same per-shard budgets sequentially
    /// under any layout.
    pub fn train_batch<E: Environment + Sync>(
        &mut self,
        envs: &[E],
        total_samples: u64,
    ) -> BatchReport
    where
        S: Send,
    {
        assert_eq!(envs.len(), self.pipes.len(), "one environment per pipeline");
        let p = self.pipes.len() as u64;
        let (base, extra) = (total_samples / p, total_samples % p);
        let mut shards = Vec::with_capacity(self.pipes.len());
        let mut budgets = Vec::with_capacity(self.pipes.len());
        for (i, pipe) in self.pipes.iter().enumerate() {
            let samples = base + u64::from((i as u64) < extra);
            let layout = if pipe.fast_slab_bytes() <= CACHE_BLOCK_BYTES {
                FastLayout::ActionMajor
            } else {
                FastLayout::StateMajor
            };
            shards.push(ShardRun {
                pipeline: i,
                samples,
                chunk: chunk_samples(samples, pipe.num_states(), pipe.num_actions()),
                layout,
                streams: 1,
            });
            budgets.push(samples);
        }
        let root = self.begin_batch_root("train_batch", total_samples);
        let ctx = root.as_ref().map(|(_, active)| active.context());
        let plan = &shards;
        let stats = self.drive(envs, &budgets, ctx, |i, pipe, env, n, _| {
            pipe.run_samples_fast_planned(env, n, plan[i].layout);
        });
        if let Some((tracer, active)) = root {
            tracer.end(active);
        }
        BatchReport {
            stats,
            workers: self.workers(),
            shards,
            dropped_iterations: self.dropped_iterations(),
            dropped_spans: self.dropped_spans(),
            trace: ctx,
        }
    }

    /// [`train_batch`](Self::train_batch) with an explicit Q-table
    /// traversal layout and stream width: `layout` forces every shard's
    /// executor ([`FastLayout::Auto`] keeps the per-shard cache-blocking
    /// heuristic), and under [`FastLayout::Interleaved`] the pipelines
    /// are grouped `streams` at a time — each group becomes **one**
    /// shard whose member sample streams advance interleaved in a
    /// single executor loop (`crate::interleave`), overlapping their
    /// Q-row loads. Ineligible pipelines inside a group (instrumented
    /// sink, fault runtime, non-default hazard/Qmax config) yield to the
    /// general executor, bit-identically.
    ///
    /// Results are bit-identical to [`train_batch`](Self::train_batch)
    /// with the same total: the deterministic budget split is unchanged
    /// and each pipeline's samples still execute strictly in order.
    pub fn train_batch_with<E: Environment + Sync>(
        &mut self,
        envs: &[E],
        total_samples: u64,
        layout: FastLayout,
        streams: usize,
    ) -> BatchReport
    where
        S: Send,
    {
        assert_eq!(envs.len(), self.pipes.len(), "one environment per pipeline");
        assert!(streams >= 1, "need at least one stream per group");
        let p = self.pipes.len() as u64;
        let (base, extra) = (total_samples / p, total_samples % p);
        let mut shards = Vec::with_capacity(self.pipes.len());
        let mut budgets = Vec::with_capacity(self.pipes.len());
        for (i, pipe) in self.pipes.iter().enumerate() {
            let samples = base + u64::from((i as u64) < extra);
            let lay = match layout {
                FastLayout::Auto => {
                    if pipe.fast_slab_bytes() <= CACHE_BLOCK_BYTES {
                        FastLayout::ActionMajor
                    } else {
                        FastLayout::StateMajor
                    }
                }
                forced => forced,
            };
            shards.push(ShardRun {
                pipeline: i,
                samples,
                chunk: chunk_samples(samples, pipe.num_states(), pipe.num_actions()),
                layout: lay,
                streams: if lay == FastLayout::Interleaved {
                    streams
                } else {
                    1
                },
            });
            budgets.push(samples);
        }
        let root = self.begin_batch_root("train_batch", total_samples);
        let ctx = root.as_ref().map(|(_, active)| active.context());
        let stats = if layout == FastLayout::Interleaved {
            self.drive_interleaved_groups(envs, &budgets, streams, ctx)
        } else {
            let plan = &shards;
            self.drive(envs, &budgets, ctx, |i, pipe, env, n, _| {
                pipe.run_samples_fast_planned(env, n, plan[i].layout);
            })
        };
        if let Some((tracer, active)) = root {
            tracer.end(active);
        }
        BatchReport {
            stats,
            workers: self.workers(),
            shards,
            dropped_iterations: self.dropped_iterations(),
            dropped_spans: self.dropped_spans(),
            trace: ctx,
        }
    }

    /// Group the pipelines `streams` at a time and submit one shard per
    /// group: each call advances every member by up to its deterministic
    /// chunk through the interleaved executor, so the pool's work queue
    /// can still interleave G ≫ C groups. Per-pipeline sample order is
    /// strictly sequential (the group loop round-robins *within* a
    /// chunk), so results stay bit-identical at any worker count.
    ///
    /// With a tracer and a batch root context, each group re-entry is a
    /// `chunk` span whose lane is the group's first pipeline index —
    /// the deterministic group key, whatever the worker count.
    fn drive_interleaved_groups<E>(
        &mut self,
        envs: &[E],
        budgets: &[u64],
        streams: usize,
        ctx: Option<SpanContext>,
    ) -> CycleStats
    where
        E: Environment + Sync,
        S: Send,
    {
        if budgets.iter().all(|&b| b == 0) {
            return self.stats();
        }
        let owned = self.executor.clone();
        let pool: &ShardedExecutor = match owned.as_deref() {
            Some(pool) => pool,
            None => ShardedExecutor::global(),
        };
        let tracing = self.tracer.clone().zip(ctx);
        let shards: Vec<ShardJob<'_>> = self
            .pipes
            .chunks_mut(streams)
            .zip(envs.chunks(streams))
            .zip(budgets.chunks(streams))
            .enumerate()
            .filter(|(_, (_, gbudgets))| gbudgets.iter().any(|&b| b > 0))
            .map(|(g, ((pipes, genvs), gbudgets))| {
                let lane = (g * streams) as u32;
                let chunks: Vec<u64> = pipes
                    .iter()
                    .zip(gbudgets)
                    .map(|(pipe, &b)| chunk_samples(b, pipe.num_states(), pipe.num_actions()))
                    .collect();
                let mut left: Vec<u64> = gbudgets.to_vec();
                let mut chunk_idx = 0u64;
                let tracing = tracing.clone();
                Box::new(move || {
                    let span = tracing.as_ref().map(|(tracer, root)| {
                        tracer.begin(root.trace, Some(root.span), "chunk", lane, chunk_idx)
                    });
                    let mut legs: Vec<(&mut AccelPipeline<V, S>, &E, u64)> =
                        Vec::with_capacity(pipes.len());
                    for (((pipe, env), l), &chunk) in pipes
                        .iter_mut()
                        .zip(genvs)
                        .zip(left.iter_mut())
                        .zip(&chunks)
                    {
                        let take = chunk.min(*l);
                        *l -= take;
                        legs.push((pipe, env, take));
                    }
                    crate::interleave::run_interleaved_group(&mut legs);
                    if let (Some((tracer, _)), Some(active)) = (&tracing, span) {
                        tracer.end(active);
                    }
                    chunk_idx += 1;
                    left.iter().any(|&l| l > 0)
                }) as ShardJob<'_>
            })
            .collect();
        pool.run_shards(shards);
        self.stats()
    }

    /// [`train_batch`](Self::train_batch) with crash-safe durability:
    /// every shard periodically checkpoints its full training state to
    /// `dir/shard{i}.ckpt` (atomic write-then-rename — a crash never
    /// leaves a torn file), and on entry any checkpoints already in
    /// `dir` are restored and their progress *subtracted* from the
    /// budget. Killing a run mid-batch and calling again with the same
    /// `dir` and total therefore resumes where the last checkpoint left
    /// off and converges to the same bit-exact tables as an
    /// uninterrupted run — per-shard sample streams are sequential and
    /// deterministic, so progress composes.
    ///
    /// `checkpoint_every` is a per-shard sample cadence (a checkpoint is
    /// written whenever a shard's retired-sample count crosses a
    /// multiple of it); every shard writes one final checkpoint when the
    /// batch completes regardless.
    pub fn train_batch_durable<E: Environment + Sync>(
        &mut self,
        envs: &[E],
        total_samples: u64,
        dir: &Path,
        checkpoint_every: u64,
    ) -> Result<BatchReport, CheckpointError>
    where
        S: Send,
    {
        assert_eq!(envs.len(), self.pipes.len(), "one environment per pipeline");
        assert!(checkpoint_every > 0, "checkpoint cadence must be nonzero");
        std::fs::create_dir_all(dir)?;
        // A previous run killed between atomic_write's create and rename
        // leaves a `*.tmp` staging orphan next to the (intact) real
        // checkpoints; sweep them before scanning so they neither
        // accumulate across crash loops nor get mistaken for state.
        checkpoint::clean_stale_tmp(dir)?;
        let root = self.begin_batch_root("train_batch_durable", total_samples);
        let ctx = root.as_ref().map(|(_, active)| active.context());
        let tracing = self.tracer.clone().zip(ctx);
        // Resume: pick up whatever a previous (possibly killed) run left.
        for (i, pipe) in self.pipes.iter_mut().enumerate() {
            let span = tracing.as_ref().map(|(tracer, root)| {
                tracer.begin(root.trace, Some(root.span), "checkpoint_restore", i as u32, 0)
            });
            let restored = pipe.restore_checkpoint(&shard_checkpoint_path(dir, i));
            if let (Some((tracer, _)), Some(active)) = (&tracing, span) {
                tracer.end(active);
            }
            match restored {
                Ok(()) => {}
                Err(CheckpointError::Io(e))
                    if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        let p = self.pipes.len() as u64;
        let (base, extra) = (total_samples / p, total_samples % p);
        let mut shards = Vec::with_capacity(self.pipes.len());
        let mut budgets = Vec::with_capacity(self.pipes.len());
        for (i, pipe) in self.pipes.iter().enumerate() {
            let target = base + u64::from((i as u64) < extra);
            // Checkpointed progress counts against the shard's target.
            let samples = target.saturating_sub(pipe.stats().samples);
            let layout = if pipe.fast_slab_bytes() <= CACHE_BLOCK_BYTES {
                FastLayout::ActionMajor
            } else {
                FastLayout::StateMajor
            };
            shards.push(ShardRun {
                pipeline: i,
                samples,
                chunk: chunk_samples(samples, pipe.num_states(), pipe.num_actions()),
                layout,
                streams: 1,
            });
            budgets.push(samples);
        }
        // Shards run on pool workers and cannot return errors; the first
        // checkpoint failure is parked here and re-raised after the join.
        let failed: Mutex<Option<CheckpointError>> = Mutex::new(None);
        let plan = &shards;
        let failed_ref = &failed;
        let save_tracer = self.tracer.clone();
        let stats = self.drive(envs, &budgets, ctx, |i, pipe, env, n, chunk_ctx| {
            let before = pipe.stats().samples;
            pipe.run_samples_fast_planned(env, n, plan[i].layout);
            let after = pipe.stats().samples;
            if before / checkpoint_every != after / checkpoint_every {
                // Nest the periodic save under the chunk that crossed
                // the cadence boundary; the ordinal is the cadence
                // multiple reached, so the span identity is a function
                // of training progress alone.
                let span = save_tracer.as_ref().zip(chunk_ctx).map(|(tracer, c)| {
                    tracer.begin(
                        c.trace,
                        Some(c.span),
                        "checkpoint_save",
                        i as u32,
                        after / checkpoint_every,
                    )
                });
                if let Err(e) = pipe.save_checkpoint(&shard_checkpoint_path(dir, i)) {
                    failed_ref.lock().unwrap().get_or_insert(e);
                }
                if let (Some(tracer), Some(active)) = (&save_tracer, span) {
                    tracer.end(active);
                }
            }
        });
        if let Some(e) = failed.into_inner().unwrap() {
            return Err(e);
        }
        // Seal the batch: the final state of every shard is durable.
        for (i, pipe) in self.pipes.iter().enumerate() {
            let span = tracing.as_ref().map(|(tracer, root)| {
                tracer.begin(
                    root.trace,
                    Some(root.span),
                    "checkpoint_save",
                    i as u32,
                    pipe.stats().samples / checkpoint_every + 1,
                )
            });
            let sealed = pipe.save_checkpoint(&shard_checkpoint_path(dir, i));
            if let (Some((tracer, _)), Some(active)) = (&tracing, span) {
                tracer.end(active);
            }
            sealed?;
        }
        // Health-instrumented batches leave a flight recording next to
        // the sealed checkpoints: one probe snapshot per shard plus the
        // seal marker — the post-mortem baseline a later crash dump is
        // diffed against.
        let snapshots: Vec<_> = self
            .pipes
            .iter()
            .filter_map(|p| p.sink().health())
            .map(|probe| probe.snapshot())
            .collect();
        if !snapshots.is_empty() {
            let seal_cycle = snapshots.iter().map(|s| s.cycle).max().unwrap_or(0);
            let mut recorder =
                qtaccel_telemetry::FlightRecorder::new(snapshots.len() + 1);
            for snap in snapshots {
                recorder.push_snapshot(snap);
            }
            recorder.push_marker(seal_cycle, "batch_seal");
            recorder.dump_to(dir.join("flight.jsonl"))?;
        }
        if let Some((tracer, active)) = root {
            tracer.end(active);
        }
        Ok(BatchReport {
            stats,
            workers: self.workers(),
            shards,
            dropped_iterations: self.dropped_iterations(),
            dropped_spans: self.dropped_spans(),
            trace: ctx,
        })
    }

    /// Lease-granular durable training (the cluster worker's engine,
    /// DESIGN.md §2.16): drive **one** shard to `target_samples` total
    /// retired samples on the calling thread, checkpointing to
    /// `dir/shard{i}.ckpt` every `checkpoint_every` samples under the
    /// caller's fencing `epoch`.
    ///
    /// On entry any existing shard checkpoint is restored (stale `*.tmp`
    /// staging orphans are swept first) and its progress counts against
    /// the target — a worker picking up a dead peer's lease resumes
    /// where the last durable save left off and finishes bit-identical
    /// to an uninterrupted run. If the checkpoint on disk was sealed
    /// under a **newer** epoch than `held`, the caller is a superseded
    /// zombie and is refused with [`LeaseError::FencedEpoch`] before it
    /// can train or write anything.
    ///
    /// `progress` is called after every chunk with the shard's total
    /// retired-sample count (a natural heartbeat cadence: chunks are the
    /// deterministic [`chunk_samples`] size). Returning `false`
    /// abandons the lease cooperatively — the last periodic checkpoint
    /// stays on disk, no seal is written, and the call returns the
    /// progress reached so far. Returns the shard's final retired-sample
    /// count (`== target_samples` when the lease sealed).
    #[allow(clippy::too_many_arguments)]
    pub fn train_shard_durable<E: Environment>(
        &mut self,
        shard: usize,
        env: &E,
        target_samples: u64,
        epoch: u64,
        dir: &Path,
        checkpoint_every: u64,
        mut progress: impl FnMut(u64) -> bool,
    ) -> Result<u64, LeaseError> {
        assert!(checkpoint_every > 0, "checkpoint cadence must be nonzero");
        std::fs::create_dir_all(dir).map_err(CheckpointError::from)?;
        let path = shard_checkpoint_path(dir, shard);
        let pipe = &mut self.pipes[shard];
        match pipe.restore_checkpoint(&path) {
            Ok(()) => {}
            Err(CheckpointError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        // Lease fencing: a checkpoint stamped by a newer assignment means
        // this lease was reassigned out from under the caller.
        if pipe.lease_epoch() > epoch {
            return Err(LeaseError::FencedEpoch {
                held: epoch,
                found: pipe.lease_epoch(),
            });
        }
        pipe.set_lease_epoch(epoch);
        // Crash hygiene, lease-scoped: sweep only *this shard's* staging
        // file, and only after the fence check. Unlike the whole-dir
        // sweep in `train_batch_durable` (a single-process entry point),
        // this runs while sibling workers may be mid-`atomic_write` in
        // the same directory — deleting *their* staging files would fail
        // their renames. The lease gives us unique live ownership of
        // this shard, so the only `shard<N>.ckpt.tmp` we can meet is a
        // dead predecessor's orphan.
        {
            let mut tmp = path.as_os_str().to_os_string();
            tmp.push(".tmp");
            match std::fs::remove_file(std::path::Path::new(&tmp)) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(CheckpointError::from(e).into()),
            }
        }
        let layout = if pipe.fast_slab_bytes() <= CACHE_BLOCK_BYTES {
            FastLayout::ActionMajor
        } else {
            FastLayout::StateMajor
        };
        // Lease chunks are the deterministic executor chunk, but never
        // coarser than the checkpoint cadence — otherwise a small lease
        // would run whole between durable saves and the progress
        // callback (the caller's heartbeat) would never fire mid-lease.
        let chunk = chunk_samples(
            target_samples.saturating_sub(pipe.stats().samples),
            pipe.num_states(),
            pipe.num_actions(),
        )
        .min(checkpoint_every)
        .max(1);
        while pipe.stats().samples < target_samples {
            let before = pipe.stats().samples;
            let take = chunk.min(target_samples - before);
            pipe.run_samples_fast_planned(env, take, layout);
            let after = pipe.stats().samples;
            if before / checkpoint_every != after / checkpoint_every {
                pipe.save_checkpoint(&path)?;
            }
            if !progress(after) {
                return Ok(after);
            }
        }
        // Seal: the lease's final state is durable under this epoch.
        pipe.save_checkpoint(&path)?;
        Ok(pipe.stats().samples)
    }

    /// Cumulative iterations dropped by the attached sinks, summed
    /// across banks (see [`BatchReport::dropped_iterations`]).
    pub fn dropped_iterations(&self) -> u64 {
        self.pipes.iter().map(|p| p.sink().dropped_iterations()).sum()
    }

    /// Merged counters: wall-clock is the slowest pipeline, samples sum.
    pub fn stats(&self) -> CycleStats {
        let mut merged = CycleStats::default();
        for p in &self.pipes {
            merged.merge(&p.stats());
        }
        merged.fill_bubbles = FILL;
        merged
    }

    /// Aggregate perf-counter snapshot over every bank: each pipeline's
    /// bank accumulates lock-free on its own shard during training, and
    /// this sums them after the join (all-zero with [`NullSink`]s).
    pub fn merged_counters(&self) -> CounterBank {
        let mut merged = CounterBank::new();
        for p in &self.pipes {
            merged.merge(p.counters());
        }
        merged
    }

    /// Aggregate health-probe snapshot across the shards: histograms
    /// merge, counters sum, coverage bitsets OR (shards share one state
    /// space, so the union is the batch's true coverage). `None` when no
    /// attached sink carries a probe.
    pub fn merged_health(&self) -> Option<qtaccel_telemetry::HealthProbe> {
        let mut probes = self.pipes.iter().filter_map(|p| p.sink().health());
        let mut merged = probes.next()?.clone();
        for probe in probes {
            merged.merge(probe);
        }
        Some(merged)
    }

    /// Restore pipeline `i` from a checkpoint file — the read side of
    /// the durable-batch/lease protocol, exposed so a supervisor can
    /// reload every shard's sealed image after a cluster run and compare
    /// it against the single-process reference.
    pub fn restore_shard_checkpoint(
        &mut self,
        i: usize,
        path: &Path,
    ) -> Result<(), CheckpointError> {
        self.pipes[i].restore_checkpoint(path)
    }

    /// Access pipeline `i`'s learned Q-table.
    pub fn q_table(&self, i: usize) -> QTable<V> {
        self.pipes[i].q_table()
    }

    /// Access pipeline `i`'s Qmax array (architectural view).
    pub fn qmax_table(&self, i: usize) -> QmaxTable<V> {
        self.pipes[i].qmax_table()
    }

    /// Greedy policy of pipeline `i`.
    pub fn greedy_policy(&self, i: usize) -> Vec<Action> {
        self.pipes[i].greedy_policy()
    }

    /// Summed resources: every pipeline brings its own tables and
    /// datapath.
    pub fn resources(&self) -> qtaccel_hdl::resource::ResourceReport {
        let mut total = qtaccel_hdl::resource::ResourceReport::default();
        for p in &self.pipes {
            let kind = if p.config().trainer.forward_next_action {
                EngineKind::Sarsa
            } else {
                EngineKind::QLearning
            };
            total = total.combine(resource_report(
                p.num_states(),
                p.num_actions(),
                V::storage_bits(),
                kind,
            ));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_envs::{ActionSet, GridWorld, PartitionedGrid};
    use qtaccel_fixed::Q8_8;

    fn grid() -> GridWorld {
        GridWorld::builder(8, 8).goal(7, 7).build()
    }

    #[test]
    fn dual_pipeline_doubles_throughput() {
        let g = grid();
        let mut d = DualPipelineShared::<Q8_8>::new(&g, AccelConfig::default());
        let stats = d.train_cycles(&g, 10_000);
        assert_eq!(stats.samples, 20_000);
        assert_eq!(stats.cycles, 10_003);
        assert!(stats.samples_per_cycle() > 1.99);
    }

    #[test]
    fn dual_pipeline_collisions_are_counted_and_rare() {
        let g = grid();
        let mut d = DualPipelineShared::<Q8_8>::new(&g, AccelConfig::default());
        d.train_cycles(&g, 20_000);
        let rate = d.q_collisions() as f64 / 20_000.0;
        // Random agents on a 64-cell world with 4 actions collide on the
        // same (s, a) pair rarely (expected ~1/256 per cycle).
        assert!(rate < 0.05, "collision rate {rate}");
        assert!(
            d.q_collisions() > 0,
            "20k cycles on 256 pairs should collide at least once"
        );
    }

    #[test]
    fn dual_pipeline_still_learns() {
        let g = grid();
        let mut d = DualPipelineShared::<Q8_8>::new(&g, AccelConfig::default());
        d.train_cycles(&g, 200_000);
        let opt =
            qtaccel_core::eval::step_optimality(&g, &d.greedy_policy(), &g.shortest_distances());
        assert!(opt > 0.9, "step-optimality {opt}");
    }

    #[test]
    fn dual_pipeline_agents_explore_differently() {
        let g = grid();
        let mut d = DualPipelineShared::<Q8_8>::new(&g, AccelConfig::default());
        let [t0, t1] = d.step_cycle(&g);
        // Different seed banks: the two agents almost surely start in
        // different states.
        assert!(
            t0.s != t1.s || t0.a != t1.a,
            "agents should not shadow each other"
        );
    }

    #[test]
    fn dual_resources_share_bram() {
        let g = grid();
        let d = DualPipelineShared::<Q8_8>::new(&g, AccelConfig::default());
        let single = resource_report(
            g.num_states(),
            g.num_actions(),
            16,
            EngineKind::QLearning,
        );
        let r = d.resources();
        assert_eq!(r.report.bram36, single.bram36, "tables are shared");
        assert_eq!(r.report.dsp, 2 * single.dsp, "datapaths are duplicated");
        assert!((r.throughput_msps - 2.0 * 189.0).abs() < 1e-9);
    }

    #[test]
    fn dual_counter_snapshot_matches_bookkeeping() {
        let g = grid();
        let mut d = DualPipelineShared::<Q8_8>::new(&g, AccelConfig::default());
        let stats = d.train_cycles(&g, 20_000);
        let bank = d.counters();
        assert_eq!(bank.get(CounterId::SamplesRetired), stats.samples);
        assert_eq!(bank.get(CounterId::QWrites), stats.samples);
        assert_eq!(
            bank.get(CounterId::FwdQHit) + bank.get(CounterId::FwdQmaxHit),
            stats.forwards,
            "per-memory forward split must sum to the merged stat"
        );
        assert_eq!(
            bank.get(CounterId::PortConflicts),
            d.q_collisions() + d.qmax_collisions()
        );
        assert_eq!(bank.get(CounterId::FillCycles), stats.fill_bubbles);
        assert!(bank.get(CounterId::QmaxWrites) > 0, "greedy improves Qmax");
        assert_eq!(bank.get(CounterId::QReads), 0, "per-port reads not modeled");
    }

    #[test]
    fn independent_pipelines_carry_per_bank_counters() {
        let mut rng = qtaccel_hdl::lfsr::Lfsr32::new(77);
        let part = PartitionedGrid::new(16, 16, 2, 2, 10, ActionSet::Four, &mut rng);
        let mut ind = IndependentPipelines::<Q8_8, _>::with_sinks(
            part.partitions(),
            AccelConfig::default(),
            vec![qtaccel_telemetry::CountersOnly; 4],
        );
        ind.train_samples_fast(part.partitions(), 5_000);
        for i in 0..4 {
            let bank = ind.counters(i);
            assert_eq!(bank.get(CounterId::SamplesRetired), 5_000, "bank {i}");
            assert_eq!(bank.get(CounterId::QWrites), 5_000, "bank {i}");
        }
    }

    #[test]
    #[should_panic(expected = "forwarding design only")]
    fn dual_requires_forwarding() {
        let g = grid();
        DualPipelineShared::<Q8_8>::new(
            &g,
            AccelConfig::default().with_hazard(HazardMode::StallOnly),
        );
    }

    #[test]
    fn independent_pipelines_scale_linearly() {
        let mut rng = qtaccel_hdl::lfsr::Lfsr32::new(77);
        let part = PartitionedGrid::new(16, 16, 2, 2, 10, ActionSet::Four, &mut rng);
        let mut ind = IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
        assert_eq!(ind.len(), 4);
        let stats = ind.train_samples(part.partitions(), 10_000);
        assert_eq!(stats.samples, 40_000);
        assert_eq!(stats.cycles, 10_003, "lockstep wall-clock");
        assert!(stats.samples_per_cycle() > 3.9);
    }

    #[test]
    fn independent_pipelines_learn_their_own_worlds() {
        let mut rng = qtaccel_hdl::lfsr::Lfsr32::new(3);
        let part = PartitionedGrid::new(16, 8, 2, 1, 0, ActionSet::Four, &mut rng);
        let mut ind = IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
        ind.train_samples(part.partitions(), 200_000);
        for i in 0..2 {
            let env = part.partition(i);
            let opt = qtaccel_core::eval::step_optimality(
                env,
                &ind.greedy_policy(i),
                &env.shortest_distances(),
            );
            assert!(opt > 0.9, "partition {i} step-optimality {opt}");
        }
    }

    #[test]
    fn independent_resources_sum() {
        let mut rng = qtaccel_hdl::lfsr::Lfsr32::new(9);
        let part = PartitionedGrid::new(16, 16, 2, 2, 0, ActionSet::Four, &mut rng);
        let ind = IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
        let r = ind.resources();
        assert_eq!(r.dsp, 16, "4 pipelines x 4 DSPs");
        assert!(r.bram36 >= 4 * 3, "each bank has Q+R+Qmax");
    }

    #[test]
    #[should_panic(expected = "at least one sub-environment")]
    fn independent_rejects_empty() {
        IndependentPipelines::<Q8_8>::new(&[] as &[GridWorld], AccelConfig::default());
    }

    #[test]
    fn durable_batch_resumes_bit_exactly() {
        let mut rng = qtaccel_hdl::lfsr::Lfsr32::new(21);
        let part = PartitionedGrid::new(16, 16, 2, 2, 10, ActionSet::Four, &mut rng);
        let dir = std::env::temp_dir().join(format!(
            "qtaccel-durable-unit-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Straight-through reference.
        let mut full =
            IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
        full.train_batch(part.partitions(), 40_000);

        // Two durable legs over the same directory: 24k, then top up to
        // the full 40k on a *fresh* instance (simulated crash between).
        let mut leg1 =
            IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
        let r1 = leg1
            .train_batch_durable(part.partitions(), 24_000, &dir, 4_096)
            .expect("leg 1");
        assert_eq!(r1.stats.samples, 24_000);
        let mut leg2 =
            IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
        let r2 = leg2
            .train_batch_durable(part.partitions(), 40_000, &dir, 4_096)
            .expect("leg 2");
        assert_eq!(r2.stats.samples, 40_000, "restored progress counts");
        assert_eq!(
            r2.shards.iter().map(|s| s.samples).sum::<u64>(),
            16_000,
            "only the remainder is re-run"
        );
        for i in 0..4 {
            assert_eq!(leg2.q_table(i), full.q_table(i), "bank {i} q");
            assert_eq!(leg2.qmax_table(i), full.qmax_table(i), "bank {i} qmax");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
