//! Structural resource model for the accelerator (Figs. 3–6).
//!
//! The paper's resource story is structural, so the model is too:
//!
//! * **DSP**: exactly four multipliers — `α·γ` (stage 1), `α·R`,
//!   `(1−α)·Q(Sₜ,Aₜ)`, `(α·γ)·Q(Sₜ₊₁,Aₜ₊₁)` (stage 3) — each costing
//!   [`qtaccel_hdl::dsp::dsp_slices_for_mul`] slices at the datapath
//!   width. Constant in |S| and |A|: the flat DSP series of Fig. 3.
//! * **BRAM**: two `|S|·|A|` tables (Q, R) at the value width plus the
//!   `|S|` Qmax array at value width + `⌈log₂|A|⌉` action bits — the
//!   linear series of Fig. 4.
//! * **FF/LUT**: a fixed pipeline skeleton plus per-address-bit register
//!   and mux costs; SARSA adds its ε-greedy LFSR bank and comparator
//!   (§VI-C2: "A basic random number generator can be implemented as a
//!   linear feedback shift register … our logic utilization (register)
//!   has increased accordingly"). Coefficients are estimates calibrated
//!   to the paper's "< 0.1 % at 2 M pairs" statement; EXPERIMENTS.md
//!   records them against each figure.

use crate::config::AccelConfig;
use qtaccel_hdl::bram::blocks_for;
use qtaccel_hdl::dsp::dsp_slices_for_mul;
use qtaccel_hdl::resource::{ResourceReport, Utilization};

/// Which engine the resource estimate is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Random behaviour / greedy update via Qmax.
    QLearning,
    /// ε-greedy on-policy with action forwarding.
    Sarsa,
    /// Single-state bandit engine with LFSR reward sampling.
    Bandit,
}

/// Number of bits to address one of `n` items.
pub fn addr_bits(n: usize) -> u32 {
    if n <= 1 {
        1
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Structural resource report for one pipeline instance storing
/// full-width values (`stored == working`); see
/// [`resource_report_stored`] for quantized tables.
pub fn resource_report(
    num_states: usize,
    num_actions: usize,
    value_bits: u32,
    kind: EngineKind,
) -> ResourceReport {
    resource_report_stored(num_states, num_actions, value_bits, value_bits, kind)
}

/// Structural resource report for a pipeline whose Q and reward tables
/// hold `stored_bits`-wide quantized codes while the datapath computes
/// at `value_bits` (DESIGN.md §2.14). With `stored_bits == value_bits`
/// this is exactly [`resource_report`].
///
/// Where the narrowing shows up:
///
/// * **BRAM** — all three tables store codes: Q and R at `stored_bits`,
///   the Qmax array at `stored_bits + ⌈log₂|A|⌉` (its value field is on
///   the same grid, and the comparator is monotone over codes). This is
///   the tentpole saving — a 4-bit table costs a quarter of the 16-bit
///   BRAM at the same |S|·|A|.
/// * **DSP** — the stage-1 `α·γ` coefficient multiply stays at the
///   working width, but the three stage-3 multiplies each see one
///   stored-width operand (dequantize is a wire shift, so the products
///   narrow with the table).
/// * **FF/LUT** — the quantizer adds its dither LFSR (32-bit register +
///   leap fabric), the saturating rounder, and the read-side
///   sign-extend/shift muxes; a small constant next to the skeleton.
pub fn resource_report_stored(
    num_states: usize,
    num_actions: usize,
    value_bits: u32,
    stored_bits: u32,
    kind: EngineKind,
) -> ResourceReport {
    assert!(
        stored_bits <= value_bits,
        "stored width {stored_bits} must not exceed the working width {value_bits}"
    );
    let s = num_states as u64;
    let sa = (num_states * num_actions) as u64;
    let abits = addr_bits(num_actions);
    let sbits = addr_bits(num_states);

    // The four datapath multipliers: one coefficient multiply at the
    // working width, three operand multiplies narrowed with the table.
    let dsp = dsp_slices_for_mul(value_bits) + 3 * dsp_slices_for_mul(stored_bits);

    // Q table + reward table + Qmax array, all at the stored width. The
    // bandit engine replaces the reward table with LFSR samplers (§VII-B)
    // and keeps a single-state Q/probability row, so its table costs
    // collapse.
    let bram36 = match kind {
        EngineKind::Bandit => blocks_for(sa, stored_bits) + blocks_for(s, stored_bits + abits),
        _ => 2 * blocks_for(sa, stored_bits) + blocks_for(s, stored_bits + abits),
    };

    // Pipeline skeleton: 4 stages of state/action/value registers plus
    // control. Estimated 600 FF fixed + ~8 value words + address regs in
    // every stage; SARSA adds its LFSR bank (3 x 32 bits of register plus
    // leap-forward XOR fabric) and the ε comparator.
    let base_ff = 600 + 8 * value_bits as u64 + 4 * (sbits + abits) as u64;
    let base_lut = 1200 + 12 * value_bits as u64 + 10 * (sbits + abits) as u64;
    let (extra_ff, extra_lut) = match kind {
        EngineKind::QLearning => (0, 0),
        EngineKind::Sarsa => (96 + 500, 800),
        EngineKind::Bandit => (12 * 32 + 400, 1200), // Irwin-Hall LFSR bank
    };
    // Quantizer unit (only when the table actually narrows): dither
    // LFSR register + leap fabric, the saturating rounder's adder and
    // rail clamps, and the read-side sign-extend shifters.
    let (quant_ff, quant_lut) = if stored_bits < value_bits {
        (
            32 + 2 * stored_bits as u64,
            150 + 4 * value_bits as u64,
        )
    } else {
        (0, 0)
    };

    ResourceReport {
        dsp,
        bram36,
        uram: 0,
        lut: base_lut + extra_lut + quant_lut,
        ff: base_ff + extra_ff + quant_ff,
    }
}

/// Everything the experiment harness reports per design point.
#[derive(Debug, Clone, Copy)]
pub struct AccelResources {
    /// Absolute resource counts.
    pub report: ResourceReport,
    /// Utilization against the configured device.
    pub utilization: Utilization,
    /// Modeled clock (MHz).
    pub fmax_mhz: f64,
    /// Modeled throughput (million samples/s) at the given issue rate.
    pub throughput_msps: f64,
    /// Modeled power (mW).
    pub power_mw: f64,
}

/// Fold the telemetry perf-counter bank's fabric cost into a resource
/// bundle: `CounterId::COUNT` 64-bit counters behind an address decoder
/// (see [`qtaccel_hdl::resource::perf_regfile_report`]). The engines
/// apply this only when a counter-bearing sink is attached — disabled
/// telemetry costs nothing in the model, exactly as unelaborated RTL
/// costs nothing on the device (the policy DESIGN.md §2.6 documents).
/// Clock is unaffected (the bank sits off the critical path); the
/// utilization and power figures are recomputed over the combined report.
pub fn with_perf_regfile(mut res: AccelResources, config: &AccelConfig) -> AccelResources {
    let bank = qtaccel_hdl::resource::perf_regfile_report(
        qtaccel_telemetry::CounterId::COUNT as u64,
        64,
    );
    res.report = res.report.combine(bank);
    res.utilization = res.report.utilization(&config.device);
    res.power_mw = config.power.power_mw(&res.report, res.fmax_mhz);
    res
}

/// Fold the stall-run-length histogram monitor's fabric cost into a
/// resource bundle: `Histogram::BUCKETS` log2 buckets of 64-bit counters
/// behind a leading-zero-count bucket select (see
/// [`qtaccel_hdl::resource::histogram_regfile_report`]). The engines
/// apply this only when an *event-emitting* sink is attached — the
/// histogram is fed from the stall-interval event stream, so it only
/// exists in hardware when that stream does. Like the counter bank it
/// sits off the critical path; utilization and power are recomputed.
pub fn with_histogram_regfile(mut res: AccelResources, config: &AccelConfig) -> AccelResources {
    let monitor = qtaccel_hdl::resource::histogram_regfile_report(
        qtaccel_telemetry::Histogram::BUCKETS as u64,
        64,
    );
    res.report = res.report.combine(monitor);
    res.utilization = res.report.utilization(&config.device);
    res.power_mw = config.power.power_mw(&res.report, res.fmax_mhz);
    res
}

/// Fold the training-health probe block's fabric cost into a resource
/// bundle: the TD-error datapath + log2 monitor, rail-proximity
/// comparators, churn/stride/scalar counters and the one-bit-per-state
/// coverage BRAM (see [`qtaccel_hdl::resource::health_probe_report`]).
/// The engines apply this only when a health-probing sink is attached —
/// DESIGN.md §2.6's disabled-costs-nothing policy extends to the health
/// layer (§2.13). The probe taps the stage-4 write port passively and
/// sits off the critical path, so modeled fmax is unaffected;
/// utilization and power are recomputed over the combined report.
pub fn with_health_probes(
    mut res: AccelResources,
    config: &AccelConfig,
    num_states: usize,
    value_bits: u32,
) -> AccelResources {
    let probe = qtaccel_hdl::resource::health_probe_report(
        num_states as u64,
        value_bits as u64,
        64,
    );
    res.report = res.report.combine(probe);
    res.utilization = res.report.utilization(&config.device);
    res.power_mw = config.power.power_mw(&res.report, res.fmax_mhz);
    res
}

/// Fold SECDED protection of the Q and Qmax memories into a resource
/// bundle: both BRAMs store the widened codeword (Hamming parity plus
/// the overall-parity bit over the value word — value + action for the
/// Qmax entry), and each protected memory carries an encoder/decoder
/// pair (see [`qtaccel_hdl::resource::secded_report`]). The reward
/// table is a ROM reloaded from configuration and stays unprotected.
/// The engines apply this only when the attached fault config enables
/// ECC — unprotected builds cost nothing extra, like disabled
/// telemetry. The codecs sit in the BRAM read/write paths but pipeline
/// cleanly, so modeled fmax is unaffected; utilization and power are
/// recomputed over the combined report.
pub fn with_secded(
    mut res: AccelResources,
    config: &AccelConfig,
    num_states: usize,
    num_actions: usize,
    value_bits: u32,
) -> AccelResources {
    use qtaccel_hdl::fault::Secded;
    let s = num_states as u64;
    let sa = (num_states * num_actions) as u64;
    let abits = addr_bits(num_actions);
    // Storage: the protected words widen from the data width to the
    // full codeword width.
    let q_code = Secded::new(value_bits).code_bits();
    let qmax_code = Secded::new(value_bits + abits).code_bits();
    res.report.bram36 += (blocks_for(sa, q_code) - blocks_for(sa, value_bits))
        + (blocks_for(s, qmax_code) - blocks_for(s, value_bits + abits));
    // Logic: one encode/decode codec pair per protected memory.
    let codecs = qtaccel_hdl::resource::secded_report(value_bits)
        .combine(qtaccel_hdl::resource::secded_report(value_bits + abits));
    res.report = res.report.combine(codecs);
    res.utilization = res.report.utilization(&config.device);
    res.power_mw = config.power.power_mw(&res.report, res.fmax_mhz);
    res
}

/// Analyze one design point under `config`.
///
/// `samples_per_cycle` is the pipeline's measured issue rate (1.0 with
/// forwarding; less when stalling; 2.0 for the dual pipeline).
pub fn analyze(
    num_states: usize,
    num_actions: usize,
    value_bits: u32,
    kind: EngineKind,
    config: &AccelConfig,
    samples_per_cycle: f64,
) -> AccelResources {
    analyze_stored(
        num_states,
        num_actions,
        value_bits,
        value_bits,
        kind,
        config,
        samples_per_cycle,
    )
}

/// [`analyze`] for a quantized-table design point: resources come from
/// [`resource_report_stored`], and the fmax/throughput/power models run
/// over that narrowed report (less BRAM → less BRAM power; the clock
/// model depends only on |S| and the device, so fmax is unchanged —
/// which is why the MS/s/W win in the formats experiment is a power
/// win, not a clock win).
#[allow(clippy::too_many_arguments)]
pub fn analyze_stored(
    num_states: usize,
    num_actions: usize,
    value_bits: u32,
    stored_bits: u32,
    kind: EngineKind,
    config: &AccelConfig,
    samples_per_cycle: f64,
) -> AccelResources {
    let report = resource_report_stored(num_states, num_actions, value_bits, stored_bits, kind);
    let utilization = report.utilization(&config.device);
    let fmax_mhz = config.fmax.fmax_mhz(&config.device, num_states as u64);
    AccelResources {
        report,
        utilization,
        fmax_mhz,
        throughput_msps: fmax_mhz * samples_per_cycle,
        power_mw: config.power.power_mw(&report, fmax_mhz),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_hdl::resource::Device;

    #[test]
    fn dsp_count_is_constant_in_state_space() {
        // Fig. 3's headline: 4 DSPs regardless of |S|.
        for s in [64usize, 1024, 262_144] {
            let r = resource_report(s, 8, 16, EngineKind::QLearning);
            assert_eq!(r.dsp, 4, "|S|={s}");
        }
    }

    #[test]
    fn bram_grows_linearly() {
        let small = resource_report(4096, 8, 16, EngineKind::QLearning);
        let big = resource_report(262_144, 8, 16, EngineKind::QLearning);
        assert!(big.bram36 > 32 * small.bram36, "linear-ish growth");
        // Largest paper case fits the xcvu13p at high utilization.
        let u = big.utilization(&Device::XCVU13P);
        assert!(
            u.bram_pct > 70.0 && u.bram_pct < 90.0,
            "paper reports 78.12%: model {}",
            u.bram_pct
        );
        assert!(big.fits(&Device::XCVU13P));
    }

    #[test]
    fn register_utilization_stays_tiny() {
        // "The overall logic/register utilization remains less than 0.1%
        // for state-action pair size of 2 million."
        let r = resource_report(262_144, 8, 16, EngineKind::QLearning);
        let u = r.utilization(&Device::XCVU13P);
        assert!(u.ff_pct < 0.1, "{}", u.ff_pct);
        assert!(u.lut_pct < 0.2, "{}", u.lut_pct);
    }

    #[test]
    fn sarsa_costs_more_registers_same_dsp_bram() {
        let ql = resource_report(1024, 8, 16, EngineKind::QLearning);
        let sa = resource_report(1024, 8, 16, EngineKind::Sarsa);
        assert_eq!(ql.dsp, sa.dsp, "RNG adds no DSPs (§VI-C2)");
        assert_eq!(ql.bram36, sa.bram36, "RNG adds no BRAM");
        assert!(sa.ff > ql.ff, "SARSA's LFSR bank costs registers");
        assert!(sa.lut > ql.lut);
    }

    #[test]
    fn wider_datapath_multiplies_dsp_cost() {
        let w16 = resource_report(1024, 8, 16, EngineKind::QLearning);
        let w32 = resource_report(1024, 8, 32, EngineKind::QLearning);
        assert_eq!(w16.dsp, 4);
        assert_eq!(w32.dsp, 16, "32-bit multipliers tile 4 slices each");
        assert!(w32.bram36 > w16.bram36);
    }

    #[test]
    fn analyze_bundles_models() {
        let cfg = crate::config::AccelConfig::default();
        let a = analyze(262_144, 8, 16, EngineKind::QLearning, &cfg, 1.0);
        assert!((153.0..159.0).contains(&a.throughput_msps), "{}", a.throughput_msps);
        assert!(a.power_mw > 0.0);
        let small = analyze(64, 8, 16, EngineKind::QLearning, &cfg, 1.0);
        assert_eq!(small.throughput_msps, 189.0);
        assert!(small.power_mw < a.power_mw, "more BRAM, more power");
    }

    #[test]
    fn perf_regfile_overhead_is_marginal_and_opt_in() {
        let cfg = crate::config::AccelConfig::default();
        let base = analyze(262_144, 8, 16, EngineKind::QLearning, &cfg, 1.0);
        let inst = with_perf_regfile(base, &cfg);
        // 13 x 64-bit counters of flip-flops, nothing else structural.
        assert_eq!(inst.report.ff - base.report.ff, 13 * 64);
        assert_eq!(inst.report.dsp, base.report.dsp);
        assert_eq!(inst.report.bram36, base.report.bram36);
        assert_eq!(inst.fmax_mhz, base.fmax_mhz, "bank is off the critical path");
        assert!(inst.power_mw > base.power_mw, "more fabric, more power");
        // Even instrumented, register utilization honours the paper's
        // "< 0.1 %" claim at 2 M pairs.
        assert!(inst.utilization.ff_pct < 0.1, "{}", inst.utilization.ff_pct);
    }

    #[test]
    fn histogram_regfile_overhead_is_marginal_and_opt_in() {
        let cfg = crate::config::AccelConfig::default();
        let base = analyze(262_144, 8, 16, EngineKind::QLearning, &cfg, 1.0);
        let inst = with_histogram_regfile(base, &cfg);
        // 65 bucket counters plus the running-sum register, all 64-bit.
        assert_eq!(inst.report.ff - base.report.ff, 65 * 64 + 64);
        assert_eq!(inst.report.dsp, base.report.dsp);
        assert_eq!(inst.report.bram36, base.report.bram36);
        assert_eq!(inst.fmax_mhz, base.fmax_mhz, "monitor is off the critical path");
        // The monitor's 65 wide bucket counters dominate the design's
        // own tiny register count, so the paper's "< 0.1 %" claim is
        // only for uninstrumented builds — but even counter bank plus
        // histogram monitor together stay well under 1 % of the device.
        let both = with_perf_regfile(inst, &cfg);
        assert!(both.utilization.ff_pct < 0.5, "{}", both.utilization.ff_pct);
    }

    #[test]
    fn health_probe_overhead_is_priced_and_opt_in() {
        let cfg = crate::config::AccelConfig::default();
        let base = analyze(262_144, 8, 16, EngineKind::QLearning, &cfg, 1.0);
        let inst = with_health_probes(base, &cfg, 262_144, 16);
        // FF: the probe's own model — stride + popcount registers plus
        // the histogram monitor and the 5-counter scalar file.
        let expected_ff = 64 + 64 + (65 * 64 + 64) + 5 * 64;
        assert_eq!(inst.report.ff - base.report.ff, expected_ff as u64);
        // Coverage bitset: 262 144 one-bit entries = eight 32K×1 blocks.
        assert_eq!(inst.report.bram36 - base.report.bram36, 8);
        assert_eq!(inst.report.dsp, base.report.dsp, "no multipliers in a probe");
        assert_eq!(inst.fmax_mhz, base.fmax_mhz, "probe taps the write port passively");
        assert!(inst.power_mw > base.power_mw, "more fabric, more power");
        // Probe block stays debug-sized even at 2 M pairs.
        assert!(inst.utilization.ff_pct < 0.5, "{}", inst.utilization.ff_pct);
    }

    #[test]
    fn secded_overhead_is_priced_and_opt_in() {
        let cfg = crate::config::AccelConfig::default();
        let base = analyze(262_144, 8, 16, EngineKind::QLearning, &cfg, 1.0);
        let ecc = with_secded(base, &cfg, 262_144, 8, 16);
        // Q words widen 16 → 22 bits, Qmax words 19 → 25: real blocks.
        assert!(
            ecc.report.bram36 > base.report.bram36,
            "codeword widening must cost BRAM: {} vs {}",
            ecc.report.bram36,
            base.report.bram36
        );
        assert!(ecc.report.lut > base.report.lut, "parity trees cost LUTs");
        assert_eq!(ecc.report.dsp, base.report.dsp, "no multipliers in a codec");
        assert_eq!(ecc.fmax_mhz, base.fmax_mhz, "codecs pipeline cleanly");
        assert!(ecc.power_mw > base.power_mw, "more fabric, more power");
    }

    /// The satellite-4 headline: stored-width narrowing against the
    /// 16-bit baseline at the paper's largest grid (|S|·|A| = 2 M).
    #[test]
    fn stored_width_narrows_bram_and_prices_the_quantizer() {
        let w16 = resource_report(262_144, 8, 16, EngineKind::QLearning);
        let q8 = resource_report_stored(262_144, 8, 16, 8, EngineKind::QLearning);
        let q6 = resource_report_stored(262_144, 8, 16, 6, EngineKind::QLearning);
        let q4 = resource_report_stored(262_144, 8, 16, 4, EngineKind::QLearning);
        // BRAM: 16-bit entries hit the 2K×18 aspect, 8-bit the 4K×9,
        // 4-bit the 8K×4 — each narrowing step halves the table blocks.
        assert!(q8.bram36 < w16.bram36, "{} vs {}", q8.bram36, w16.bram36);
        assert!(q6.bram36 <= q8.bram36, "{} vs {}", q6.bram36, q8.bram36);
        assert!(q4.bram36 < q6.bram36, "{} vs {}", q4.bram36, q6.bram36);
        assert!(
            w16.bram36 >= 2 * q8.bram36 - 2,
            "8-bit storage should roughly halve the BRAM: {} vs {}",
            w16.bram36,
            q8.bram36
        );
        // DSP: ≤18-bit multiplies tile one slice each, so the count
        // stays at the paper's flat 4 — the win is memory, not DSPs.
        assert_eq!(q8.dsp, 4);
        assert_eq!(q4.dsp, 4);
        // The quantizer unit (dither LFSR + rounder) costs a little
        // fabric; full-width storage pays none of it.
        assert!(q8.ff > w16.ff);
        assert!(q8.lut > w16.lut);
        // stored == working is exactly the unquantized report.
        assert_eq!(
            resource_report_stored(1024, 8, 16, 16, EngineKind::QLearning),
            resource_report(1024, 8, 16, EngineKind::QLearning)
        );
    }

    /// SECDED over narrowed words: the check-bit *ratio* grows as the
    /// payload shrinks (4 data bits carry 4 check bits — 100 %
    /// overhead), so ECC-protected quantized tables keep less of the
    /// density win than unprotected ones. The engines price this by
    /// passing the stored width into [`with_secded`].
    #[test]
    fn secded_over_narrowed_words_is_priced() {
        use qtaccel_hdl::fault::Secded;
        // Check-bit counts (Hamming + overall parity).
        assert_eq!(Secded::new(16).code_bits(), 22); // 6/16 = 37.5 %
        assert_eq!(Secded::new(8).code_bits(), 13); // 5/8 = 62.5 %
        assert_eq!(Secded::new(4).code_bits(), 8); // 4/4 = 100 %
        let cfg = crate::config::AccelConfig::default();
        for (stored, abits) in [(16u32, 3u32), (8, 3), (4, 3)] {
            let base = analyze_stored(262_144, 8, 16, stored, EngineKind::QLearning, &cfg, 1.0);
            let ecc = with_secded(base, &cfg, 262_144, 8, stored);
            assert!(
                ecc.report.bram36 > base.report.bram36,
                "stored {stored}+{abits}: codeword widening must cost BRAM"
            );
        }
        // Relative ECC overhead is worst at the narrowest width.
        let over = |stored: u32| {
            let base = analyze_stored(262_144, 8, 16, stored, EngineKind::QLearning, &cfg, 1.0);
            let ecc = with_secded(base, &cfg, 262_144, 8, stored);
            ecc.report.bram36 as f64 / base.report.bram36 as f64
        };
        assert!(
            over(4) > over(16),
            "narrow payloads pay proportionally more for SECDED: {} vs {}",
            over(4),
            over(16)
        );
    }

    #[test]
    fn addr_bits_edge_cases() {
        assert_eq!(addr_bits(1), 1);
        assert_eq!(addr_bits(2), 1);
        assert_eq!(addr_bits(4), 2);
        assert_eq!(addr_bits(5), 3);
        assert_eq!(addr_bits(262_144), 18);
    }
}
