//! The Multi-Armed Bandit customization (§VII-B).
//!
//! "We can adapt our design to accelerate MAB with only changes to the
//! rewards table in the first stage. To sample rewards, uniform random
//! numbers can be generated using linear feedback shift registers whose
//! output can be summed up to obtain the normal distribution."
//!
//! [`BanditAccel`] is the single-state instantiation: the Q-table has one
//! state and M actions (one per arm); the reward BRAM is replaced by an
//! Irwin–Hall normal sampler; the Eq. (3) datapath with γ = 0 maintains
//! an exponentially weighted mean-reward estimate per arm.
//!
//! Two arm-selection policies are modelled:
//!
//! * **ε-greedy** — the stage-2 single-word scheme, zero extra latency:
//!   one sample per cycle, like the QRL engines.
//! * **EXP3** (Eq. 5) — probability-table selection via binary search,
//!   which occupies the selection stage for `⌈log₂ M⌉` cycles. The paper
//!   flags exactly this as the throughput limiter ("We will develop
//!   efficient pipelined implementation of probability based policy
//!   selection … to ensure high-throughput architecture with limited
//!   stalls"); the model charges those stall cycles so the
//!   `mab_bandits` experiment can show the gap.

use crate::config::AccelConfig;
use crate::resources::{analyze, AccelResources, EngineKind};
use qtaccel_core::bandit::{BanditAlgorithm, Exp3};
use qtaccel_core::trainer::seed_unit;
use qtaccel_envs::GaussianBandit;
use qtaccel_fixed::QValue;
use qtaccel_hdl::lfsr::Lfsr32;
use qtaccel_hdl::pipeline::CycleStats;
use qtaccel_hdl::rng::{epsilon_greedy_draw, epsilon_to_q32, SeedSequence};

const FILL: u64 = 3;

/// Arm-selection policy for the bandit engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BanditPolicy {
    /// Single-word ε-greedy over the estimate registers. One arm pull per
    /// clock cycle.
    EpsilonGreedy {
        /// Exploration probability.
        epsilon: f64,
    },
    /// EXP3 probability-table selection (Eq. 5); costs `⌈log₂ M⌉`
    /// selection cycles per pull.
    Exp3 {
        /// EXP3 mixing coefficient γ ∈ (0, 1].
        gamma: f64,
    },
}

/// The MAB accelerator instance.
#[derive(Debug)]
pub struct BanditAccel<V> {
    policy: BanditPolicy,
    config: AccelConfig,
    alpha_v: V,
    one_minus_alpha: V,
    /// Per-arm mean-reward estimates — the single-state Q row.
    estimates: Vec<V>,
    /// EXP3 functional state (None for ε-greedy).
    exp3: Option<Exp3>,
    select_rng: Lfsr32,
    /// Ring of the last 3 written arms, for hazard (forward) accounting.
    recent_writes: [Option<usize>; 3],
    stats: CycleStats,
}

impl<V: QValue> BanditAccel<V> {
    /// Build an engine for `num_arms` arms. `alpha` is the estimate
    /// update rate (the datapath's learning rate with γ = 0).
    pub fn new(num_arms: usize, policy: BanditPolicy, alpha: f64, config: AccelConfig) -> Self {
        assert!(num_arms >= 2, "need at least two arms");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        if let BanditPolicy::EpsilonGreedy { epsilon } = policy {
            assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        }
        let seeds = SeedSequence::new(config.trainer.seed);
        let alpha_v = V::from_f64(alpha);
        let exp3 = match policy {
            BanditPolicy::Exp3 { gamma } => Some(Exp3::new(num_arms, gamma)),
            BanditPolicy::EpsilonGreedy { .. } => None,
        };
        Self {
            policy,
            alpha_v,
            one_minus_alpha: alpha_v.one_minus(),
            estimates: vec![V::zero(); num_arms],
            exp3,
            select_rng: Lfsr32::new(seeds.derive(seed_unit::of(0, seed_unit::UPDATE))),
            recent_writes: [None; 3],
            stats: CycleStats {
                fill_bubbles: FILL,
                ..CycleStats::default()
            },
            config,
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.estimates.len()
    }

    /// Current per-arm estimates (f64 view of the Q row).
    pub fn estimates(&self) -> Vec<f64> {
        self.estimates.iter().map(|v| v.to_f64()).collect()
    }

    /// Cycle counters.
    pub fn stats(&self) -> CycleStats {
        self.stats
    }

    fn select_arm(&mut self) -> (usize, u64) {
        match self.policy {
            BanditPolicy::EpsilonGreedy { epsilon } => {
                let n = self.estimates.len() as u32;
                let arm = match epsilon_greedy_draw(
                    &mut self.select_rng,
                    epsilon_to_q32(epsilon),
                    n,
                ) {
                    Some(a) => a as usize,
                    None => {
                        // The single-entry Qmax register: argmax with
                        // lowest-index ties.
                        let mut best = 0;
                        for i in 1..self.estimates.len() {
                            if self.estimates[i].vcmp(self.estimates[best])
                                == core::cmp::Ordering::Greater
                            {
                                best = i;
                            }
                        }
                        best
                    }
                };
                (arm, 0)
            }
            BanditPolicy::Exp3 { .. } => {
                let exp3 = self.exp3.as_mut().expect("EXP3 state present");
                let arm = exp3.select(&mut self.select_rng);
                // Binary search over the cumulative probability row.
                let m = self.estimates.len();
                let cycles = (usize::BITS - (m - 1).leading_zeros()).max(1) as u64;
                (arm, cycles - 1)
            }
        }
    }

    /// One pipeline iteration: select an arm, sample its reward from the
    /// environment's LFSR-normal distribution, update the estimate with
    /// the Eq. (3) datapath (γ = 0). Returns (arm, reward).
    pub fn pull_round(&mut self, env: &mut GaussianBandit) -> (usize, f64) {
        assert_eq!(env.num_arms(), self.estimates.len(), "arm count mismatch");
        let (arm, stall) = self.select_arm();
        let reward = env.pull(arm);
        let r_v = V::from_f64(reward);
        // Hazard accounting: re-reading an arm estimate written within the
        // last 3 cycles needs the forwarding path.
        if self.recent_writes.contains(&Some(arm)) {
            self.stats.forwards += 1;
        }
        // q_new = (1-α)·q + α·r   (the reward-estimate datapath).
        let q_new = self
            .one_minus_alpha
            .mul(self.estimates[arm])
            .add(self.alpha_v.mul(r_v));
        self.estimates[arm] = q_new;
        if let Some(exp3) = self.exp3.as_mut() {
            exp3.update(arm, reward);
        }
        self.recent_writes.rotate_right(1);
        self.recent_writes[0] = Some(arm);
        self.stats.samples += 1;
        self.stats.stalls += stall;
        self.stats.cycles = self.stats.samples + self.stats.stalls + FILL;
        (arm, reward)
    }

    /// Run `rounds` pulls and return the cumulative expected-regret curve.
    pub fn run(&mut self, env: &mut GaussianBandit, rounds: usize) -> Vec<f64> {
        let mut regret = Vec::with_capacity(rounds);
        let mut acc = 0.0;
        for _ in 0..rounds {
            let (arm, _) = self.pull_round(env);
            acc += env.gap(arm);
            regret.push(acc);
        }
        regret
    }

    /// Structural resources and modeled throughput for this instance.
    pub fn resources(&self) -> AccelResources {
        analyze(
            1,
            self.estimates.len(),
            V::storage_bits(),
            EngineKind::Bandit,
            &self.config,
            self.stats.samples_per_cycle().max(if self.stats.samples == 0 {
                match self.policy {
                    BanditPolicy::EpsilonGreedy { .. } => 1.0,
                    BanditPolicy::Exp3 { .. } => {
                        let m = self.estimates.len();
                        1.0 / (usize::BITS - (m - 1).leading_zeros()).max(1) as f64
                    }
                }
            } else {
                0.0
            }),
        )
    }
}

/// The *stateful* bandit engine (§VII-B's closing paragraph): "For
/// Stateful Bandits, the state space can be represented by concatenation
/// of the states of individual arms. Typically, the number of arms is
/// very small (≈5), so the size of the resulting table will still be
/// tractable."
///
/// The Q-table spans the concatenated (mixed-radix) state space × M arms.
/// Selection is ε-greedy over the current global state's row — with M ≤ 8
/// arms the comparator tree over the row fits one pipeline stage, so the
/// engine sustains one pull per clock like the stateless variant. The
/// update is Eq. (3) with the *observed* next global state (the pulled
/// arm's chain may have advanced).
#[derive(Debug)]
pub struct StatefulBanditAccel<V> {
    config: AccelConfig,
    epsilon_q32: u32,
    alpha_v: V,
    one_minus_alpha: V,
    alpha_gamma: V,
    q: qtaccel_core::qtable::QTable<V>,
    select_rng: Lfsr32,
    stats: CycleStats,
}

impl<V: QValue> StatefulBanditAccel<V> {
    /// Build an engine sized for `env`'s concatenated state space.
    /// `epsilon` is the exploration probability; α and γ come from the
    /// config (γ = 0 gives the myopic policy that regret is measured
    /// against; γ > 0 plans across chain transitions).
    pub fn new(env: &qtaccel_envs::StatefulBandit, config: AccelConfig, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        let seeds = SeedSequence::new(config.trainer.seed);
        let alpha_v = V::from_f64(config.trainer.alpha);
        let gamma_v = V::from_f64(config.trainer.gamma);
        Self {
            epsilon_q32: epsilon_to_q32(epsilon),
            alpha_v,
            one_minus_alpha: alpha_v.one_minus(),
            alpha_gamma: alpha_v.mul(gamma_v),
            q: qtaccel_core::qtable::QTable::new(env.num_global_states(), env.num_arms()),
            select_rng: Lfsr32::new(seeds.derive(seed_unit::of(0, seed_unit::UPDATE))),
            stats: CycleStats {
                fill_bubbles: FILL,
                ..CycleStats::default()
            },
            config,
        }
    }

    /// The learned Q-table over (global state, arm).
    pub fn q_table(&self) -> &qtaccel_core::qtable::QTable<V> {
        &self.q
    }

    /// Cycle counters.
    pub fn stats(&self) -> CycleStats {
        self.stats
    }

    /// One pull: ε-greedy arm for the current global state, Eq. (3)
    /// update toward the next state's row maximum. Returns (arm, reward).
    pub fn pull_round(&mut self, env: &mut qtaccel_envs::StatefulBandit) -> (usize, f64) {
        assert_eq!(env.num_arms(), self.q.num_actions(), "arm count mismatch");
        let s = env.global_state();
        let arm = match epsilon_greedy_draw(
            &mut self.select_rng,
            self.epsilon_q32,
            self.q.num_actions() as u32,
        ) {
            Some(a) => a as usize,
            None => self.q.max_exact(s).0 as usize,
        };
        let (reward, s_next) = env.pull(arm);
        let (_, q_next) = self.q.max_exact(s_next);
        let q_new = self
            .one_minus_alpha
            .mul(self.q.get(s, arm as u32))
            .add(self.alpha_v.mul(V::from_f64(reward)))
            .add(self.alpha_gamma.mul(q_next));
        self.q.set(s, arm as u32, q_new);
        self.stats.samples += 1;
        self.stats.cycles = self.stats.samples + FILL;
        (arm, reward)
    }

    /// Run `rounds` pulls; returns the cumulative *myopic* expected
    /// regret (against the per-state optimal arm).
    pub fn run(&mut self, env: &mut qtaccel_envs::StatefulBandit, rounds: usize) -> Vec<f64> {
        let mut regret = Vec::with_capacity(rounds);
        let mut acc = 0.0;
        for _ in 0..rounds {
            let s = env.global_state();
            let best = env.expected_reward(s, env.optimal_arm(s));
            let (arm, _) = self.pull_round(env);
            acc += best - env.expected_reward(s, arm);
            regret.push(acc);
        }
        regret
    }

    /// Structural resources: a `Π kₘ × M` Q-table plus the bandit
    /// datapath.
    pub fn resources(&self) -> AccelResources {
        analyze(
            self.q.num_states(),
            self.q.num_actions(),
            V::storage_bits(),
            EngineKind::Bandit,
            &self.config,
            self.stats.samples_per_cycle().max(if self.stats.samples == 0 {
                1.0
            } else {
                0.0
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_envs::{ArmChain, StatefulBandit};
    use qtaccel_fixed::Q8_8;

    fn env(seed: u32) -> GaussianBandit {
        GaussianBandit::linear_means(8, 0.1, seed)
    }

    fn cfg() -> AccelConfig {
        AccelConfig::default().with_seed(0xBEEF)
    }

    #[test]
    fn epsilon_greedy_engine_finds_best_arm() {
        let mut e = env(1);
        let mut b = BanditAccel::<Q8_8>::new(8, BanditPolicy::EpsilonGreedy { epsilon: 0.1 }, 0.1, cfg());
        b.run(&mut e, 30_000);
        let est = b.estimates();
        let best = est
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 7, "estimates {est:?}");
    }

    #[test]
    fn epsilon_greedy_is_one_pull_per_cycle() {
        let mut e = env(2);
        let mut b = BanditAccel::<Q8_8>::new(8, BanditPolicy::EpsilonGreedy { epsilon: 0.1 }, 0.1, cfg());
        b.run(&mut e, 10_000);
        let s = b.stats();
        assert_eq!(s.samples, 10_000);
        assert_eq!(s.stalls, 0);
        assert_eq!(s.cycles, 10_003);
    }

    #[test]
    fn exp3_pays_binary_search_cycles() {
        let mut e = env(3);
        let mut b = BanditAccel::<Q8_8>::new(8, BanditPolicy::Exp3 { gamma: 0.2 }, 0.1, cfg());
        b.run(&mut e, 10_000);
        let s = b.stats();
        // log2(8) = 3 selection cycles: 2 extra stalls per pull.
        assert_eq!(s.stalls, 20_000);
        assert!((s.samples_per_cycle() - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn regret_grows_sublinearly_for_epsilon_greedy() {
        let mut e = env(4);
        let mut b = BanditAccel::<Q8_8>::new(8, BanditPolicy::EpsilonGreedy { epsilon: 0.05 }, 0.1, cfg());
        let regret = b.run(&mut e, 40_000);
        let early = regret[3_999] / 4_000.0;
        let late = (regret[39_999] - regret[19_999]) / 20_000.0;
        assert!(late < early / 2.0, "early {early}, late {late}");
    }

    #[test]
    fn forwards_counted_on_repeated_arms() {
        let mut e = GaussianBandit::linear_means(2, 0.0, 5);
        // ε = 0: after warmup the engine hammers the best arm, so every
        // pull after the first few re-reads a just-written estimate.
        let mut b =
            BanditAccel::<Q8_8>::new(2, BanditPolicy::EpsilonGreedy { epsilon: 0.0 }, 0.5, cfg());
        b.run(&mut e, 1_000);
        assert!(b.stats().forwards > 900, "{}", b.stats().forwards);
    }

    #[test]
    fn bandit_resources_are_tiny() {
        let b = BanditAccel::<Q8_8>::new(
            8,
            BanditPolicy::EpsilonGreedy { epsilon: 0.1 },
            0.1,
            cfg(),
        );
        let r = b.resources();
        assert_eq!(r.report.dsp, 4);
        assert!(r.report.bram36 <= 2, "single-state tables are small");
        assert_eq!(r.throughput_msps, 189.0);
        // EXP3 modeled throughput is a third of that.
        let x = BanditAccel::<Q8_8>::new(8, BanditPolicy::Exp3 { gamma: 0.2 }, 0.1, cfg());
        assert!((x.resources().throughput_msps - 63.0).abs() < 1.0);
    }


    fn stateful_env(seed: u32) -> StatefulBandit {
        StatefulBandit::new(
            vec![
                ArmChain {
                    means: vec![0.2, 0.9],
                    std: 0.05,
                    advance_prob: 0.5,
                },
                ArmChain {
                    means: vec![0.6, 0.1],
                    std: 0.05,
                    advance_prob: 0.5,
                },
                ArmChain {
                    means: vec![0.4, 0.4, 0.4],
                    std: 0.05,
                    advance_prob: 0.5,
                },
            ],
            seed,
        )
    }

    #[test]
    fn stateful_engine_learns_state_dependent_arms() {
        let mut env = stateful_env(7);
        // gamma = 0: the engine's greedy policy is then exactly the
        // myopic per-state argmax that regret is measured against (with
        // gamma > 0 it may rationally pull weaker arms to advance their
        // chains, which is not what this test scores).
        let mut e = StatefulBanditAccel::<Q8_8>::new(&env, cfg().with_gamma(0.0), 0.1);
        e.run(&mut env, 60_000);
        // After training, the greedy arm per global state should mostly
        // match the myopically optimal arm.
        let mut correct = 0;
        let total = env.num_global_states() as u32;
        for g in 0..total {
            if e.q_table().max_exact(g).0 as usize == env.optimal_arm(g) {
                correct += 1;
            }
        }
        assert!(
            correct * 10 >= total * 9,
            "greedy matches optimal in {correct}/{total} states"
        );
    }

    #[test]
    fn stateful_regret_is_sublinear() {
        let mut env = stateful_env(11);
        let mut e = StatefulBanditAccel::<Q8_8>::new(&env, cfg().with_gamma(0.0), 0.08);
        let regret = e.run(&mut env, 60_000);
        let early = regret[5_999] / 6_000.0;
        let late = (regret[59_999] - regret[29_999]) / 30_000.0;
        assert!(late < early, "early {early}, late {late}");
    }

    #[test]
    fn stateful_table_is_tractable_for_five_arms() {
        // The paper's tractability claim: 5 arms x 3 states each.
        let arms: Vec<ArmChain> = (0..5)
            .map(|i| ArmChain {
                means: vec![0.1 * i as f64, 0.2, 0.3],
                std: 0.1,
                advance_prob: 0.3,
            })
            .collect();
        let env = StatefulBandit::new(arms, 3);
        assert_eq!(env.num_global_states(), 243);
        let e = StatefulBanditAccel::<Q8_8>::new(&env, cfg(), 0.1);
        let r = e.resources();
        assert!(r.report.bram36 <= 2, "243x5 table is tiny: {} blocks", r.report.bram36);
        assert_eq!(r.throughput_msps, 189.0, "one pull per clock");
    }

    #[test]
    fn stateful_runs_one_pull_per_cycle() {
        let mut env = stateful_env(13);
        let mut e = StatefulBanditAccel::<Q8_8>::new(&env, cfg(), 0.1);
        e.run(&mut env, 10_000);
        assert_eq!(e.stats().samples, 10_000);
        assert_eq!(e.stats().cycles, 10_003);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn stateful_epsilon_validated() {
        let env = stateful_env(1);
        StatefulBanditAccel::<Q8_8>::new(&env, cfg(), -0.1);
    }

    #[test]
    #[should_panic(expected = "at least two arms")]
    fn rejects_single_arm() {
        BanditAccel::<Q8_8>::new(1, BanditPolicy::EpsilonGreedy { epsilon: 0.1 }, 0.1, cfg());
    }
}
