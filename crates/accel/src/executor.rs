//! The scale-out executor: a persistent host-side worker pool.
//!
//! The paper's answer to "more samples per second" past one full
//! pipeline is *replication* — §VII-A's independent pipelines on
//! disjoint BRAM banks, each retiring one sample per clock. On the host
//! the analogue is running P pipeline simulations on C cores. The seed
//! implementation spawned (and joined) a fresh OS thread per pipeline
//! on *every* training call, which taxes exactly the workloads a
//! production host serves: many short training bursts against
//! long-lived engines.
//!
//! [`ShardedExecutor`] replaces that with a worker pool created once:
//!
//! * **Persistent workers.** `threads` OS threads (default: the host's
//!   available parallelism) park on a condvar when idle. Submitting a
//!   batch costs one queue lock, not `P × thread::spawn`.
//! * **Chunked work queue.** A batch is a set of *shards* (one per
//!   pipeline). Each shard is re-entered chunk by chunk — the job
//!   callback runs one bounded chunk of samples and reports whether
//!   work remains, and unfinished shards requeue at the *tail*. With
//!   P ≫ C every pipeline makes interleaved progress instead of the
//!   first C hogging their cores to completion; with P < C the spare
//!   workers simply stay parked. A shard is never queued (or running)
//!   twice concurrently, so each pipeline's samples execute strictly in
//!   order — thread count and scheduling can change *when* a chunk
//!   runs, never *what* it computes. That is the executor's determinism
//!   argument, pinned bit-exactly by `tests/scaling.rs`.
//! * **Lock-free hot path.** Workers touch shared state only between
//!   chunks (queue push/pop). Inside a chunk the pipeline runs on its
//!   own tables and its own telemetry [`CounterBank`] — per-shard
//!   results (Q tables, `CycleStats`, counter banks) are merged by the
//!   submitter *after* the batch completes, so no sample ever contends
//!   on a lock or an atomic.
//!
//! Scoped borrows: jobs may borrow the caller's data (`&mut
//! AccelPipeline`, `&Environment`). Soundness is the classic
//! scoped-pool latch protocol — [`ShardedExecutor::run_shards`] erases
//! the job lifetime but does not return until every shard has finished
//! and every worker has released the batch (the completion latch is
//! decremented under the batch mutex, and the submitter's wait holds
//! that mutex), so no worker can observe the borrow after `run_shards`
//! returns. A panicking shard is recorded, the batch drains, and the
//! payload is resumed on the submitting thread.
//!
//! [`CounterBank`]: qtaccel_telemetry::CounterBank

use qtaccel_telemetry::{Histogram, MetricsRegistry};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// One shard of a batch: called repeatedly, runs one bounded chunk of
/// work per call, returns `true` while work remains.
pub type ShardJob<'scope> = Box<dyn FnMut() -> bool + Send + 'scope>;

/// Lock a mutex, shrugging off poisoning (a panicked shard has already
/// been recorded by the batch protocol; its data is never reused).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Per-batch control block, stack-allocated in `run_shards`.
///
/// Workers reach it through a raw pointer carried by the queued jobs;
/// the latch protocol above guarantees no worker dereferences it after
/// `run_shards` returns.
struct BatchCtl {
    /// The shard callbacks, lifetime-erased. Each mutex is held for
    /// exactly one chunk at a time (a shard is never queued twice, so
    /// these locks are uncontended — they exist to make the erased
    /// `FnMut` calls sound, not to arbitrate).
    shards: Vec<Mutex<ShardJob<'static>>>,
    /// Completion latch: shards not yet finished.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload out of any shard, resumed by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// A queued chunk: "run the next chunk of shard `idx` of batch `batch`".
struct QueuedChunk {
    batch: *const BatchCtl,
    idx: usize,
    /// Enqueue timestamp, set only on instrumented pools (feeds the
    /// queue-wait histogram).
    enqueued: Option<Instant>,
}
// SAFETY: the pointee outlives every queued chunk (latch protocol) and
// all shared access goes through the BatchCtl mutexes.
unsafe impl Send for QueuedChunk {}

/// Pool-wide shared state.
struct PoolShared {
    queue: Mutex<PoolQueue>,
    work: Condvar,
    /// Introspection state; `None` on uninstrumented pools, whose hot
    /// path then pays one pointer test per *chunk* (chunks are ≥ 64K
    /// samples — see [`chunk_samples`] — so this is noise).
    metrics: Option<Arc<ExecutorMetrics>>,
}

/// Busy/idle accounting for one worker thread. All counters are relaxed
/// atomics: they are statistics, ordered by the batch latch when read.
#[derive(Debug, Default)]
struct WorkerCounters {
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    chunks: AtomicU64,
}

/// One worker's introspection snapshot (see
/// [`ExecutorMetrics::worker_snapshots`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Worker index (matches the `qtaccel-shard-{i}` thread name).
    pub worker: usize,
    /// Nanoseconds spent executing chunks.
    pub busy_ns: u64,
    /// Nanoseconds spent parked or waiting for work.
    pub idle_ns: u64,
    /// Chunks executed.
    pub chunks: u64,
}

#[derive(Debug, Default)]
struct LatencyHistograms {
    chunk_service_ns: Histogram,
    queue_wait_ns: Histogram,
}

/// Introspection state of an instrumented [`ShardedExecutor`] (created
/// with [`ShardedExecutor::new_instrumented`]): per-worker busy/idle
/// time, chunk-service-time and queue-wait histograms, and a sampled
/// queue-depth gauge. Uninstrumented pools carry none of this — the
/// zero-cost-when-off telemetry policy extends to the executor.
#[derive(Debug)]
pub struct ExecutorMetrics {
    workers: Vec<WorkerCounters>,
    latency: Mutex<LatencyHistograms>,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
}

impl ExecutorMetrics {
    fn new(threads: usize) -> Self {
        Self {
            workers: (0..threads).map(|_| WorkerCounters::default()).collect(),
            latency: Mutex::new(LatencyHistograms::default()),
            queue_depth: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
        }
    }

    /// Per-worker busy/idle/chunk accounting, in worker order.
    pub fn worker_snapshots(&self) -> Vec<WorkerSnapshot> {
        self.workers
            .iter()
            .enumerate()
            .map(|(worker, c)| WorkerSnapshot {
                worker,
                busy_ns: c.busy_ns.load(Ordering::Relaxed),
                idle_ns: c.idle_ns.load(Ordering::Relaxed),
                chunks: c.chunks.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Distribution of wall-clock nanoseconds one chunk execution took.
    pub fn chunk_service_ns(&self) -> Histogram {
        lock_unpoisoned(&self.latency).chunk_service_ns.clone()
    }

    /// Distribution of nanoseconds chunks sat queued before a worker
    /// picked them up.
    pub fn queue_wait_ns(&self) -> Histogram {
        lock_unpoisoned(&self.latency).queue_wait_ns.clone()
    }

    /// Queue depth sampled at the most recent chunk pop.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Deepest the queue has been (sampled at push).
    pub fn queue_depth_peak(&self) -> u64 {
        self.queue_depth_peak.load(Ordering::Relaxed)
    }

    /// Publish the executor's introspection state into a registry under
    /// the stable `qtaccel_executor_*` names DESIGN.md §2.10 lists.
    pub fn register_into(&self, registry: &mut MetricsRegistry) {
        let snaps = self.worker_snapshots();
        registry.set_gauge(
            "qtaccel_executor_workers",
            "persistent workers in the sharded executor pool",
            snaps.len() as f64,
        );
        registry.set_counter(
            "qtaccel_executor_busy_ns_total",
            "nanoseconds workers spent executing chunks, summed across workers",
            snaps.iter().map(|s| s.busy_ns).sum(),
        );
        registry.set_counter(
            "qtaccel_executor_idle_ns_total",
            "nanoseconds workers spent parked or waiting, summed across workers",
            snaps.iter().map(|s| s.idle_ns).sum(),
        );
        registry.set_counter(
            "qtaccel_executor_chunks_total",
            "shard chunks executed by the pool",
            snaps.iter().map(|s| s.chunks).sum(),
        );
        registry.set_gauge(
            "qtaccel_executor_queue_depth",
            "work-queue depth sampled at the most recent chunk pop",
            self.queue_depth() as f64,
        );
        registry.set_gauge(
            "qtaccel_executor_queue_depth_peak",
            "deepest the work queue has been",
            self.queue_depth_peak() as f64,
        );
        registry.set_histogram(
            "qtaccel_executor_chunk_service_ns",
            "wall-clock nanoseconds one chunk execution took",
            &self.chunk_service_ns(),
        );
        registry.set_histogram(
            "qtaccel_executor_queue_wait_ns",
            "nanoseconds chunks sat queued before a worker picked them up",
            &self.queue_wait_ns(),
        );
    }
}

struct PoolQueue {
    jobs: VecDeque<QueuedChunk>,
    shutdown: bool,
}

/// A persistent worker pool executing sharded batches (see the module
/// docs for the scheduling and determinism model).
pub struct ShardedExecutor {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedExecutor")
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Worker-count override for the process-global pool (0 = auto).
static DEFAULT_WORKERS: AtomicUsize = AtomicUsize::new(0);
static GLOBAL: OnceLock<ShardedExecutor> = OnceLock::new();

/// The host's available parallelism (1 if unreadable).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Set the worker count the process-global pool will be created with.
/// Takes effect only before the first [`ShardedExecutor::global`] call;
/// returns whether the override was applied in time. `0` restores auto
/// sizing ([`host_parallelism`]).
pub fn set_default_workers(n: usize) -> bool {
    DEFAULT_WORKERS.store(n, Ordering::SeqCst);
    GLOBAL.get().is_none()
}

impl ShardedExecutor {
    /// A pool with `threads` persistent workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self::build(threads, false)
    }

    /// An introspectable pool: same scheduling, plus the
    /// [`ExecutorMetrics`] accounting (per-worker busy/idle time,
    /// chunk/queue latency histograms, queue-depth gauges). The cost is
    /// two `Instant::now` reads and a few relaxed atomics per *chunk* —
    /// invisible next to the ≥ 64K samples a chunk executes — but the
    /// default pool stays literally unchanged.
    pub fn new_instrumented(threads: usize) -> Self {
        Self::build(threads, true)
    }

    fn build(threads: usize, instrumented: bool) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            metrics: instrumented.then(|| Arc::new(ExecutorMetrics::new(threads))),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qtaccel-shard-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn shard worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// The pool's introspection state; `None` unless the pool was built
    /// with [`new_instrumented`](Self::new_instrumented).
    pub fn metrics(&self) -> Option<&ExecutorMetrics> {
        self.shared.metrics.as_deref()
    }

    /// A pool sized to the host's available parallelism.
    pub fn with_default_parallelism() -> Self {
        Self::new(host_parallelism())
    }

    /// The process-global pool, created on first use with
    /// [`host_parallelism`] workers (or the [`set_default_workers`]
    /// override). Shared by every [`IndependentPipelines`] instance that
    /// was not given its own pool, so repeated short training calls
    /// never pay thread-creation cost.
    ///
    /// [`IndependentPipelines`]: crate::multi::IndependentPipelines
    pub fn global() -> &'static ShardedExecutor {
        GLOBAL.get_or_init(|| {
            let n = DEFAULT_WORKERS.load(Ordering::SeqCst);
            if n == 0 {
                Self::with_default_parallelism()
            } else {
                Self::new(n)
            }
        })
    }

    /// Number of persistent workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Run a batch of shard jobs to completion.
    ///
    /// Each job is called repeatedly — one bounded chunk per call —
    /// until it returns `false`; unfinished shards requeue at the queue
    /// tail so all shards progress fairly even when they outnumber
    /// workers. Blocks until every shard has finished. If a shard
    /// panics, the remaining shards still run to completion and the
    /// first panic payload is resumed here.
    ///
    /// Must not be called from inside a shard job running on the same
    /// pool (the nested batch could starve with every worker busy).
    pub fn run_shards(&self, shards: Vec<ShardJob<'_>>) {
        if shards.is_empty() {
            return;
        }
        let n = shards.len();
        let ctl = BatchCtl {
            // SAFETY: lifetime erasure. `ctl` lives on this stack frame
            // and the latch wait below does not return until every
            // worker has finished with every shard and released the
            // latch mutex — no borrow escapes the true scope.
            shards: shards
                .into_iter()
                .map(|j| {
                    Mutex::new(unsafe {
                        std::mem::transmute::<ShardJob<'_>, ShardJob<'static>>(j)
                    })
                })
                .collect(),
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panic: Mutex::new(None),
        };

        {
            let mut q = lock_unpoisoned(&self.shared.queue);
            let enqueued = self.shared.metrics.is_some().then(Instant::now);
            for idx in 0..n {
                q.jobs.push_back(QueuedChunk {
                    batch: &ctl,
                    idx,
                    enqueued,
                });
            }
            if let Some(m) = &self.shared.metrics {
                m.queue_depth_peak
                    .fetch_max(q.jobs.len() as u64, Ordering::Relaxed);
            }
        }
        // One wake per queued shard: notify_all would also wake workers
        // with nothing to grab when n < threads.
        for _ in 0..n.min(self.workers.len()) {
            self.shared.work.notify_one();
        }

        let mut remaining = lock_unpoisoned(&ctl.remaining);
        while *remaining > 0 {
            remaining = ctl
                .done
                .wait(remaining)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(remaining);

        let payload = lock_unpoisoned(&ctl.panic).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for ShardedExecutor {
    fn drop(&mut self) {
        {
            let mut q = lock_unpoisoned(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, worker: usize) {
    let metrics = shared.metrics.as_deref();
    loop {
        let idle_start = metrics.map(|_| Instant::now());
        let job = {
            let mut q = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    if let Some(m) = metrics {
                        // Sample the depth left behind at this pop.
                        m.queue_depth.store(q.jobs.len() as u64, Ordering::Relaxed);
                    }
                    break job;
                }
                // Drain the queue before honouring shutdown so a pool
                // dropped right after a submission still completes it.
                if q.shutdown {
                    return;
                }
                q = shared.work.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        if let Some(m) = metrics {
            let now = Instant::now();
            if let Some(start) = idle_start {
                m.workers[worker]
                    .idle_ns
                    .fetch_add((now - start).as_nanos() as u64, Ordering::Relaxed);
            }
            if let Some(enqueued) = job.enqueued {
                lock_unpoisoned(&m.latency)
                    .queue_wait_ns
                    .observe((now - enqueued).as_nanos() as u64);
            }
        }

        // SAFETY: the batch outlives the job (latch protocol).
        let batch = unsafe { &*job.batch };
        let busy_start = metrics.map(|_| Instant::now());
        let outcome = {
            let mut shard = lock_unpoisoned(&batch.shards[job.idx]);
            catch_unwind(AssertUnwindSafe(&mut *shard))
        };
        if let (Some(m), Some(start)) = (metrics, busy_start) {
            let elapsed = start.elapsed().as_nanos() as u64;
            m.workers[worker]
                .busy_ns
                .fetch_add(elapsed, Ordering::Relaxed);
            m.workers[worker].chunks.fetch_add(1, Ordering::Relaxed);
            lock_unpoisoned(&m.latency)
                .chunk_service_ns
                .observe(elapsed);
        }
        match outcome {
            Ok(true) => {
                // More chunks: requeue at the tail for fair interleave.
                {
                    let mut q = lock_unpoisoned(&shared.queue);
                    let mut job = job;
                    job.enqueued = metrics.map(|_| Instant::now());
                    q.jobs.push_back(job);
                    if let Some(m) = metrics {
                        m.queue_depth_peak
                            .fetch_max(q.jobs.len() as u64, Ordering::Relaxed);
                    }
                }
                shared.work.notify_one();
            }
            Ok(false) | Err(_) => {
                if let Err(payload) = outcome {
                    lock_unpoisoned(&batch.panic).get_or_insert(payload);
                }
                // Finish the shard under the latch mutex; after this
                // guard drops, `batch` is never touched again by this
                // worker — the submitter may already be returning.
                let mut remaining = lock_unpoisoned(&batch.remaining);
                *remaining -= 1;
                if *remaining == 0 {
                    batch.done.notify_all();
                }
            }
        }
    }
}

/// Deterministic chunk size for a shard's sample budget.
///
/// Chunks bound how long a worker holds one shard so P ≫ C interleaves
/// fairly, but each chunk must stay long enough to (a) amortize the
/// queue round-trip and (b) keep the fast path's specialized executor
/// engaged on its first call (it diverts once the run covers the
/// `|S|·|A|` fused image — see `AccelPipeline::run_samples_fast`). The
/// result depends only on the shard's own budget and table size, never
/// on worker count — chunk boundaries are part of the deterministic
/// schedule.
pub fn chunk_samples(budget: u64, states: usize, actions: usize) -> u64 {
    /// Target chunk: ~64K samples ≈ sub-millisecond on the fast path.
    const TARGET: u64 = 1 << 16;
    let image = (states as u64).saturating_mul(actions as u64);
    TARGET.max(image).min(budget.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn counting_shards<'a>(
        counters: &'a [AtomicU64],
        chunks_each: u64,
    ) -> Vec<ShardJob<'a>> {
        counters
            .iter()
            .map(|c| {
                let mut left = chunks_each;
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    left -= 1;
                    left > 0
                }) as ShardJob<'a>
            })
            .collect()
    }

    #[test]
    fn runs_all_chunks_of_all_shards() {
        for threads in [1, 2, 3, 7] {
            let pool = ShardedExecutor::new(threads);
            let counters: Vec<AtomicU64> = (0..16).map(|_| AtomicU64::new(0)).collect();
            pool.run_shards(counting_shards(&counters, 5));
            for (i, c) in counters.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 5, "shard {i} @ {threads} threads");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = ShardedExecutor::new(2);
        let c = AtomicU64::new(0);
        for _ in 0..50 {
            let shards: Vec<ShardJob<'_>> = (0..3)
                .map(|_| {
                    Box::new(|| {
                        c.fetch_add(1, Ordering::SeqCst);
                        false
                    }) as ShardJob<'_>
                })
                .collect();
            pool.run_shards(shards);
        }
        assert_eq!(c.load(Ordering::SeqCst), 150);
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn scoped_mutable_borrows_are_visible_after_run() {
        let pool = ShardedExecutor::new(3);
        let mut data = vec![0u64; 8];
        let shards: Vec<ShardJob<'_>> = data
            .iter_mut()
            .map(|slot| {
                let mut calls = 0u64;
                Box::new(move || {
                    calls += 1;
                    *slot += calls;
                    calls < 4
                }) as ShardJob<'_>
            })
            .collect();
        pool.run_shards(shards);
        assert_eq!(data, vec![1 + 2 + 3 + 4; 8]);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = ShardedExecutor::new(1);
        pool.run_shards(Vec::new());
    }

    #[test]
    fn shard_panic_propagates_after_batch_drains() {
        let pool = ShardedExecutor::new(2);
        let survivors = AtomicU64::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut shards: Vec<ShardJob<'_>> = vec![Box::new(|| panic!("shard boom"))];
            for _ in 0..4 {
                shards.push(Box::new(|| {
                    survivors.fetch_add(1, Ordering::SeqCst);
                    false
                }));
            }
            pool.run_shards(shards);
        }));
        assert!(caught.is_err(), "panic must resurface on the submitter");
        assert_eq!(survivors.load(Ordering::SeqCst), 4, "other shards still ran");
        // The pool survives a panicked batch.
        let c = AtomicU64::new(0);
        pool.run_shards(vec![Box::new(|| {
            c.fetch_add(1, Ordering::SeqCst);
            false
        })]);
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn chunking_is_deterministic_and_bounded() {
        // Depends only on (budget, table size), never on worker count.
        assert_eq!(chunk_samples(1_000_000, 64, 4), 1 << 16);
        assert_eq!(chunk_samples(1_000, 64, 4), 1_000);
        assert_eq!(chunk_samples(0, 64, 4), 1);
        // Large tables widen the chunk so the fused image still engages.
        assert_eq!(chunk_samples(10_000_000, 16_384, 8), 16_384 * 8);
    }

    #[test]
    fn instrumented_pool_accounts_chunks_and_latency() {
        let pool = ShardedExecutor::new_instrumented(2);
        let counters: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        pool.run_shards(counting_shards(&counters, 3));
        let m = pool.metrics().expect("instrumented pool exposes metrics");
        let snaps = m.worker_snapshots();
        assert_eq!(snaps.len(), 2);
        // 4 shards x 3 chunks each, every one accounted exactly once.
        assert_eq!(snaps.iter().map(|s| s.chunks).sum::<u64>(), 12);
        assert_eq!(m.chunk_service_ns().count(), 12);
        assert_eq!(m.queue_wait_ns().count(), 12);
        // 4 shards pushed at once: the queue must have reached 4 deep.
        assert!(m.queue_depth_peak() >= 4, "{}", m.queue_depth_peak());
        // Workers have been parked at least since the batch drained.
        assert!(snaps.iter().map(|s| s.idle_ns).sum::<u64>() > 0);

        let mut reg = MetricsRegistry::new();
        m.register_into(&mut reg);
        assert!(reg.get("qtaccel_executor_chunks_total").is_some());
        assert!(reg.get("qtaccel_executor_queue_depth").is_some());
        assert!(reg.get("qtaccel_executor_chunk_service_ns").is_some());
        assert!(reg.get("qtaccel_executor_queue_wait_ns").is_some());
    }

    #[test]
    fn uninstrumented_pool_carries_no_metrics() {
        let pool = ShardedExecutor::new(2);
        assert!(pool.metrics().is_none());
        // The global pool is uninstrumented too.
        assert!(ShardedExecutor::global().metrics().is_none());
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = ShardedExecutor::global() as *const _;
        let b = ShardedExecutor::global() as *const _;
        assert_eq!(a, b);
        assert!(ShardedExecutor::global().workers() >= 1);
        // Too late to resize once created.
        assert!(!set_default_workers(4));
    }
}
