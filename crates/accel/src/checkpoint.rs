//! Crash-safe checkpoint container: versioned header, CRC-32 footer,
//! atomic write-then-rename.
//!
//! This module owns the *container* — the byte format, integrity
//! checking and durable file replacement. What goes inside (the full
//! mutable state of an [`AccelPipeline`]: Q/Qmax images, the three LFSR
//! states, cycle/sample counters, in-flight write queues, and the fault
//! runtime if one is attached) is encoded by
//! [`AccelPipeline::checkpoint_bytes`] and decoded by
//! [`AccelPipeline::restore_checkpoint_bytes`], which live next to the
//! pipeline because they touch every private field.
//!
//! ## Format
//!
//! A checkpoint is a sequence of little-endian `u64` words:
//!
//! ```text
//! word 0       magic  "QTACCKPT"
//! word 1       format version (this module understands version 1)
//! word 2..n    payload (pipeline-defined)
//! word n       CRC-32/ISO-HDLC of words 0..n, zero-extended to 64 bits
//! ```
//!
//! ## Durability
//!
//! [`atomic_write`] stages the bytes in a sibling `*.tmp` file, fsyncs
//! it, renames it over the destination, and fsyncs the directory. A
//! crash at any point leaves either the old complete checkpoint or the
//! new complete checkpoint — never a torn file. A torn or tampered file
//! is still *detected* (CRC/magic/version/truncation) and refused with a
//! typed [`CheckpointError`] rather than restored into a half-written
//! pipeline.
//!
//! [`AccelPipeline`]: crate::AccelPipeline
//! [`AccelPipeline::checkpoint_bytes`]: crate::AccelPipeline::checkpoint_bytes
//! [`AccelPipeline::restore_checkpoint_bytes`]: crate::AccelPipeline::restore_checkpoint_bytes

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// `"QTACCKPT"` in ASCII — the first word of every checkpoint file.
pub const MAGIC: u64 = u64::from_le_bytes(*b"QTACCKPT");

/// Container format version this build writes and understands.
pub const VERSION: u64 = 1;

/// Why a checkpoint could not be saved or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem-level failure (open, read, write, rename, sync).
    Io(std::io::Error),
    /// The file ended before the declared content (or is not a whole
    /// number of words / too short to hold header + footer).
    Truncated,
    /// The first word is not the checkpoint magic — not a checkpoint.
    BadMagic,
    /// A checkpoint, but written by an incompatible format version.
    BadVersion {
        /// The version word found in the file.
        found: u64,
    },
    /// The CRC-32 footer does not match the content: torn write or
    /// corruption.
    BadCrc,
    /// The checkpoint is internally valid but was taken from a pipeline
    /// whose shape/format differs from the one restoring it.
    Mismatch {
        /// Which field disagreed (e.g. `"num_states"`, `"format"`).
        field: &'static str,
        /// The restoring pipeline's value.
        expected: String,
        /// The checkpointed value.
        found: String,
    },
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::BadMagic => write!(f, "not a QTAccel checkpoint (bad magic)"),
            CheckpointError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (this build reads {VERSION})"
                )
            }
            CheckpointError::BadCrc => write!(f, "checkpoint CRC mismatch (corrupt file)"),
            CheckpointError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {field} mismatch: pipeline has {expected}, checkpoint has {found}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// CRC-32/ISO-HDLC (the zlib/PNG polynomial, reflected), one nibble per
/// table step — small table, no dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 16] = [
        0x0000_0000,
        0x1DB7_1064,
        0x3B6E_20C8,
        0x26D9_30AC,
        0x76DC_4190,
        0x6B6B_51F4,
        0x4DB2_6158,
        0x5005_713C,
        0xEDB8_8320,
        0xF00F_9344,
        0xD6D6_A3E8,
        0xCB61_B38C,
        0x9B64_C2B0,
        0x86D3_D2D4,
        0xA00A_E278,
        0xBDBD_F21C,
    ];
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 4) ^ TABLE[((crc ^ b as u32) & 0xF) as usize];
        crc = (crc >> 4) ^ TABLE[((crc ^ (b as u32 >> 4)) & 0xF) as usize];
    }
    !crc
}

/// Accumulates checkpoint payload words and seals them with the header
/// and CRC footer.
#[derive(Debug, Default)]
pub(crate) struct WordWriter {
    words: Vec<u64>,
}

impl WordWriter {
    /// A writer with the magic + version header already emitted.
    pub(crate) fn with_header() -> Self {
        let mut w = Self { words: Vec::new() };
        w.push(MAGIC);
        w.push(VERSION);
        w
    }

    pub(crate) fn push(&mut self, word: u64) {
        self.words.push(word);
    }

    pub(crate) fn push_f64(&mut self, x: f64) {
        self.push(x.to_bits());
    }

    /// Append a length-prefixed UTF-8 string, padded to whole words.
    pub(crate) fn push_str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.push(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.push(u64::from_le_bytes(word));
        }
    }

    /// Seal: serialize all words little-endian and append the CRC word.
    pub(crate) fn finish(self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity((self.words.len() + 1) * 8);
        for w in &self.words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let crc = crc32(&bytes) as u64;
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }
}

/// Cursor over a verified checkpoint payload.
#[derive(Debug)]
pub(crate) struct WordReader {
    words: Vec<u64>,
    pos: usize,
}

impl WordReader {
    /// Verify container integrity (shape, CRC, magic, version) and
    /// position the cursor on the first payload word.
    pub(crate) fn parse(bytes: &[u8]) -> Result<Self, CheckpointError> {
        // Header (2 words) + CRC footer (1 word) is the minimum file.
        if !bytes.len().is_multiple_of(8) || bytes.len() < 24 {
            return Err(CheckpointError::Truncated);
        }
        let (content, footer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(footer.try_into().expect("8-byte footer"));
        if stored != crc32(content) as u64 {
            return Err(CheckpointError::BadCrc);
        }
        let words: Vec<u64> = content
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte word")))
            .collect();
        if words[0] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if words[1] != VERSION {
            return Err(CheckpointError::BadVersion { found: words[1] });
        }
        Ok(Self { words, pos: 2 })
    }

    pub(crate) fn next(&mut self) -> Result<u64, CheckpointError> {
        let w = self
            .words
            .get(self.pos)
            .copied()
            .ok_or(CheckpointError::Truncated)?;
        self.pos += 1;
        Ok(w)
    }

    pub(crate) fn next_f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.next()?))
    }

    /// Payload words still unread. Lets decoders treat a trailing
    /// optional section (added by a later writer) as absent when reading
    /// an older checkpoint, instead of erroring on `Truncated`.
    pub(crate) fn remaining(&self) -> usize {
        self.words.len().saturating_sub(self.pos)
    }

    /// Read a length-prefixed string written by [`WordWriter::push_str`].
    pub(crate) fn next_str(&mut self) -> Result<String, CheckpointError> {
        let len = self.next()? as usize;
        // A declared length beyond the remaining payload is corruption
        // the CRC missed only if someone forged it — still refuse.
        if len > (self.words.len() - self.pos) * 8 {
            return Err(CheckpointError::Truncated);
        }
        let mut bytes = Vec::with_capacity(len);
        while bytes.len() < len {
            let word = self.next()?.to_le_bytes();
            let take = (len - bytes.len()).min(8);
            bytes.extend_from_slice(&word[..take]);
        }
        String::from_utf8(bytes).map_err(|_| CheckpointError::BadCrc)
    }
}

/// Durably replace `path` with `bytes`: stage in a sibling `*.tmp`,
/// fsync, rename over the destination, fsync the directory.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    };
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Make the rename itself durable. Directory fsync is best-effort:
    // some filesystems refuse to sync a directory handle.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Remove orphaned `*.tmp` staging files under `dir` (non-recursive)
/// and return how many were deleted.
///
/// A process killed between [`atomic_write`]'s create and rename leaves
/// the staging file behind. The real checkpoint (old or new) is intact
/// by construction, so the orphan is pure garbage — but it must not be
/// mistaken for a checkpoint, and it must not accumulate across crash
/// loops. Restore paths call this before scanning the directory.
pub fn clean_stale_tmp(dir: &Path) -> Result<u64, CheckpointError> {
    let mut removed = 0u64;
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        // A directory that does not exist yet has nothing stale in it.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let path = entry?.path();
        let is_tmp = path
            .extension()
            .is_some_and(|ext| ext.eq_ignore_ascii_case("tmp"));
        if is_tmp && path.is_file() {
            // A concurrent saver may legitimately rename its staging
            // file away between our scan and the unlink; that is not an
            // error.
            match fs::remove_file(&path) {
                Ok(()) => removed += 1,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = WordWriter::with_header();
        w.push(7);
        w.push_f64(0.125);
        w.push_str("Q8.8");
        w.push_str("a longer string spanning words");
        let bytes = w.finish();
        let mut r = WordReader::parse(&bytes).expect("valid container");
        assert_eq!(r.next().unwrap(), 7);
        assert_eq!(r.next_f64().unwrap(), 0.125);
        assert_eq!(r.next_str().unwrap(), "Q8.8");
        assert_eq!(r.next_str().unwrap(), "a longer string spanning words");
        assert!(matches!(r.next(), Err(CheckpointError::Truncated)));
    }

    #[test]
    fn truncated_and_corrupt_containers_are_refused() {
        let mut w = WordWriter::with_header();
        w.push(1);
        let bytes = w.finish();
        assert!(matches!(
            WordReader::parse(&bytes[..bytes.len() - 8]),
            Err(CheckpointError::BadCrc) | Err(CheckpointError::Truncated)
        ));
        assert!(matches!(
            WordReader::parse(&bytes[..7]),
            Err(CheckpointError::Truncated)
        ));
        let mut flipped = bytes.clone();
        flipped[16] ^= 1;
        assert!(matches!(
            WordReader::parse(&flipped),
            Err(CheckpointError::BadCrc)
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_typed_errors() {
        // Not a checkpoint at all (but CRC-consistent).
        let mut w = WordWriter::default();
        w.push(0xDEAD_BEEF);
        w.push(VERSION);
        w.push(0);
        assert!(matches!(
            WordReader::parse(&w.finish()),
            Err(CheckpointError::BadMagic)
        ));
        // A future version.
        let mut w = WordWriter::default();
        w.push(MAGIC);
        w.push(VERSION + 9);
        w.push(0);
        assert!(matches!(
            WordReader::parse(&w.finish()),
            Err(CheckpointError::BadVersion { found }) if found == VERSION + 9
        ));
    }

    #[test]
    fn atomic_write_leaves_no_tmp_file() {
        let dir = std::env::temp_dir().join("qtaccel-ckpt-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.ckpt");
        atomic_write(&path, b"hello").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        atomic_write(&path, b"world").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"world");
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists(), "staging file must be gone");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_stale_tmp_removes_orphans_and_spares_checkpoints() {
        let dir = std::env::temp_dir().join("qtaccel-ckpt-tmpclean");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        atomic_write(&dir.join("shard0.ckpt"), b"real").unwrap();
        fs::write(dir.join("shard1.ckpt.tmp"), b"torn").unwrap();
        fs::write(dir.join("other.tmp"), b"junk").unwrap();
        assert_eq!(clean_stale_tmp(&dir).unwrap(), 2);
        assert!(dir.join("shard0.ckpt").exists(), "real checkpoint spared");
        assert!(!dir.join("shard1.ckpt.tmp").exists());
        assert!(!dir.join("other.tmp").exists());
        // Idempotent, and a missing directory is simply empty.
        assert_eq!(clean_stale_tmp(&dir).unwrap(), 0);
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(clean_stale_tmp(&dir).unwrap(), 0);
    }

    #[test]
    fn errors_render_and_chain() {
        let e = CheckpointError::BadVersion { found: 3 };
        assert!(e.to_string().contains("version 3"));
        let io = CheckpointError::from(std::io::Error::other("disk on fire"));
        assert!(io.to_string().contains("disk on fire"));
        use std::error::Error as _;
        assert!(io.source().is_some());
        let m = CheckpointError::Mismatch {
            field: "num_states",
            expected: "64".into(),
            found: "128".into(),
        };
        assert!(m.to_string().contains("num_states"));
    }
}
