//! Crash-safe checkpoint/restore: resuming from a checkpoint must
//! reproduce the straight-through run bit-exactly — for both
//! algorithms, every hazard mode, both Qmax semantics, and with the
//! executors freely mixed around the save point — and damaged or
//! mismatched checkpoint files must be refused with a typed error that
//! leaves the engine untouched.

use qtaccel_accel::checkpoint::{crc32, CheckpointError};
use qtaccel_accel::config::{AccelConfig, HazardMode};
use qtaccel_accel::qlearning::QLearningAccel;
use qtaccel_accel::sarsa::SarsaAccel;
use qtaccel_core::qtable::MaxMode;
use qtaccel_envs::{ActionSet, GridWorld};
use qtaccel_fixed::{Q16_16, Q8_8};
use std::path::PathBuf;

const HAZARDS: [HazardMode; 3] = [
    HazardMode::Forwarding,
    HazardMode::StallOnly,
    HazardMode::Ignore,
];

fn grid() -> GridWorld {
    GridWorld::builder(8, 8)
        .goal(7, 7)
        .actions(ActionSet::Four)
        .build()
}

fn tmp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "qtaccel-ckpt-{}-{name}.ckpt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Rewrite the container's trailing CRC word after tampering with the
/// payload, so the damage under test is reached instead of masked.
fn fix_crc(bytes: &mut [u8]) {
    let n = bytes.len();
    let crc = crc32(&bytes[..n - 8]) as u64;
    bytes[n - 8..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn qlearning_resume_is_bit_exact_across_hazards_and_max_modes() {
    for hazard in HAZARDS {
        for max_mode in [MaxMode::QmaxArray, MaxMode::ExactScan] {
            let g = grid();
            let cfg = AccelConfig::default()
                .with_seed(0xA5)
                .with_hazard(hazard)
                .with_max_mode(max_mode);
            // The straight-through reference mixes executors the same
            // way the legged run does around the save point.
            let mut straight = QLearningAccel::<Q8_8>::new(&g, cfg);
            straight.train_samples(&g, 7_777);
            straight.train_samples_fast(&g, 5_000);

            let path = tmp(&format!("ql-{hazard:?}-{max_mode:?}"));
            let mut first = QLearningAccel::<Q8_8>::new(&g, cfg);
            first.train_samples(&g, 7_777);
            first.save_checkpoint(&path).expect("save");
            drop(first); // the "crash"
            let mut resumed = QLearningAccel::<Q8_8>::new(&g, cfg);
            resumed.restore_checkpoint(&path).expect("restore");
            resumed.train_samples_fast(&g, 5_000);

            let label = format!("{hazard:?}/{max_mode:?}");
            assert_eq!(resumed.stats(), straight.stats(), "{label}: stats");
            assert_eq!(
                resumed.q_table().as_slice(),
                straight.q_table().as_slice(),
                "{label}: Q-table"
            );
            assert_eq!(
                resumed.qmax_table(),
                straight.qmax_table(),
                "{label}: Qmax"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn sarsa_resume_is_bit_exact_across_hazards() {
    for hazard in HAZARDS {
        let g = grid();
        let cfg = AccelConfig::default().with_seed(0x5A).with_hazard(hazard);
        let mut straight = SarsaAccel::<Q8_8>::new(&g, cfg, 0.2);
        straight.train_samples_fast(&g, 6_001);
        straight.train_samples(&g, 4_000);

        let path = tmp(&format!("sarsa-{hazard:?}"));
        let mut first = SarsaAccel::<Q8_8>::new(&g, cfg, 0.2);
        first.train_samples_fast(&g, 6_001);
        first.save_checkpoint(&path).expect("save");
        drop(first);
        let mut resumed = SarsaAccel::<Q8_8>::new(&g, cfg, 0.2);
        resumed.restore_checkpoint(&path).expect("restore");
        resumed.train_samples(&g, 4_000);

        assert_eq!(resumed.stats(), straight.stats(), "{hazard:?}: stats");
        assert_eq!(
            resumed.q_table().as_slice(),
            straight.q_table().as_slice(),
            "{hazard:?}: Q-table"
        );
        assert_eq!(resumed.qmax_table(), straight.qmax_table(), "{hazard:?}: Qmax");
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn overwriting_a_checkpoint_keeps_the_latest_state_and_no_tmp_file() {
    let g = grid();
    let cfg = AccelConfig::default();
    let path = tmp("overwrite");
    let mut a = QLearningAccel::<Q8_8>::new(&g, cfg);
    a.train_samples(&g, 2_000);
    a.save_checkpoint(&path).expect("first save");
    a.train_samples(&g, 3_000);
    a.save_checkpoint(&path).expect("overwrite");

    let mut b = QLearningAccel::<Q8_8>::new(&g, cfg);
    b.restore_checkpoint(&path).expect("restore");
    assert_eq!(b.stats().samples, 5_000, "latest save wins");
    assert_eq!(b.q_table().as_slice(), a.q_table().as_slice());
    let tmp_sibling = {
        let mut os = path.clone().into_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    };
    assert!(!tmp_sibling.exists(), "atomic write must clean up its tmp");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn damaged_files_are_refused_and_leave_the_engine_untouched() {
    let g = grid();
    let cfg = AccelConfig::default();
    let mut a = QLearningAccel::<Q8_8>::new(&g, cfg);
    a.train_samples(&g, 1_000);
    let path = tmp("damage");
    a.save_checkpoint(&path).expect("save");
    let good = std::fs::read(&path).unwrap();

    let restore_bytes = |bytes: &[u8]| {
        std::fs::write(&path, bytes).unwrap();
        let mut fresh = QLearningAccel::<Q8_8>::new(&g, cfg);
        let err = fresh.restore_checkpoint(&path).unwrap_err();
        // All-or-nothing: the failed restore must not have moved the
        // engine off its reset state.
        assert_eq!(fresh.stats().samples, 0, "engine touched by failed restore");
        err
    };

    // Truncation to a non-word length.
    assert!(matches!(
        restore_bytes(&good[..good.len() - 3]),
        CheckpointError::Truncated
    ));
    // Dropping the whole CRC word: the previous word cannot match.
    assert!(matches!(
        restore_bytes(&good[..good.len() - 8]),
        CheckpointError::BadCrc
    ));
    // One flipped payload bit.
    let mut corrupt = good.clone();
    corrupt[40] ^= 0x10;
    assert!(matches!(restore_bytes(&corrupt), CheckpointError::BadCrc));
    // Wrong magic, CRC re-fixed so the magic check itself is reached.
    let mut magic = good.clone();
    magic[0] ^= 0xFF;
    fix_crc(&mut magic);
    assert!(matches!(restore_bytes(&magic), CheckpointError::BadMagic));
    // Future format version, CRC re-fixed.
    let mut version = good.clone();
    version[8..16].copy_from_slice(&99u64.to_le_bytes());
    fix_crc(&mut version);
    assert!(matches!(
        restore_bytes(&version),
        CheckpointError::BadVersion { found: 99 }
    ));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn shape_and_format_mismatches_are_typed() {
    let g = grid();
    let cfg = AccelConfig::default();
    let mut a = QLearningAccel::<Q8_8>::new(&g, cfg);
    a.train_samples(&g, 500);
    let path = tmp("mismatch");
    a.save_checkpoint(&path).expect("save");

    // Same format, different world.
    let small = GridWorld::builder(4, 4).goal(3, 3).build();
    let mut wrong_world = QLearningAccel::<Q8_8>::new(&small, cfg);
    assert!(matches!(
        wrong_world.restore_checkpoint(&path),
        Err(CheckpointError::Mismatch { field: "num_states", .. })
    ));

    // Same world, different value format.
    let mut wrong_format = QLearningAccel::<Q16_16>::new(&g, cfg);
    assert!(matches!(
        wrong_format.restore_checkpoint(&path),
        Err(CheckpointError::Mismatch { field: "value format", .. })
    ));

    // Missing file surfaces the io error.
    let mut fresh = QLearningAccel::<Q8_8>::new(&g, cfg);
    let missing = tmp("never-written");
    match fresh.restore_checkpoint(&missing) {
        Err(CheckpointError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::NotFound)
        }
        other => panic!("expected Io(NotFound), got {other:?}"),
    }

    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Cluster-era durability: orphaned staging files and lease fencing
// (DESIGN.md §2.16).

#[test]
fn durable_batch_cleans_planted_orphan_tmp_and_still_resumes_exactly() {
    use qtaccel_accel::{AccelConfig, IndependentPipelines};
    use qtaccel_envs::PartitionedGrid;
    let mut rng = qtaccel_hdl::lfsr::Lfsr32::new(21);
    let part = PartitionedGrid::new(16, 16, 2, 2, 10, ActionSet::Four, &mut rng);
    let dir = std::env::temp_dir().join(format!(
        "qtaccel-orphan-tmp-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let mut full = IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
    full.train_batch(part.partitions(), 40_000);

    // First durable leg, then simulate a kill mid-save: plant an
    // orphaned staging file exactly where atomic_write stages.
    let mut leg1 = IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
    leg1.train_batch_durable(part.partitions(), 24_000, &dir, 4_096)
        .expect("leg 1");
    std::fs::write(dir.join("shard0.ckpt.tmp"), b"half-written garbage").expect("plant orphan");

    // The resume leg must sweep the orphan, ignore it as state, and
    // still finish bit-identical to the uninterrupted reference.
    let mut leg2 = IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
    let r2 = leg2
        .train_batch_durable(part.partitions(), 40_000, &dir, 4_096)
        .expect("leg 2 despite orphan");
    assert_eq!(r2.stats.samples, 40_000);
    assert!(
        !dir.join("shard0.ckpt.tmp").exists(),
        "orphan staging file must be swept"
    );
    for i in 0..4 {
        assert_eq!(leg2.q_table(i), full.q_table(i), "bank {i} q");
        assert_eq!(leg2.qmax_table(i), full.qmax_table(i), "bank {i} qmax");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lease_epoch_survives_the_checkpoint_round_trip() {
    let g = grid();
    let cfg = AccelConfig::default().with_seed(0x1EA5E);
    let mut a = qtaccel_accel::AccelPipeline::<Q8_8>::new(&g, cfg, 0);
    a.run_samples(&g, 1_000);
    assert_eq!(a.lease_epoch(), 0, "non-cluster runs stay at epoch 0");
    a.set_lease_epoch(3);
    let path = tmp("epoch");
    a.save_checkpoint(&path).expect("save");
    let mut b = qtaccel_accel::AccelPipeline::<Q8_8>::new(&g, cfg, 0);
    b.restore_checkpoint(&path).expect("restore");
    assert_eq!(b.lease_epoch(), 3, "epoch round-trips");
    assert_eq!(b.q_table(), a.q_table(), "state round-trips with it");
    // Epoch-0 checkpoints stay byte-identical to the pre-epoch format:
    // the trailing section is only written when non-zero.
    a.set_lease_epoch(0);
    let plain = a.checkpoint_bytes();
    a.set_lease_epoch(7);
    let stamped = a.checkpoint_bytes();
    assert_eq!(stamped.len(), plain.len() + 16, "tag + epoch words");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn zombie_lease_is_fenced_before_it_can_train_or_write() {
    use qtaccel_accel::{AccelConfig, IndependentPipelines, LeaseError};
    use qtaccel_envs::PartitionedGrid;
    let mut rng = qtaccel_hdl::lfsr::Lfsr32::new(5);
    let part = PartitionedGrid::new(16, 8, 2, 1, 0, ActionSet::Four, &mut rng);
    let dir = std::env::temp_dir().join(format!("qtaccel-fence-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The live assignment drives shard 0 to completion under epoch 2.
    let mut live = IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
    let done = live
        .train_shard_durable(0, part.partition(0), 20_000, 2, &dir, 4_096, |_| true)
        .expect("live lease");
    assert_eq!(done, 20_000);
    let sealed = live.q_table(0);

    // A zombie holding the superseded epoch 1 replays the lease: it
    // must be refused with the typed fencing error, and the sealed
    // state on disk must be untouched.
    let mut zombie = IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
    match zombie.train_shard_durable(0, part.partition(0), 20_000, 1, &dir, 4_096, |_| true) {
        Err(LeaseError::FencedEpoch { held: 1, found: 2 }) => {}
        other => panic!("expected FencedEpoch, got {other:?}"),
    }
    let mut check = IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
    check
        .train_shard_durable(0, part.partition(0), 20_000, 2, &dir, 4_096, |_| true)
        .expect("already-sealed lease is a no-op restore");
    assert_eq!(check.q_table(0), sealed, "zombie perturbed nothing");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_lease_resumes_after_cooperative_abandon_bit_exactly() {
    use qtaccel_accel::{AccelConfig, IndependentPipelines};
    use qtaccel_envs::PartitionedGrid;
    let mut rng = qtaccel_hdl::lfsr::Lfsr32::new(13);
    let part = PartitionedGrid::new(16, 8, 2, 1, 0, ActionSet::Four, &mut rng);
    let dir = std::env::temp_dir().join(format!("qtaccel-lease-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Reference: one uninterrupted lease.
    let mut reference = IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
    reference
        .train_shard_durable(0, part.partition(0), 30_000, 1, &dir.join("ref"), 2_048, |_| true)
        .expect("reference lease");

    // Worker 1 abandons after the first progress callback (its last
    // periodic checkpoint survives); worker 2 picks the lease up under
    // the next epoch and finishes.
    let mut w1 = IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
    let partial = w1
        .train_shard_durable(0, part.partition(0), 30_000, 1, &dir, 2_048, |_| false)
        .expect("abandoned lease");
    assert!(partial > 0 && partial < 30_000, "abandoned mid-lease at {partial}");
    let mut w2 = IndependentPipelines::<Q8_8>::new(part.partitions(), AccelConfig::default());
    let done = w2
        .train_shard_durable(0, part.partition(0), 30_000, 2, &dir, 2_048, |_| true)
        .expect("takeover lease");
    assert_eq!(done, 30_000);
    assert_eq!(w2.q_table(0), reference.q_table(0), "takeover is bit-exact");
    assert_eq!(w2.qmax_table(0), reference.qmax_table(0));
    let _ = std::fs::remove_dir_all(&dir);
}
