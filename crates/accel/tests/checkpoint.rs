//! Crash-safe checkpoint/restore: resuming from a checkpoint must
//! reproduce the straight-through run bit-exactly — for both
//! algorithms, every hazard mode, both Qmax semantics, and with the
//! executors freely mixed around the save point — and damaged or
//! mismatched checkpoint files must be refused with a typed error that
//! leaves the engine untouched.

use qtaccel_accel::checkpoint::{crc32, CheckpointError};
use qtaccel_accel::config::{AccelConfig, HazardMode};
use qtaccel_accel::qlearning::QLearningAccel;
use qtaccel_accel::sarsa::SarsaAccel;
use qtaccel_core::qtable::MaxMode;
use qtaccel_envs::{ActionSet, GridWorld};
use qtaccel_fixed::{Q16_16, Q8_8};
use std::path::PathBuf;

const HAZARDS: [HazardMode; 3] = [
    HazardMode::Forwarding,
    HazardMode::StallOnly,
    HazardMode::Ignore,
];

fn grid() -> GridWorld {
    GridWorld::builder(8, 8)
        .goal(7, 7)
        .actions(ActionSet::Four)
        .build()
}

fn tmp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "qtaccel-ckpt-{}-{name}.ckpt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Rewrite the container's trailing CRC word after tampering with the
/// payload, so the damage under test is reached instead of masked.
fn fix_crc(bytes: &mut [u8]) {
    let n = bytes.len();
    let crc = crc32(&bytes[..n - 8]) as u64;
    bytes[n - 8..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn qlearning_resume_is_bit_exact_across_hazards_and_max_modes() {
    for hazard in HAZARDS {
        for max_mode in [MaxMode::QmaxArray, MaxMode::ExactScan] {
            let g = grid();
            let cfg = AccelConfig::default()
                .with_seed(0xA5)
                .with_hazard(hazard)
                .with_max_mode(max_mode);
            // The straight-through reference mixes executors the same
            // way the legged run does around the save point.
            let mut straight = QLearningAccel::<Q8_8>::new(&g, cfg);
            straight.train_samples(&g, 7_777);
            straight.train_samples_fast(&g, 5_000);

            let path = tmp(&format!("ql-{hazard:?}-{max_mode:?}"));
            let mut first = QLearningAccel::<Q8_8>::new(&g, cfg);
            first.train_samples(&g, 7_777);
            first.save_checkpoint(&path).expect("save");
            drop(first); // the "crash"
            let mut resumed = QLearningAccel::<Q8_8>::new(&g, cfg);
            resumed.restore_checkpoint(&path).expect("restore");
            resumed.train_samples_fast(&g, 5_000);

            let label = format!("{hazard:?}/{max_mode:?}");
            assert_eq!(resumed.stats(), straight.stats(), "{label}: stats");
            assert_eq!(
                resumed.q_table().as_slice(),
                straight.q_table().as_slice(),
                "{label}: Q-table"
            );
            assert_eq!(
                resumed.qmax_table(),
                straight.qmax_table(),
                "{label}: Qmax"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn sarsa_resume_is_bit_exact_across_hazards() {
    for hazard in HAZARDS {
        let g = grid();
        let cfg = AccelConfig::default().with_seed(0x5A).with_hazard(hazard);
        let mut straight = SarsaAccel::<Q8_8>::new(&g, cfg, 0.2);
        straight.train_samples_fast(&g, 6_001);
        straight.train_samples(&g, 4_000);

        let path = tmp(&format!("sarsa-{hazard:?}"));
        let mut first = SarsaAccel::<Q8_8>::new(&g, cfg, 0.2);
        first.train_samples_fast(&g, 6_001);
        first.save_checkpoint(&path).expect("save");
        drop(first);
        let mut resumed = SarsaAccel::<Q8_8>::new(&g, cfg, 0.2);
        resumed.restore_checkpoint(&path).expect("restore");
        resumed.train_samples(&g, 4_000);

        assert_eq!(resumed.stats(), straight.stats(), "{hazard:?}: stats");
        assert_eq!(
            resumed.q_table().as_slice(),
            straight.q_table().as_slice(),
            "{hazard:?}: Q-table"
        );
        assert_eq!(resumed.qmax_table(), straight.qmax_table(), "{hazard:?}: Qmax");
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn overwriting_a_checkpoint_keeps_the_latest_state_and_no_tmp_file() {
    let g = grid();
    let cfg = AccelConfig::default();
    let path = tmp("overwrite");
    let mut a = QLearningAccel::<Q8_8>::new(&g, cfg);
    a.train_samples(&g, 2_000);
    a.save_checkpoint(&path).expect("first save");
    a.train_samples(&g, 3_000);
    a.save_checkpoint(&path).expect("overwrite");

    let mut b = QLearningAccel::<Q8_8>::new(&g, cfg);
    b.restore_checkpoint(&path).expect("restore");
    assert_eq!(b.stats().samples, 5_000, "latest save wins");
    assert_eq!(b.q_table().as_slice(), a.q_table().as_slice());
    let tmp_sibling = {
        let mut os = path.clone().into_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    };
    assert!(!tmp_sibling.exists(), "atomic write must clean up its tmp");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn damaged_files_are_refused_and_leave_the_engine_untouched() {
    let g = grid();
    let cfg = AccelConfig::default();
    let mut a = QLearningAccel::<Q8_8>::new(&g, cfg);
    a.train_samples(&g, 1_000);
    let path = tmp("damage");
    a.save_checkpoint(&path).expect("save");
    let good = std::fs::read(&path).unwrap();

    let restore_bytes = |bytes: &[u8]| {
        std::fs::write(&path, bytes).unwrap();
        let mut fresh = QLearningAccel::<Q8_8>::new(&g, cfg);
        let err = fresh.restore_checkpoint(&path).unwrap_err();
        // All-or-nothing: the failed restore must not have moved the
        // engine off its reset state.
        assert_eq!(fresh.stats().samples, 0, "engine touched by failed restore");
        err
    };

    // Truncation to a non-word length.
    assert!(matches!(
        restore_bytes(&good[..good.len() - 3]),
        CheckpointError::Truncated
    ));
    // Dropping the whole CRC word: the previous word cannot match.
    assert!(matches!(
        restore_bytes(&good[..good.len() - 8]),
        CheckpointError::BadCrc
    ));
    // One flipped payload bit.
    let mut corrupt = good.clone();
    corrupt[40] ^= 0x10;
    assert!(matches!(restore_bytes(&corrupt), CheckpointError::BadCrc));
    // Wrong magic, CRC re-fixed so the magic check itself is reached.
    let mut magic = good.clone();
    magic[0] ^= 0xFF;
    fix_crc(&mut magic);
    assert!(matches!(restore_bytes(&magic), CheckpointError::BadMagic));
    // Future format version, CRC re-fixed.
    let mut version = good.clone();
    version[8..16].copy_from_slice(&99u64.to_le_bytes());
    fix_crc(&mut version);
    assert!(matches!(
        restore_bytes(&version),
        CheckpointError::BadVersion { found: 99 }
    ));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn shape_and_format_mismatches_are_typed() {
    let g = grid();
    let cfg = AccelConfig::default();
    let mut a = QLearningAccel::<Q8_8>::new(&g, cfg);
    a.train_samples(&g, 500);
    let path = tmp("mismatch");
    a.save_checkpoint(&path).expect("save");

    // Same format, different world.
    let small = GridWorld::builder(4, 4).goal(3, 3).build();
    let mut wrong_world = QLearningAccel::<Q8_8>::new(&small, cfg);
    assert!(matches!(
        wrong_world.restore_checkpoint(&path),
        Err(CheckpointError::Mismatch { field: "num_states", .. })
    ));

    // Same world, different value format.
    let mut wrong_format = QLearningAccel::<Q16_16>::new(&g, cfg);
    assert!(matches!(
        wrong_format.restore_checkpoint(&path),
        Err(CheckpointError::Mismatch { field: "value format", .. })
    ));

    // Missing file surfaces the io error.
    let mut fresh = QLearningAccel::<Q8_8>::new(&g, cfg);
    let missing = tmp("never-written");
    match fresh.restore_checkpoint(&missing) {
        Err(CheckpointError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::NotFound)
        }
        other => panic!("expected Io(NotFound), got {other:?}"),
    }

    let _ = std::fs::remove_file(&path);
}
