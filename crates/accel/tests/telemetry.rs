//! Telemetry integration tests (DESIGN.md §2.6).
//!
//! * **Zero-cost equivalence**: attaching any sink must not change a
//!   single architectural bit — Q table, Qmax table and cycle counters
//!   are compared against the uninstrumented engine across both
//!   algorithms, every hazard mode and both executors.
//! * **Counter parity**: the fast-path executor mirrors every counter
//!   the cycle-accurate path maintains.
//! * **Pinned golden**: the Table-I |S|=64 design point's full counter
//!   dump is pinned, so any change to counter attribution is loud.
//! * **Round-trip**: the JSONL event stream and the counter dump parse
//!   back through the telemetry JSON parser with the documented schema.

use qtaccel_accel::{AccelConfig, HazardMode, QLearningAccel, SarsaAccel};
use qtaccel_envs::{ActionSet, GridWorld};
use qtaccel_fixed::Q8_8;
use qtaccel_telemetry::{json, CounterId, CountersOnly, JsonlSink, RingSink, ToJson};

fn grid() -> GridWorld {
    GridWorld::builder(8, 8).goal(7, 7).build()
}

/// The Table-I |S|=64 replica: 8x8, eight actions, the diagonal obstacle
/// band at (2,5) — the same construction as the bench crate's
/// `paper_grid(64, 8)`.
fn table1_s64() -> GridWorld {
    GridWorld::builder(8, 8)
        .goal(7, 7)
        .actions(ActionSet::Eight)
        .obstacle(2, 5)
        .build()
}

const HAZARDS: [HazardMode; 3] = [
    HazardMode::Forwarding,
    HazardMode::StallOnly,
    HazardMode::Ignore,
];

#[test]
fn q_learning_is_bit_identical_with_telemetry_attached() {
    for hazard in HAZARDS {
        let cfg = AccelConfig::default().with_seed(11).with_hazard(hazard);
        for fast in [false, true] {
            let g = grid();
            let mut plain = QLearningAccel::<Q8_8>::new(&g, cfg);
            let mut traced =
                QLearningAccel::<Q8_8, RingSink>::with_sink(&g, cfg, RingSink::new(256));
            let (s0, s1) = if fast {
                (
                    plain.train_samples_fast(&g, 6_000),
                    traced.train_samples_fast(&g, 6_000),
                )
            } else {
                (plain.train_samples(&g, 6_000), traced.train_samples(&g, 6_000))
            };
            assert_eq!(s0, s1, "{hazard:?} fast={fast}");
            assert_eq!(plain.q_table(), traced.q_table(), "{hazard:?} fast={fast}");
            assert_eq!(
                plain.qmax_table(),
                traced.qmax_table(),
                "{hazard:?} fast={fast}"
            );
        }
    }
}

#[test]
fn sarsa_is_bit_identical_with_telemetry_attached() {
    for hazard in HAZARDS {
        let cfg = AccelConfig::default().with_seed(23).with_hazard(hazard);
        for fast in [false, true] {
            let g = grid();
            let mut plain = SarsaAccel::<Q8_8>::new(&g, cfg, 0.2);
            let mut traced =
                SarsaAccel::<Q8_8, RingSink>::with_sink(&g, cfg, 0.2, RingSink::new(256));
            let (s0, s1) = if fast {
                (
                    plain.train_samples_fast(&g, 6_000),
                    traced.train_samples_fast(&g, 6_000),
                )
            } else {
                (plain.train_samples(&g, 6_000), traced.train_samples(&g, 6_000))
            };
            assert_eq!(s0, s1, "{hazard:?} fast={fast}");
            assert_eq!(plain.q_table(), traced.q_table(), "{hazard:?} fast={fast}");
            assert_eq!(
                plain.qmax_table(),
                traced.qmax_table(),
                "{hazard:?} fast={fast}"
            );
        }
    }
}

#[test]
fn counters_match_between_cycle_and_fast_paths() {
    for hazard in HAZARDS {
        let cfg = AccelConfig::default().with_seed(5).with_hazard(hazard);
        let g = grid();
        let mut cyc = QLearningAccel::<Q8_8, CountersOnly>::with_sink(&g, cfg, CountersOnly);
        let mut fast = QLearningAccel::<Q8_8, CountersOnly>::with_sink(&g, cfg, CountersOnly);
        assert_eq!(cyc.train_samples(&g, 8_000), fast.train_samples_fast(&g, 8_000));
        for id in CounterId::ALL {
            assert_eq!(
                cyc.counters().get(id),
                fast.counters().get(id),
                "{hazard:?} {}",
                id.name()
            );
        }

        let mut scyc = SarsaAccel::<Q8_8, CountersOnly>::with_sink(&g, cfg, 0.3, CountersOnly);
        let mut sfast = SarsaAccel::<Q8_8, CountersOnly>::with_sink(&g, cfg, 0.3, CountersOnly);
        assert_eq!(
            scyc.train_samples(&g, 8_000),
            sfast.train_samples_fast(&g, 8_000)
        );
        for id in CounterId::ALL {
            assert_eq!(
                scyc.counters().get(id),
                sfast.counters().get(id),
                "sarsa {hazard:?} {}",
                id.name()
            );
        }
    }
}

#[test]
fn counter_invariants_tie_out_against_cycle_stats() {
    for hazard in HAZARDS {
        let cfg = AccelConfig::default().with_seed(41).with_hazard(hazard);
        let g = grid();
        let mut eng = SarsaAccel::<Q8_8, CountersOnly>::with_sink(&g, cfg, 0.25, CountersOnly);
        let stats = eng.train_samples(&g, 9_000);
        let b = eng.counters();
        assert_eq!(b.total_stalls(), stats.stalls, "{hazard:?}");
        assert_eq!(b.total_forwards(), stats.forwards, "{hazard:?}");
        assert_eq!(b.get(CounterId::SamplesRetired), stats.samples, "{hazard:?}");
        assert_eq!(b.get(CounterId::FillCycles), stats.fill_bubbles, "{hazard:?}");
        // Forwarding lookups resolve to exactly one of {hit, miss}.
        let lookups = b.get(CounterId::FwdQHit)
            + b.get(CounterId::FwdQmaxHit)
            + b.get(CounterId::FwdMiss);
        match hazard {
            HazardMode::Forwarding => assert!(lookups > 0, "forwarding must look up"),
            _ => assert_eq!(lookups, 0, "{hazard:?} has no forwarding network"),
        }
        assert!(b.get(CounterId::QReads) >= stats.samples, "one Q read per update");
        assert!(b.get(CounterId::LfsrDraws) > 0, "ε-greedy draws every cycle");
    }
}

#[test]
fn table1_s64_counter_dump_is_pinned() {
    let g = table1_s64();
    let cfg = AccelConfig::default().with_seed(2020);
    let mut eng = QLearningAccel::<Q8_8, CountersOnly>::with_sink(&g, cfg, CountersOnly);
    let stats = eng.train_samples_fast(&g, 10_000);
    let b = eng.counters();
    // Pinned against the seed=2020 run: any change to counter
    // attribution (or to the engines' RNG consumption order) shows up
    // here as a named counter diff rather than a silent drift.
    const GOLDEN: [(CounterId, u64); CounterId::COUNT] = [
        (CounterId::SamplesRetired, 10_000),
        (CounterId::FillCycles, 3),
        (CounterId::StallStage1, 0),
        (CounterId::StallStage2, 0),
        (CounterId::FwdQHit, 542),
        (CounterId::FwdQmaxHit, 169),
        (CounterId::FwdMiss, 19_289),
        (CounterId::QReads, 10_000),
        (CounterId::QmaxReads, 20_000),
        (CounterId::QWrites, 10_000),
        (CounterId::QmaxWrites, 1_529),
        (CounterId::PortConflicts, 0),
        (CounterId::LfsrDraws, 10_039),
    ];
    for (id, want) in GOLDEN {
        assert_eq!(b.get(id), want, "{}", id.name());
    }
    assert_eq!(b.total_stalls(), stats.stalls);
    assert_eq!(b.total_forwards(), stats.forwards);
    // The forwarding design stalls never: hit or miss, one lookup per
    // Q read and per update-side Qmax read.
    assert_eq!(
        b.get(CounterId::FwdQHit) + b.get(CounterId::FwdQmaxHit) + b.get(CounterId::FwdMiss),
        b.get(CounterId::QReads) + b.get(CounterId::QmaxReads) / 2,
        "RMW read halves bypass the forwarding lookup"
    );
}

#[test]
fn jsonl_event_stream_and_counter_dump_round_trip() {
    let g = grid();
    let cfg = AccelConfig::default()
        .with_seed(9)
        .with_hazard(HazardMode::StallOnly);
    let mut eng =
        SarsaAccel::<Q8_8, JsonlSink<Vec<u8>>>::with_sink(&g, cfg, 0.2, JsonlSink::new(Vec::new()));
    for _ in 0..200 {
        eng.step(&g);
    }
    let counters_json = eng.counters().to_json().pretty();
    let bytes = eng.into_sink().into_inner();
    let text = String::from_utf8(bytes).expect("JSONL is UTF-8");

    let (mut stages, mut commits, mut stall_pairs) = (0u64, 0u64, 0i64);
    for line in text.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        let t = v.get("t").and_then(|t| t.as_str()).expect("tagged event");
        assert!(
            matches!(
                t,
                "stage" | "hazard" | "stall_begin" | "stall_end" | "forward" | "commit"
            ),
            "unknown event type {t}"
        );
        assert!(v.get("cycle").and_then(|c| c.as_u64()).is_some(), "{line}");
        match t {
            "stage" => {
                stages += 1;
                let s = v.get("stage").and_then(|s| s.as_u64()).unwrap();
                assert!((1..=4).contains(&s));
            }
            "commit" => {
                let mem = v.get("mem").and_then(|m| m.as_str()).unwrap();
                assert!(mem == "q" || mem == "qmax", "{mem}");
                commits += 1;
            }
            "stall_begin" => stall_pairs += 1,
            "stall_end" => stall_pairs -= 1,
            _ => {}
        }
    }
    assert_eq!(stages, 4 * 200, "four stage slots per retired iteration");
    assert!(commits > 0, "in-flight writes must commit within 200 cycles");
    assert_eq!(stall_pairs, 0, "every stall_begin has a matching stall_end");

    // The pretty counter dump re-parses with one field per register.
    let parsed = json::parse(&counters_json).expect("counter dump parses");
    for id in CounterId::ALL {
        assert!(
            parsed.get(id.name()).and_then(|v| v.as_u64()).is_some(),
            "missing counter {}",
            id.name()
        );
    }
    assert_eq!(
        parsed
            .get(CounterId::SamplesRetired.name())
            .unwrap()
            .as_u64()
            .unwrap(),
        200
    );
}
