//! Quantized stored Q-table format (DESIGN.md §2.14): bit-exactness of
//! every executor pair at 4/6/8 stored bits, the on-grid invariant that
//! makes the packed fast path lossless, quantized checkpoint
//! round-trips, stored-rail health probing, code-domain SEU strikes,
//! and the zero-cost guarantee for unquantized configs.

use qtaccel_accel::config::{AccelConfig, HazardMode};
use qtaccel_accel::pipeline::FastLayout;
use qtaccel_accel::qlearning::QLearningAccel;
use qtaccel_accel::sarsa::SarsaAccel;
use qtaccel_accel::FaultConfig;
use qtaccel_core::trainer::{RefTrainer, TrainerConfig};
use qtaccel_envs::{ActionSet, GridWorld};
use qtaccel_fixed::{QuantPolicy, Q8_8};
use qtaccel_telemetry::{HealthConfig, HealthSink};
use std::path::PathBuf;

const HAZARDS: [HazardMode; 3] = [
    HazardMode::Forwarding,
    HazardMode::StallOnly,
    HazardMode::Ignore,
];

fn formats() -> [QuantPolicy; 3] {
    [QuantPolicy::q8(), QuantPolicy::q6(), QuantPolicy::q4()]
}

fn grid(side: u32) -> GridWorld {
    GridWorld::builder(side, side)
        .goal(side - 1, side - 1)
        .actions(ActionSet::Four)
        .build()
}

fn tmp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "qtaccel-quant-{}-{name}.ckpt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn assert_tables_equal<S1, S2>(
    a: &QLearningAccel<Q8_8, S1>,
    b: &QLearningAccel<Q8_8, S2>,
    label: &str,
) where
    S1: qtaccel_telemetry::TraceSink,
    S2: qtaccel_telemetry::TraceSink,
{
    assert_eq!(
        a.q_table().as_slice(),
        b.q_table().as_slice(),
        "{label}: Q-table diverged"
    );
    assert_eq!(a.qmax_table(), b.qmax_table(), "{label}: Qmax diverged");
}

/// The bit-exactness matrix: both algorithms × every hazard mode ×
/// cycle-accurate vs fast executor, at each stored width. Under
/// Forwarding the fast side routes to the packed executor; the other
/// hazard modes take the general fast path with the quantize hook.
#[test]
fn quantized_runs_are_bit_exact_q_learning() {
    let g = grid(8);
    for policy in formats() {
        for hazard in HAZARDS {
            let cfg = AccelConfig::default().with_seed(0x51).with_hazard(hazard);
            let mut slow = QLearningAccel::<Q8_8>::new(&g, cfg);
            let mut fast = QLearningAccel::<Q8_8>::new(&g, cfg);
            slow.enable_quant(policy);
            fast.enable_quant(policy);
            let ss = slow.train_samples(&g, 12_000);
            let sf = fast.train_samples_fast(&g, 12_000);
            let label = format!("{} {hazard:?}", policy.format_name());
            assert_eq!(ss, sf, "{label}: CycleStats diverged");
            assert_tables_equal(&slow, &fast, &label);
        }
    }
}

#[test]
fn quantized_runs_are_bit_exact_sarsa() {
    let g = grid(8);
    for policy in formats() {
        for hazard in HAZARDS {
            let cfg = AccelConfig::default().with_seed(0x52).with_hazard(hazard);
            let mut slow = SarsaAccel::<Q8_8>::new(&g, cfg, 0.2);
            let mut fast = SarsaAccel::<Q8_8>::new(&g, cfg, 0.2);
            slow.enable_quant(policy);
            fast.enable_quant(policy);
            let ss = slow.train_samples(&g, 12_000);
            let sf = fast.train_samples_fast(&g, 12_000);
            let label = format!("{} {hazard:?}", policy.format_name());
            assert_eq!(ss, sf, "{label}: CycleStats diverged");
            assert_eq!(
                slow.q_table().as_slice(),
                fast.q_table().as_slice(),
                "{label}: Q-table diverged"
            );
            assert_eq!(slow.qmax_table(), fast.qmax_table(), "{label}: Qmax diverged");
        }
    }
}

/// The packed executor (ActionMajor/Interleaved route under quant)
/// against the general fast executor on the same workload: forcing
/// StateMajor keeps quantized training on the general path, so the two
/// specialized loops check each other directly.
#[test]
fn packed_executor_matches_general_fast_path() {
    let g = grid(9);
    for policy in formats() {
        let cfg = AccelConfig::default().with_seed(0x53);
        let mut packed = QLearningAccel::<Q8_8>::new(&g, cfg);
        let mut general = QLearningAccel::<Q8_8>::new(&g, cfg);
        packed.enable_quant(policy);
        general.enable_quant(policy);
        let sp = packed.train_samples_fast_planned(&g, 15_000, FastLayout::ActionMajor);
        let sg = general.train_samples_fast_planned(&g, 15_000, FastLayout::StateMajor);
        let label = policy.format_name();
        assert_eq!(sp, sg, "{label}: CycleStats diverged");
        assert_tables_equal(&packed, &general, &label);
    }
}

/// Executors interleave freely mid-run under quantization: the packed
/// executor's entry/exit protocol must hand the in-flight window and
/// the dither stream back losslessly.
#[test]
fn quantized_executors_interleave_freely() {
    let g = grid(7);
    let policy = QuantPolicy::q8();
    let cfg = AccelConfig::default().with_seed(0x54);
    let mut pure = QLearningAccel::<Q8_8>::new(&g, cfg);
    let mut mixed = QLearningAccel::<Q8_8>::new(&g, cfg);
    pure.enable_quant(policy);
    mixed.enable_quant(policy);
    let stats_pure = pure.train_samples(&g, 9_000);
    mixed.train_samples(&g, 2_000);
    mixed.train_samples_fast_planned(&g, 3_000, FastLayout::ActionMajor);
    mixed.train_samples(&g, 1_000);
    let stats_mixed = mixed.train_samples_fast_planned(&g, 3_000, FastLayout::StateMajor);
    assert_eq!(stats_pure, stats_mixed, "CycleStats diverged");
    assert_tables_equal(&pure, &mixed, "mixed executors");
}

/// Transitivity to the sequential software reference: the RefTrainer's
/// quantize hook draws the same dither stream in the same per-sample
/// order, so its table matches the hardware pipeline bit-for-bit.
#[test]
fn quantized_fast_path_matches_golden_reference() {
    let g = grid(8);
    for policy in formats() {
        for seed in [1u64, 7, 42] {
            let mut hw = QLearningAccel::<Q8_8>::new(&g, AccelConfig::default().with_seed(seed));
            hw.enable_quant(policy);
            let mut sw = RefTrainer::<Q8_8, _>::new(
                g.clone(),
                TrainerConfig::q_learning().with_seed(seed),
            );
            sw.enable_quant(policy);
            hw.train_samples_fast(&g, 20_000);
            sw.run_samples(20_000);
            assert_eq!(
                hw.q_table().as_slice(),
                sw.q().as_slice(),
                "{} seed {seed}: pipeline diverged from sequential reference",
                policy.format_name()
            );
        }
    }
}

/// The on-grid invariant, stated directly: after any quantized run,
/// every architectural Q word sits exactly on the stored grid, and the
/// packed BRAM image round-trips losslessly.
#[test]
fn quantized_tables_stay_on_grid_and_pack_losslessly() {
    let g = grid(8);
    for policy in formats() {
        let mut a = QLearningAccel::<Q8_8>::new(&g, AccelConfig::default().with_seed(0x55));
        a.enable_quant(policy);
        a.train_samples_fast(&g, 25_000);
        let q = a.q_table();
        for (i, &v) in q.as_slice().iter().enumerate() {
            assert!(
                policy.try_code(v).is_some(),
                "{}: entry {i} = {} off the stored grid",
                policy.format_name(),
                v.to_f64()
            );
        }
        let packed = a.packed_q_table().expect("quantized engine packs");
        assert_eq!(packed.policy(), &policy);
        assert_eq!(
            packed.to_qtable::<Q8_8>().as_slice(),
            q.as_slice(),
            "{}: packed image must round-trip losslessly",
            policy.format_name()
        );
    }
}

/// Mid-run checkpoint round-trip with quantization active: the quant
/// section (policy + dither-LFSR phase) restores bit-exactly, including
/// into a fresh engine that never called `enable_quant`, and resume
/// across mixed executors reproduces the straight-through run.
#[test]
fn quantized_checkpoint_roundtrip_is_bit_exact() {
    for policy in [QuantPolicy::q8(), QuantPolicy::q4()] {
        for hazard in HAZARDS {
            let g = grid(8);
            let cfg = AccelConfig::default().with_seed(0xB7).with_hazard(hazard);
            let mut straight = QLearningAccel::<Q8_8>::new(&g, cfg);
            straight.enable_quant(policy);
            straight.train_samples(&g, 6_123);
            straight.train_samples_fast(&g, 5_000);

            let path = tmp(&format!("{}-{hazard:?}", policy.format_name()));
            let mut first = QLearningAccel::<Q8_8>::new(&g, cfg);
            first.enable_quant(policy);
            first.train_samples(&g, 6_123);
            first.save_checkpoint(&path).expect("save");
            drop(first); // the "crash"

            // The resumed engine adopts the stored format from the file.
            let mut resumed = QLearningAccel::<Q8_8>::new(&g, cfg);
            assert!(resumed.quant().is_none());
            resumed.restore_checkpoint(&path).expect("restore");
            assert_eq!(resumed.quant(), Some(&policy), "policy must be adopted");
            resumed.train_samples_fast(&g, 5_000);

            let label = format!("{}/{hazard:?}", policy.format_name());
            assert_eq!(resumed.stats(), straight.stats(), "{label}: stats");
            assert_tables_equal(&resumed, &straight, &label);
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// An unquantized checkpoint restored into a previously quantized
/// engine clears the stored format — the file is the source of truth.
#[test]
fn unquantized_checkpoint_clears_quant_on_restore() {
    let g = grid(6);
    let cfg = AccelConfig::default().with_seed(0xC1);
    let mut plain = QLearningAccel::<Q8_8>::new(&g, cfg);
    plain.train_samples(&g, 3_000);
    let path = tmp("plain");
    plain.save_checkpoint(&path).expect("save");

    let mut quantized = QLearningAccel::<Q8_8>::new(&g, cfg);
    quantized.enable_quant(QuantPolicy::q8());
    quantized.restore_checkpoint(&path).expect("restore");
    assert!(quantized.quant().is_none(), "restore must clear quant");
    quantized.train_samples_fast(&g, 4_000);
    plain.train_samples_fast(&g, 4_000);
    assert_tables_equal(&quantized, &plain, "post-restore runs");
    let _ = std::fs::remove_file(&path);
}

/// Satellite 3: with quantization active the health probe's rail
/// comparators watch the *stored* rails. A 4-bit table saturates and
/// rides its narrow rails constantly; the same workload at 16 bits
/// never comes near ±2^15 — so the counter separates the two regimes.
#[test]
fn health_rail_proximity_uses_stored_rails() {
    let g = grid(8);
    let cfg = AccelConfig::default().with_seed(0x61);
    let sink = || {
        HealthSink::new(HealthConfig {
            stride: 1,
            near_rail_bits: 2,
        })
    };
    let mut quantized = QLearningAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, sink());
    quantized.enable_quant(QuantPolicy::q4());
    quantized.train_samples_fast(&g, 40_000);
    let near_q4 = quantized.health_probe().expect("probe").near_rail_q();

    let mut wide = QLearningAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, sink());
    wide.train_samples_fast(&g, 40_000);
    let near_w16 = wide.health_probe().expect("probe").near_rail_q();

    assert!(
        near_q4 > 0,
        "4-bit training saturates at the stored rails; the probe must see it"
    );
    assert_eq!(
        near_w16, 0,
        "the 16-bit run never approaches ±2^15; stored-rail accounting must not \
         inherit the quantized width"
    );
    // Probes stay engine-exact under quantization too.
    let mut cyc = QLearningAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, sink());
    cyc.enable_quant(QuantPolicy::q4());
    cyc.train_samples(&g, 40_000);
    assert_eq!(
        cyc.into_sink().into_probe(),
        quantized.into_sink().into_probe(),
        "probe state must be bit-exact across executors under quant"
    );
}

/// SEU strikes against a quantized table land in the code domain: a
/// flipped stored bit moves the word to another grid point, never off
/// the grid — so the packed executor's lossless resync always holds,
/// even mid-campaign.
#[test]
fn fault_strikes_stay_in_the_code_domain() {
    let g = grid(8);
    let policy = QuantPolicy::q6();
    let cfg = AccelConfig::default().with_seed(0x71);
    let mut a = QLearningAccel::<Q8_8>::new(&g, cfg);
    a.enable_quant(policy);
    a.enable_faults(FaultConfig::default().with_seu_rate(2e-3));
    a.train_samples(&g, 20_000);
    let stats = a.fault_stats().expect("fault runtime attached");
    assert!(stats.injected_q > 0, "campaign must have struck");
    for (i, &v) in a.q_table().as_slice().iter().enumerate() {
        assert!(
            policy.try_code(v).is_some(),
            "struck entry {i} = {} left the stored grid",
            v.to_f64()
        );
    }
    // The direct injection hook folds any requested bit into the code
    // domain the same way.
    let mut b = QLearningAccel::<Q8_8>::new(&g, cfg);
    b.enable_quant(policy);
    b.train_samples(&g, 1_000);
    b.inject_q_bit_flip(0, 0, 13);
    assert!(
        policy.try_code(b.q_table().get(0, 0)).is_some(),
        "direct injection must stay on the stored grid"
    );
}

/// Narrow formats still learn: an 8-bit table on the 8×8 grid reaches a
/// usable greedy policy (the formats experiment quantifies the full
/// Pareto; this is the smoke-level floor).
#[test]
fn eight_bit_training_learns_a_usable_policy() {
    let g = grid(8);
    let mut a = QLearningAccel::<Q8_8>::new(&g, AccelConfig::default().with_seed(0x81));
    a.enable_quant(QuantPolicy::q8());
    a.train_samples_fast(&g, 300_000);
    let opt =
        qtaccel_core::eval::step_optimality(&g, &a.greedy_policy(), &g.shortest_distances());
    assert!(opt > 0.85, "8-bit step-optimality {opt}");
}

/// Unquantized configs pay nothing: no policy, no packed image, and the
/// resource model reports the full-width baseline unchanged.
#[test]
fn unquantized_configs_are_untouched() {
    // Large enough that 16-bit and 8-bit words land in different BRAM
    // depth buckets.
    let g = grid(256);
    let plain = QLearningAccel::<Q8_8>::new(&g, AccelConfig::default());
    assert!(plain.quant().is_none());
    assert!(plain.packed_q_table().is_none());
    let mut quantized = QLearningAccel::<Q8_8>::new(&g, AccelConfig::default());
    quantized.enable_quant(QuantPolicy::q8());
    let (rp, rq) = (plain.resources(), quantized.resources());
    assert!(
        rq.report.bram36 < rp.report.bram36,
        "8-bit storage must narrow the BRAM footprint ({} vs {})",
        rq.report.bram36,
        rp.report.bram36
    );
    assert_eq!(rp.report.dsp, rq.report.dsp, "datapath multipliers unchanged");
}

/// `enable_quant` is a pre-training switch.
#[test]
#[should_panic(expected = "enable_quant before training starts")]
fn enable_quant_rejects_mid_run_adoption() {
    let g = grid(4);
    let mut a = QLearningAccel::<Q8_8>::new(&g, AccelConfig::default());
    a.train_samples(&g, 10);
    a.enable_quant(QuantPolicy::q8());
}
