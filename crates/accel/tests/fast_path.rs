//! Bit-exactness of the fast-path executor against the cycle-accurate
//! engine: same Q-table, same Qmax table, same CycleStats, across both
//! algorithms, every hazard mode, both Qmax semantics, and randomized
//! grid shapes — plus free interleaving of the two executors on one
//! pipeline instance.

use qtaccel_accel::config::{AccelConfig, HazardMode};
use qtaccel_accel::multi::IndependentPipelines;
use qtaccel_accel::pipeline::AccelPipeline;
use qtaccel_accel::qlearning::QLearningAccel;
use qtaccel_accel::sarsa::SarsaAccel;
use qtaccel_core::policy::Policy;
use qtaccel_core::qtable::MaxMode;
use qtaccel_core::trainer::TrainerConfig;
use qtaccel_envs::{ActionSet, GridWorld, PartitionedGrid};
use qtaccel_fixed::{Q16_16, Q8_8};
use qtaccel_hdl::lfsr::Lfsr32;
use qtaccel_hdl::pipeline::CycleStats;
use qtaccel_hdl::rng::RngSource;

const HAZARDS: [HazardMode; 3] = [
    HazardMode::Forwarding,
    HazardMode::StallOnly,
    HazardMode::Ignore,
];

/// A grid whose shape is derived from the seed: 2..=9 cells per side,
/// four- or eight-action set, goal in the far corner.
fn random_grid(rng: &mut Lfsr32) -> GridWorld {
    let w = 2 + rng.below(8);
    let h = 2 + rng.below(8);
    let actions = if rng.below(2) == 0 {
        ActionSet::Four
    } else {
        ActionSet::Eight
    };
    GridWorld::builder(w, h)
        .goal(w - 1, h - 1)
        .actions(actions)
        .build()
}

fn assert_identical<V: qtaccel_fixed::QValue>(
    slow: &AccelPipeline<V>,
    fast: &AccelPipeline<V>,
    ss: CycleStats,
    sf: CycleStats,
    label: &str,
) {
    assert_eq!(ss, sf, "{label}: CycleStats diverged");
    assert_eq!(
        slow.q_table().as_slice(),
        fast.q_table().as_slice(),
        "{label}: Q-table diverged"
    );
    let (qm_s, qm_f) = (slow.qmax_table(), fast.qmax_table());
    for st in 0..qm_s.len() as qtaccel_envs::State {
        assert_eq!(qm_s.get(st), qm_f.get(st), "{label}: Qmax diverged at state {st}");
    }
}

#[test]
fn fast_path_is_bit_exact_q_learning_all_hazards() {
    for seed in [1u64, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
        let mut shape_rng = Lfsr32::new(seed.wrapping_mul(0x9E37_79B9) as u32 | 1);
        let g = random_grid(&mut shape_rng);
        for hazard in HAZARDS {
            let cfg = AccelConfig::default().with_seed(seed).with_hazard(hazard);
            let mut slow = QLearningAccel::<Q8_8>::new(&g, cfg);
            let mut fast = QLearningAccel::<Q8_8>::new(&g, cfg);
            let ss = slow.train_samples(&g, 12_000);
            let sf = fast.train_samples_fast(&g, 12_000);
            assert_eq!(ss, sf, "seed {seed} {hazard:?}: CycleStats diverged");
            assert_eq!(
                slow.q_table().as_slice(),
                fast.q_table().as_slice(),
                "seed {seed} {hazard:?}: Q-table diverged"
            );
            let (qm_s, qm_f) = (slow.qmax_table(), fast.qmax_table());
            for st in 0..qm_s.len() as qtaccel_envs::State {
                assert_eq!(qm_s.get(st), qm_f.get(st), "seed {seed} {hazard:?}: Qmax diverged");
            }
        }
    }
}

#[test]
fn fast_path_is_bit_exact_sarsa_all_hazards() {
    for seed in [4u64, 6, 7, 9, 11, 17, 23, 42] {
        let mut shape_rng = Lfsr32::new(seed.wrapping_mul(0x6C62_272E) as u32 | 1);
        let g = random_grid(&mut shape_rng);
        let eps = 0.05 + (seed % 5) as f64 * 0.1;
        for hazard in HAZARDS {
            let cfg = AccelConfig::default().with_seed(seed).with_hazard(hazard);
            let mut slow = SarsaAccel::<Q8_8>::new(&g, cfg, eps);
            let mut fast = SarsaAccel::<Q8_8>::new(&g, cfg, eps);
            let ss = slow.train_samples(&g, 12_000);
            let sf = fast.train_samples_fast(&g, 12_000);
            assert_eq!(ss, sf, "seed {seed} {hazard:?}: CycleStats diverged");
            assert_eq!(
                slow.q_table().as_slice(),
                fast.q_table().as_slice(),
                "seed {seed} {hazard:?}: Q-table diverged"
            );
        }
    }
}

#[test]
fn fast_path_is_bit_exact_exact_scan_and_policies() {
    // Exercise the multi-cycle row scan and every synthesizable policy
    // pairing, including the stage-2 random-read path.
    let policies: [(Policy, Policy, bool); 4] = [
        (Policy::Random, Policy::Greedy, false),
        (Policy::Greedy, Policy::Greedy, false),
        (
            Policy::EpsilonGreedy { epsilon: 0.3 },
            Policy::Random,
            false,
        ),
        (
            Policy::EpsilonGreedy { epsilon: 0.15 },
            Policy::EpsilonGreedy { epsilon: 0.15 },
            true,
        ),
    ];
    for seed in [19u64, 31, 47] {
        let mut shape_rng = Lfsr32::new((seed as u32).wrapping_mul(2_654_435_761) | 1);
        let g = random_grid(&mut shape_rng);
        for hazard in HAZARDS {
            for max_mode in [MaxMode::QmaxArray, MaxMode::ExactScan] {
                for (behavior, update, fwd_next) in policies {
                    let mut cfg = AccelConfig::default()
                        .with_seed(seed)
                        .with_hazard(hazard)
                        .with_max_mode(max_mode);
                    cfg.trainer.behavior = behavior;
                    cfg.trainer.update = update;
                    cfg.trainer.forward_next_action = fwd_next;
                    let mut slow = AccelPipeline::<Q16_16>::new(&g, cfg, 0);
                    let mut fast = AccelPipeline::<Q16_16>::new(&g, cfg, 0);
                    let ss = slow.run_samples(&g, 6_000);
                    let sf = fast.run_samples_fast(&g, 6_000);
                    assert_identical(
                        &slow,
                        &fast,
                        ss,
                        sf,
                        &format!("seed {seed} {hazard:?} {max_mode:?} {behavior:?}/{update:?}"),
                    );
                }
            }
        }
    }
}

#[test]
fn executors_interleave_freely() {
    // slow → fast → slow → fast on one instance must equal a pure
    // cycle-accurate run: the entry/exit protocols preserve in-flight
    // state exactly.
    for hazard in HAZARDS {
        let g = GridWorld::builder(3, 5).goal(2, 4).build();
        let cfg = AccelConfig::default().with_seed(97).with_hazard(hazard);
        let mut pure = QLearningAccel::<Q8_8>::new(&g, cfg);
        let mut mixed = QLearningAccel::<Q8_8>::new(&g, cfg);
        let stats_pure = pure.train_samples(&g, 9_000);
        mixed.train_samples(&g, 2_000);
        mixed.train_samples_fast(&g, 3_000);
        mixed.train_samples(&g, 1_000);
        let stats_mixed = mixed.train_samples_fast(&g, 3_000);
        assert_eq!(stats_pure, stats_mixed, "{hazard:?}: CycleStats diverged");
        assert_eq!(
            pure.q_table().as_slice(),
            mixed.q_table().as_slice(),
            "{hazard:?}: Q-table diverged"
        );
        let (qm_p, qm_m) = (pure.qmax_table(), mixed.qmax_table());
        for st in 0..qm_p.len() as qtaccel_envs::State {
            assert_eq!(qm_p.get(st), qm_m.get(st), "{hazard:?}: Qmax diverged");
        }
    }
}

#[test]
fn fast_path_zero_samples_is_inert() {
    let g = GridWorld::builder(4, 4).goal(3, 3).build();
    let mut a = QLearningAccel::<Q8_8>::new(&g, AccelConfig::default());
    let before = a.train_samples(&g, 500);
    let after = a.train_samples_fast(&g, 0);
    assert_eq!(before, after);
}

#[test]
fn independent_pipelines_fast_matches_slow() {
    let mut rng = Lfsr32::new(123);
    let part = PartitionedGrid::new(8, 8, 2, 2, 4, ActionSet::Four, &mut rng);
    let cfg = AccelConfig::default().with_seed(55);
    let mut slow = IndependentPipelines::<Q8_8>::new(part.partitions(), cfg);
    let mut fast = IndependentPipelines::<Q8_8>::new(part.partitions(), cfg);
    let ss = slow.train_samples(part.partitions(), 8_000);
    let sf = fast.train_samples_fast(part.partitions(), 8_000);
    assert_eq!(ss, sf, "merged CycleStats diverged");
    for i in 0..slow.len() {
        assert_eq!(
            slow.q_table(i).as_slice(),
            fast.q_table(i).as_slice(),
            "bank {i} Q-table diverged"
        );
    }
}

#[test]
fn fast_path_matches_golden_reference() {
    // Transitivity check straight to the sequential software trainer.
    let g = GridWorld::builder(8, 8).goal(7, 7).build();
    for seed in [1u64, 7, 42] {
        let mut hw = QLearningAccel::<Q8_8>::new(&g, AccelConfig::default().with_seed(seed));
        let mut sw = qtaccel_core::trainer::RefTrainer::<Q8_8, _>::new(
            g.clone(),
            TrainerConfig::q_learning().with_seed(seed),
        );
        hw.train_samples_fast(&g, 20_000);
        sw.run_samples(20_000);
        assert_eq!(
            hw.q_table().as_slice(),
            sw.q().as_slice(),
            "seed {seed}: fast path diverged from sequential reference"
        );
    }
}
