//! Scale-out executor determinism (DESIGN.md §2.9).
//!
//! The paper's independent-pipeline mode (Fig. 9) is embarrassingly
//! parallel in hardware — each pipeline owns its BRAM banks. The host
//! executor must preserve that: training on the persistent worker pool
//! has to be **bit-identical** to running every pipeline to completion
//! on one thread, at every worker count, because only scheduling may
//! vary — never results. These tests pin that contract for both
//! engines, both algorithms, every hazard mode, instrumented and not,
//! including P ≫ C oversubscription and `train_batch`'s uneven splits.

use qtaccel_accel::config::{AccelConfig, HazardMode};
use qtaccel_accel::executor::{host_parallelism, ShardedExecutor};
use qtaccel_accel::multi::{shard_checkpoint_path, IndependentPipelines};
use qtaccel_core::trainer::TrainerConfig;
use qtaccel_envs::{Action, ActionSet, Environment, GridWorld, PartitionedGrid, State};
use qtaccel_fixed::Q8_8;
use qtaccel_hdl::lfsr::Lfsr32;
use qtaccel_telemetry::CountersOnly;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const HAZARDS: [HazardMode; 3] = [
    HazardMode::Forwarding,
    HazardMode::StallOnly,
    HazardMode::Ignore,
];

/// Worker counts the determinism contract is exercised at: serial pool,
/// two and three workers (odd count ≠ pipeline count, so chunks
/// interleave unevenly), and whatever the host really has.
fn worker_counts() -> Vec<usize> {
    let mut w = vec![1, 2, 3, host_parallelism()];
    w.sort_unstable();
    w.dedup();
    w
}

fn four_banks(seed: u32) -> PartitionedGrid {
    let mut rng = Lfsr32::new(seed);
    PartitionedGrid::new(16, 16, 2, 2, 6, ActionSet::Four, &mut rng)
}

/// Assert two multi-pipeline instances are architecturally identical:
/// per-bank Q tables, per-bank Qmax arrays, merged cycle stats, merged
/// counter banks.
fn assert_banks_identical<S: qtaccel_telemetry::TraceSink>(
    a: &IndependentPipelines<Q8_8, S>,
    b: &IndependentPipelines<Q8_8, S>,
    label: &str,
) {
    assert_eq!(a.stats(), b.stats(), "{label}: merged CycleStats diverged");
    assert_eq!(
        a.merged_counters(),
        b.merged_counters(),
        "{label}: merged counters diverged"
    );
    for i in 0..a.len() {
        assert_eq!(
            a.q_table(i).as_slice(),
            b.q_table(i).as_slice(),
            "{label}: bank {i} Q-table diverged"
        );
        let (qa, qb) = (a.qmax_table(i), b.qmax_table(i));
        for st in 0..qa.len() as qtaccel_envs::State {
            assert_eq!(qa.get(st), qb.get(st), "{label}: bank {i} Qmax diverged at {st}");
        }
    }
}

#[test]
fn parallel_cycle_accurate_matches_sequential_every_worker_count() {
    for hazard in HAZARDS {
        for sarsa in [false, true] {
            let part = four_banks(11);
            let mut cfg = AccelConfig::default().with_seed(77).with_hazard(hazard);
            if sarsa {
                cfg.trainer = TrainerConfig::sarsa(0.2).with_seed(77);
            }
            let mut reference = IndependentPipelines::<Q8_8>::new(part.partitions(), cfg);
            reference.train_samples_sequential(part.partitions(), 4_000);
            for workers in worker_counts() {
                let pool = Arc::new(ShardedExecutor::new(workers));
                let mut par = IndependentPipelines::<Q8_8>::new(part.partitions(), cfg)
                    .with_executor(pool);
                assert_eq!(par.workers(), workers);
                par.train_samples(part.partitions(), 4_000);
                assert_banks_identical(
                    &reference,
                    &par,
                    &format!("cycle-accurate {hazard:?} sarsa={sarsa} workers={workers}"),
                );
            }
        }
    }
}

#[test]
fn parallel_fast_path_matches_sequential_every_worker_count() {
    for hazard in HAZARDS {
        for sarsa in [false, true] {
            let part = four_banks(29);
            let mut cfg = AccelConfig::default().with_seed(31).with_hazard(hazard);
            if sarsa {
                cfg.trainer = TrainerConfig::sarsa(0.15).with_seed(31);
            }
            let mut reference = IndependentPipelines::<Q8_8>::new(part.partitions(), cfg);
            reference.train_samples_fast_sequential(part.partitions(), 6_000);
            for workers in worker_counts() {
                let pool = Arc::new(ShardedExecutor::new(workers));
                let mut par = IndependentPipelines::<Q8_8>::new(part.partitions(), cfg)
                    .with_executor(pool);
                par.train_samples_fast(part.partitions(), 6_000);
                assert_banks_identical(
                    &reference,
                    &par,
                    &format!("fast {hazard:?} sarsa={sarsa} workers={workers}"),
                );
            }
        }
    }
}

#[test]
fn oversubscribed_pipelines_remain_deterministic() {
    // P ≫ C: sixteen banks on two workers, chunks interleaving freely.
    let mut rng = Lfsr32::new(5);
    let part = PartitionedGrid::new(16, 16, 4, 4, 8, ActionSet::Eight, &mut rng);
    let cfg = AccelConfig::default().with_seed(303);
    let mut reference = IndependentPipelines::<Q8_8>::new(part.partitions(), cfg);
    reference.train_samples_fast_sequential(part.partitions(), 5_000);
    let pool = Arc::new(ShardedExecutor::new(2));
    let mut par =
        IndependentPipelines::<Q8_8>::new(part.partitions(), cfg).with_executor(pool);
    par.train_samples_fast(part.partitions(), 5_000);
    assert_banks_identical(&reference, &par, "16 banks on 2 workers");
}

#[test]
fn instrumented_counters_merge_identically_in_parallel() {
    // Each bank's counter bank accumulates lock-free on its own shard;
    // the merged dump must match the sequential run exactly.
    for hazard in HAZARDS {
        let part = four_banks(91);
        let cfg = AccelConfig::default().with_seed(13).with_hazard(hazard);
        let sinks = vec![CountersOnly; part.num_partitions()];
        let mut reference = IndependentPipelines::<Q8_8, CountersOnly>::with_sinks(
            part.partitions(),
            cfg,
            sinks.clone(),
        );
        reference.train_samples_sequential(part.partitions(), 3_000);
        let pool = Arc::new(ShardedExecutor::new(3));
        let mut par = IndependentPipelines::<Q8_8, CountersOnly>::with_sinks(
            part.partitions(),
            cfg,
            sinks,
        )
        .with_executor(pool);
        par.train_samples(part.partitions(), 3_000);
        assert_banks_identical(&reference, &par, &format!("instrumented {hazard:?}"));
        // The instrumented parallel run really counted something.
        assert!(par.merged_counters().iter().any(|(_, v)| v > 0));
    }
}

#[test]
fn train_batch_is_worker_count_invariant() {
    // An uneven total (not divisible by the bank count) exercises the
    // deterministic remainder split; every worker count must produce
    // the same tables, stats, and shard plan.
    let part = four_banks(47);
    let cfg = AccelConfig::default().with_seed(9);
    let total = 10_003;
    let pool1 = Arc::new(ShardedExecutor::new(1));
    let mut first =
        IndependentPipelines::<Q8_8>::new(part.partitions(), cfg).with_executor(pool1);
    let plan = first.train_batch(part.partitions(), total);
    assert_eq!(plan.workers, 1);
    assert_eq!(plan.shards.iter().map(|s| s.samples).sum::<u64>(), total);
    // Remainder goes to the lowest-indexed banks, one sample each.
    assert_eq!(plan.shards[0].samples, total / 4 + 1);
    assert_eq!(plan.shards[1].samples, total / 4 + 1);
    assert_eq!(plan.shards[2].samples, total / 4 + 1);
    assert_eq!(plan.shards[3].samples, total / 4);
    for workers in worker_counts() {
        let pool = Arc::new(ShardedExecutor::new(workers));
        let mut other =
            IndependentPipelines::<Q8_8>::new(part.partitions(), cfg).with_executor(pool);
        let report = other.train_batch(part.partitions(), total);
        assert_eq!(report.shards, plan.shards, "shard plan must not depend on workers");
        assert_banks_identical(&first, &other, &format!("train_batch workers={workers}"));
    }
}

#[test]
fn train_batch_even_split_matches_fast_sequential() {
    // When the total divides evenly, the batch is exactly
    // `train_samples_fast` with per-bank budgets — transitively pinned
    // to the cycle-accurate engine by the fast-path suite.
    let part = four_banks(63);
    let cfg = AccelConfig::default().with_seed(21);
    let each = 2_500u64;
    let mut reference = IndependentPipelines::<Q8_8>::new(part.partitions(), cfg);
    reference.train_samples_fast_sequential(part.partitions(), each);
    let pool = Arc::new(ShardedExecutor::new(2));
    let mut batch =
        IndependentPipelines::<Q8_8>::new(part.partitions(), cfg).with_executor(pool);
    let report = batch.train_batch(part.partitions(), each * 4);
    assert!(report.shards.iter().all(|s| s.samples == each));
    assert_banks_identical(&reference, &batch, "even train_batch vs fast sequential");
}

#[test]
fn durable_train_batch_is_bit_exact_across_a_kill_and_a_pool_swap() {
    // A durable batch interrupted mid-way and finished by a *different*
    // process image (fresh pipelines, different worker count) must land
    // on the same tables as one uninterrupted batch: the checkpoints
    // carry everything, and worker count was already proven irrelevant.
    let part = four_banks(53);
    let cfg = AccelConfig::default().with_seed(41);
    let dir = std::env::temp_dir()
        .join(format!("qtaccel-durable-scaling-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let pool = Arc::new(ShardedExecutor::new(3));
    let mut straight =
        IndependentPipelines::<Q8_8>::new(part.partitions(), cfg).with_executor(pool);
    straight.train_batch(part.partitions(), 40_000);

    let pool1 = Arc::new(ShardedExecutor::new(3));
    let mut leg1 =
        IndependentPipelines::<Q8_8>::new(part.partitions(), cfg).with_executor(pool1);
    leg1.train_batch_durable(part.partitions(), 24_000, &dir, 4_000)
        .expect("first leg");
    for i in 0..4 {
        assert!(shard_checkpoint_path(&dir, i).exists(), "shard {i} sealed");
    }
    drop(leg1); // the "kill"

    let pool2 = Arc::new(ShardedExecutor::new(2));
    let mut leg2 =
        IndependentPipelines::<Q8_8>::new(part.partitions(), cfg).with_executor(pool2);
    let report = leg2
        .train_batch_durable(part.partitions(), 40_000, &dir, 4_000)
        .expect("second leg");
    assert_eq!(report.stats.samples, 40_000, "restored + new samples");
    assert_banks_identical(&straight, &leg2, "durable resume across pools");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A [`GridWorld`] whose transition function panics once the fuse burns
/// down — an environment-side fault injected into one shard of a batch.
struct FlakyEnv {
    inner: GridWorld,
    fuse: AtomicU64,
}

impl FlakyEnv {
    fn new(inner: GridWorld, fuse: u64) -> Self {
        Self { inner, fuse: AtomicU64::new(fuse) }
    }
}

impl Environment for FlakyEnv {
    fn num_states(&self) -> usize {
        self.inner.num_states()
    }
    fn num_actions(&self) -> usize {
        self.inner.num_actions()
    }
    fn transition(&self, s: State, a: Action) -> State {
        if self.fuse.fetch_sub(1, Ordering::Relaxed) == 1 {
            panic!("injected environment fault");
        }
        self.inner.transition(s, a)
    }
    fn reward(&self, s: State, a: Action) -> f64 {
        self.inner.reward(s, a)
    }
    fn is_terminal(&self, s: State) -> bool {
        self.inner.is_terminal(s)
    }
    fn is_valid_state(&self, s: State) -> bool {
        self.inner.is_valid_state(s)
    }
}

#[test]
fn pool_survives_a_panicked_train_batch() {
    // One shard's environment panics mid-batch. The panic must surface
    // on the submitting thread — and the pool must come back clean: the
    // same executor then drives a healthy batch to the bit-exact result.
    let grid = |side: u32| {
        GridWorld::builder(side, side)
            .goal(side - 1, side - 1)
            .actions(ActionSet::Four)
            .build()
    };
    let envs: Vec<FlakyEnv> =
        (0..4).map(|_| FlakyEnv::new(grid(8), u64::MAX)).collect();
    let mut poisoned: Vec<FlakyEnv> =
        (0..4).map(|_| FlakyEnv::new(grid(8), u64::MAX)).collect();
    poisoned[2] = FlakyEnv::new(grid(8), 500);

    // StallOnly picks the general fast path, which consults the live
    // environment every sample (the fused path snapshots transitions
    // once), so the fuse burns down mid-batch on a worker thread.
    let cfg = AccelConfig::default()
        .with_seed(67)
        .with_hazard(HazardMode::StallOnly);
    let pool = Arc::new(ShardedExecutor::new(2));

    let mut doomed =
        IndependentPipelines::<Q8_8>::new(&poisoned, cfg).with_executor(pool.clone());
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        doomed.train_batch(&poisoned, 8_000);
    }));
    assert!(outcome.is_err(), "environment fault must propagate");
    drop(doomed);

    // Same pool, healthy batch: bit-exact against the sequential run.
    let mut reference = IndependentPipelines::<Q8_8>::new(&envs, cfg);
    reference.train_samples_fast_sequential(&envs, 2_000);
    let mut after =
        IndependentPipelines::<Q8_8>::new(&envs, cfg).with_executor(pool);
    after.train_batch(&envs, 8_000);
    assert_banks_identical(&reference, &after, "pool reused after panic");
}

#[test]
fn global_pool_drives_default_training() {
    // No explicit executor: the process-global pool serves the call.
    let part = four_banks(17);
    let cfg = AccelConfig::default().with_seed(3);
    let mut reference = IndependentPipelines::<Q8_8>::new(part.partitions(), cfg);
    reference.train_samples_fast_sequential(part.partitions(), 2_000);
    let mut global = IndependentPipelines::<Q8_8>::new(part.partitions(), cfg);
    assert!(global.workers() >= 1);
    global.train_samples_fast(part.partitions(), 2_000);
    assert_banks_identical(&reference, &global, "global pool");
}
