//! Training-health integration: health-off runs are bit-identical with
//! and without the layer compiled in, probes are engine-exact and
//! survive checkpoints bit-exactly, the watchdog deterministically
//! detects an ECC-off SEU divergence campaign that the fault counters
//! alone cannot flag, and the flight recorder's crash dump round-trips
//! through the strict JSONL parser.

use qtaccel_accel::config::AccelConfig;
use qtaccel_accel::qlearning::QLearningAccel;
use qtaccel_accel::sarsa::SarsaAccel;
use qtaccel_accel::FaultConfig;
use qtaccel_envs::{ActionSet, GridWorld};
use qtaccel_fixed::Q8_8;
use qtaccel_telemetry::{
    check_openmetrics, encode_openmetrics, CountersOnly, FlightRecorder, HealthConfig,
    HealthProbe, HealthSink, MetricsRegistry, Watchdog, WatchdogConfig, WatchdogRule,
};
use std::path::PathBuf;

fn grid(side: u32) -> GridWorld {
    GridWorld::builder(side, side)
        .goal(side - 1, side - 1)
        .actions(ActionSet::Four)
        .build()
}

fn health_sink(stride: u64) -> HealthSink {
    HealthSink::new(HealthConfig {
        stride,
        near_rail_bits: 4,
    })
}

#[test]
fn health_off_runs_are_bit_identical_to_uninstrumented() {
    let g = grid(8);
    let cfg = AccelConfig::default().with_seed(0x41);

    let mut plain = QLearningAccel::<Q8_8>::new(&g, cfg);
    plain.train_samples_fast(&g, 30_000);

    // A health-capable build with health *not* attached: same tables.
    let mut counted = QLearningAccel::<Q8_8, CountersOnly>::with_sink(&g, cfg, CountersOnly);
    counted.train_samples_fast(&g, 30_000);
    assert_eq!(plain.q_table().as_slice(), counted.q_table().as_slice());
    assert_eq!(plain.qmax_table(), counted.qmax_table());
    assert!(plain.health_probe().is_none());
    assert!(counted.health_probe().is_none());

    // And health *attached* still learns the identical tables — the
    // probe taps retirement passively.
    let mut probed = QLearningAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, health_sink(1));
    probed.train_samples_fast(&g, 30_000);
    assert_eq!(plain.q_table().as_slice(), probed.q_table().as_slice());
    assert_eq!(plain.qmax_table(), probed.qmax_table());
    assert_eq!(plain.stats(), probed.stats());
}

#[test]
fn probe_state_is_engine_exact_at_every_stride() {
    let g = grid(8);
    let cfg = AccelConfig::default().with_seed(0x42);
    let run = |fast: bool, stride: u64| -> HealthProbe {
        let mut a = QLearningAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, health_sink(stride));
        if fast {
            a.train_samples_fast(&g, 25_000);
        } else {
            a.train_samples(&g, 25_000);
        }
        a.into_sink().into_probe()
    };
    for stride in [1, 7] {
        let fast = run(true, stride);
        let cycle = run(false, stride);
        assert_eq!(
            fast, cycle,
            "stride-{stride} probe state must be bit-exact across executors"
        );
        assert_eq!(fast.samples_seen(), 25_000);
        assert_eq!(fast.samples_probed(), 25_000u64.div_ceil(stride));
        assert!(fast.td_error().count() > 0);
        assert!(fast.states_visited() > 0);
    }
    // Sarsa takes the same hook through its own policy fixture.
    let mut s1 = SarsaAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, 0.1, health_sink(1));
    s1.train_samples_fast(&g, 10_000);
    let mut s2 = SarsaAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, 0.1, health_sink(1));
    s2.train_samples(&g, 10_000);
    assert_eq!(s1.into_sink().into_probe(), s2.into_sink().into_probe());
}

#[test]
fn probe_state_survives_checkpoint_round_trips_bit_exactly() {
    let g = grid(8);
    let cfg = AccelConfig::default().with_seed(0x43);
    let path: PathBuf = std::env::temp_dir().join(format!(
        "qtaccel-health-ckpt-{}.ckpt",
        std::process::id()
    ));

    // Straight-through reference at stride 3 (so the cursor phase
    // matters: a restore that reset the cursor would drift).
    let mut straight = QLearningAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, health_sink(3));
    straight.train_samples_fast(&g, 20_000);
    straight.train_samples_fast(&g, 15_000);

    let mut first = QLearningAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, health_sink(3));
    first.train_samples_fast(&g, 20_000);
    first.save_checkpoint(&path).expect("save");
    let at_save = first.health_probe().unwrap().clone();
    drop(first);

    let mut resumed = QLearningAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, health_sink(3));
    resumed.restore_checkpoint(&path).expect("restore");
    assert_eq!(
        resumed.health_probe().unwrap(),
        &at_save,
        "restore must reproduce the probe bit-exactly"
    );
    resumed.train_samples_fast(&g, 15_000);
    assert_eq!(
        resumed.health_probe().unwrap(),
        straight.health_probe().unwrap(),
        "resumed probing must continue the original sampling plan"
    );
    assert_eq!(resumed.q_table().as_slice(), straight.q_table().as_slice());

    // A health-instrumented checkpoint also restores into a plain
    // engine (the probe section is simply not applied)...
    let mut plain = QLearningAccel::<Q8_8>::new(&g, cfg);
    plain.restore_checkpoint(&path).expect("restore into NullSink");
    // ...and a pre-health (plain) checkpoint restores into an
    // instrumented engine with the probe reset.
    plain.save_checkpoint(&path).expect("save plain");
    let mut fresh = QLearningAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, health_sink(3));
    fresh.train_samples_fast(&g, 500);
    fresh.restore_checkpoint(&path).expect("restore plain");
    let probe = fresh.health_probe().unwrap();
    assert_eq!(probe.samples_seen(), 0, "health-absent checkpoint resets the probe");
    let _ = std::fs::remove_file(&path);
}

/// The tentpole proof: an ECC-off SEU campaign drives Q words toward the
/// rails and blows up TD-error magnitudes — invisible to `FaultStats`
/// corrected/uncorrectable counters (no ECC means nothing is even
/// detected) but caught by the watchdog's divergence rule within a
/// bounded sample count, deterministically on both executors.
#[test]
fn watchdog_detects_ecc_off_seu_divergence_on_both_executors() {
    let g = grid(8);
    let cfg = AccelConfig::default().with_seed(0x44);
    // Healthy Q8.8 training on this grid settles its windowed TD p99
    // into bucket ≤ 8 (early transient) and then bucket 0; latched SEU
    // corruption being pulled back at learning-rate speed lands sustained
    // magnitudes in buckets 10–13. Bucket 10 separates the two cleanly.
    let wd_config = WatchdogConfig {
        min_window_probes: 256,
        divergence_p99_bits: 10,
        saturation_fraction: 0.5,
    };
    const CHECK_EVERY: u64 = 1_000;
    const MAX_SAMPLES: u64 = 100_000;

    let campaign = |fast: bool| -> (u64, Vec<&'static str>) {
        let mut a = QLearningAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, health_sink(1));
        // Heavy flux, no protection: strikes latch into the tables.
        a.enable_faults(FaultConfig::default().with_seu_rate(5e-4));
        let mut wd = Watchdog::new(wd_config);
        let mut trained = 0;
        while trained < MAX_SAMPLES {
            if fast {
                a.train_samples_fast(&g, CHECK_EVERY);
            } else {
                a.train_samples(&g, CHECK_EVERY);
            }
            trained += CHECK_EVERY;
            let uncorrectable = a.fault_stats().map_or(0, |s| s.detected_uncorrectable);
            wd.check(a.health_probe().unwrap(), uncorrectable);
            if wd.trip_count(WatchdogRule::Divergence) > 0 {
                break;
            }
        }
        assert_eq!(
            a.fault_stats().unwrap().detected_uncorrectable,
            0,
            "without ECC the fault counters see nothing to flag"
        );
        (
            trained,
            wd.alerts().iter().map(|al| al.rule.name()).collect(),
        )
    };

    let (fast_samples, fast_alerts) = campaign(true);
    assert!(
        fast_alerts.contains(&"divergence"),
        "campaign must trip divergence within {MAX_SAMPLES} samples: {fast_alerts:?}"
    );
    assert!(fast_samples < MAX_SAMPLES, "bounded detection latency");

    let (cycle_samples, cycle_alerts) = campaign(false);
    assert_eq!(
        (fast_samples, &fast_alerts),
        (cycle_samples, &cycle_alerts),
        "detection must be deterministic across executors"
    );
    // Replay determinism of the whole detection harness.
    assert_eq!(campaign(true), (fast_samples, fast_alerts));

    // Control: the identical harness without flux never trips.
    let mut clean = QLearningAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, health_sink(1));
    let mut wd = Watchdog::new(wd_config);
    for _ in 0..(MAX_SAMPLES / CHECK_EVERY) {
        clean.train_samples_fast(&g, CHECK_EVERY);
        wd.check(clean.health_probe().unwrap(), 0);
    }
    assert_eq!(
        wd.trip_count(WatchdogRule::Divergence),
        0,
        "healthy training must not raise divergence: {:?}",
        wd.alerts()
    );
}

#[test]
fn crash_dump_round_trips_through_the_strict_parser() {
    let g = grid(8);
    let cfg = AccelConfig::default().with_seed(0x45);
    let dir = std::env::temp_dir().join(format!("qtaccel-health-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("flight.jsonl");

    // A training loop that snapshots per leg, then dies mid-run.
    let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        FlightRecorder::with_panic_dump(&path, 64, |rec| {
            let mut a = QLearningAccel::<Q8_8, HealthSink>::with_sink(&g, cfg, health_sink(1));
            for leg in 0..5 {
                a.train_samples_fast(&g, 2_000);
                rec.push_snapshot(a.health_probe().unwrap().snapshot());
                if leg == 4 {
                    panic!("simulated mid-training crash");
                }
            }
        })
    }));
    assert!(died.is_err());

    let text = std::fs::read_to_string(&path).expect("post-mortem written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6, "5 snapshots + the panic marker");
    let mut last_seen = 0;
    for line in &lines {
        let parsed = qtaccel_telemetry::json::parse(line).expect("strict parse");
        if parsed.get("t").unwrap().as_str() == Some("snapshot") {
            let seen = parsed.get("samples_seen").unwrap().as_u64().unwrap();
            assert!(seen > last_seen, "snapshots advance monotonically");
            last_seen = seen;
        }
    }
    assert_eq!(last_seen, 10_000);
    let tail = qtaccel_telemetry::json::parse(lines[5]).unwrap();
    assert_eq!(tail.get("t").unwrap().as_str(), Some("marker"));
    assert_eq!(tail.get("label").unwrap().as_str(), Some("panic"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn probe_scrape_is_strict_openmetrics_and_saturation_fires_on_narrow_formats() {
    // A goal reward at the format ceiling plus hot α/γ drives most Q
    // words to within a few units of Q8.8's +127.996 rail — the
    // narrow-format saturation scenario the probes exist to surface.
    let g = GridWorld::builder(8, 8)
        .goal(7, 7)
        .actions(ActionSet::Four)
        .goal_reward(127.0)
        .build();
    let mut cfg = AccelConfig::default().with_seed(0x46);
    cfg.trainer.alpha = 0.9;
    cfg.trainer.gamma = 0.99;
    let mut a = QLearningAccel::<Q8_8, HealthSink>::with_sink(
        &g,
        cfg,
        HealthSink::new(HealthConfig {
            stride: 1,
            near_rail_bits: 13, // within 8192 raw units = within 32.0 of a rail
        }),
    );
    a.train_samples_fast(&g, 200_000);
    let probe = a.health_probe().unwrap();
    assert!(
        probe.near_rail_q() > 0,
        "hot-alpha Q8.8 training must approach the rails"
    );
    assert_eq!(probe.num_states(), 64);
    assert_eq!(Q8_8::storage_bits(), 16);

    let mut wd = Watchdog::new(WatchdogConfig {
        min_window_probes: 64,
        divergence_p99_bits: 64,
        saturation_fraction: 0.05,
    });
    wd.check(probe, 0);
    assert!(wd.trip_count(WatchdogRule::Saturation) > 0, "{:?}", wd.alerts());

    let mut reg = MetricsRegistry::new();
    probe.register_into(&mut reg);
    wd.register_into(&mut reg);
    let text = encode_openmetrics(&reg);
    check_openmetrics(&text).expect("qtaccel_health_* families are strict-valid");
    assert!(text.contains("qtaccel_health_td_error_magnitude_bucket"));
    assert!(text.contains("qtaccel_health_alerts_saturation_total"));
}
