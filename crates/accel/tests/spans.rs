//! Span-trace integration tests (DESIGN.md §2.15).
//!
//! * **Determinism**: the same seed and batch plan produce the same
//!   span tree — ids, parents, names, lanes, ordinals — at every
//!   executor worker count. Only the monotonic-ns timestamps may
//!   differ between runs.
//! * **End-to-end acceptance**: one durable batch over four shards
//!   yields a single connected trace (batch root → per-shard chunk
//!   spans → checkpoint/scrub children) that round-trips through the
//!   wire protocol into a live collector, merges bit-identically, and
//!   exports as a strictly parseable multi-process Perfetto trace.

use qtaccel_accel::{
    AccelConfig, FaultConfig, IndependentPipelines, ShardedExecutor,
};
use qtaccel_envs::GridWorld;
use qtaccel_fixed::Q8_8;
use qtaccel_telemetry::{
    json, Collector, FramePayload, MetricsRegistry, Span, SpanTracer, WireClient,
};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Big enough that every shard runs several executor chunks (the chunk
/// target is 64 Ki samples): 600 000 / 4 shards = 150 000 each → three
/// chunk spans per lane.
const TOTAL_SAMPLES: u64 = 600_000;
const SHARDS: usize = 4;

fn grid() -> GridWorld {
    GridWorld::builder(8, 8).goal(7, 7).build()
}

fn tmp_dir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("qtaccel-spans-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// The timestamp-free shape of a drained span set, sorted so run order
/// (which legitimately varies with worker count) cannot leak in.
fn identity_tree(spans: &[Span]) -> Vec<(u64, u64, u64, String, u32, u64)> {
    let mut tree: Vec<_> = spans
        .iter()
        .map(|s| {
            let (trace, id, parent, name, lane, ordinal) = s.identity();
            (trace, id, parent, name.to_string(), lane, ordinal)
        })
        .collect();
    tree.sort();
    tree
}

/// One traced `train_batch` at the given pool width; faults are armed
/// with a fast scrub cadence so the tree includes scrub instants.
fn traced_batch(workers: usize) -> Vec<Span> {
    let envs: Vec<GridWorld> = (0..SHARDS).map(|_| grid()).collect();
    let cfg = AccelConfig::default().with_seed(7);
    let tracer = Arc::new(SpanTracer::new(7, 1 << 12));
    let mut pipes = IndependentPipelines::<Q8_8>::new(&envs, cfg)
        .with_executor(Arc::new(ShardedExecutor::new(workers)))
        .with_tracer(Arc::clone(&tracer));
    for i in 0..SHARDS {
        pipes.enable_faults(i, FaultConfig::default().with_scrub_period(2));
    }
    let report = pipes.train_batch(&envs, TOTAL_SAMPLES);
    assert_eq!(report.dropped_spans, 0, "ring sized for the whole batch");
    assert!(report.trace.is_some(), "tracer attached ⇒ context reported");
    tracer.drain()
}

#[test]
fn span_tree_is_bit_identical_across_worker_counts() {
    let reference = identity_tree(&traced_batch(1));
    assert!(!reference.is_empty(), "a traced batch records spans");

    // Multiple chunk spans per lane — the plan actually exercises
    // re-entry, so ordinal determinism is tested, not vacuous.
    for lane in 0..SHARDS as u32 {
        let chunks = reference
            .iter()
            .filter(|(_, _, _, name, l, _)| name == "chunk" && *l == lane)
            .count();
        assert!(chunks >= 2, "lane {lane} ran {chunks} chunks");
    }

    for workers in [2usize, 4] {
        let tree = identity_tree(&traced_batch(workers));
        assert_eq!(
            tree, reference,
            "span tree diverged at {workers} workers"
        );
    }
}

#[test]
fn durable_batch_trace_round_trips_through_the_collector() {
    let dir = tmp_dir("durable");
    let envs: Vec<GridWorld> = (0..SHARDS).map(|_| grid()).collect();
    let cfg = AccelConfig::default().with_seed(9);
    let tracer = Arc::new(SpanTracer::new(9, 1 << 12));
    let mut pipes = IndependentPipelines::<Q8_8>::new(&envs, cfg)
        .with_executor(Arc::new(ShardedExecutor::new(SHARDS)))
        .with_tracer(Arc::clone(&tracer));
    for i in 0..SHARDS {
        pipes.enable_faults(i, FaultConfig::default().with_scrub_period(2));
    }
    let report = pipes
        .train_batch_durable(&envs, TOTAL_SAMPLES, &dir, 60_000)
        .expect("durable batch completes");
    assert_eq!(report.dropped_spans, 0);
    let ctx = report.trace.expect("tracer attached ⇒ context reported");
    let spans = tracer.drain();

    // One connected tree: a single root, every other span parented to
    // a recorded span, everything on the report's trace id.
    let ids: HashSet<u64> = spans.iter().map(|s| s.id.0).collect();
    let roots: Vec<&Span> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "exactly one batch root");
    assert_eq!(roots[0].name, "train_batch_durable");
    assert_eq!(roots[0].id, ctx.span, "report context names the root");
    for s in &spans {
        assert_eq!(s.trace, ctx.trace, "one trace covers the batch");
        assert!(s.end_ns >= s.start_ns, "spans close after they open");
        if let Some(parent) = s.parent {
            assert!(ids.contains(&parent.0), "orphan span: {s:?}");
        }
    }
    let names: HashSet<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    for required in ["chunk", "checkpoint_restore", "checkpoint_save", "scrub"] {
        assert!(names.contains(required), "missing {required:?} in {names:?}");
    }
    let chunk_lanes: HashSet<u32> = spans
        .iter()
        .filter(|s| s.name == "chunk")
        .map(|s| s.lane)
        .collect();
    assert_eq!(
        chunk_lanes,
        (0..SHARDS as u32).collect(),
        "every shard contributed chunk spans"
    );

    // Ship the trace and the counters through the wire into a live
    // collector, alongside a second worker so the exported Perfetto
    // document is genuinely multi-process.
    let collector = Collector::serve("127.0.0.1:0").expect("collector binds");
    let mut local = MetricsRegistry::new();
    local.set_counter(
        "qtaccel_samples_total",
        "samples retired across shards",
        report.stats.samples,
    );
    let mut shard_host =
        WireClient::connect(collector.addr(), 1, "shard-host").expect("worker 1 connects");
    shard_host
        .send(FramePayload::Metrics(local.clone()))
        .expect("metrics frame accepted");
    shard_host
        .send(FramePayload::Spans(spans.clone()))
        .expect("span frame accepted");

    let aux_envs = [grid()];
    let aux_tracer = Arc::new(SpanTracer::new(77, 256));
    let mut aux = IndependentPipelines::<Q8_8>::new(&aux_envs, cfg)
        .with_tracer(Arc::clone(&aux_tracer));
    aux.train_batch(&aux_envs, 10_000);
    let aux_spans = aux_tracer.drain();
    assert!(!aux_spans.is_empty());
    let mut aux_host =
        WireClient::connect(collector.addr(), 2, "aux-host").expect("worker 2 connects");
    aux_host
        .send(FramePayload::Spans(aux_spans))
        .expect("aux span frame accepted");

    // Two hellos + three payload frames.
    let expected_frames = 5;
    for _ in 0..500 {
        if collector.frames_total() >= expected_frames {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(collector.frames_total(), expected_frames);
    assert_eq!(collector.decode_errors(), 0, "a clean stream decodes clean");

    // The merged registry is bit-identical to what the worker held.
    let merged = collector.merged_registry();
    assert_eq!(
        merged.get("qtaccel_samples_total"),
        local.get("qtaccel_samples_total"),
        "collector merge reproduces the worker's counter exactly"
    );

    // The export is a strict-parseable multi-process Perfetto trace
    // whose slices carry the span names, with per-track monotonic
    // timestamps.
    let doc = collector.perfetto_trace().pretty();
    let parsed = json::parse(&doc).expect("exported trace parses strictly");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    let process_tracks = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
        .count();
    assert!(process_tracks >= 2, "one process track per worker");
    let slice_names: HashSet<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    for required in ["train_batch_durable", "chunk", "checkpoint_save"] {
        assert!(slice_names.contains(required), "trace lacks {required:?}");
    }
    let mut last_ts: std::collections::HashMap<(u64, u64), u64> = std::collections::HashMap::new();
    for e in events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
    {
        let track = (
            e.get("pid").and_then(|v| v.as_u64()).unwrap_or(0),
            e.get("tid").and_then(|v| v.as_u64()).unwrap_or(0),
        );
        let ts = e.get("ts").and_then(|v| v.as_u64()).unwrap_or(0);
        if let Some(&prev) = last_ts.get(&track) {
            assert!(prev <= ts, "track {track:?} went backwards: {prev} > {ts}");
        }
        last_ts.insert(track, ts);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
