//! Fault-runtime integration: the zero-rate runtime is bit-exact with
//! the fault-free engines, sustained flux corrupts an unprotected
//! engine, SECDED keeps the committed tables clean, the scrubbing
//! engine bounds Qmax latch-up, campaigns are deterministic per engine,
//! and a mid-campaign checkpoint resumes the injector streams exactly.

use qtaccel_accel::config::AccelConfig;
use qtaccel_accel::qlearning::QLearningAccel;
use qtaccel_accel::{FaultConfig, FaultStats};
use qtaccel_envs::{ActionSet, GridWorld};
use qtaccel_fixed::Q8_8;
use std::path::PathBuf;

fn grid(side: u32) -> GridWorld {
    GridWorld::builder(side, side)
        .goal(side - 1, side - 1)
        .actions(ActionSet::Four)
        .build()
}

/// Worst excess of a committed Qmax value over its exact Q-row maximum,
/// in value units. Normal monotone staleness is small (learning-rate
/// sized); a latched SEU on a sign or high bit is ~2⁷.
fn max_qmax_excess(a: &QLearningAccel<Q8_8>) -> f64 {
    let q = a.q_table();
    let qmax = a.qmax_table();
    let mut worst = f64::MIN;
    for s in 0..qmax.len() as qtaccel_envs::State {
        let row_max = (0..4u32)
            .map(|act| q.get(s, act).to_f64())
            .fold(f64::MIN, f64::max);
        worst = worst.max(qmax.get(s).0.to_f64() - row_max);
    }
    worst
}

#[test]
fn zero_rate_runtime_is_bit_exact_with_fault_free_engines() {
    let g = grid(8);
    let cfg = AccelConfig::default().with_seed(0xF0);

    let mut clean = QLearningAccel::<Q8_8>::new(&g, cfg);
    clean.train_samples_fast(&g, 20_000);

    // Runtime attached, nothing armed: hooks fire but never strike.
    let mut armed = QLearningAccel::<Q8_8>::new(&g, cfg);
    armed.enable_faults(FaultConfig::default());
    armed.train_samples_fast(&g, 20_000);

    // Same, through the cycle-accurate engine.
    let mut cycle = QLearningAccel::<Q8_8>::new(&g, cfg);
    cycle.enable_faults(FaultConfig::default());
    cycle.train_samples(&g, 20_000);

    assert_eq!(armed.q_table().as_slice(), clean.q_table().as_slice());
    assert_eq!(armed.qmax_table(), clean.qmax_table());
    assert_eq!(cycle.q_table().as_slice(), clean.q_table().as_slice());
    assert_eq!(cycle.qmax_table(), clean.qmax_table());
    assert_eq!(armed.fault_stats(), Some(FaultStats::default()));
    assert_eq!(clean.fault_stats(), None);
}

#[test]
fn unprotected_flux_corrupts_the_tables_and_counts_strikes() {
    let g = grid(8);
    let cfg = AccelConfig::default().with_seed(0xF1);
    let mut clean = QLearningAccel::<Q8_8>::new(&g, cfg);
    clean.train_samples_fast(&g, 50_000);

    let mut struck = QLearningAccel::<Q8_8>::new(&g, cfg);
    struck.enable_faults(FaultConfig::default().with_seu_rate(1e-3));
    struck.train_samples_fast(&g, 50_000);

    let stats = struck.fault_stats().unwrap();
    assert!(stats.injected_q > 0, "{stats:?}");
    assert!(stats.injected_qmax > 0, "{stats:?}");
    assert_eq!(stats.corrected, 0, "no ECC, nothing to correct");
    assert_ne!(
        struck.q_table().as_slice(),
        clean.q_table().as_slice(),
        "strikes must leave a mark"
    );
}

#[test]
fn ecc_keeps_committed_tables_identical_while_counting_corrections() {
    // Big enough grid + low enough rate that no address is struck twice
    // before a rewrite: every strike stays latent and corrected.
    let g = grid(32);
    let cfg = AccelConfig::default().with_seed(0xF2);
    let mut clean = QLearningAccel::<Q8_8>::new(&g, cfg);
    clean.train_samples_fast(&g, 100_000);

    let mut protected = QLearningAccel::<Q8_8>::new(&g, cfg);
    protected.enable_faults(
        FaultConfig::default().with_seu_rate(1e-4).with_ecc(true),
    );
    protected.train_samples_fast(&g, 100_000);

    let stats = protected.fault_stats().unwrap();
    assert!(stats.injected_total() > 0, "{stats:?}");
    assert!(stats.corrected > 0, "{stats:?}");
    assert_eq!(stats.detected_uncorrectable, 0, "{stats:?}");
    // Single-bit errors are corrected on read: the architectural state
    // never saw a single strike.
    assert_eq!(protected.q_table().as_slice(), clean.q_table().as_slice());
    assert_eq!(protected.qmax_table(), clean.qmax_table());
}

#[test]
fn scrub_unlatches_qmax_corruption() {
    let g = grid(16);
    let cfg = AccelConfig::default().with_seed(0xF3);
    let beam = FaultConfig::default().with_qmax_seu_rate(1e-2);

    // Unprotected, no scrub: flux latches corrupted maxima far above
    // any exact row maximum.
    let mut latched = QLearningAccel::<Q8_8>::new(&g, cfg);
    latched.enable_faults(beam);
    latched.train_samples_fast(&g, 60_000);
    assert!(
        max_qmax_excess(&latched) > 8.0,
        "expected a latched high/sign-bit flip: excess {}",
        max_qmax_excess(&latched)
    );

    // Same flux with the scrubbing engine. Corrupted maxima also poison
    // Q rows through the greedy target while the beam is on, so the
    // post-beam leg must be long enough for the rows to contract back
    // (gamma-rate healing) — only then does the last full sweep pin
    // every entry to a settled row maximum.
    let mut scrubbed = QLearningAccel::<Q8_8>::new(&g, cfg);
    scrubbed.enable_faults(beam.with_scrub_period(2));
    scrubbed.train_samples_fast(&g, 60_000);
    scrubbed.enable_faults(FaultConfig::default().with_scrub_period(2));
    scrubbed.train_samples_fast(&g, 120_000); // ~234 sweeps of 256 states
    let stats = scrubbed.fault_stats().unwrap();
    assert!(stats.scrub_repairs > 0, "{stats:?}");
    assert!(stats.scrub_rounds > 0, "{stats:?}");
    assert!(
        max_qmax_excess(&scrubbed) < 1.0,
        "scrub must bound staleness to learning-rate scale: excess {}",
        max_qmax_excess(&scrubbed)
    );
}

#[test]
fn campaigns_are_deterministic_per_engine() {
    let g = grid(8);
    let cfg = AccelConfig::default().with_seed(0xF4);
    let fc = FaultConfig::default().with_seu_rate(1e-3).with_ecc(true);
    let run = |fast: bool| {
        let mut a = QLearningAccel::<Q8_8>::new(&g, cfg);
        a.enable_faults(fc);
        if fast {
            a.train_samples_fast(&g, 40_000);
        } else {
            a.train_samples(&g, 40_000);
        }
        (
            a.q_table().as_slice().to_vec(),
            a.qmax_table(),
            a.fault_stats().unwrap(),
        )
    };
    assert_eq!(run(true), run(true), "fast-path campaign must replay");
    assert_eq!(run(false), run(false), "cycle-accurate campaign must replay");
}

#[test]
fn checkpoint_resumes_a_fault_campaign_bit_exactly() {
    let g = grid(8);
    let cfg = AccelConfig::default().with_seed(0xF5);
    let fc = FaultConfig::default()
        .with_seu_rate(1e-3)
        .with_ecc(true)
        .with_scrub_period(4);

    let mut straight = QLearningAccel::<Q8_8>::new(&g, cfg);
    straight.enable_faults(fc);
    straight.train_samples_fast(&g, 30_000);
    straight.train_samples_fast(&g, 20_000);

    let path: PathBuf = std::env::temp_dir().join(format!(
        "qtaccel-fault-ckpt-{}.ckpt",
        std::process::id()
    ));
    let mut first = QLearningAccel::<Q8_8>::new(&g, cfg);
    first.enable_faults(fc);
    first.train_samples_fast(&g, 30_000);
    first.save_checkpoint(&path).expect("save");
    drop(first);
    // The restored engine never had enable_faults called: the runtime —
    // config, injector RNG positions, latent errors, scrub cursor — is
    // rebuilt from the checkpoint.
    let mut resumed = QLearningAccel::<Q8_8>::new(&g, cfg);
    resumed.restore_checkpoint(&path).expect("restore");
    assert_eq!(resumed.fault_config(), Some(fc), "config travels");
    resumed.train_samples_fast(&g, 20_000);

    assert_eq!(resumed.q_table().as_slice(), straight.q_table().as_slice());
    assert_eq!(resumed.qmax_table(), straight.qmax_table());
    assert_eq!(resumed.stats(), straight.stats());
    assert_eq!(
        resumed.fault_stats(),
        straight.fault_stats(),
        "injector streams and counters must resume, not restart"
    );
    let _ = std::fs::remove_file(&path);
}
