//! Metrics-service integration tests (DESIGN.md §2.10).
//!
//! End-to-end coverage of the observability layer across crates:
//! executor introspection feeding the registry, `BatchReport`'s
//! truncation accounting, the stall-run-length histogram's invariant
//! against `CycleStats`, a live OpenMetrics scrape, the Perfetto trace
//! export round-trip, and the resource model's opt-in monitor costs.

use qtaccel_accel::config::{AccelConfig, HazardMode};
use qtaccel_accel::executor::ShardedExecutor;
use qtaccel_accel::multi::IndependentPipelines;
use qtaccel_accel::QLearningAccel;
use qtaccel_envs::{ActionSet, GridWorld, PartitionedGrid};
use qtaccel_fixed::Q8_8;
use qtaccel_hdl::lfsr::Lfsr32;
use qtaccel_telemetry::export::{check_openmetrics, chrome_trace, scrape, MetricsServer};
use qtaccel_telemetry::json::parse;
use qtaccel_telemetry::{
    stall_run_lengths, CountersOnly, Event, MetricsRegistry, NullSink, RingSink, ToJson,
};
use std::sync::Arc;

fn four_banks(seed: u32) -> PartitionedGrid {
    let mut rng = Lfsr32::new(seed);
    PartitionedGrid::new(16, 16, 2, 2, 6, ActionSet::Four, &mut rng)
}

fn grid() -> GridWorld {
    GridWorld::builder(8, 8).goal(7, 7).build()
}

#[test]
fn instrumented_executor_feeds_registry_through_train_batch() {
    let part = four_banks(5);
    let cfg = AccelConfig::default().with_seed(9);
    let pool = Arc::new(ShardedExecutor::new_instrumented(2));
    let mut pipes = IndependentPipelines::<Q8_8, CountersOnly>::with_sinks(
        part.partitions(),
        cfg,
        vec![CountersOnly; part.partitions().len()],
    )
    .with_executor(Arc::clone(&pool));
    let report = pipes.train_batch(part.partitions(), 400_000);
    assert_eq!(report.stats.samples, 400_000);
    assert_eq!(report.dropped_iterations, 0, "CountersOnly drops nothing");

    let m = pool.metrics().expect("instrumented pool");
    let total_chunks: u64 = m.worker_snapshots().iter().map(|s| s.chunks).sum();
    // 400k samples over 4 shards at 64K chunks = 2 chunks per shard.
    assert_eq!(total_chunks, 8, "chunk plan is deterministic");
    assert_eq!(m.chunk_service_ns().count(), total_chunks);
    assert_eq!(m.queue_wait_ns().count(), total_chunks);
    assert!(m.queue_depth_peak() >= 4);

    let mut reg = MetricsRegistry::new();
    reg.record_counter_bank(&pipes.merged_counters());
    m.register_into(&mut reg);
    // The headline counter is live (CountersOnly keeps the bank).
    let samples = match reg.get("qtaccel_samples_total") {
        Some(qtaccel_telemetry::MetricValue::Counter(v)) => *v,
        other => panic!("qtaccel_samples_total missing or mistyped: {other:?}"),
    };
    assert_eq!(samples, 400_000);
    assert!(reg.get("qtaccel_executor_queue_depth").is_some());
}

#[test]
fn batch_report_surfaces_ring_sink_truncation() {
    let part = four_banks(7);
    let cfg = AccelConfig::default().with_seed(3);
    let mut pipes = IndependentPipelines::<Q8_8, RingSink>::with_sinks(
        part.partitions(),
        cfg,
        (0..part.partitions().len())
            .map(|_| RingSink::new(64))
            .collect(),
    );
    // Cycle-accurate training floods the tiny rings with events.
    pipes.train_samples(part.partitions(), 2_000);
    let flooded = pipes.dropped_iterations();
    assert!(flooded > 0, "64-slot rings must have evicted iterations");
    // The next batch reports the cumulative drop count, so a consumer
    // of the report knows the retained traces are incomplete.
    let report = pipes.train_batch(part.partitions(), 1_000);
    assert!(report.dropped_iterations >= flooded);
}

#[test]
fn stall_run_lengths_sum_to_the_stall_counter() {
    let g = grid();
    let cfg = AccelConfig::default()
        .with_seed(41)
        .with_hazard(HazardMode::StallOnly);
    let mut accel = QLearningAccel::<Q8_8, RingSink>::with_sink(&g, cfg, RingSink::new(1 << 16));
    let stats = accel.train_samples(&g, 2_000);
    assert!(stats.stalls > 0, "StallOnly on a small grid must stall");

    let events: Vec<Event> = accel.sink().events().copied().collect();
    let h = stall_run_lengths(&events);
    let begins = events
        .iter()
        .filter(|e| matches!(e, Event::StallBegin { .. }))
        .count() as u64;
    assert!(h.count() > 0);
    assert_eq!(h.count(), begins, "every stall interval pairs up");
    // The histogram is a lossless decomposition of the stall counter:
    // summing interval lengths recovers CycleStats::stalls exactly.
    assert_eq!(h.sum(), stats.stalls);
    assert!(h.max() >= 1);
    assert!(h.summary().p99 >= h.summary().p50);
}

#[test]
fn scrape_endpoint_serves_the_acceptance_payload() {
    // Fill a registry the way the benches do: counters from a training
    // run, executor introspection, and the stall-run-length histogram.
    let part = four_banks(13);
    let cfg = AccelConfig::default().with_seed(17);
    let pool = Arc::new(ShardedExecutor::new_instrumented(2));
    let mut pipes = IndependentPipelines::<Q8_8, CountersOnly>::with_sinks(
        part.partitions(),
        cfg,
        vec![CountersOnly; part.partitions().len()],
    )
    .with_executor(Arc::clone(&pool));
    pipes.train_batch(part.partitions(), 300_000);

    let g = grid();
    let stall_cfg = AccelConfig::default()
        .with_seed(19)
        .with_hazard(HazardMode::StallOnly);
    let mut stall_probe =
        QLearningAccel::<Q8_8, RingSink>::with_sink(&g, stall_cfg, RingSink::new(1 << 16));
    stall_probe.train_samples(&g, 1_500);
    let stall_hist = stall_run_lengths(stall_probe.sink().events());

    let server = MetricsServer::serve("127.0.0.1:0").expect("bind ephemeral port");
    server.update(|reg| {
        reg.record_counter_bank(&pipes.merged_counters());
        pool.metrics().unwrap().register_into(reg);
        reg.set_histogram(
            "qtaccel_stall_run_cycles",
            "consecutive stalled cycles per stall interval (StallOnly probe)",
            &stall_hist,
        );
    });

    let body = scrape(server.addr()).expect("scrape over HTTP");
    check_openmetrics(&body).expect("OpenMetrics-parseable");
    // Acceptance: counters, queue-depth gauge, and >= 3 histograms with
    // p50/p90/p99 companions.
    assert!(body.contains("qtaccel_samples_total 300000\n"), "{body}");
    assert!(body.contains("# TYPE qtaccel_executor_queue_depth gauge\n"));
    for hist in [
        "qtaccel_executor_chunk_service_ns",
        "qtaccel_executor_queue_wait_ns",
        "qtaccel_stall_run_cycles",
    ] {
        assert!(body.contains(&format!("# TYPE {hist} histogram\n")), "{hist}");
        for q in ["p50", "p90", "p99"] {
            assert!(body.contains(&format!("{hist}_{q} ")), "{hist}_{q}");
        }
    }
}

#[test]
fn perfetto_export_round_trips_with_per_pipeline_tracks() {
    let cfg = AccelConfig::default()
        .with_seed(53)
        .with_hazard(HazardMode::StallOnly);
    let tracks: Vec<(String, Vec<Event>)> = (0..2)
        .map(|i| {
            let g = grid();
            let mut accel = QLearningAccel::<Q8_8, RingSink>::with_sink(
                &g,
                cfg.with_seed(53 + i),
                RingSink::new(1 << 14),
            );
            accel.train_samples(&g, 500);
            (
                format!("pipeline-{i}"),
                accel.sink().events().copied().collect(),
            )
        })
        .collect();

    let doc = chrome_trace(&tracks);
    let p = parse(&doc.pretty()).expect("strict parser round-trip");
    let events = p.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(events.len() > 10);

    // One named track per pipeline...
    let track_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .map(|e| e.get("args").unwrap().get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(track_names, vec!["pipeline-0", "pipeline-1"]);

    // ...with stall spans present and ts non-decreasing per track.
    let mut saw_stall = false;
    for tid in 0..2u64 {
        let ts: Vec<u64> = events
            .iter()
            .filter(|e| {
                e.get("tid").and_then(|t| t.as_u64()) == Some(tid) && e.get("ts").is_some()
            })
            .map(|e| e.get("ts").unwrap().as_u64().unwrap())
            .collect();
        assert!(!ts.is_empty(), "track {tid} has events");
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "track {tid} ts must be monotonic"
        );
        saw_stall |= events.iter().any(|e| {
            e.get("tid").and_then(|t| t.as_u64()) == Some(tid)
                && e.get("name").and_then(|n| n.as_str()) == Some("stall")
        });
    }
    assert!(saw_stall, "StallOnly runs must render stall spans");
}

#[test]
fn event_sinks_raise_the_modeled_monitor_cost() {
    let g = grid();
    let cfg = AccelConfig::default().with_seed(61);
    let plain = QLearningAccel::<Q8_8, NullSink>::new(&g, cfg);
    let counted = QLearningAccel::<Q8_8, CountersOnly>::with_sink(&g, cfg, CountersOnly);
    let traced = QLearningAccel::<Q8_8, RingSink>::with_sink(&g, cfg, RingSink::new(16));

    let (r0, r1, r2) = (
        plain.resources().report,
        counted.resources().report,
        traced.resources().report,
    );
    // NullSink: the uninstrumented baseline. CountersOnly adds the
    // perf-counter bank. An event-emitting sink adds the counter bank
    // *and* the stall-run-length histogram monitor on top.
    assert!(r1.lut > r0.lut && r1.ff > r0.ff);
    assert!(r2.lut > r1.lut && r2.ff > r1.ff);
    assert_eq!(r0.dsp, r2.dsp, "monitors add no DSPs");
    assert_eq!(r0.bram36, r2.bram36, "monitors add no BRAM");
}

#[test]
fn histogram_json_rides_in_reports() {
    // The summaries the benches attach must round-trip the strict
    // parser with the documented fields.
    let mut h = qtaccel_telemetry::Histogram::new();
    for v in [3u64, 9, 27, 81] {
        h.observe(v);
    }
    let p = parse(&h.summary().to_json().pretty()).unwrap();
    for field in ["count", "sum", "max", "p50", "p90", "p99"] {
        assert!(p.get(field).is_some(), "summary field {field}");
    }
    assert_eq!(p.get("count").unwrap().as_u64(), Some(4));
    assert_eq!(p.get("sum").unwrap().as_u64(), Some(120));
    assert_eq!(p.get("max").unwrap().as_u64(), Some(81));
}
