//! Bit-exactness of the K-way interleaved multi-stream executor
//! (`FastLayout::Interleaved`, DESIGN.md §2.12) against the
//! cycle-accurate engine and the scalar fast paths: same Q-tables, same
//! Qmax tables, same CycleStats — across both algorithms, every hazard
//! mode, K ∈ {2, 4, 8}, uneven budgets, chunked executor re-entry, and
//! every rung of the eligibility ladder (fault runtime, instrumented
//! sink, exact-scan Qmax, wide value types fall back to the general
//! executor bit-identically).

use qtaccel_accel::config::{AccelConfig, HazardMode};
use qtaccel_accel::multi::IndependentPipelines;
use qtaccel_accel::pipeline::{AccelPipeline, FastLayout};
use qtaccel_accel::qlearning::QLearningAccel;
use qtaccel_accel::sarsa::SarsaAccel;
use qtaccel_accel::{FaultConfig, ShardedExecutor};
use qtaccel_core::policy::Policy;
use qtaccel_core::qtable::MaxMode;
use qtaccel_core::trainer::TrainerConfig;
use qtaccel_envs::{ActionSet, GridWorld};
use qtaccel_fixed::{Q16_16, Q8_8};
use qtaccel_hdl::lfsr::Lfsr32;
use qtaccel_hdl::rng::RngSource;
use qtaccel_telemetry::CountersOnly;
use std::sync::Arc;

const HAZARDS: [HazardMode; 3] = [
    HazardMode::Forwarding,
    HazardMode::StallOnly,
    HazardMode::Ignore,
];

const STREAM_WIDTHS: [usize; 3] = [2, 4, 8];

/// A grid whose shape is derived from the seed: 2..=9 cells per side,
/// four- or eight-action set, goal in the far corner.
fn random_grid(rng: &mut Lfsr32) -> GridWorld {
    let w = 2 + rng.below(8);
    let h = 2 + rng.below(8);
    let actions = if rng.below(2) == 0 {
        ActionSet::Four
    } else {
        ActionSet::Eight
    };
    GridWorld::builder(w, h)
        .goal(w - 1, h - 1)
        .actions(actions)
        .build()
}

/// K grids of *different* shapes, so the interleaved group mixes state
/// spaces and action-set widths.
fn grid_group(seed: u32, k: usize) -> Vec<GridWorld> {
    let mut rng = Lfsr32::new(seed.wrapping_mul(0x9E37_79B9) | 1);
    (0..k).map(|_| random_grid(&mut rng)).collect()
}

fn assert_banks_identical<V: qtaccel_fixed::QValue>(
    a: &IndependentPipelines<V>,
    b: &IndependentPipelines<V>,
    label: &str,
) {
    assert_eq!(a.stats(), b.stats(), "{label}: merged CycleStats diverged");
    for i in 0..a.len() {
        assert_eq!(
            a.q_table(i).as_slice(),
            b.q_table(i).as_slice(),
            "{label}: bank {i} Q-table diverged"
        );
        let (qm_a, qm_b) = (a.qmax_table(i), b.qmax_table(i));
        for st in 0..qm_a.len() as qtaccel_envs::State {
            assert_eq!(
                qm_a.get(st),
                qm_b.get(st),
                "{label}: bank {i} Qmax diverged at state {st}"
            );
        }
    }
}

#[test]
fn interleaved_matches_cycle_accurate_q_learning_all_k_all_hazards() {
    // The tentpole contract: K interleaved streams produce, per
    // pipeline, the exact bits of the cycle-accurate engine. Forwarding
    // takes the interleaved executor; StallOnly/Ignore exercise the
    // whole-group fallback to the general path.
    for k in STREAM_WIDTHS {
        for (si, seed) in [3u64, 29, 71].into_iter().enumerate() {
            let envs = grid_group(seed as u32 + k as u32, k);
            for hazard in HAZARDS {
                let cfg = AccelConfig::default().with_seed(seed).with_hazard(hazard);
                let per = 4_000u64;
                let mut slow = IndependentPipelines::<Q8_8>::new(&envs, cfg);
                let mut fast = IndependentPipelines::<Q8_8>::new(&envs, cfg);
                slow.train_samples_sequential(&envs, per);
                let report =
                    fast.train_batch_with(&envs, per * k as u64, FastLayout::Interleaved, k);
                assert!(
                    report.shards.iter().all(|s| s.streams == k),
                    "shard manifest must record the stream width"
                );
                assert_banks_identical(
                    &slow,
                    &fast,
                    &format!("q-learning K={k} seed#{si} {hazard:?}"),
                );
            }
        }
    }
}

#[test]
fn interleaved_matches_cycle_accurate_sarsa_all_k_all_hazards() {
    // SARSA adds the stage-2→stage-1 action forwarding (carry) and the
    // ε-greedy draws on both policies — the RNG-heavy corner of the
    // batched-LFSR resync protocol.
    for k in STREAM_WIDTHS {
        for seed in [11u64, 47] {
            let envs = grid_group(seed as u32 ^ (k as u32) << 8, k);
            let eps = 0.05 + (seed % 5) as f64 * 0.1;
            for hazard in HAZARDS {
                let mut cfg = AccelConfig::default().with_seed(seed).with_hazard(hazard);
                cfg.trainer = TrainerConfig::sarsa(eps).with_seed(seed);
                let per = 4_000u64;
                let mut slow = IndependentPipelines::<Q8_8>::new(&envs, cfg);
                let mut fast = IndependentPipelines::<Q8_8>::new(&envs, cfg);
                slow.train_samples_sequential(&envs, per);
                fast.train_batch_with(&envs, per * k as u64, FastLayout::Interleaved, k);
                assert_banks_identical(&slow, &fast, &format!("sarsa K={k} {hazard:?}"));
            }
        }
    }
}

#[test]
fn interleaved_single_pipeline_policy_matrix() {
    // A forced Interleaved layout on one pipeline runs the K-way
    // executor as a group of one stream. Every synthesizable policy
    // pairing, both Qmax semantics (ExactScan is ineligible and must
    // fall back), Q16_16 lanes (2 subwords per u64).
    let policies: [(Policy, Policy, bool); 4] = [
        (Policy::Random, Policy::Greedy, false),
        (Policy::Greedy, Policy::Greedy, false),
        (
            Policy::EpsilonGreedy { epsilon: 0.3 },
            Policy::Random,
            false,
        ),
        (
            Policy::EpsilonGreedy { epsilon: 0.15 },
            Policy::EpsilonGreedy { epsilon: 0.15 },
            true,
        ),
    ];
    for seed in [19u64, 31] {
        let mut shape_rng = Lfsr32::new((seed as u32).wrapping_mul(2_654_435_761) | 1);
        let g = random_grid(&mut shape_rng);
        for max_mode in [MaxMode::QmaxArray, MaxMode::ExactScan] {
            for (behavior, update, fwd_next) in policies {
                let mut cfg = AccelConfig::default()
                    .with_seed(seed)
                    .with_max_mode(max_mode);
                cfg.trainer.behavior = behavior;
                cfg.trainer.update = update;
                cfg.trainer.forward_next_action = fwd_next;
                let mut slow = AccelPipeline::<Q16_16>::new(&g, cfg, 0);
                let mut inter = AccelPipeline::<Q16_16>::new(&g, cfg, 0);
                let ss = slow.run_samples(&g, 6_000);
                let si = inter.run_samples_fast_planned(&g, 6_000, FastLayout::Interleaved);
                let label = format!("seed {seed} {max_mode:?} {behavior:?}/{update:?}");
                assert_eq!(ss, si, "{label}: CycleStats diverged");
                assert_eq!(
                    slow.q_table().as_slice(),
                    inter.q_table().as_slice(),
                    "{label}: Q-table diverged"
                );
                let (qm_s, qm_i) = (slow.qmax_table(), inter.qmax_table());
                for st in 0..qm_s.len() as qtaccel_envs::State {
                    assert_eq!(qm_s.get(st), qm_i.get(st), "{label}: Qmax diverged");
                }
            }
        }
    }
}

#[test]
fn interleaved_uneven_budgets_and_partial_groups() {
    // total % P ≠ 0 (remainder samples land on the low banks) and
    // P % K ≠ 0 (the last group is narrower than K): both must match
    // train_batch's deterministic split bit-exactly.
    let envs = grid_group(77, 5);
    let cfg = AccelConfig::default().with_seed(505);
    let total = 5 * 2_500 + 3;
    let mut auto = IndependentPipelines::<Q8_8>::new(&envs, cfg);
    let mut inter = IndependentPipelines::<Q8_8>::new(&envs, cfg);
    auto.train_batch(&envs, total);
    let report = inter.train_batch_with(&envs, total, FastLayout::Interleaved, 4);
    assert_eq!(report.shards.len(), 5, "one manifest row per pipeline");
    assert_banks_identical(&auto, &inter, "5 banks, K=4, uneven total");

    // streams wider than the bank count: one group of everything.
    let mut wide = IndependentPipelines::<Q8_8>::new(&envs, cfg);
    wide.train_batch_with(&envs, total, FastLayout::Interleaved, 16);
    assert_banks_identical(&auto, &wide, "K wider than bank count");
}

#[test]
fn interleaved_groups_chunk_reentry_on_executor() {
    // Budgets far above the ~64K-sample chunk force each group shard to
    // be re-entered many times through the worker pool; the
    // checkout/checkin protocol must survive every boundary.
    let envs = grid_group(909, 4);
    let cfg = AccelConfig::default().with_seed(41);
    let per = 150_000u64;
    let mut reference = IndependentPipelines::<Q8_8>::new(&envs, cfg);
    reference.train_samples_fast_sequential(&envs, per);
    let pool = Arc::new(ShardedExecutor::new(2));
    let mut inter = IndependentPipelines::<Q8_8>::new(&envs, cfg).with_executor(pool);
    inter.train_batch_with(&envs, per * 4, FastLayout::Interleaved, 2);
    assert_banks_identical(&reference, &inter, "chunked re-entry, 2 workers");
}

#[test]
fn interleaved_executor_interleaves_freely_with_cycle_accurate() {
    // slow → interleaved → slow → interleaved on one instance must equal
    // a pure cycle-accurate run: checkout/checkin preserve in-flight
    // pipeline state (pending writes, RNG registers, SARSA carry).
    let g = GridWorld::builder(3, 5).goal(2, 4).build();
    for (label, cfg) in [
        (
            "q-learning",
            AccelConfig::default().with_seed(97),
        ),
        ("sarsa", {
            let mut c = AccelConfig::default().with_seed(97);
            c.trainer = TrainerConfig::sarsa(0.2).with_seed(97);
            c
        }),
    ] {
        let mut pure = AccelPipeline::<Q8_8>::new(&g, cfg, 0);
        let mut mixed = AccelPipeline::<Q8_8>::new(&g, cfg, 0);
        let stats_pure = pure.run_samples(&g, 9_000);
        mixed.run_samples(&g, 2_000);
        mixed.run_samples_fast_planned(&g, 3_000, FastLayout::Interleaved);
        mixed.run_samples(&g, 1_000);
        let stats_mixed = mixed.run_samples_fast_planned(&g, 3_000, FastLayout::Interleaved);
        assert_eq!(stats_pure, stats_mixed, "{label}: CycleStats diverged");
        assert_eq!(
            pure.q_table().as_slice(),
            mixed.q_table().as_slice(),
            "{label}: Q-table diverged"
        );
    }
}

#[test]
fn fault_runtime_routes_to_general_path_bit_identically() {
    // An attached fault runtime makes the config ineligible; a forced
    // Interleaved layout must yield to the general executor and produce
    // the exact bits of the scalar fast path with the same fault config
    // (the fault RNG advances identically either way).
    let g = GridWorld::builder(6, 6).goal(5, 5).build();
    let cfg = AccelConfig::default().with_seed(1234);
    let fc = FaultConfig::default().with_seu_rate(1e-3);
    let mut scalar = QLearningAccel::<Q8_8>::new(&g, cfg);
    let mut forced = QLearningAccel::<Q8_8>::new(&g, cfg);
    scalar.enable_faults(fc);
    forced.enable_faults(fc);
    let ss = scalar.train_samples_fast_planned(&g, 10_000, FastLayout::StateMajor);
    let sf = forced.train_samples_fast_planned(&g, 10_000, FastLayout::Interleaved);
    assert_eq!(ss, sf, "fault fallback: CycleStats diverged");
    assert_eq!(
        scalar.q_table().as_slice(),
        forced.q_table().as_slice(),
        "fault fallback: Q-table diverged"
    );
    assert_eq!(
        scalar.fault_stats(),
        forced.fault_stats(),
        "fault fallback: fault statistics diverged"
    );
}

#[test]
fn instrumented_sink_routes_to_general_path_bit_identically() {
    // Counter-bearing sinks are ineligible (the interleaved executor is
    // uninstrumented by design): the forced layout must mirror the
    // general path's results *and* its perf counters.
    let g = GridWorld::builder(7, 4).goal(6, 3).build();
    let cfg = AccelConfig::default().with_seed(88);
    let mut scalar = QLearningAccel::<Q8_8, CountersOnly>::with_sink(&g, cfg, CountersOnly);
    let mut forced = QLearningAccel::<Q8_8, CountersOnly>::with_sink(&g, cfg, CountersOnly);
    let ss = scalar.train_samples_fast_planned(&g, 8_000, FastLayout::StateMajor);
    let sf = forced.train_samples_fast_planned(&g, 8_000, FastLayout::Interleaved);
    assert_eq!(ss, sf, "sink fallback: CycleStats diverged");
    assert_eq!(
        scalar.q_table().as_slice(),
        forced.q_table().as_slice(),
        "sink fallback: Q-table diverged"
    );
    let (cs, cf): (Vec<_>, Vec<_>) = (
        scalar.counters().iter().collect(),
        forced.counters().iter().collect(),
    );
    assert_eq!(cs, cf, "sink fallback: counter banks diverged");
}

#[test]
fn wide_value_types_fall_back_bit_identically() {
    // f64 stores 64 bits per lane — no subword packing is possible, so
    // the interleaved path is ineligible and must fall back.
    let g = GridWorld::builder(5, 5).goal(4, 4).build();
    let cfg = AccelConfig::default().with_seed(321);
    let mut slow = AccelPipeline::<f64>::new(&g, cfg, 0);
    let mut forced = AccelPipeline::<f64>::new(&g, cfg, 0);
    let ss = slow.run_samples(&g, 5_000);
    let sf = forced.run_samples_fast_planned(&g, 5_000, FastLayout::Interleaved);
    assert_eq!(ss, sf, "f64 fallback: CycleStats diverged");
    assert_eq!(
        slow.q_table().as_slice(),
        forced.q_table().as_slice(),
        "f64 fallback: Q-table diverged"
    );
}

#[test]
fn interleaved_zero_and_tiny_budgets_are_exact() {
    // n = 0 is inert; a total smaller than the group width leaves some
    // legs with zero samples and must still match train_batch.
    let g = GridWorld::builder(4, 4).goal(3, 3).build();
    let mut a = SarsaAccel::<Q8_8>::new(&g, AccelConfig::default(), 0.1);
    let before = a.train_samples(&g, 500);
    let after = a.train_samples_fast_planned(&g, 0, FastLayout::Interleaved);
    assert_eq!(before, after, "zero samples must be inert");

    let envs = grid_group(13, 4);
    let cfg = AccelConfig::default().with_seed(7);
    let mut auto = IndependentPipelines::<Q8_8>::new(&envs, cfg);
    let mut inter = IndependentPipelines::<Q8_8>::new(&envs, cfg);
    auto.train_batch(&envs, 3);
    inter.train_batch_with(&envs, 3, FastLayout::Interleaved, 4);
    assert_banks_identical(&auto, &inter, "total smaller than group width");
}
