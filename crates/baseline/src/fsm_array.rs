//! Model of the FSM-per-state-action baseline accelerator \[11\].
//!
//! Architecture (as characterized by the QTAccel paper, §II and §VI-F):
//! one finite state machine **and its own multipliers** per state-action
//! pair, all instantiated in fabric; a comparator structure finds the max
//! Q-value of the next state. Per iteration only one pair's datapath does
//! useful work — "this leads to a lot of wasted computation" — and the
//! update itself walks a multi-cycle FSM rather than a pipeline.
//!
//! Functional behaviour is plain Q-Learning with an exact row maximum
//! (the parallel comparator tree), so the learned tables are the textbook
//! ones. The interesting parts are the cost laws:
//!
//! * **Multipliers** = |S|·|A| (one per pair, per the QTAccel paper's
//!   characterization — Fig. 7 reports multiplier counts of this design
//!   against QTAccel's constant 4).
//! * **Registers/LUTs** ∝ |S|·|A| (each pair's FSM + Q register lives in
//!   fabric, not BRAM).
//! * **Throughput**: one update every [`FSM_CYCLES_PER_SAMPLE`] cycles.
//!   Calibrated so the Virtex-scale comparison reproduces the paper's
//!   "more than 15X higher" throughput gap at QTAccel's ~185 MS/s.

use qtaccel_core::qtable::{MaxMode, QTable};
use qtaccel_core::trainer::{RefTrainer, TrainerConfig};
use qtaccel_envs::{Action, Environment};
use qtaccel_fixed::QValue;
use qtaccel_hdl::dsp::dsp_slices_for_mul;
use qtaccel_hdl::pipeline::CycleStats;
use qtaccel_hdl::resource::{Device, ResourceReport};

/// Cycles the per-pair FSM takes for one Q-value update. Calibrated: at a
/// ~190 MHz class clock this yields ~12 MS/s, matching the paper's
/// ">15X" gap against QTAccel's 180+ MS/s.
pub const FSM_CYCLES_PER_SAMPLE: u64 = 16;

/// The baseline accelerator instance.
#[derive(Debug, Clone)]
pub struct FsmArrayBaseline<V, E> {
    trainer: RefTrainer<V, E>,
    value_bits: u32,
}

impl<V: QValue, E: Environment> FsmArrayBaseline<V, E> {
    /// Build the baseline over `env`. Uses the exact comparator-tree
    /// maximum (the design has no Qmax array).
    pub fn new(env: E, alpha: f64, gamma: f64, seed: u64) -> Self {
        let config = TrainerConfig::q_learning()
            .with_alpha(alpha)
            .with_gamma(gamma)
            .with_seed(seed)
            .with_max_mode(MaxMode::ExactScan);
        Self {
            trainer: RefTrainer::new(env, config),
            value_bits: V::storage_bits(),
        }
    }

    /// Run `n` updates.
    pub fn train_samples(&mut self, n: u64) {
        self.trainer.run_samples(n);
    }

    /// The learned Q-table.
    pub fn q(&self) -> &QTable<V> {
        self.trainer.q()
    }

    /// Exact greedy policy.
    pub fn greedy_policy(&self) -> Vec<Action> {
        self.trainer.greedy_policy()
    }

    /// Cycle counters under the FSM timing model.
    pub fn stats(&self) -> CycleStats {
        let samples = self.trainer.samples();
        CycleStats {
            cycles: samples * FSM_CYCLES_PER_SAMPLE,
            samples,
            stalls: samples * (FSM_CYCLES_PER_SAMPLE - 1),
            fill_bubbles: 0,
            forwards: 0,
        }
    }

    /// Number of fabric multipliers the design instantiates — one per
    /// state-action pair, per the QTAccel paper's characterization: "the
    /// number of multipliers required by their design is equal to the
    /// number of state-action pairs".
    pub fn multipliers(&self) -> u64 {
        self.trainer.env().num_pairs() as u64
    }

    /// Structural resource report.
    pub fn resources(&self) -> ResourceReport {
        let pairs = self.trainer.env().num_pairs() as u64;
        let per_mul = dsp_slices_for_mul(self.value_bits);
        ResourceReport {
            dsp: self.multipliers() * per_mul,
            // Q registers live in fabric flip-flops, not BRAM.
            bram36: 0,
            uram: 0,
            // Per pair: FSM (~8 LUT) + comparator share (~width LUT) +
            // update mux.
            lut: pairs * (8 + self.value_bits as u64),
            // Per pair: Q register (width) + FSM state (4).
            ff: pairs * (self.value_bits as u64 + 4),
        }
    }

    /// Modeled throughput in MS/s on `device` (base clock / FSM length).
    pub fn throughput_msps(&self, device: &Device) -> f64 {
        device.base_fmax_mhz / FSM_CYCLES_PER_SAMPLE as f64
    }

    /// The largest number of states this architecture fits on `device`
    /// with `num_actions` actions at this value width — the scalability
    /// bound of §VI-F ("Our efficient pipelined design can support a
    /// state space of 131,072 (more than 1000X) compared with 132
    /// supported by the design in \[11\]").
    pub fn max_states_on(device: &Device, num_actions: usize, value_bits: u32) -> usize {
        let per_mul = dsp_slices_for_mul(value_bits);
        let mut lo = 0usize;
        let mut hi = device.dsp_slices as usize + device.ffs as usize; // loose upper bound
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            let pairs = (mid * num_actions) as u64;
            let r = ResourceReport {
                dsp: pairs * per_mul,
                bram36: 0,
                uram: 0,
                lut: pairs * (8 + value_bits as u64),
                ff: pairs * (value_bits as u64 + 4),
            };
            if r.fits(device) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtaccel_envs::GridWorld;
    use qtaccel_fixed::Q8_8;

    fn grid() -> GridWorld {
        GridWorld::builder(4, 4).goal(3, 3).build()
    }

    #[test]
    fn baseline_learns_the_same_policy_class() {
        let g = grid();
        let mut b = FsmArrayBaseline::<f64, _>::new(g.clone(), 0.5, 0.875, 3);
        b.train_samples(200_000);
        let opt =
            qtaccel_core::eval::step_optimality(&g, &b.greedy_policy(), &g.shortest_distances());
        assert_eq!(opt, 1.0, "functional behaviour is textbook Q-learning");
    }

    #[test]
    fn multiplier_count_scales_with_pairs() {
        // 16 states x 4 actions => one multiplier per pair.
        let g = GridWorld::builder(4, 4).goal(3, 3).build();
        let b = FsmArrayBaseline::<Q8_8, _>::new(g, 0.5, 0.875, 1);
        assert_eq!(b.multipliers(), 16 * 4);
        assert_eq!(b.resources().dsp, 16 * 4);
        // Double the action count, double the multipliers.
        let g8 = GridWorld::builder(4, 4)
            .goal(3, 3)
            .actions(qtaccel_envs::ActionSet::Eight)
            .build();
        let b8 = FsmArrayBaseline::<Q8_8, _>::new(g8, 0.5, 0.875, 1);
        assert_eq!(b8.multipliers(), 2 * b.multipliers());
    }

    #[test]
    fn throughput_is_an_order_slower_than_qtaccel() {
        let g = grid();
        let b = FsmArrayBaseline::<Q8_8, _>::new(g, 0.5, 0.875, 1);
        let t = b.throughput_msps(&Device::VIRTEX7_690T);
        // ~185/16 ≈ 11.6 MS/s: QTAccel's 180+ is >15x this.
        assert!(t < 185.0 / 15.0, "baseline throughput {t}");
        assert!(t > 5.0);
    }

    #[test]
    fn stats_reflect_fsm_cycles() {
        let g = grid();
        let mut b = FsmArrayBaseline::<Q8_8, _>::new(g, 0.5, 0.875, 1);
        b.train_samples(1000);
        let s = b.stats();
        assert_eq!(s.samples, 1000);
        assert_eq!(s.cycles, 16_000);
        assert!((s.samples_per_cycle() - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_bound_matches_paper_scale() {
        // The paper: [11] supports ~132 states with 4 actions on a
        // Virtex-6-class device before exhausting DSP/logic.
        let cap = max_states(&Device::VIRTEX6_LX240T, 4, 16);
        assert!(
            (64..=256).contains(&cap),
            "Virtex-6 capacity {cap}, paper says ~132"
        );
        // QTAccel on the same device: BRAM-bound, thousands of states.
        let qtaccel_cap = {
            // Q+R tables at 16 bits must fit 416 BRAM blocks.
            let mut s = 1usize;
            while qtaccel_accel_fits(&Device::VIRTEX6_LX240T, s * 2, 4) {
                s *= 2;
            }
            s
        };
        assert!(
            qtaccel_cap as f64 / cap as f64 > 100.0,
            "QTAccel scalability advantage: {qtaccel_cap} vs {cap}"
        );
    }

    fn max_states(device: &Device, a: usize, bits: u32) -> usize {
        FsmArrayBaseline::<Q8_8, GridWorld>::max_states_on(device, a, bits)
    }

    fn qtaccel_accel_fits(device: &Device, states: usize, actions: usize) -> bool {
        use qtaccel_hdl::bram::blocks_for;
        let sa = (states * actions) as u64;
        let r = ResourceReport {
            dsp: 4,
            bram36: 2 * blocks_for(sa, 16) + blocks_for(states as u64, 19),
            uram: 0,
            lut: 2000,
            ff: 1500,
        };
        r.fits(device)
    }
}
