#![deny(missing_docs)]

//! Comparison baselines for the QTAccel evaluation.
//!
//! * [`fsm_array`] — a model of the state-of-the-art FPGA Q-Learning
//!   accelerator QTAccel compares against (§VI-F, Fig. 7): Da Silva et
//!   al., "Parallel implementation of reinforcement learning Q-learning
//!   technique for FPGA" (IEEE Access 2018). Its defining property, per
//!   the QTAccel paper: "The limitation of their design is the use of a
//!   finite state machine for each state-action pair. Thus, the number of
//!   multipliers required by their design is equal to the number of
//!   state-action pairs." We implement the functional behaviour (plain
//!   Q-Learning) plus the structural resource law and the throughput
//!   model implied by the paper's "more than 15X higher" comparison.
//! * [`cpu`] — the software baseline of Table II: a "python program in
//!   which the Q values are stored in a nested dictionary and are indexed
//!   by state coordinates tuples and actions", reproduced as a hash-map-
//!   of-hash-maps Q-learning loop (measured, not modeled), plus a dense-
//!   array Rust variant for calibration.

pub mod cpu;
pub mod fsm_array;

pub use cpu::{CpuBaseline, CpuKind, CpuThroughput};
pub use fsm_array::FsmArrayBaseline;
