//! The CPU software baseline of Table II.
//!
//! The paper measures "a python program in which the Q values are stored
//! in a nested dictionary and are indexed by state coordinates tuples and
//! actions" on a 2.3 GHz Core i5, and attributes its slowdown to (1) the
//! sequential nature of the algorithm and (2) cache misses once the
//! tables outgrow the LLC.
//!
//! [`CpuBaseline`] reproduces that baseline as an actually-measured
//! software loop in two flavours:
//!
//! * [`CpuKind::NestedDict`] — `HashMap<(x, y), HashMap<action, f64>>`
//!   with the default SipHash hasher: the closest compiled-language
//!   analogue of the Python dict structure.
//! * [`CpuKind::DenseArray`] — a flat `Vec<f64>` indexed arithmetically:
//!   what a performance-conscious Rust implementation does, included so
//!   EXPERIMENTS.md can calibrate how much of the paper's CPU number is
//!   interpreter/dict overhead versus memory behaviour.
//!
//! Being compiled, both run faster than CPython; the *shape* Table II
//! cares about — throughput decreasing with |S| as tables leave cache,
//! and the FPGA model exceeding the CPU by orders of magnitude — is
//! preserved and recorded in EXPERIMENTS.md.

use std::collections::HashMap;
use std::time::Instant;

use qtaccel_core::policy::Policy;
use qtaccel_core::qtable::MaxMode;
use qtaccel_core::trainer::{seed_unit, TrainerConfig};
use qtaccel_envs::{Environment, GridWorld, State};
use qtaccel_hdl::lfsr::Lfsr32;
use qtaccel_hdl::rng::{RngSource, SeedSequence};

/// Which software data structure backs the Q storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuKind {
    /// Hash map of coordinate tuples to per-action hash maps (the
    /// python-dict-like structure of the paper's baseline).
    NestedDict,
    /// Flat dense array, arithmetic indexing.
    DenseArray,
}

/// Measured throughput of a CPU run.
#[derive(Debug, Clone, Copy)]
pub struct CpuThroughput {
    /// Updates performed.
    pub samples: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl CpuThroughput {
    /// Updates per second.
    pub fn samples_per_sec(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.samples as f64 / self.seconds
        }
    }

    /// In the paper's Table II unit (million samples per second).
    pub fn msps(&self) -> f64 {
        self.samples_per_sec() / 1e6
    }
}

/// CPU Q-learning baseline over a grid world.
#[derive(Debug)]
pub struct CpuBaseline {
    env: GridWorld,
    kind: CpuKind,
    config: TrainerConfig,
    dict: HashMap<(u32, u32), HashMap<u32, f64>>,
    dense: Vec<f64>,
    start_rng: Lfsr32,
    behavior_rng: Lfsr32,
    carry: Option<State>,
}

impl CpuBaseline {
    /// Build a baseline matching the accelerator's Q-Learning fixture
    /// (random behaviour, greedy update with exact max — software has no
    /// Qmax array).
    pub fn new(env: GridWorld, kind: CpuKind, seed: u64) -> Self {
        let config = TrainerConfig::q_learning()
            .with_seed(seed)
            .with_max_mode(MaxMode::ExactScan);
        let seeds = SeedSequence::new(config.seed);
        let dense = match kind {
            CpuKind::DenseArray => vec![0.0; env.num_states() * env.num_actions()],
            CpuKind::NestedDict => Vec::new(),
        };
        Self {
            kind,
            config,
            dict: HashMap::new(),
            dense,
            start_rng: Lfsr32::new(seeds.derive(seed_unit::START)),
            behavior_rng: Lfsr32::new(seeds.derive(seed_unit::BEHAVIOR)),
            carry: None,
            env,
        }
    }

    fn q_get_dict(&self, s: State, a: u32) -> f64 {
        let key = self.env.xy_of(s);
        self.dict
            .get(&key)
            .and_then(|row| row.get(&a))
            .copied()
            .unwrap_or(0.0)
    }

    fn max_dict(&self, s: State) -> f64 {
        let key = self.env.xy_of(s);
        let mut best = f64::NEG_INFINITY;
        for a in 0..self.env.num_actions() as u32 {
            let v = self
                .dict
                .get(&key)
                .and_then(|row| row.get(&a))
                .copied()
                .unwrap_or(0.0);
            if v > best {
                best = v;
            }
        }
        best
    }

    /// One sequential Q-learning update (random behaviour, greedy target).
    pub fn step(&mut self) {
        let s = match self.carry.take() {
            Some(s) => s,
            None => self.env.random_start(&mut self.start_rng),
        };
        let a = self.behavior_rng.below(self.env.num_actions() as u32);
        let s_next = self.env.transition(s, a);
        let r = self.env.reward(s, a);
        let (alpha, gamma) = (self.config.alpha, self.config.gamma);
        match self.kind {
            CpuKind::NestedDict => {
                let q_sa = self.q_get_dict(s, a);
                let q_max = self.max_dict(s_next);
                let q_new = (1.0 - alpha) * q_sa + alpha * r + alpha * gamma * q_max;
                let key = self.env.xy_of(s);
                *self
                    .dict
                    .entry(key)
                    .or_default()
                    .entry(a)
                    .or_insert(0.0) = q_new;
            }
            CpuKind::DenseArray => {
                let na = self.env.num_actions();
                let idx = s as usize * na + a as usize;
                let base = s_next as usize * na;
                let mut q_max = f64::NEG_INFINITY;
                for v in &self.dense[base..base + na] {
                    if *v > q_max {
                        q_max = *v;
                    }
                }
                let q_new =
                    (1.0 - alpha) * self.dense[idx] + alpha * r + alpha * gamma * q_max;
                self.dense[idx] = q_new;
            }
        }
        self.carry = if self.env.is_terminal(s_next) {
            None
        } else {
            Some(s_next)
        };
    }

    /// Run `n` updates against the wall clock.
    pub fn measure(&mut self, n: u64) -> CpuThroughput {
        let t0 = Instant::now();
        for _ in 0..n {
            self.step();
        }
        CpuThroughput {
            samples: n,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// The greedy policy learned so far (for sanity checks).
    pub fn greedy_policy(&self) -> Vec<u32> {
        let na = self.env.num_actions() as u32;
        (0..self.env.num_states() as State)
            .map(|s| {
                let mut best_a = 0;
                let mut best_v = f64::NEG_INFINITY;
                for a in 0..na {
                    let v = match self.kind {
                        CpuKind::NestedDict => self.q_get_dict(s, a),
                        CpuKind::DenseArray => {
                            self.dense[s as usize * na as usize + a as usize]
                        }
                    };
                    if v > best_v {
                        best_v = v;
                        best_a = a;
                    }
                }
                best_a
            })
            .collect()
    }

    /// Which behaviour policy the baseline runs (always random, like the
    /// accelerator's Q-Learning fixture).
    pub fn policy(&self) -> Policy {
        self.config.behavior
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: u32) -> GridWorld {
        GridWorld::builder(n, n).goal(n - 1, n - 1).build()
    }

    #[test]
    fn both_kinds_learn() {
        for kind in [CpuKind::NestedDict, CpuKind::DenseArray] {
            let g = grid(4);
            let mut c = CpuBaseline::new(g.clone(), kind, 5);
            for _ in 0..100_000 {
                c.step();
            }
            let opt = qtaccel_core::eval::step_optimality(
                &g,
                &c.greedy_policy(),
                &g.shortest_distances(),
            );
            assert_eq!(opt, 1.0, "{kind:?}");
        }
    }

    #[test]
    fn kinds_agree_on_values() {
        // Same seed, same update rule: the two storages must hold the
        // same Q function.
        let g = grid(4);
        let mut a = CpuBaseline::new(g.clone(), CpuKind::NestedDict, 9);
        let mut b = CpuBaseline::new(g.clone(), CpuKind::DenseArray, 9);
        for _ in 0..20_000 {
            a.step();
            b.step();
        }
        assert_eq!(a.greedy_policy(), b.greedy_policy());
    }

    #[test]
    fn measure_reports_positive_throughput() {
        let g = grid(8);
        let mut c = CpuBaseline::new(g, CpuKind::NestedDict, 2);
        let t = c.measure(50_000);
        assert_eq!(t.samples, 50_000);
        assert!(t.samples_per_sec() > 10_000.0, "{}", t.samples_per_sec());
    }

    #[test]
    fn dense_is_not_slower_than_dict() {
        let g = grid(32);
        let mut dict = CpuBaseline::new(g.clone(), CpuKind::NestedDict, 3);
        let mut dense = CpuBaseline::new(g, CpuKind::DenseArray, 3);
        // Warm up, then measure.
        dict.measure(20_000);
        dense.measure(20_000);
        let td = dict.measure(200_000);
        let tn = dense.measure(200_000);
        assert!(
            tn.samples_per_sec() > td.samples_per_sec(),
            "dense {} vs dict {}",
            tn.samples_per_sec(),
            td.samples_per_sec()
        );
    }
}
