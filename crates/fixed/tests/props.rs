//! Property-based tests for the fixed-point substrate.

use proptest::prelude::*;
use qtaccel_fixed::{QValue, Q16_16, Q8_8};

/// Largest magnitude we exercise for Q8.8 so products stay in range.
const Q8_RANGE: f64 = 10.0;
/// Resolution of Q8.8.
const Q8_EPS: f64 = 1.0 / 256.0;

fn q8(x: f64) -> Q8_8 {
    Q8_8::from_f64(x)
}

proptest! {
    #[test]
    fn roundtrip_error_bounded(x in -120.0f64..120.0) {
        let err = (q8(x).to_f64() - x).abs();
        prop_assert!(err <= Q8_EPS / 2.0 + 1e-12, "err {err}");
    }

    #[test]
    fn add_matches_f64(a in -Q8_RANGE..Q8_RANGE, b in -Q8_RANGE..Q8_RANGE) {
        let got = (q8(a) + q8(b)).to_f64();
        let want = q8(a).to_f64() + q8(b).to_f64();
        // Both operands in range: the sum is exact in fixed point.
        prop_assert_eq!(got, want);
    }

    #[test]
    fn add_commutes(a in -Q8_RANGE..Q8_RANGE, b in -Q8_RANGE..Q8_RANGE) {
        prop_assert_eq!(q8(a) + q8(b), q8(b) + q8(a));
    }

    #[test]
    fn add_associates_in_range(
        a in -Q8_RANGE..Q8_RANGE,
        b in -Q8_RANGE..Q8_RANGE,
        c in -Q8_RANGE..Q8_RANGE,
    ) {
        // Saturation cannot trigger for |a|+|b|+|c| <= 30 < 128, so
        // fixed-point addition is genuinely associative here.
        prop_assert_eq!((q8(a) + q8(b)) + q8(c), q8(a) + (q8(b) + q8(c)));
    }

    #[test]
    fn mul_error_bounded(a in -Q8_RANGE..Q8_RANGE, b in -Q8_RANGE..Q8_RANGE) {
        let got = (q8(a) * q8(b)).to_f64();
        let want = q8(a).to_f64() * q8(b).to_f64();
        // One rounding step of at most eps/2.
        prop_assert!((got - want).abs() <= Q8_EPS / 2.0 + 1e-12,
            "a={a} b={b} got={got} want={want}");
    }

    #[test]
    fn mul_commutes(a in -Q8_RANGE..Q8_RANGE, b in -Q8_RANGE..Q8_RANGE) {
        prop_assert_eq!(q8(a) * q8(b), q8(b) * q8(a));
    }

    #[test]
    fn mul_by_one_is_identity(a in -120.0f64..120.0) {
        prop_assert_eq!(q8(a) * Q8_8::one(), q8(a));
    }

    #[test]
    fn mul_by_zero_is_zero(a in -120.0f64..120.0) {
        prop_assert_eq!(q8(a) * Q8_8::zero(), Q8_8::zero());
    }

    #[test]
    fn neg_is_involutive_in_range(a in -120.0f64..120.0) {
        prop_assert_eq!(-(-q8(a)), q8(a));
    }

    #[test]
    fn ordering_matches_f64(a in -120.0f64..120.0, b in -120.0f64..120.0) {
        let fa = q8(a).to_f64();
        let fb = q8(b).to_f64();
        prop_assert_eq!(q8(a) < q8(b), fa < fb);
        prop_assert_eq!(q8(a).max(q8(b)).to_f64(), fa.max(fb));
    }

    #[test]
    fn saturation_is_monotone(a in prop::num::f64::NORMAL) {
        // from_f64 is monotone even across the saturating region.
        let x = q8(a);
        let y = q8(a.abs() + 1.0);
        prop_assert!(x <= y);
    }

    #[test]
    fn q16_update_close_to_f64(
        q in -100.0f64..100.0,
        r in -100.0f64..100.0,
        qn in -100.0f64..100.0,
        alpha in 0.0f64..1.0,
        gamma in 0.0f64..1.0,
    ) {
        // The full Eq. (3) update in Q16.16 tracks the f64 result within a
        // few rounding steps.
        let f = (1.0 - alpha) * q + alpha * r + alpha * gamma * qn;
        let fx = {
            let (q, r, qn, a, g) = (
                Q16_16::from_f64(q),
                Q16_16::from_f64(r),
                Q16_16::from_f64(qn),
                Q16_16::from_f64(alpha),
                Q16_16::from_f64(gamma),
            );
            a.one_minus().mul(q).add(a.mul(r)).add(a.mul(g).mul(qn)).to_f64()
        };
        prop_assert!((f - fx).abs() < 0.01, "f64={f} fixed={fx}");
    }

    #[test]
    fn one_minus_involution(alpha in 0.0f64..1.0) {
        let a = Q16_16::from_f64(alpha);
        prop_assert_eq!(a.one_minus().one_minus(), a);
    }

    #[test]
    fn div_inverts_mul_for_nice_values(a in 1.0f64..50.0, b in 1.0f64..50.0) {
        let fa = Q16_16::from_f64(a);
        let fb = Q16_16::from_f64(b);
        let q = (fa * fb).checked_div(fb).unwrap();
        prop_assert!((q.to_f64() - fa.to_f64()).abs() < 0.01,
            "a={a} b={b} q={}", q.to_f64());
    }
}
