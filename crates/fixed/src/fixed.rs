//! The [`Fixed`] signed fixed-point number.

use core::cmp::Ordering;
use core::fmt;
use core::marker::PhantomData;
use core::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use crate::storage::Storage;

/// Signed fixed-point value with `FRAC` fractional bits backed by storage
/// word `S`.
///
/// The value represented is `raw / 2^FRAC`. All arithmetic follows the
/// hardware datapath semantics described in the crate docs: saturating
/// add/sub, widening multiply with round-to-nearest writeback.
///
/// ```
/// use qtaccel_fixed::Q8_8;
///
/// let a = Q8_8::from_f64(1.5);
/// let b = Q8_8::from_f64(2.25);
/// assert_eq!((a + b).to_f64(), 3.75);
/// assert_eq!((a * b).to_f64(), 3.375);
/// ```
pub struct Fixed<S, const FRAC: u32> {
    raw: S,
    _marker: PhantomData<fn() -> S>,
}

impl<S: Storage, const FRAC: u32> Fixed<S, FRAC> {
    /// Number of fractional bits (position of the binary point).
    pub const FRAC_BITS: u32 = FRAC;

    /// Construct from a raw two's complement word; the value is
    /// `raw / 2^FRAC`.
    #[inline]
    pub fn from_raw(raw: S) -> Self {
        // Guard against nonsensical formats at the first construction
        // point. A const assertion is not expressible over both the
        // storage generic and FRAC on stable Rust, so enforce here.
        debug_assert!(
            FRAC < S::BITS,
            "FRAC must leave at least the sign bit in the storage word"
        );
        Self {
            raw,
            _marker: PhantomData,
        }
    }

    /// The raw two's complement word.
    #[inline]
    pub fn raw(self) -> S {
        self.raw
    }

    /// Zero.
    #[inline]
    pub fn zero() -> Self {
        Self::from_raw(S::ZERO)
    }

    /// One (`2^FRAC` raw). Saturates if the format cannot represent 1.0.
    #[inline]
    pub fn one() -> Self {
        Self::from_raw(S::from_i64_saturating(1i64 << FRAC))
    }

    /// Most positive representable value.
    #[inline]
    pub fn max_value() -> Self {
        Self::from_raw(S::MAX)
    }

    /// Most negative representable value.
    #[inline]
    pub fn min_value() -> Self {
        Self::from_raw(S::MIN)
    }

    /// Smallest positive increment (`1 / 2^FRAC`).
    #[inline]
    pub fn epsilon() -> Self {
        Self::from_raw(S::from_i64_saturating(1))
    }

    /// Convert from `f64`, rounding to the nearest representable value and
    /// saturating at the format range. `NaN` maps to zero.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        let scaled = x * (1u64 << FRAC) as f64;
        Self::from_raw(S::from_f64_saturating(scaled))
    }

    /// Convert from an integer, saturating.
    #[inline]
    pub fn from_int(x: i64) -> Self {
        Self::from_raw(S::from_i64_saturating(
            x.checked_shl(FRAC).unwrap_or(if x >= 0 { i64::MAX } else { i64::MIN }),
        ))
    }

    /// Exact conversion to `f64` (every fixed-point value of ≤ 53 raw bits
    /// is exactly representable).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.raw.to_f64() / (1u64 << FRAC) as f64
    }

    /// Saturating addition — the behaviour of the pipeline's adder stage.
    #[inline]
    pub fn sat_add(self, other: Self) -> Self {
        Self::from_raw(self.raw.sat_add(other.raw))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn sat_sub(self, other: Self) -> Self {
        Self::from_raw(self.raw.sat_sub(other.raw))
    }

    /// Widening multiply, round-to-nearest, saturating narrow — the
    /// behaviour of one DSP slice plus the writeback truncation.
    #[inline]
    pub fn sat_mul(self, other: Self) -> Self {
        let wide = self.raw.wide_mul(other.raw);
        let rounded = S::wide_shr_round(wide, FRAC);
        Self::from_raw(S::saturate_from_wide(rounded))
    }

    /// Checked division (`None` on divide-by-zero), rounding toward zero.
    ///
    /// The accelerator datapath itself never divides; this exists for the
    /// software-side probability-table normalization (§VII-B of the paper).
    #[inline]
    pub fn checked_div(self, other: Self) -> Option<Self> {
        let dividend = S::wide_shl(self.raw.widen(), FRAC);
        let quotient = S::wide_div(dividend, other.raw.widen())?;
        Some(Self::from_raw(S::saturate_from_wide(quotient)))
    }

    /// Saturating negation.
    #[inline]
    pub fn sat_neg(self) -> Self {
        Self::from_raw(self.raw.sat_neg())
    }

    /// Absolute value (saturating at `MAX` for `MIN`).
    #[inline]
    pub fn abs(self) -> Self {
        if self.raw < S::ZERO {
            self.sat_neg()
        } else {
            self
        }
    }

    /// `1 - self`, the quantity the first pipeline stage derives from the
    /// learning rate α.
    #[inline]
    pub fn one_minus(self) -> Self {
        Self::one().sat_sub(self)
    }

    /// Larger of the two values (the Qmax comparator).
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self.raw >= other.raw {
            self
        } else {
            other
        }
    }

    /// Smaller of the two values.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self.raw <= other.raw {
            self
        } else {
            other
        }
    }

    /// Is this value exactly zero?
    #[inline]
    pub fn is_zero(self) -> bool {
        self.raw == S::ZERO
    }

    /// Is this value negative?
    #[inline]
    pub fn is_negative(self) -> bool {
        self.raw < S::ZERO
    }

    /// Storage width in bits — the BRAM entry width for this format.
    #[inline]
    pub fn storage_bits() -> u32 {
        S::BITS
    }
}

// Manual impls so we do not require `S: Clone + Copy + ...` bounds beyond
// `Storage` (and so `Fixed` is `Copy` regardless of the phantom).
impl<S: Storage, const FRAC: u32> Clone for Fixed<S, FRAC> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}
impl<S: Storage, const FRAC: u32> Copy for Fixed<S, FRAC> {}

impl<S: Storage, const FRAC: u32> Default for Fixed<S, FRAC> {
    #[inline]
    fn default() -> Self {
        Self::zero()
    }
}

impl<S: Storage, const FRAC: u32> PartialEq for Fixed<S, FRAC> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<S: Storage, const FRAC: u32> Eq for Fixed<S, FRAC> {}

impl<S: Storage, const FRAC: u32> PartialOrd for Fixed<S, FRAC> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S: Storage, const FRAC: u32> Ord for Fixed<S, FRAC> {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.raw.cmp(&other.raw)
    }
}

impl<S: Storage, const FRAC: u32> core::hash::Hash for Fixed<S, FRAC> {
    #[inline]
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}

impl<S: Storage, const FRAC: u32> Add for Fixed<S, FRAC> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.sat_add(rhs)
    }
}

impl<S: Storage, const FRAC: u32> AddAssign for Fixed<S, FRAC> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = self.sat_add(rhs);
    }
}

impl<S: Storage, const FRAC: u32> Sub for Fixed<S, FRAC> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.sat_sub(rhs)
    }
}

impl<S: Storage, const FRAC: u32> SubAssign for Fixed<S, FRAC> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = self.sat_sub(rhs);
    }
}

impl<S: Storage, const FRAC: u32> Mul for Fixed<S, FRAC> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.sat_mul(rhs)
    }
}

impl<S: Storage, const FRAC: u32> Neg for Fixed<S, FRAC> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        self.sat_neg()
    }
}

impl<S: Storage, const FRAC: u32> fmt::Debug for Fixed<S, FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Fixed<{}.{}>({}; raw={})",
            S::BITS - FRAC,
            FRAC,
            self.to_f64(),
            self.raw.to_i64()
        )
    }
}

impl<S: Storage, const FRAC: u32> fmt::Display for Fixed<S, FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Q16_16, Q4_12, Q8_8};

    #[test]
    fn zero_one_epsilon() {
        assert_eq!(Q8_8::zero().to_f64(), 0.0);
        assert_eq!(Q8_8::one().to_f64(), 1.0);
        assert_eq!(Q8_8::epsilon().to_f64(), 1.0 / 256.0);
        assert_eq!(Q16_16::epsilon().to_f64(), 1.0 / 65536.0);
    }

    #[test]
    fn from_f64_round_trips_representable_values() {
        for x in [-3.5, -0.25, 0.0, 0.5, 1.0, 100.125, -127.0] {
            assert_eq!(Q8_8::from_f64(x).to_f64(), x, "value {x}");
        }
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Q8_8::from_f64(1e9), Q8_8::max_value());
        assert_eq!(Q8_8::from_f64(-1e9), Q8_8::min_value());
        // Q8.8 max is 127.996...
        assert!(Q8_8::max_value().to_f64() < 128.0);
        assert!(Q8_8::max_value().to_f64() > 127.99);
    }

    #[test]
    fn from_int_saturates() {
        assert_eq!(Q8_8::from_int(3).to_f64(), 3.0);
        assert_eq!(Q8_8::from_int(1000), Q8_8::max_value());
        assert_eq!(Q8_8::from_int(-1000), Q8_8::min_value());
        // Q4.12 range is ±8: 7 is representable, 9 saturates.
        assert_eq!(Q4_12::from_int(7).to_f64(), 7.0);
        assert_eq!(Q4_12::from_int(9), Q4_12::max_value());
    }

    #[test]
    fn add_saturates() {
        let big = Q8_8::from_f64(100.0);
        assert_eq!(big + big, Q8_8::max_value());
        let low = Q8_8::from_f64(-100.0);
        assert_eq!(low + low, Q8_8::min_value());
        assert_eq!((big + low).to_f64(), 0.0);
    }

    #[test]
    fn mul_matches_f64_for_small_values() {
        let a = Q16_16::from_f64(0.3);
        let b = Q16_16::from_f64(0.9);
        let prod = (a * b).to_f64();
        assert!((prod - 0.27).abs() < 1e-4, "got {prod}");
    }

    #[test]
    fn mul_rounds_to_nearest() {
        // In Q8.8, 0.5 * epsilon = epsilon/2, which rounds away from zero
        // to epsilon.
        let half = Q8_8::from_f64(0.5);
        let eps = Q8_8::epsilon();
        assert_eq!(half * eps, eps);
        let neg_eps = -eps;
        assert_eq!(half * neg_eps, neg_eps);
    }

    #[test]
    fn mul_saturates() {
        let big = Q8_8::from_f64(100.0);
        assert_eq!(big * big, Q8_8::max_value());
        let neg = Q8_8::from_f64(-100.0);
        assert_eq!(big * neg, Q8_8::min_value());
    }

    #[test]
    fn one_minus_alpha() {
        let alpha = Q8_8::from_f64(0.25);
        assert_eq!(alpha.one_minus().to_f64(), 0.75);
        assert_eq!(Q8_8::zero().one_minus(), Q8_8::one());
    }

    #[test]
    fn neg_and_abs() {
        let x = Q8_8::from_f64(-2.5);
        assert_eq!((-x).to_f64(), 2.5);
        assert_eq!(x.abs().to_f64(), 2.5);
        assert_eq!(Q8_8::min_value().abs(), Q8_8::max_value());
    }

    #[test]
    fn ordering_matches_f64() {
        let vals = [-5.0, -0.5, 0.0, 0.25, 3.75];
        for &a in &vals {
            for &b in &vals {
                let fa = Q8_8::from_f64(a);
                let fb = Q8_8::from_f64(b);
                assert_eq!(fa < fb, a < b, "{a} vs {b}");
                assert_eq!(fa.max(fb).to_f64(), a.max(b));
                assert_eq!(fa.min(fb).to_f64(), a.min(b));
            }
        }
    }

    #[test]
    fn checked_div_basic() {
        let a = Q16_16::from_f64(1.0);
        let b = Q16_16::from_f64(4.0);
        assert_eq!(a.checked_div(b).unwrap().to_f64(), 0.25);
        assert_eq!(a.checked_div(Q16_16::zero()), None);
    }

    #[test]
    fn display_and_debug_are_humane() {
        let x = Q8_8::from_f64(1.5);
        assert_eq!(format!("{x}"), "1.5");
        let dbg = format!("{x:?}");
        assert!(dbg.contains("8.8"), "{dbg}");
        assert!(dbg.contains("raw=384"), "{dbg}");
    }

    #[test]
    fn nan_maps_to_zero() {
        assert_eq!(Q8_8::from_f64(f64::NAN), Q8_8::zero());
    }
}
