//! Sub-word lane packing: several narrow Q-values in one `u64`.
//!
//! The QTAccel datapath is narrow by design — Table I's formats are 16
//! and 32 bits wide — so a 64-bit host word holds 4 (Q8.8) or 2 (Q16.16)
//! Q-values. The interleaved fast-path executor exploits this to fuse
//! several table fields into a single 64-bit load (one memory operation
//! where the scalar path issues several). These helpers define the lane
//! convention: lane `k` occupies bits `[k·w, (k+1)·w)` of the word, where
//! `w = storage_bits()` — little-endian lane order, matching how a
//! hardware concatenation of `w`-bit BRAM words onto a wide bus is
//! usually drawn.
//!
//! Round-tripping relies on the [`QValue`] bit contract: `to_bits` is
//! width-masked (no bits above `w`) and `from_bits` ignores bits above
//! `w`, so extraction only needs a shift, not a mask-and-shift pair.

use crate::QValue;

/// How many `V`-sized lanes fit in a `u64` (4 for Q8.8, 2 for Q16.16).
///
/// `storage_bits()` must divide 64, which holds for every power-of-two
/// storage width this crate defines.
#[inline(always)]
pub fn lanes_per_u64<V: QValue>() -> u32 {
    debug_assert!(64 % V::storage_bits() == 0);
    64 / V::storage_bits()
}

/// Insert `v` into lane `lane` of `word`, preserving the other lanes.
#[inline(always)]
pub fn insert_lane<V: QValue>(word: u64, lane: u32, v: V) -> u64 {
    let w = V::storage_bits();
    debug_assert!(lane < lanes_per_u64::<V>());
    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
    let shift = lane * w;
    (word & !(mask << shift)) | (v.to_bits() << shift)
}

/// Extract lane `lane` of `word` as a `V`.
#[inline(always)]
pub fn extract_lane<V: QValue>(word: u64, lane: u32) -> V {
    debug_assert!(lane < lanes_per_u64::<V>());
    // from_bits ignores bits above storage_bits(): shift alone suffices.
    V::from_bits(word >> (lane * V::storage_bits()))
}

/// Pack up to [`lanes_per_u64`] values into one word (lane 0 first;
/// missing trailing lanes are zero).
#[inline]
pub fn pack_lanes<V: QValue>(vals: &[V]) -> u64 {
    assert!(vals.len() as u32 <= lanes_per_u64::<V>());
    let mut word = 0u64;
    for (lane, &v) in vals.iter().enumerate() {
        word = insert_lane(word, lane as u32, v);
    }
    word
}

/// Unpack `out.len()` leading lanes of `word` (inverse of [`pack_lanes`]).
#[inline]
pub fn unpack_lanes<V: QValue>(word: u64, out: &mut [V]) {
    assert!(out.len() as u32 <= lanes_per_u64::<V>());
    for (lane, o) in out.iter_mut().enumerate() {
        *o = extract_lane(word, lane as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Q16_16, Q8_8};

    #[test]
    fn lane_counts_match_table_one_widths() {
        assert_eq!(lanes_per_u64::<Q8_8>(), 4);
        assert_eq!(lanes_per_u64::<Q16_16>(), 2);
        assert_eq!(lanes_per_u64::<f32>(), 2);
        assert_eq!(lanes_per_u64::<f64>(), 1);
    }

    #[test]
    fn q8_8_four_lane_round_trip() {
        // Negative values exercise the sign-extension path: a packed
        // negative lane must not leak its sign bits into its neighbours.
        let vals = [
            Q8_8::from_f64(-1.5),
            Q8_8::from_f64(127.5),
            Q8_8::from_f64(-128.0),
            Q8_8::from_f64(0.25),
        ];
        let word = pack_lanes(&vals);
        let mut back = [Q8_8::zero(); 4];
        unpack_lanes(word, &mut back);
        assert_eq!(back, vals);
        for (lane, &v) in vals.iter().enumerate() {
            assert_eq!(extract_lane::<Q8_8>(word, lane as u32), v);
        }
    }

    #[test]
    fn q16_16_two_lane_round_trip() {
        let vals = [Q16_16::from_f64(-3.25), Q16_16::from_f64(1e4)];
        let word = pack_lanes(&vals);
        assert_eq!(extract_lane::<Q16_16>(word, 0), vals[0]);
        assert_eq!(extract_lane::<Q16_16>(word, 1), vals[1]);
    }

    #[test]
    fn insert_preserves_other_lanes() {
        let vals = [
            Q8_8::from_f64(1.0),
            Q8_8::from_f64(2.0),
            Q8_8::from_f64(3.0),
            Q8_8::from_f64(4.0),
        ];
        let word = pack_lanes(&vals);
        let patched = insert_lane(word, 2, Q8_8::from_f64(-9.5));
        assert_eq!(extract_lane::<Q8_8>(patched, 0), vals[0]);
        assert_eq!(extract_lane::<Q8_8>(patched, 1), vals[1]);
        assert_eq!(extract_lane::<Q8_8>(patched, 2), Q8_8::from_f64(-9.5));
        assert_eq!(extract_lane::<Q8_8>(patched, 3), vals[3]);
    }

    #[test]
    fn full_width_lane_is_identity() {
        use crate::Q32_32;
        let v = Q32_32::from_f64(-1234.5);
        let word = pack_lanes(&[v]);
        assert_eq!(word, QValue::to_bits(v));
        assert_eq!(extract_lane::<Q32_32>(word, 0), v);
    }
}
