//! Storage integers usable as the backing word of a [`crate::Fixed`] value.

use core::fmt::Debug;
use core::hash::Hash;

/// A signed two's complement integer that can back a fixed-point value.
///
/// The associated [`Storage::Wide`] type must hold the full product of two
/// storage words — exactly what a DSP slice produces before the writeback
/// path narrows it again.
pub trait Storage:
    Copy + Clone + Debug + Eq + Ord + Hash + Send + Sync + Default + 'static
{
    /// Double-width type holding a full product.
    type Wide: Copy + Clone + Debug + Eq + Ord;

    /// Bit width of the storage word (the BRAM entry width).
    const BITS: u32;
    /// All-zeros word.
    const ZERO: Self;
    /// Most positive representable word.
    const MAX: Self;
    /// Most negative representable word.
    const MIN: Self;

    /// Widen to the product type.
    fn widen(self) -> Self::Wide;
    /// Narrow from the product type, saturating at the storage range.
    fn saturate_from_wide(wide: Self::Wide) -> Self;
    /// Saturating addition.
    fn sat_add(self, other: Self) -> Self;
    /// Saturating subtraction.
    fn sat_sub(self, other: Self) -> Self;
    /// Saturating negation (`MIN` maps to `MAX`).
    fn sat_neg(self) -> Self;
    /// Full-width product of two storage words.
    fn wide_mul(self, other: Self) -> Self::Wide;
    /// Arithmetic shift right of the wide product with
    /// round-half-away-from-zero, as the DSP writeback path performs.
    fn wide_shr_round(wide: Self::Wide, shift: u32) -> Self::Wide;
    /// Wide left shift (for division / rescaling paths).
    fn wide_shl(wide: Self::Wide, shift: u32) -> Self::Wide;
    /// Checked wide division (`None` on divide-by-zero).
    fn wide_div(a: Self::Wide, b: Self::Wide) -> Option<Self::Wide>;
    /// Lossless conversion to `f64` (exact for every representable word).
    fn to_f64(self) -> f64;
    /// Convert from `f64`, rounding to nearest and saturating.
    fn from_f64_saturating(x: f64) -> Self;
    /// Raw bits as `i64` (for display/serialization).
    fn to_i64(self) -> i64;
    /// Construct from `i64`, saturating.
    fn from_i64_saturating(x: i64) -> Self;
}

macro_rules! impl_storage {
    ($ty:ty, $wide:ty, $bits:expr) => {
        impl Storage for $ty {
            type Wide = $wide;

            const BITS: u32 = $bits;
            const ZERO: Self = 0;
            const MAX: Self = <$ty>::MAX;
            const MIN: Self = <$ty>::MIN;

            #[inline]
            fn widen(self) -> $wide {
                self as $wide
            }

            #[inline]
            fn saturate_from_wide(wide: $wide) -> Self {
                if wide > <$ty>::MAX as $wide {
                    <$ty>::MAX
                } else if wide < <$ty>::MIN as $wide {
                    <$ty>::MIN
                } else {
                    wide as $ty
                }
            }

            #[inline]
            fn sat_add(self, other: Self) -> Self {
                self.saturating_add(other)
            }

            #[inline]
            fn sat_sub(self, other: Self) -> Self {
                self.saturating_sub(other)
            }

            #[inline]
            fn sat_neg(self) -> Self {
                self.checked_neg().unwrap_or(<$ty>::MAX)
            }

            #[inline]
            fn wide_mul(self, other: Self) -> $wide {
                (self as $wide) * (other as $wide)
            }

            #[inline]
            fn wide_shr_round(wide: $wide, shift: u32) -> $wide {
                if shift == 0 {
                    return wide;
                }
                let half: $wide = 1 << (shift - 1);
                // Round half away from zero: shift the magnitude with a
                // half-bias, then restore the sign. The saturating ops keep
                // the extremes well-defined; they are unreachable for
                // realistic formats because the product of two in-range
                // words leaves headroom in the wide type.
                if wide >= 0 {
                    wide.saturating_add(half) >> shift
                } else {
                    let mag = wide.checked_neg().unwrap_or(<$wide>::MAX);
                    -(mag.saturating_add(half) >> shift)
                }
            }

            #[inline]
            fn wide_shl(wide: $wide, shift: u32) -> $wide {
                wide.checked_shl(shift).unwrap_or(if wide >= 0 {
                    <$wide>::MAX
                } else {
                    <$wide>::MIN
                })
            }

            #[inline]
            fn wide_div(a: $wide, b: $wide) -> Option<$wide> {
                a.checked_div(b)
            }

            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline]
            fn from_f64_saturating(x: f64) -> Self {
                if x.is_nan() {
                    return 0;
                }
                let r = x.round_ties_even();
                if r >= <$ty>::MAX as f64 {
                    <$ty>::MAX
                } else if r <= <$ty>::MIN as f64 {
                    <$ty>::MIN
                } else {
                    r as $ty
                }
            }

            #[inline]
            fn to_i64(self) -> i64 {
                self as i64
            }

            #[inline]
            fn from_i64_saturating(x: i64) -> Self {
                if x > <$ty>::MAX as i64 {
                    <$ty>::MAX
                } else if x < <$ty>::MIN as i64 {
                    <$ty>::MIN
                } else {
                    x as $ty
                }
            }
        }
    };
}

impl_storage!(i16, i32, 16);
impl_storage!(i32, i64, 32);
impl_storage!(i64, i128, 64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_types() {
        assert_eq!(<i16 as Storage>::BITS, 16);
        assert_eq!(<i32 as Storage>::BITS, 32);
        assert_eq!(<i64 as Storage>::BITS, 64);
    }

    #[test]
    fn saturate_from_wide_clamps_both_ends() {
        assert_eq!(<i16 as Storage>::saturate_from_wide(40_000), i16::MAX);
        assert_eq!(<i16 as Storage>::saturate_from_wide(-40_000), i16::MIN);
        assert_eq!(<i16 as Storage>::saturate_from_wide(123), 123);
    }

    #[test]
    fn sat_neg_of_min_is_max() {
        assert_eq!(<i16 as Storage>::sat_neg(i16::MIN), i16::MAX);
        assert_eq!(<i32 as Storage>::sat_neg(i32::MIN), i32::MAX);
        assert_eq!(<i16 as Storage>::sat_neg(5), -5);
    }

    #[test]
    fn wide_shr_round_rounds_half_away_from_zero() {
        // 3 >> 1 with rounding: 1.5 -> 2
        assert_eq!(<i16 as Storage>::wide_shr_round(3, 1), 2);
        // -3 >> 1 with rounding: -1.5 -> -2
        assert_eq!(<i16 as Storage>::wide_shr_round(-3, 1), -2);
        // 5 >> 2: 1.25 -> 1
        assert_eq!(<i16 as Storage>::wide_shr_round(5, 2), 1);
        // -5 >> 2: -1.25 -> -1
        assert_eq!(<i16 as Storage>::wide_shr_round(-5, 2), -1);
        // shift 0 is identity
        assert_eq!(<i16 as Storage>::wide_shr_round(-5, 0), -5);
    }

    #[test]
    fn from_f64_rounds_and_saturates() {
        assert_eq!(<i16 as Storage>::from_f64_saturating(1.5), 2);
        assert_eq!(<i16 as Storage>::from_f64_saturating(2.5), 2); // ties even
        assert_eq!(<i16 as Storage>::from_f64_saturating(1e9), i16::MAX);
        assert_eq!(<i16 as Storage>::from_f64_saturating(-1e9), i16::MIN);
        assert_eq!(<i16 as Storage>::from_f64_saturating(f64::NAN), 0);
    }

    #[test]
    fn wide_div_rejects_zero() {
        assert_eq!(<i32 as Storage>::wide_div(10, 0), None);
        assert_eq!(<i32 as Storage>::wide_div(10, 3), Some(3));
    }
}
