#![deny(missing_docs)]

//! Fixed-point arithmetic substrate for the QTAccel hardware datapath.
//!
//! FPGA datapaths operate on fixed-point values: each Q-value, reward and
//! learning-rate constant in the QTAccel pipeline is a signed two's
//! complement number with a compile-time binary point. This crate provides
//! [`Fixed`], a signed fixed-point type generic over the storage integer
//! (`i16`/`i32`/`i64`) and the number of fractional bits, with
//! hardware-faithful semantics:
//!
//! * **Saturating addition/subtraction** — FPGA adders in this design clamp
//!   at the representable range rather than wrapping, so diverging Q-values
//!   degrade gracefully instead of corrupting sign bits.
//! * **Widening multiplication with round-to-nearest** — the DSP slice
//!   produces the full-width product; the writeback path truncates back to
//!   the datapath width with round-half-away-from-zero, then saturates.
//! * **Bit-exact determinism** — the same operations performed by the
//!   cycle-accurate pipeline model and the software golden reference yield
//!   identical bit patterns, which is what makes the equivalence tests in
//!   `qtaccel-accel` meaningful.
//!
//! The default datapath format for the paper's experiments is [`Q8_8`]
//! (16-bit storage, 8 fractional bits): DESIGN.md §4 shows this is the width
//! that reproduces the paper's reported BRAM utilization on the xcvu13p.
//!
//! The [`QValue`] trait abstracts over `f32`/`f64`/[`Fixed`] so the
//! algorithm crates can run both floating-point references and
//! hardware-format simulations from one code path.

mod fixed;
pub mod lanes;
pub mod quant;
mod storage;
mod value;

pub use fixed::Fixed;
pub use quant::QuantPolicy;
pub use storage::Storage;
pub use value::QValue;

/// 16-bit datapath, 8 fractional bits (range ±128, resolution 1/256).
///
/// This is the default hardware format: it is the widest format for which
/// the paper's largest test case (|S|=262144, |A|=8) still fits the
/// xcvu13p's 94.5 Mb of BRAM at the reported ~78 % utilization.
pub type Q8_8 = Fixed<i16, 8>;

/// 16-bit datapath, 12 fractional bits (range ±8, resolution 1/4096).
///
/// Useful when rewards are pre-scaled into [-1, 1] and resolution matters
/// more than range.
pub type Q4_12 = Fixed<i16, 12>;

/// 32-bit datapath, 16 fractional bits (range ±32768, resolution ~1.5e-5).
///
/// A wide format for accuracy studies; doubles the BRAM cost per entry.
pub type Q16_16 = Fixed<i32, 16>;

/// 64-bit datapath, 32 fractional bits. Primarily for numerical reference
/// runs; no realistic FPGA deployment of the paper uses this width.
pub type Q32_32 = Fixed<i64, 32>;
