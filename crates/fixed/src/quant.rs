//! Sub-8-bit packed Q-table storage with stochastic rounding.
//!
//! The datapath still computes in a full [`crate::Fixed`] working format
//! (Q8.8 by default), but the *stored* Q-entry can be narrowed to 4, 6 or
//! 8 bits: a [`QuantPolicy`] maps a working-format raw word to a
//! `stored_bits`-wide two's-complement *code* by dropping the low `shift`
//! raw bits, and back by shifting the sign-extended code up again. This
//! is the QForce-RL storage trade (PAPERS.md): the BRAM word narrows —
//! 2–4× more Q-entries per block and per host cache line — while the
//! update arithmetic keeps the working precision.
//!
//! Truncation alone would bias every update toward −∞ (Q-values shrink by
//! up to `2^shift − 1` raw units per writeback, and the TD feedback loop
//! accumulates the bias). The policy therefore quantizes with **stochastic
//! rounding**: before the arithmetic shift, a uniform draw in
//! `[0, 2^shift)` from the engine's dedicated quantization LFSR stream is
//! added, so the rounded code is unbiased in expectation
//! (`E[dequant(quant(x))] = x` for in-range `x`). The draw comes from the
//! same seeded [`SeedSequence`] machinery as every other RNG unit, which
//! makes the error compensation deterministic and bit-exact across the
//! cycle-accurate and fast executors.
//!
//! Two algebraic properties the engines lean on:
//!
//! * **Idempotence**: a dequantized value is already on the storage grid,
//!   so re-quantizing it returns the same code *regardless of the random
//!   draw* (`(c·2^s + r) >> s = c` for any `r < 2^s`). Executors may
//!   therefore re-encode a table image without consuming or even agreeing
//!   on RNG state.
//! * **Monotonicity**: dequantization is strictly increasing in the code,
//!   so comparing codes and comparing dequantized values (the Qmax
//!   comparator) give the same answer.
//!
//! Packing reuses the lane convention of [`crate::lanes`]: code `k` of a
//! word occupies bits `[k·b, (k+1)·b)`. Unlike the [`QValue`] lane
//! helpers, `stored_bits` need not divide 64 — a 6-bit code packs 10 per
//! word with 4 spare (zero) bits on top, matching how a hardware packer
//! concatenates narrow BRAM words onto a 64-bit bus.
//!
//! [`SeedSequence`]: https://docs.rs/ (the `qtaccel-hdl` RNG seeding type)

use crate::QValue;

/// Sign-extend a `width`-bit two's-complement word right-aligned in a
/// `u64`.
#[inline(always)]
fn sign_extend(bits: u64, width: u32) -> i64 {
    debug_assert!((1..=64).contains(&width));
    if width >= 64 {
        bits as i64
    } else {
        let shift = 64 - width;
        ((bits << shift) as i64) >> shift
    }
}

/// The stored-format description: how a working-format raw word maps to a
/// narrow stored code and back (see the module docs).
///
/// `stored_bits` is the BRAM entry width of the packed table;
/// `shift` is how many low raw bits the storage drops. The representable
/// range in working-raw units is `[−2^(stored_bits−1)·2^shift,
/// (2^(stored_bits−1)−1)·2^shift]` with step `2^shift` — narrowing trades
/// range and resolution against storage, and the shift picks where on
/// that trade-off the format sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantPolicy {
    stored_bits: u32,
    shift: u32,
}

impl QuantPolicy {
    /// A policy storing `stored_bits`-wide codes after dropping `shift`
    /// low raw bits.
    ///
    /// # Panics
    /// If `stored_bits` is outside `[2, 32]` or `shift ≥ 32` — the
    /// construction-time sanity bounds. Whether the policy fits a given
    /// working format is checked by [`QuantPolicy::validate_for`].
    pub const fn new(stored_bits: u32, shift: u32) -> Self {
        assert!(
            stored_bits >= 2 && stored_bits <= 32,
            "stored_bits must be in [2, 32]"
        );
        assert!(shift < 32, "shift must be < 32");
        Self { stored_bits, shift }
    }

    /// 8-bit stored entries for the 16-bit working formats: step `2^2`
    /// raw units (1/64 in Q8.8), range ±2 — the sweet spot the Pareto
    /// table shows matching 16-bit policy quality on the gate scenario.
    pub const fn q8() -> Self {
        Self::new(8, 2)
    }

    /// 6-bit stored entries for the 16-bit working formats: step `2^4`
    /// raw units (1/16 in Q8.8), range ±2.
    pub const fn q6() -> Self {
        Self::new(6, 4)
    }

    /// 4-bit stored entries for the 16-bit working formats: step `2^6`
    /// raw units (1/4 in Q8.8), range ±2.
    pub const fn q4() -> Self {
        Self::new(4, 6)
    }

    /// Stored entry width in bits (the packed BRAM word width).
    #[inline(always)]
    pub const fn stored_bits(&self) -> u32 {
        self.stored_bits
    }

    /// Low raw bits dropped by the storage (the quantization step is
    /// `2^shift` working-raw units).
    #[inline(always)]
    pub const fn shift(&self) -> u32 {
        self.shift
    }

    /// How many codes pack into one `u64` host word (floor division —
    /// a 6-bit code packs 10 per word with 4 spare bits).
    #[inline(always)]
    pub const fn codes_per_u64(&self) -> u32 {
        64 / self.stored_bits
    }

    /// Most positive code, as a signed integer (`2^(b−1) − 1`).
    #[inline(always)]
    pub const fn max_code(&self) -> i64 {
        (1i64 << (self.stored_bits - 1)) - 1
    }

    /// Most negative code (`−2^(b−1)`).
    #[inline(always)]
    pub const fn min_code(&self) -> i64 {
        -(1i64 << (self.stored_bits - 1))
    }

    /// Check this policy against a working format: the stored word must
    /// be strictly narrower than the working word and the dequantized
    /// raw (`stored_bits + shift` significant bits) must fit it.
    ///
    /// # Panics
    /// If either condition fails.
    pub fn validate_for<V: QValue>(&self) {
        let w = V::storage_bits();
        assert!(
            self.stored_bits < w,
            "stored width {} must be narrower than the working width {w}",
            self.stored_bits
        );
        assert!(
            self.stored_bits + self.shift <= w,
            "stored_bits {} + shift {} exceeds the working width {w}",
            self.stored_bits,
            self.shift
        );
    }

    /// Quantize a working-format raw word (sign-extended to `i64`) with
    /// the stochastic-rounding draw `rnd` (only its low `shift` bits are
    /// used). Returns the `stored_bits`-wide code right-aligned in a
    /// `u64`, saturated at the narrow rails.
    #[inline(always)]
    pub fn quantize_raw(&self, raw: i64, rnd: u64) -> u64 {
        let mask = (1u64 << self.shift) - 1;
        let dither = (rnd & mask) as i64;
        // Saturating add only matters within 2^shift of i64::MAX, far
        // outside any working format narrower than 64 bits; it keeps the
        // 64-bit reference formats well-defined too.
        let code = raw.saturating_add(dither) >> self.shift;
        let code = code.clamp(self.min_code(), self.max_code());
        code as u64 & self.code_mask()
    }

    /// Inverse of [`quantize_raw`](Self::quantize_raw): sign-extend the
    /// code and restore the dropped low bits as zeros.
    #[inline(always)]
    pub fn dequantize_raw(&self, code: u64) -> i64 {
        sign_extend(code, self.stored_bits) << self.shift
    }

    /// Quantize a working-format value to its stored code.
    #[inline(always)]
    pub fn quantize<V: QValue>(&self, v: V, rnd: u64) -> u64 {
        self.quantize_raw(sign_extend(v.to_bits(), V::storage_bits()), rnd)
    }

    /// Reconstruct the working-format value a stored code represents.
    #[inline(always)]
    pub fn dequantize<V: QValue>(&self, code: u64) -> V {
        V::from_bits(self.dequantize_raw(code) as u64)
    }

    /// [`apply`](Self::apply) in the raw domain: dither, truncate to the
    /// grid, clamp at the narrow rails, restore the dropped low bits as
    /// zeros. Bit-identical to `dequantize_raw(quantize_raw(..))` — the
    /// clamped code is in range, so the mask-and-sign-extend round trip
    /// is the identity — with one shift fewer on the writeback's
    /// dependency chain (the packed executor's hot path).
    #[inline(always)]
    pub fn apply_raw(&self, raw: i64, rnd: u64) -> i64 {
        let mask = (1u64 << self.shift) - 1;
        let dither = (rnd & mask) as i64;
        let code = (raw.saturating_add(dither) >> self.shift).clamp(self.min_code(), self.max_code());
        code << self.shift
    }

    /// The value the packed table actually holds after writing `v`: a
    /// quantize/dequantize round trip with the draw `rnd`. This is the
    /// write-port transform both executors apply to every Q writeback.
    #[inline(always)]
    pub fn apply<V: QValue>(&self, v: V, rnd: u64) -> V {
        V::from_bits(self.apply_raw(sign_extend(v.to_bits(), V::storage_bits()), rnd) as u64)
    }

    /// Deterministic round-to-nearest (half away from zero toward +∞ in
    /// code space) — the *load-time* quantization for static tables (the
    /// reward ROM), where an unbiased but random rounding would make the
    /// table depend on RNG state.
    #[inline(always)]
    pub fn round_nearest<V: QValue>(&self, v: V) -> V {
        let half = if self.shift == 0 {
            0
        } else {
            1u64 << (self.shift - 1)
        };
        self.apply(v, half)
    }

    /// The code for `v` if `v` sits exactly on the storage grid (in
    /// range, low `shift` raw bits zero); `None` otherwise. Lets an
    /// executor re-encode a table image and detect off-grid words (e.g.
    /// after a raw-word fault strike) instead of silently moving them.
    pub fn try_code<V: QValue>(&self, v: V) -> Option<u64> {
        let code = self.quantize(v, 0);
        if self.dequantize::<V>(code) == v {
            Some(code)
        } else {
            None
        }
    }

    /// Most positive representable stored value, in the working format.
    pub fn max_value<V: QValue>(&self) -> V {
        self.dequantize((self.max_code() as u64) & self.code_mask())
    }

    /// Most negative representable stored value, in the working format.
    pub fn min_value<V: QValue>(&self) -> V {
        self.dequantize((self.min_code() as u64) & self.code_mask())
    }

    /// Right-aligned mask of `stored_bits` ones.
    #[inline(always)]
    pub const fn code_mask(&self) -> u64 {
        (1u64 << self.stored_bits) - 1
    }

    /// Extract code `lane` of a packed word (`lane <` [`codes_per_u64`]).
    ///
    /// [`codes_per_u64`]: Self::codes_per_u64
    #[inline(always)]
    pub fn extract_code(&self, word: u64, lane: u32) -> u64 {
        debug_assert!(lane < self.codes_per_u64());
        (word >> (lane * self.stored_bits)) & self.code_mask()
    }

    /// Insert `code` into lane `lane` of a packed word, preserving the
    /// other lanes.
    #[inline(always)]
    pub fn insert_code(&self, word: u64, lane: u32, code: u64) -> u64 {
        debug_assert!(lane < self.codes_per_u64());
        debug_assert!(code & !self.code_mask() == 0);
        let shift = lane * self.stored_bits;
        (word & !(self.code_mask() << shift)) | (code << shift)
    }

    /// Short stable name for reports and checkpoint diagnostics, e.g.
    /// `"q8s2"` (8 stored bits, shift 2).
    pub fn format_name(&self) -> String {
        format!("q{}s{}", self.stored_bits, self.shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Q16_16, Q8_8};

    /// The tiny Galois LFSR step used by `qtaccel-hdl`'s Lfsr32
    /// (taps 0x8020_0003), reimplemented locally so the satellite-1
    /// golden words are pinned without a cyclic dev-dependency.
    fn lfsr32_step(state: u32) -> u32 {
        let lsb = state & 1;
        let mut s = state >> 1;
        if lsb != 0 {
            s ^= 0x8020_0003;
        }
        s
    }

    #[test]
    fn defaults_match_the_documented_ranges() {
        for (p, bits, shift, step, lo, hi) in [
            (QuantPolicy::q8(), 8, 2, 4.0 / 256.0, -2.0, 127.0 / 64.0),
            (QuantPolicy::q6(), 6, 4, 16.0 / 256.0, -2.0, 31.0 / 16.0),
            (QuantPolicy::q4(), 4, 6, 64.0 / 256.0, -2.0, 7.0 / 4.0),
        ] {
            p.validate_for::<Q8_8>();
            assert_eq!(p.stored_bits(), bits);
            assert_eq!(p.shift(), shift);
            assert_eq!(p.dequantize::<Q8_8>(1).to_f64(), step);
            assert_eq!(p.min_value::<Q8_8>().to_f64(), lo, "{}", p.format_name());
            assert_eq!(p.max_value::<Q8_8>().to_f64(), hi, "{}", p.format_name());
        }
        assert_eq!(QuantPolicy::q8().codes_per_u64(), 8);
        assert_eq!(QuantPolicy::q6().codes_per_u64(), 10, "4 spare bits");
        assert_eq!(QuantPolicy::q4().codes_per_u64(), 16);
    }

    #[test]
    #[should_panic(expected = "narrower than the working width")]
    fn policy_as_wide_as_the_working_format_is_rejected() {
        QuantPolicy::new(16, 0).validate_for::<Q8_8>();
    }

    #[test]
    #[should_panic(expected = "exceeds the working width")]
    fn shift_overflowing_the_working_word_is_rejected() {
        QuantPolicy::new(8, 9).validate_for::<Q8_8>();
    }

    /// Satellite 1: pinned golden words. The LFSR stream is the pinned
    /// taps sequence from seed 1; the quantized codes and reconstructed
    /// values below were computed by hand from the definition
    /// `code = clamp((raw + (rnd mod 2^shift)) >> shift)`.
    #[test]
    fn stochastic_rounding_golden_words_are_pinned() {
        // Raw 100 in Q8.8 (0.390625) under q8 (shift 2): lattice codes
        // 25 (raw 100) — on-grid, every draw returns 25.
        let p8 = QuantPolicy::q8();
        for rnd in [0u64, 1, 2, 3, 0xFFFF_FFFF] {
            assert_eq!(p8.quantize_raw(100, rnd), 25);
        }
        // Raw 101 = 25.25 steps: draws 0..=2 floor to 25, draw 3 carries
        // to 26.
        assert_eq!(p8.quantize_raw(101, 0), 25);
        assert_eq!(p8.quantize_raw(101, 2), 25);
        assert_eq!(p8.quantize_raw(101, 3), 26);
        // Negative raws use the same floor-after-dither rule: −101 sits
        // between codes −26 (raw −104) and −25 (raw −100).
        assert_eq!(p8.quantize_raw(-101, 0) as i8 as i64, -26);
        assert_eq!(p8.quantize_raw(-101, 3) as i8 as i64, -25);
        // A pinned LFSR-fed sequence at q6 (shift 4), raw 250 = 15·16+10:
        // the low 4 bits of the draw decide code 15 vs 16 (carry at ≥ 6).
        let p6 = QuantPolicy::q6();
        let mut s = 1u32;
        let mut codes = Vec::new();
        for _ in 0..8 {
            codes.push(p6.quantize_raw(250, s as u64) as i64);
            for _ in 0..32 {
                s = lfsr32_step(s);
            }
        }
        let expected: Vec<i64> = {
            let mut s = 1u32;
            let mut v = Vec::new();
            for _ in 0..8 {
                v.push(if (s & 0xF) >= 6 { 16 } else { 15 });
                for _ in 0..32 {
                    s = lfsr32_step(s);
                }
            }
            v
        };
        assert_eq!(codes, expected);
        // And out-of-range raws clamp, never wrap: 1000 raw = 62.5 codes,
        // far past the 6-bit rail of 31.
        assert_eq!(p6.quantize_raw(1000, 0) as i64, 31);
    }

    #[test]
    fn round_trips_are_exact_on_the_grid_at_4_6_8_bits() {
        for p in [QuantPolicy::q4(), QuantPolicy::q6(), QuantPolicy::q8()] {
            for code in 0..(1u64 << p.stored_bits()) {
                let v: Q8_8 = p.dequantize(code);
                // Idempotence: any draw maps a grid value back to its code.
                for rnd in [0u64, 1, (1 << p.shift()) - 1, u64::MAX] {
                    assert_eq!(p.quantize(v, rnd), code, "{} code {code}", p.format_name());
                }
                assert_eq!(p.try_code(v), Some(code));
            }
            // Off-grid values have no code.
            let off = Q8_8::from_raw(1); // 1 raw unit: below every step
            assert_eq!(p.try_code(off), None);
        }
    }

    #[test]
    fn saturation_clamps_at_the_narrow_rails() {
        let p = QuantPolicy::q4(); // rails −2.0 / +1.75 in Q8.8
        for rnd in [0u64, 1, 63] {
            // Far out of range both ways, including the working rails.
            assert_eq!(
                p.apply(Q8_8::from_f64(100.0), rnd),
                p.max_value::<Q8_8>()
            );
            assert_eq!(
                p.apply(Q8_8::max_value(), rnd),
                p.max_value::<Q8_8>()
            );
            assert_eq!(
                p.apply(Q8_8::from_f64(-100.0), rnd),
                p.min_value::<Q8_8>()
            );
            assert_eq!(p.apply(Q8_8::min_value(), rnd), p.min_value::<Q8_8>());
        }
        // Just inside the rails stays put.
        assert_eq!(
            p.apply(p.max_value::<Q8_8>(), 63),
            p.max_value::<Q8_8>(),
            "top rail is a fixed point even under the max draw"
        );
        // One step above the top code saturates rather than wrapping.
        let above = Q8_8::from_f64(1.75 + 0.25);
        assert_eq!(p.apply(above, 0), p.max_value::<Q8_8>());
    }

    /// Satellite 1: mean preservation. Stochastic rounding is unbiased;
    /// over 1M LFSR draws the empirical mean must sit within 1 working
    /// ULP of the unquantized value.
    #[test]
    fn stochastic_rounding_is_mean_preserving_within_one_ulp() {
        for p in [QuantPolicy::q4(), QuantPolicy::q6(), QuantPolicy::q8()] {
            // An awkward off-grid raw: 0.3 ≈ raw 77, never a multiple of
            // the step at any of the three shifts.
            let raw = 77i64;
            let mut s = 0xACE1_u32;
            let mut sum = 0i64;
            const N: i64 = 1_000_000;
            for _ in 0..N {
                s = lfsr32_step(s);
                sum += p.dequantize_raw(p.quantize_raw(raw, s as u64));
            }
            let mean = sum as f64 / N as f64;
            let bias = (mean - raw as f64).abs();
            assert!(
                bias <= 1.0,
                "{}: mean {mean} vs raw {raw} (bias {bias} raw units)",
                p.format_name()
            );
        }
    }

    #[test]
    fn truncation_without_dither_is_biased_low() {
        // The control experiment for the test above: always-zero draws
        // floor every value, so averaged over one full step of raws the
        // mean misses low by ~half a step.
        let p = QuantPolicy::q4();
        let step = 1i64 << p.shift();
        let mut total = 0i64;
        for raw in 0..step {
            total += raw - p.dequantize_raw(p.quantize_raw(raw, 0));
        }
        let avg = total as f64 / step as f64;
        assert!(
            avg > 0.4 * step as f64,
            "flooring must show the bias stochastic rounding removes: {avg}"
        );
    }

    #[test]
    fn packing_round_trips_with_spare_bits_zero() {
        let p = QuantPolicy::q6();
        let mut word = 0u64;
        let codes: Vec<u64> = (0..p.codes_per_u64() as u64)
            .map(|i| (i * 7 + 3) & p.code_mask())
            .collect();
        for (lane, &c) in codes.iter().enumerate() {
            word = p.insert_code(word, lane as u32, c);
        }
        for (lane, &c) in codes.iter().enumerate() {
            assert_eq!(p.extract_code(word, lane as u32), c);
        }
        // 10 lanes × 6 bits = 60: the 4 spare top bits stay clear.
        assert_eq!(word >> 60, 0);
        // Inserting into one lane leaves the others untouched.
        let patched = p.insert_code(word, 4, 0x3F);
        for (lane, &c) in codes.iter().enumerate() {
            let expect = if lane == 4 { 0x3F } else { c };
            assert_eq!(p.extract_code(patched, lane as u32), expect);
        }
    }

    #[test]
    fn dequantization_is_monotone_in_the_code() {
        // Codes compare like their values — the property that lets the
        // Qmax comparator work on either representation.
        for p in [QuantPolicy::q4(), QuantPolicy::q8()] {
            let mut prev: Option<i64> = None;
            for signed in p.min_code()..=p.max_code() {
                let code = (signed as u64) & p.code_mask();
                let raw = p.dequantize_raw(code);
                if let Some(pr) = prev {
                    assert!(raw > pr, "{}: code {signed}", p.format_name());
                }
                prev = Some(raw);
            }
        }
    }

    #[test]
    fn round_nearest_is_the_deterministic_midpoint_rule() {
        let p = QuantPolicy::q8(); // step 4 raw units
        // 101 is 1 above a code boundary: nearest is 100 (code 25).
        assert_eq!(p.round_nearest(Q8_8::from_raw(101)), Q8_8::from_raw(100));
        // 103 is 1 below: nearest is 104 (code 26).
        assert_eq!(p.round_nearest(Q8_8::from_raw(103)), Q8_8::from_raw(104));
        // Exactly half (102) rounds up.
        assert_eq!(p.round_nearest(Q8_8::from_raw(102)), Q8_8::from_raw(104));
        // Grid values are fixed points; ±1 in Q8.8 is on every default grid.
        for p in [QuantPolicy::q4(), QuantPolicy::q6(), QuantPolicy::q8()] {
            assert_eq!(p.round_nearest(Q8_8::one()), Q8_8::one());
            assert_eq!(p.round_nearest(-Q8_8::one()), -Q8_8::one());
            assert_eq!(p.round_nearest(Q8_8::zero()), Q8_8::zero());
        }
    }

    #[test]
    fn apply_raw_matches_the_code_space_round_trip() {
        // The raw-domain writeback shortcut is bit-identical to
        // dequantize(quantize(..)) for every policy, dither phase, and
        // a raw sweep past both rails (the form the packed executor
        // relies on).
        for p in [QuantPolicy::q4(), QuantPolicy::q6(), QuantPolicy::q8()] {
            let span = (p.max_code() + 4) << p.shift();
            let mut raw = -span;
            while raw <= span {
                for rnd in [0u64, 1, (1 << p.shift()) - 1, 0xdead_beef] {
                    assert_eq!(
                        p.apply_raw(raw, rnd),
                        p.dequantize_raw(p.quantize_raw(raw, rnd)),
                        "{} raw={raw} rnd={rnd}",
                        p.format_name()
                    );
                }
                raw += 3;
            }
        }
    }

    #[test]
    fn wider_working_formats_are_supported() {
        // Q16.16 with 8-bit storage, shift 16: step 1.0, range ±128.
        let p = QuantPolicy::new(8, 16);
        p.validate_for::<Q16_16>();
        let v = Q16_16::from_f64(3.0);
        assert_eq!(p.apply(v, 0), v, "integers are on this grid");
        assert_eq!(p.max_value::<Q16_16>().to_f64(), 127.0);
    }
}
