//! The [`QValue`] abstraction over datapath number formats.

use crate::{Fixed, Storage};

/// A numeric type usable as a Q-value in tables, trainers and the
/// accelerator model.
///
/// Implemented for `f32`/`f64` (software reference arithmetic) and for
/// every [`Fixed`] format (hardware datapath arithmetic). The operations
/// mirror exactly what the QTAccel pipeline computes: the multiply-add of
/// Eq. (3) of the paper decomposes into `mul` and `add` calls on this
/// trait, so a trainer written against `QValue` is bit-exact with the
/// hardware when instantiated at a `Fixed` format.
pub trait QValue:
    Copy
    + Clone
    + PartialEq
    + PartialOrd
    + core::fmt::Debug
    + core::fmt::Display
    + Default
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Convert from `f64` (saturating for fixed formats).
    fn from_f64(x: f64) -> Self;
    /// Convert to `f64`.
    fn to_f64(self) -> f64;
    /// Datapath addition (saturating for fixed formats).
    fn add(self, other: Self) -> Self;
    /// Datapath subtraction.
    fn sub(self, other: Self) -> Self;
    /// Datapath multiplication (one DSP slice for fixed formats).
    fn mul(self, other: Self) -> Self;
    /// `1 - self` (derived in pipeline stage 1 from the learning rate).
    fn one_minus(self) -> Self;
    /// Comparator: the larger value (drives the Qmax table update).
    fn vmax(self, other: Self) -> Self;
    /// Total-order comparison. For floats, NaN sorts below everything,
    /// matching a hardware comparator that never sees NaN.
    fn vcmp(self, other: Self) -> core::cmp::Ordering;
    /// Storage width in bits — determines the BRAM entry width. For floats
    /// this is the IEEE width (only meaningful for reference runs).
    fn storage_bits() -> u32;
    /// Human-readable format name for reports (e.g. `"Q8.8"`, `"f64"`).
    fn format_name() -> String;
    /// Flip one bit of the stored word (`bit < storage_bits()`): the
    /// single-event-upset model for the BRAM soft-error experiments.
    fn flip_bit(self, bit: u32) -> Self;
    /// The stored memory word, right-aligned in a `u64` (bits at and
    /// above `storage_bits()` are zero). This is the word a checkpoint
    /// serializes and an ECC codec protects; `from_bits(to_bits(x)) == x`
    /// exactly, for every representable value including NaNs.
    fn to_bits(self) -> u64;
    /// Reinterpret a stored memory word (inverse of [`QValue::to_bits`];
    /// bits above `storage_bits()` are ignored).
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_qvalue_float {
    ($ty:ty, $bits:expr, $name:expr) => {
        impl QValue for $ty {
            #[inline]
            fn zero() -> Self {
                0.0
            }
            #[inline]
            fn one() -> Self {
                1.0
            }
            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $ty
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn add(self, other: Self) -> Self {
                self + other
            }
            #[inline]
            fn sub(self, other: Self) -> Self {
                self - other
            }
            #[inline]
            fn mul(self, other: Self) -> Self {
                self * other
            }
            #[inline]
            fn one_minus(self) -> Self {
                1.0 - self
            }
            #[inline]
            fn vmax(self, other: Self) -> Self {
                if other > self {
                    other
                } else {
                    self
                }
            }
            #[inline]
            fn vcmp(self, other: Self) -> core::cmp::Ordering {
                self.partial_cmp(&other)
                    .unwrap_or(core::cmp::Ordering::Less)
            }
            #[inline]
            fn storage_bits() -> u32 {
                $bits
            }
            fn format_name() -> String {
                $name.to_string()
            }
            #[inline]
            fn flip_bit(self, bit: u32) -> Self {
                debug_assert!(bit < $bits);
                <$ty>::from_bits(self.to_bits() ^ (1 << bit))
            }
            #[inline]
            fn to_bits(self) -> u64 {
                <$ty>::to_bits(self) as u64
            }
            #[inline]
            fn from_bits(bits: u64) -> Self {
                <$ty>::from_bits(bits as _)
            }
        }
    };
}

impl_qvalue_float!(f32, 32, "f32");
impl_qvalue_float!(f64, 64, "f64");

impl<S: Storage, const FRAC: u32> QValue for Fixed<S, FRAC> {
    #[inline]
    fn zero() -> Self {
        Fixed::zero()
    }
    #[inline]
    fn one() -> Self {
        Fixed::one()
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Fixed::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        Fixed::to_f64(self)
    }
    #[inline]
    fn add(self, other: Self) -> Self {
        self.sat_add(other)
    }
    #[inline]
    fn sub(self, other: Self) -> Self {
        self.sat_sub(other)
    }
    #[inline]
    fn mul(self, other: Self) -> Self {
        self.sat_mul(other)
    }
    #[inline]
    fn one_minus(self) -> Self {
        Fixed::one_minus(self)
    }
    #[inline]
    fn vmax(self, other: Self) -> Self {
        Fixed::max(self, other)
    }
    #[inline]
    fn vcmp(self, other: Self) -> core::cmp::Ordering {
        Ord::cmp(&self, &other)
    }
    #[inline]
    fn storage_bits() -> u32 {
        S::BITS
    }
    fn format_name() -> String {
        format!("Q{}.{}", S::BITS - FRAC, FRAC)
    }
    #[inline]
    fn flip_bit(self, bit: u32) -> Self {
        debug_assert!(bit < S::BITS);
        let raw = self.raw().to_i64() ^ (1i64 << bit);
        // Width-masked reinterpretation: sign-extend from the storage
        // width (from_i64_saturating would clamp instead of wrapping,
        // which is not what a flipped memory word does).
        let shift = 64 - S::BITS;
        Fixed::from_raw(S::from_i64_saturating((raw << shift) >> shift))
    }
    #[inline]
    fn to_bits(self) -> u64 {
        let mask = if S::BITS == 64 {
            u64::MAX
        } else {
            (1u64 << S::BITS) - 1
        };
        self.raw().to_i64() as u64 & mask
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        // Sign-extend from the storage width, as flip_bit does: the word
        // is a raw two's complement memory image, not a saturating value.
        let shift = 64 - S::BITS;
        Fixed::from_raw(S::from_i64_saturating(((bits as i64) << shift) >> shift))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Q16_16, Q8_8};

    /// The Eq. (3) update written once against QValue.
    fn update<V: QValue>(q: V, r: V, qn: V, alpha: V, gamma: V) -> V {
        let t1 = alpha.one_minus().mul(q);
        let t2 = alpha.mul(r);
        let t3 = alpha.mul(gamma).mul(qn);
        t1.add(t2).add(t3)
    }

    #[test]
    fn update_formula_consistent_across_formats() {
        let (q, r, qn, a, g) = (1.25, 2.0, 3.5, 0.25, 0.875);
        let f = update(q, r, qn, a, g);
        let x16 = update(
            Q16_16::from_f64(q),
            Q16_16::from_f64(r),
            Q16_16::from_f64(qn),
            Q16_16::from_f64(a),
            Q16_16::from_f64(g),
        )
        .to_f64();
        let x8 = update(
            Q8_8::from_f64(q),
            Q8_8::from_f64(r),
            Q8_8::from_f64(qn),
            Q8_8::from_f64(a),
            Q8_8::from_f64(g),
        )
        .to_f64();
        assert!((f - x16).abs() < 1e-3, "Q16.16 {x16} vs f64 {f}");
        assert!((f - x8).abs() < 3.0 / 256.0, "Q8.8 {x8} vs f64 {f}");
    }

    #[test]
    fn vmax_and_vcmp_agree() {
        let a = Q8_8::from_f64(1.0);
        let b = Q8_8::from_f64(2.0);
        assert_eq!(a.vmax(b), b);
        assert_eq!(a.vcmp(b), core::cmp::Ordering::Less);
        assert_eq!(2.0f64.vmax(1.0), 2.0);
    }

    #[test]
    fn nan_sorts_below() {
        assert_eq!(f64::NAN.vcmp(0.0), core::cmp::Ordering::Less);
    }

    #[test]
    fn format_names() {
        assert_eq!(Q8_8::format_name(), "Q8.8");
        assert_eq!(Q16_16::format_name(), "Q16.16");
        assert_eq!(<f64 as QValue>::format_name(), "f64");
    }

    #[test]
    fn storage_bits_drive_bram_width() {
        assert_eq!(Q8_8::storage_bits(), 16);
        assert_eq!(Q16_16::storage_bits(), 32);
    }

    #[test]
    fn flip_bit_is_involutive() {
        let x = Q8_8::from_f64(1.5);
        for bit in 0..16 {
            assert_eq!(x.flip_bit(bit).flip_bit(bit), x, "bit {bit}");
            if bit > 0 {
                assert_ne!(x.flip_bit(bit), x);
            }
        }
        let f = 1.5f64;
        assert_eq!(f.flip_bit(52).flip_bit(52), f);
    }

    #[test]
    fn flip_of_low_bit_changes_by_epsilon() {
        let x = Q8_8::from_f64(2.0);
        let y = x.flip_bit(0);
        assert!((y.to_f64() - 2.0).abs() <= 1.0 / 256.0 + 1e-12);
    }

    #[test]
    fn bits_round_trip_exactly() {
        for v in [-128.0, -1.5, -1.0 / 256.0, 0.0, 0.5, 2.25, 127.5] {
            let x = Q8_8::from_f64(v);
            assert_eq!(Q8_8::from_bits(QValue::to_bits(x)), x, "{v}");
            assert!(QValue::to_bits(x) >> 16 == 0, "word must be 16-bit clean");
            let y = Q16_16::from_f64(v);
            assert_eq!(Q16_16::from_bits(QValue::to_bits(y)), y, "{v}");
            let f: f64 = v;
            assert_eq!(<f64 as QValue>::from_bits(QValue::to_bits(f)), f);
            let g = v as f32;
            assert_eq!(<f32 as QValue>::from_bits(QValue::to_bits(g)), g);
        }
        // from_bits/flip_bit agree on what a memory word means.
        let x = Q8_8::from_f64(0.5);
        assert_eq!(
            x.flip_bit(15),
            Q8_8::from_bits(QValue::to_bits(x) ^ (1 << 15))
        );
    }

    #[test]
    fn flip_of_sign_bit_negates_scale() {
        // Flipping the MSB of a small positive two's complement word
        // produces a large negative value — the worst-case SEU.
        let x = Q8_8::from_f64(0.5);
        let y = x.flip_bit(15);
        assert!(y.to_f64() < -100.0, "{}", y.to_f64());
    }
}
