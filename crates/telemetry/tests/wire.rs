//! Wire-protocol damage matrix, mirroring `qtaccel-accel`'s
//! `tests/checkpoint.rs`: every corruption of a telemetry frame —
//! truncation mid-frame, a flipped CRC, bad magic or version words,
//! zero-length and oversized payload declarations, unknown kinds,
//! malformed payload internals, interleaved partial writes — must be a
//! *typed* refusal ([`WireError`]), never a panic and never a silent
//! partial merge. The happy path (every payload kind round-tripping,
//! byte-at-a-time reassembly) is pinned alongside so the refusals are
//! provably about the damage, not the encoding.

use qtaccel_telemetry::wire::{
    crc32, registry_delta, Frame, FramePayload, FrameReader, WireError, HEADER_WORDS,
    MAX_PAYLOAD_WORDS,
};
use qtaccel_telemetry::{Alert, MetricsRegistry, Span, SpanId, TraceId, WatchdogRule};

fn sample_registry(samples: u64) -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    r.set_counter("qtaccel_samples_total", "samples retired", samples);
    r.set_gauge("qtaccel_executor_queue_depth", "queue depth", 1.5);
    for v in [7u64, 21, 9000] {
        r.observe("qtaccel_executor_chunk_service_ns", "chunk service", v);
    }
    r.set_info(
        "qtaccel_build_info",
        "provenance",
        &[("seed", "42"), ("format", "Q8.8")],
    );
    r
}

fn sample_spans() -> Vec<Span> {
    let trace = TraceId::derive(3, 0);
    let root = SpanId::derive(trace, None, "train_batch", 0, 4_096);
    let chunk = SpanId::derive(trace, Some(root), "chunk", 1, 0);
    vec![
        Span {
            trace,
            id: root,
            parent: None,
            name: "train_batch".into(),
            lane: 0,
            ordinal: 4_096,
            start_ns: 100,
            end_ns: 9_000,
        },
        Span {
            trace,
            id: chunk,
            parent: Some(root),
            name: "chunk".into(),
            lane: 1,
            ordinal: 0,
            start_ns: 150,
            end_ns: 4_000,
        },
        Span {
            trace,
            id: SpanId::derive(trace, Some(chunk), "checkpoint_save", 1, 1),
            parent: Some(chunk),
            name: "checkpoint_save".into(),
            lane: 1,
            ordinal: 1,
            start_ns: 3_000,
            end_ns: 3_500,
        },
    ]
}

fn sample_frames() -> Vec<Frame> {
    vec![
        Frame {
            worker: 2,
            seq: 0,
            payload: FramePayload::Hello {
                label: "worker-2".into(),
            },
        },
        Frame {
            worker: 2,
            seq: 1,
            payload: FramePayload::Metrics(sample_registry(50_000)),
        },
        Frame {
            worker: 2,
            seq: 2,
            payload: FramePayload::Spans(sample_spans()),
        },
        Frame {
            worker: 2,
            seq: 3,
            payload: FramePayload::Alerts(vec![Alert {
                rule: WatchdogRule::Saturation,
                cycle: 77,
                sample: 31,
                value: 0.97,
                threshold: 0.9,
            }]),
        },
    ]
}

/// Decode a standalone byte buffer the way a connection handler would:
/// feed everything, pull one frame, demand a clean boundary.
fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
    Frame::decode(bytes)
}

/// Rewrite the frame's trailing CRC word after tampering, so the damage
/// under test is reached instead of masked by the CRC check.
fn fix_crc(bytes: &mut [u8]) {
    let n = bytes.len();
    let crc = crc32(&bytes[..n - 8]) as u64;
    bytes[n - 8..].copy_from_slice(&crc.to_le_bytes());
}

fn set_header_word(bytes: &mut [u8], word: usize, value: u64) {
    bytes[word * 8..(word + 1) * 8].copy_from_slice(&value.to_le_bytes());
    fix_crc(bytes);
}

#[test]
fn every_kind_round_trips_bit_exactly() {
    for frame in sample_frames() {
        let decoded = decode(&frame.encode()).expect("clean frame decodes");
        assert_eq!(decoded, frame);
    }
}

#[test]
fn truncation_anywhere_mid_frame_is_refused_not_panicked() {
    for frame in sample_frames() {
        let bytes = frame.encode();
        // Cut at every prefix length: header, payload, and CRC cuts
        // alike must refuse as Truncated (never panic, never a frame).
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(WireError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }
}

#[test]
fn flipped_bits_fail_the_crc() {
    let bytes = Frame {
        worker: 1,
        seq: 5,
        payload: FramePayload::Metrics(sample_registry(123)),
    }
    .encode();
    // Flip one bit in every byte past the header-validated words (the
    // early header checks legitimately fire first for words 0..3) and
    // in the CRC trailer itself.
    for i in (HEADER_WORDS * 8)..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x10;
        match decode(&bad) {
            Err(WireError::BadCrc) => {}
            other => panic!("flip at byte {i}: expected BadCrc, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_and_version_are_refused_from_the_header_alone() {
    let good = sample_frames()[0].encode();

    let mut bad_magic = good.clone();
    set_header_word(&mut bad_magic, 0, 0x4445_4144_4245_4546); // not the magic
    assert!(matches!(decode(&bad_magic), Err(WireError::BadMagic)));
    // Refused from the first 8 bytes, before any payload arrives.
    let mut reader = FrameReader::new();
    reader.push(&bad_magic[..8]);
    assert!(matches!(reader.next_frame(), Err(WireError::BadMagic)));

    let mut bad_version = good.clone();
    set_header_word(&mut bad_version, 1, 99);
    match decode(&bad_version) {
        Err(WireError::BadVersion { found: 99 }) => {}
        other => panic!("expected BadVersion{{99}}, got {other:?}"),
    }

    let mut bad_kind = good.clone();
    set_header_word(&mut bad_kind, 2, 42);
    match decode(&bad_kind) {
        Err(WireError::BadKind { found: 42 }) => {}
        other => panic!("expected BadKind{{42}}, got {other:?}"),
    }
}

#[test]
fn zero_length_and_oversized_declarations_are_refused() {
    let good = sample_frames()[0].encode();

    let mut empty = good.clone();
    set_header_word(&mut empty, 5, 0);
    assert!(matches!(decode(&empty), Err(WireError::EmptyPayload)));

    let mut oversized = good.clone();
    set_header_word(&mut oversized, 5, MAX_PAYLOAD_WORDS + 1);
    match decode(&oversized) {
        Err(WireError::Oversized { words }) => assert_eq!(words, MAX_PAYLOAD_WORDS + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
    // The oversized declaration is refused at the header — before the
    // receiver ever buffers the claimed megabytes.
    let mut reader = FrameReader::new();
    reader.push(&oversized[..HEADER_WORDS * 8]);
    assert!(matches!(
        reader.next_frame(),
        Err(WireError::Oversized { .. })
    ));
}

#[test]
fn malformed_payload_internals_are_typed_refusals() {
    // An alert frame whose rule code names no rule.
    let mut bad_rule = Frame {
        worker: 0,
        seq: 0,
        payload: FramePayload::Alerts(vec![Alert {
            rule: WatchdogRule::Divergence,
            cycle: 1,
            sample: 2,
            value: 3.0,
            threshold: 4.0,
        }]),
    }
    .encode();
    // Payload word 1 is the first alert's rule code.
    set_header_word(&mut bad_rule, HEADER_WORDS + 1, 999);
    assert!(matches!(decode(&bad_rule), Err(WireError::BadPayload(_))));

    // A metrics frame whose declared count overruns its payload.
    let mut overrun = Frame {
        worker: 0,
        seq: 0,
        payload: FramePayload::Metrics(sample_registry(1)),
    }
    .encode();
    set_header_word(&mut overrun, HEADER_WORDS, 1_000);
    assert!(matches!(decode(&overrun), Err(WireError::BadPayload(_))));

    // A hello whose label length exceeds the frame.
    let mut long_label = Frame {
        worker: 0,
        seq: 0,
        payload: FramePayload::Hello { label: "x".into() },
    }
    .encode();
    set_header_word(&mut long_label, HEADER_WORDS, u64::MAX);
    assert!(matches!(decode(&long_label), Err(WireError::BadPayload(_))));
}

#[test]
fn interleaved_partial_writes_reassemble_and_torn_tails_refuse() {
    let frames = sample_frames();
    let stream: Vec<u8> = frames.iter().flat_map(|f| f.encode()).collect();

    // Feed the stream in ragged fragments (1, 2, 3, ... bytes): every
    // frame reassembles exactly once, in order.
    let mut reader = FrameReader::new();
    let mut out = Vec::new();
    let mut pos = 0;
    let mut step = 1;
    while pos < stream.len() {
        let end = (pos + step).min(stream.len());
        reader.push(&stream[pos..end]);
        pos = end;
        step = step % 7 + 1;
        while let Some(f) = reader.next_frame().expect("clean stream") {
            out.push(f);
        }
    }
    assert_eq!(out, frames);
    assert!(reader.is_empty(), "stream ends on a frame boundary");

    // A stream torn mid-frame: everything before the tear decodes,
    // the residue is detectably incomplete (what the collector counts
    // as a decode error at EOF).
    let torn = &stream[..stream.len() - 11];
    let mut reader = FrameReader::new();
    reader.push(torn);
    let mut whole = 0;
    while let Some(_f) = reader.next_frame().expect("prefix is clean") {
        whole += 1;
    }
    assert_eq!(whole, frames.len() - 1, "only complete frames surface");
    assert!(!reader.is_empty(), "the torn tail is visible as residue");
}

#[test]
fn corrupt_frame_never_partially_merges() {
    // Decode failure happens before any registry is surfaced: a frame
    // that fails CRC yields no FramePayload at all, so there is nothing
    // to partially merge. Pin that the error path hands back only the
    // typed error.
    let mut bad = Frame {
        worker: 4,
        seq: 0,
        payload: FramePayload::Metrics(sample_registry(500)),
    }
    .encode();
    let mid = HEADER_WORDS * 8 + 16;
    bad[mid] ^= 0x01;
    let mut reader = FrameReader::new();
    reader.push(&bad);
    match reader.next_frame() {
        Err(WireError::BadCrc) => {}
        other => panic!("expected BadCrc, got {other:?}"),
    }
}

#[test]
fn deltas_compose_associatively_across_the_wire() {
    // cur = prev ⊕ delta must survive an encode/decode round trip: the
    // collector's merge of shipped deltas equals the local registry.
    let prev = sample_registry(1_000);
    let cur = sample_registry(2_500);
    let delta = registry_delta(&prev, &cur);
    let frame = Frame {
        worker: 0,
        seq: 1,
        payload: FramePayload::Metrics(delta),
    };
    let decoded = decode(&frame.encode()).expect("delta frame decodes");
    let FramePayload::Metrics(shipped) = decoded.payload else {
        panic!("expected a metrics payload");
    };
    let mut rebuilt = prev.clone();
    rebuilt.merge(&shipped);
    assert_eq!(
        rebuilt.get("qtaccel_samples_total"),
        cur.get("qtaccel_samples_total"),
        "counters re-add exactly"
    );
}
