//! The merging telemetry collector (DESIGN.md §2.15).
//!
//! One [`Collector`] terminates N concurrent worker connections. A
//! connection speaks either protocol on the same port — the first eight
//! bytes are peeked and dispatched on the wire [`MAGIC`] word:
//!
//! * **Wire connections** stream [`Frame`]s (hello / metric deltas /
//!   span batches / alerts) through an incremental [`FrameReader`].
//!   Every accepted frame merges atomically into the collector state; a
//!   frame that fails to decode is a *typed refusal* — the connection is
//!   dropped, `decode_errors` increments, and nothing from the bad
//!   frame is surfaced (no silent partial merge).
//! * **HTTP connections** get the merged registry as OpenMetrics text,
//!   with the same hardening as `MetricsServer` (per-socket deadlines,
//!   request-head size cap → `431`).
//!
//! Merging is associative: counters add, histograms bucket-merge,
//! gauges and info are last-write-wins, and spans/alerts are tagged by
//! the worker id that sent them. Because workers send *deltas*
//! ([`registry_delta`](crate::wire::registry_delta)), the merged
//! counter total is exactly the sum of every delta ever received,
//! independent of arrival order — bit-identical to a single-process
//! merge of the same per-worker registries.
//!
//! [`Collector::perfetto_trace`] renders everything as one multi-process
//! Chrome trace document: one Perfetto *process* track per worker
//! (named by its hello label), one thread track per span lane, plus a
//! watchdog instant track — so a distributed batch reads like a single
//! timeline at <https://ui.perfetto.dev>.

use crate::export::{
    encode_openmetrics, lock_unpoisoned, read_request_head, RequestHead, IO_TIMEOUT,
};
use crate::health::Alert;
use crate::histogram::MetricsRegistry;
use crate::json::Json;
use crate::span::Span;
use crate::wire::{Frame, FramePayload, FrameReader, WireError, MAGIC};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll granularity for wire-connection reads: long enough to idle
/// cheaply, short enough that shutdown (and a stop-flag check) is never
/// more than one interval away.
const WIRE_POLL: Duration = Duration::from_millis(200);

/// Everything the collector has accepted from one worker, tagged by the
/// worker id the frames carried.
#[derive(Debug, Clone)]
pub struct WorkerView {
    /// The sender-chosen worker id (the merge key).
    pub id: u64,
    /// The label from the worker's hello frame (its Perfetto process
    /// name); empty until a hello arrives.
    pub label: String,
    /// Frames accepted from this worker.
    pub frames: u64,
    /// Highest sequence number seen from this worker.
    pub last_seq: u64,
    /// Spans this worker shipped, in arrival order.
    pub spans: Vec<Span>,
    /// Watchdog alerts this worker shipped, in arrival order.
    pub alerts: Vec<Alert>,
}

#[derive(Default)]
struct CollectorState {
    registry: MetricsRegistry,
    workers: Vec<WorkerView>,
    frames_total: u64,
    decode_errors: u64,
}

impl CollectorState {
    fn worker_mut(&mut self, id: u64) -> &mut WorkerView {
        if let Some(i) = self.workers.iter().position(|w| w.id == id) {
            return &mut self.workers[i];
        }
        self.workers.push(WorkerView {
            id,
            label: String::new(),
            frames: 0,
            last_seq: 0,
            spans: Vec::new(),
            alerts: Vec::new(),
        });
        self.workers.last_mut().expect("just pushed")
    }

    /// Fold one decoded frame in. All-or-nothing: the metric kind
    /// pre-check runs over the whole delta before anything merges, so a
    /// mismatched frame changes no collector state at all.
    fn merge_frame(&mut self, frame: Frame) -> Result<(), WireError> {
        if let FramePayload::Metrics(delta) = &frame.payload {
            for (name, _, value) in delta.iter() {
                if let Some(existing) = self.registry.get(name) {
                    if std::mem::discriminant(existing) != std::mem::discriminant(value) {
                        return Err(WireError::BadPayload(format!(
                            "metric `{name}` changed kind across frames"
                        )));
                    }
                }
            }
        }
        let worker = self.worker_mut(frame.worker);
        worker.frames += 1;
        worker.last_seq = worker.last_seq.max(frame.seq);
        match frame.payload {
            FramePayload::Hello { label } => worker.label = label,
            FramePayload::Spans(mut spans) => worker.spans.append(&mut spans),
            FramePayload::Alerts(mut alerts) => worker.alerts.append(&mut alerts),
            FramePayload::Metrics(delta) => self.registry.merge(&delta),
            // Cluster control frames (kinds 5–10) are coordinator/worker
            // session state, not collector telemetry: a collector that
            // receives one accepts and accounts it (the stream stays
            // healthy) but merges nothing.
            FramePayload::HelloAck { .. }
            | FramePayload::Lease { .. }
            | FramePayload::Progress { .. }
            | FramePayload::Heartbeat { .. }
            | FramePayload::LeaseDone { .. }
            | FramePayload::Goodbye { .. } => {}
        }
        self.frames_total += 1;
        Ok(())
    }

    /// The merged registry plus the collector's own meta-metrics — what
    /// an HTTP scrape serves.
    fn scrape_registry(&self) -> MetricsRegistry {
        let mut reg = self.registry.clone();
        reg.set_gauge(
            "qtaccel_collector_workers",
            "distinct worker ids the collector has accepted frames from",
            self.workers.len() as f64,
        );
        reg.set_counter(
            "qtaccel_collector_frames_total",
            "wire frames accepted and merged",
            self.frames_total,
        );
        reg.set_counter(
            "qtaccel_collector_decode_errors_total",
            "wire frames or streams refused by the strict decoder",
            self.decode_errors,
        );
        reg.set_counter(
            "qtaccel_collector_spans_total",
            "spans received across all workers",
            self.workers.iter().map(|w| w.spans.len() as u64).sum(),
        );
        reg
    }
}

/// A TCP collector accepting N concurrent worker streams and serving
/// their merged telemetry. See the module docs for the protocol split.
pub struct Collector {
    addr: SocketAddr,
    state: Arc<Mutex<CollectorState>>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl Collector {
    /// Bind `addr` (use `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting worker and scrape connections.
    pub fn serve(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = Arc::new(Mutex::new(CollectorState::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let (state_t, stop_t, handles_t) =
            (Arc::clone(&state), Arc::clone(&stop), Arc::clone(&conn_handles));
        let accept_handle = std::thread::Builder::new()
            .name("qtaccel-collector".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_t.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let (state_c, stop_c) = (Arc::clone(&state_t), Arc::clone(&stop_t));
                    let handle = std::thread::Builder::new()
                        .name("qtaccel-collector-conn".into())
                        .spawn(move || serve_connection(stream, state_c, stop_c));
                    if let Ok(h) = handle {
                        lock_unpoisoned(&handles_t).push(h);
                    }
                }
            })?;
        Ok(Self {
            addr: local,
            state,
            stop,
            accept_handle: Some(accept_handle),
            conn_handles,
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Frames accepted and merged so far.
    pub fn frames_total(&self) -> u64 {
        lock_unpoisoned(&self.state).frames_total
    }

    /// Frames or streams refused by the strict decoder so far.
    pub fn decode_errors(&self) -> u64 {
        lock_unpoisoned(&self.state).decode_errors
    }

    /// Distinct worker ids seen so far.
    pub fn workers(&self) -> usize {
        lock_unpoisoned(&self.state).workers.len()
    }

    /// A snapshot of every worker's accepted telemetry, sorted by
    /// worker id.
    pub fn worker_views(&self) -> Vec<WorkerView> {
        let mut views = lock_unpoisoned(&self.state).workers.clone();
        views.sort_by_key(|w| w.id);
        views
    }

    /// A snapshot of the merged metrics registry (deltas folded in, no
    /// collector meta-metrics — this is the value that must be
    /// bit-identical to a single-process merge).
    pub fn merged_registry(&self) -> MetricsRegistry {
        lock_unpoisoned(&self.state).registry.clone()
    }

    /// Render every worker's spans and alerts as one multi-process
    /// Chrome trace document (Perfetto-loadable).
    ///
    /// Each worker becomes a process track (`pid = id + 1`, since pid 0
    /// renders poorly) named by its hello label; each span lane becomes
    /// a thread track; alerts land on a dedicated `watchdog` track.
    /// Span timestamps map one monotonic nanosecond to one trace
    /// microsecond — an integer-exact mapping, so per-track ts order is
    /// preserved exactly; alert instants use their cycle stamp on their
    /// own track. Events within every `(pid, tid)` track are sorted
    /// non-decreasing in ts, which is what the strict verify gate
    /// re-checks after a round-trip parse.
    pub fn perfetto_trace(&self) -> Json {
        let views = self.worker_views();
        let mut events: Vec<Json> = Vec::new();
        const WATCHDOG_TID: u64 = 1 << 20; // clear of any real lane (u32)
        for view in &views {
            let pid = view.id + 1;
            let label = if view.label.is_empty() {
                format!("worker-{}", view.id)
            } else {
                view.label.clone()
            };
            events.push(Json::Obj(vec![
                ("ph", Json::Str("M".into())),
                ("pid", Json::UInt(pid)),
                ("tid", Json::UInt(0)),
                ("name", Json::Str("process_name".into())),
                ("args", Json::Obj(vec![("name", Json::Str(label))])),
            ]));
            let mut lanes: Vec<u64> = view.spans.iter().map(|s| s.lane as u64).collect();
            lanes.sort_unstable();
            lanes.dedup();
            for lane in &lanes {
                events.push(Json::Obj(vec![
                    ("ph", Json::Str("M".into())),
                    ("pid", Json::UInt(pid)),
                    ("tid", Json::UInt(*lane)),
                    ("name", Json::Str("thread_name".into())),
                    (
                        "args",
                        Json::Obj(vec![("name", Json::Str(format!("lane-{lane}")))]),
                    ),
                ]));
            }
            if !view.alerts.is_empty() {
                events.push(Json::Obj(vec![
                    ("ph", Json::Str("M".into())),
                    ("pid", Json::UInt(pid)),
                    ("tid", Json::UInt(WATCHDOG_TID)),
                    ("name", Json::Str("thread_name".into())),
                    (
                        "args",
                        Json::Obj(vec![("name", Json::Str("watchdog".into()))]),
                    ),
                ]));
            }
            let mut spans = view.spans.clone();
            spans.sort_by_key(|s| (s.lane, s.start_ns, s.ordinal));
            for s in &spans {
                events.push(Json::Obj(vec![
                    ("ph", Json::Str("X".into())),
                    ("name", Json::Str(s.name.clone())),
                    ("cat", Json::Str("span".into())),
                    ("pid", Json::UInt(pid)),
                    ("tid", Json::UInt(s.lane as u64)),
                    ("ts", Json::UInt(s.start_ns)),
                    ("dur", Json::UInt(s.duration_ns())),
                    (
                        "args",
                        Json::Obj(vec![
                            ("trace", Json::UInt(s.trace.0)),
                            ("span", Json::UInt(s.id.0)),
                            ("parent", Json::UInt(s.parent.map_or(0, |p| p.0))),
                            ("ordinal", Json::UInt(s.ordinal)),
                        ]),
                    ),
                ]));
            }
            let mut alerts = view.alerts.clone();
            alerts.sort_by_key(|a| a.cycle);
            for a in &alerts {
                events.push(Json::Obj(vec![
                    ("ph", Json::Str("i".into())),
                    ("s", Json::Str("t".into())),
                    ("name", Json::Str(format!("watchdog_{}", a.rule.name()))),
                    ("cat", Json::Str("alert".into())),
                    ("pid", Json::UInt(pid)),
                    ("tid", Json::UInt(WATCHDOG_TID)),
                    ("ts", Json::UInt(a.cycle)),
                    (
                        "args",
                        Json::Obj(vec![
                            ("sample", Json::UInt(a.sample)),
                            ("value", Json::Num(a.value)),
                            ("threshold", Json::Num(a.threshold)),
                        ]),
                    ),
                ]));
            }
        }
        Json::Obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::Str("ms".into())),
        ])
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *lock_unpoisoned(&self.conn_handles));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Sniff the protocol (without consuming bytes) and dispatch.
fn serve_connection(
    stream: TcpStream,
    state: Arc<Mutex<CollectorState>>,
    stop: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(WIRE_POLL));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut first = [0u8; 8];
    // peek() does not consume, so the dispatched handler reads the full
    // stream from its first byte. Short peeks retry until eight bytes
    // are buffered or the peer goes quiet (then: treat as HTTP, whose
    // own head-reader copes with anything).
    let mut is_wire = false;
    for _ in 0..25 {
        match stream.peek(&mut first) {
            Ok(n) if n >= 8 => {
                is_wire = u64::from_le_bytes(first) == MAGIC;
                break;
            }
            Ok(0) => return, // peer closed before saying anything
            Ok(_) => continue,
            // EINTR is a retry, not a failure — a signal (SIGCHLD from a
            // reaped worker, say) landing mid-peek must not drop the
            // connection.
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
    if is_wire {
        serve_wire(stream, &state, &stop);
    } else {
        serve_http(stream, &state);
    }
}

/// Drain one worker's frame stream until EOF, shutdown, or a refusal.
fn serve_wire(mut stream: TcpStream, state: &Mutex<CollectorState>, stop: &AtomicBool) {
    let mut reader = FrameReader::new();
    let mut chunk = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Clean EOF must land on a frame boundary; a residue is
                // a peer that died mid-frame.
                if !reader.is_empty() {
                    lock_unpoisoned(state).decode_errors += 1;
                }
                return;
            }
            Ok(n) => {
                reader.push(&chunk[..n]);
                loop {
                    match reader.next_frame() {
                        Ok(Some(frame)) => {
                            let mut st = lock_unpoisoned(state);
                            if st.merge_frame(frame).is_err() {
                                st.decode_errors += 1;
                                return; // refuse the rest of the stream
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Typed refusal: count it, drop the
                            // connection, merge nothing from the frame.
                            lock_unpoisoned(state).decode_errors += 1;
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Answer one HTTP scrape with the merged registry, `MetricsServer`
/// style (size cap → 431, deadline-bounded best effort otherwise).
fn serve_http(mut stream: TcpStream, state: &Mutex<CollectorState>) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let response = match read_request_head(&mut stream) {
        RequestHead::TooLarge => {
            let msg = "request head too large\n";
            format!(
                "HTTP/1.1 431 Request Header Fields Too Large\r\n\
                 Content-Type: text/plain; charset=utf-8\r\n\
                 Content-Length: {}\r\n\
                 Connection: close\r\n\r\n{msg}",
                msg.len()
            )
        }
        RequestHead::Complete | RequestHead::Stalled => {
            let body = encode_openmetrics(&lock_unpoisoned(state).scrape_registry());
            format!(
                "HTTP/1.1 200 OK\r\n\
                 Content-Type: application/openmetrics-text; version=1.0.0; charset=utf-8\r\n\
                 Content-Length: {}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len()
            )
        }
    };
    let _ = stream.write_all(response.as_bytes());
}

/// One endpoint of a framed wire session: a TCP connection framing
/// payloads with this endpoint's worker id and a per-connection
/// sequence number. [`connect`](Self::connect) is the worker flavor
/// (dials out and sends the hello); [`from_stream`](Self::from_stream)
/// wraps an accepted connection (the coordinator side of a cluster
/// session). Each [`send`](Self::send) ships one frame;
/// [`recv_timeout`](Self::recv_timeout) pulls the next complete inbound
/// frame through an incremental [`FrameReader`].
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    reader: FrameReader,
    worker: u64,
    seq: u64,
}

impl WireClient {
    /// Connect to a collector, identify as `worker`, and send the hello
    /// frame carrying `label`.
    pub fn connect(addr: impl ToSocketAddrs, worker: u64, label: &str) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        let mut client = Self::from_stream(stream, worker)?;
        client.send(FramePayload::Hello {
            label: label.to_string(),
        })?;
        Ok(client)
    }

    /// Wrap an already-established connection (an accepted coordinator
    /// socket) without sending a hello. `worker` stamps outbound frames.
    pub fn from_stream(stream: TcpStream, worker: u64) -> Result<Self, WireError> {
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        Ok(Self {
            stream,
            reader: FrameReader::new(),
            worker,
            seq: 0,
        })
    }

    /// Encode and send one frame; returns the sequence number it
    /// carried.
    pub fn send(&mut self, payload: FramePayload) -> Result<u64, WireError> {
        let frame = Frame {
            worker: self.worker,
            seq: self.seq,
            payload,
        };
        self.stream.write_all(&frame.encode())?;
        let seq = self.seq;
        self.seq += 1;
        Ok(seq)
    }

    /// Receive the next complete inbound frame, waiting at most
    /// `timeout`. `Ok(None)` means the timeout elapsed at a quiet
    /// moment; `Err(Truncated)` means the peer closed mid-frame (a torn
    /// write); EOF at a frame boundary surfaces as an
    /// [`WireError::Io`] `UnexpectedEof`. `ErrorKind::Interrupted`
    /// retries; any decode refusal is returned as-is — the caller
    /// should drop the session.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Frame>, WireError> {
        if let Some(frame) = self.reader.next_frame()? {
            return Ok(Some(frame));
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut chunk = [0u8; 4096];
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            self.stream.set_read_timeout(Some(remaining))?;
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.reader.is_empty() {
                        WireError::Io(std::io::ErrorKind::UnexpectedEof.into())
                    } else {
                        WireError::Truncated
                    })
                }
                Ok(n) => {
                    self.reader.push(&chunk[..n]);
                    if let Some(frame) = self.reader.next_frame()? {
                        return Ok(Some(frame));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }

    /// Clone the underlying socket handle — lets a supervisor thread
    /// call [`TcpStream::shutdown`] to unblock a peer stuck in
    /// [`recv_timeout`](Self::recv_timeout).
    pub fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.stream.try_clone()
    }

    /// This client's worker id.
    pub fn worker(&self) -> u64 {
        self.worker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{check_openmetrics, scrape};
    use crate::histogram::MetricValue;
    use crate::json::parse;
    use crate::span::{SpanId, TraceId};
    use crate::wire::registry_delta;

    fn wait_until(collector: &Collector, frames: u64) {
        for _ in 0..200 {
            if collector.frames_total() >= frames {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!(
            "collector stuck at {} frames waiting for {frames}",
            collector.frames_total()
        );
    }

    fn worker_registry(samples: u64) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.set_counter("qtaccel_samples_total", "samples", samples);
        for v in [2u64, 8, 64] {
            r.observe("qtaccel_executor_chunk_service_ns", "svc", v);
        }
        r
    }

    #[test]
    fn collector_merges_deltas_from_concurrent_workers() {
        let collector = Collector::serve("127.0.0.1:0").expect("bind");
        let addr = collector.addr();
        let handles: Vec<_> = (0..3u64)
            .map(|w| {
                std::thread::spawn(move || {
                    let mut client =
                        WireClient::connect(addr, w, &format!("worker-{w}")).expect("connect");
                    // Two delta frames per worker: 100, then +150.
                    let empty = MetricsRegistry::new();
                    let first = worker_registry(100);
                    client
                        .send(FramePayload::Metrics(registry_delta(&empty, &first)))
                        .expect("send first delta");
                    let second = worker_registry(250);
                    client
                        .send(FramePayload::Metrics(registry_delta(&first, &second)))
                        .expect("send second delta");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread");
        }
        wait_until(&collector, 9); // 3 hellos + 6 metric frames
        assert_eq!(collector.workers(), 3);
        assert_eq!(collector.decode_errors(), 0);
        let merged = collector.merged_registry();
        assert_eq!(
            merged.get("qtaccel_samples_total"),
            Some(&MetricValue::Counter(750)),
            "3 workers × 250 samples, summed exactly"
        );
        // The HTTP side serves the same view, strictly valid.
        let body = scrape(addr).expect("scrape the collector");
        check_openmetrics(&body).expect("strict exposition");
        assert!(body.contains("qtaccel_samples_total 750\n"), "{body}");
        assert!(body.contains("qtaccel_collector_workers 3\n"));
    }

    #[test]
    fn corrupt_stream_is_refused_and_counted_without_partial_merge() {
        let collector = Collector::serve("127.0.0.1:0").expect("bind");
        let mut client = WireClient::connect(collector.addr(), 9, "victim").expect("connect");
        client
            .send(FramePayload::Metrics(worker_registry(10)))
            .expect("good frame");
        wait_until(&collector, 2);
        // Now a corrupt frame: flip a payload bit so the CRC fails.
        let mut bad = Frame {
            worker: 9,
            seq: 2,
            payload: FramePayload::Metrics(worker_registry(99)),
        }
        .encode();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        client.stream.write_all(&bad).expect("send corrupt bytes");
        drop(client);
        for _ in 0..200 {
            if collector.decode_errors() > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(collector.decode_errors(), 1, "refusal is counted");
        assert_eq!(
            collector.merged_registry().get("qtaccel_samples_total"),
            Some(&MetricValue::Counter(10)),
            "nothing from the corrupt frame merged"
        );
    }

    #[test]
    fn torn_write_disconnect_counts_as_decode_error_not_panic() {
        let collector = Collector::serve("127.0.0.1:0").expect("bind");
        let mut client = WireClient::connect(collector.addr(), 4, "torn").expect("connect");
        wait_until(&collector, 1); // the hello landed whole
        // Ship exactly half a metrics frame, then die — the collector
        // sees EOF with residue in its FrameReader.
        let bytes = Frame {
            worker: 4,
            seq: 1,
            payload: FramePayload::Metrics(worker_registry(50)),
        }
        .encode();
        client
            .stream
            .write_all(&bytes[..bytes.len() / 2])
            .expect("torn write");
        drop(client);
        for _ in 0..200 {
            if collector.decode_errors() > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(collector.decode_errors(), 1, "torn write is accounted");
        assert_eq!(
            collector.merged_registry().get("qtaccel_samples_total"),
            None,
            "nothing from the half-frame merged"
        );
    }

    #[test]
    fn wire_client_recv_timeout_reports_quiet_and_torn_peers() {
        // A coordinator/worker pair over a raw socket pair.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let dial = std::thread::spawn(move || TcpStream::connect(addr).expect("dial"));
        let (accepted, _) = listener.accept().expect("accept");
        let dialed = dial.join().expect("dial thread");
        let mut coord = WireClient::from_stream(accepted, 0).expect("coord side");
        let mut worker = WireClient::from_stream(dialed, 7).expect("worker side");
        // Quiet peer: timeout elapses, no error.
        assert!(matches!(
            coord.recv_timeout(Duration::from_millis(20)),
            Ok(None)
        ));
        // A whole frame arrives.
        worker
            .send(FramePayload::Heartbeat { nonce: 3 })
            .expect("send beat");
        let frame = coord
            .recv_timeout(Duration::from_millis(500))
            .expect("recv")
            .expect("frame");
        assert_eq!(frame.worker, 7);
        assert_eq!(frame.payload, FramePayload::Heartbeat { nonce: 3 });
        // Torn write then disconnect: typed Truncated, not a panic.
        let bytes = Frame {
            worker: 7,
            seq: 1,
            payload: FramePayload::Progress {
                lease: 0,
                epoch: 0,
                samples: 9,
            },
        }
        .encode();
        worker
            .stream
            .write_all(&bytes[..bytes.len() - 4])
            .expect("torn write");
        drop(worker);
        assert!(matches!(
            coord.recv_timeout(Duration::from_millis(500)),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn perfetto_export_is_multi_process_and_monotonic() {
        let collector = Collector::serve("127.0.0.1:0").expect("bind");
        let addr = collector.addr();
        for w in 0..2u64 {
            let mut client = WireClient::connect(addr, w, &format!("shard-{w}")).expect("connect");
            let trace = TraceId::derive(7, 0);
            let root = SpanId::derive(trace, None, "train_batch", 0, 100);
            let spans = vec![
                Span {
                    trace,
                    id: root,
                    parent: None,
                    name: "train_batch".into(),
                    lane: 0,
                    ordinal: 100,
                    start_ns: 5,
                    end_ns: 90,
                },
                Span {
                    trace,
                    id: SpanId::derive(trace, Some(root), "chunk", 1, 0),
                    parent: Some(root),
                    name: "chunk".into(),
                    lane: 1,
                    ordinal: 0,
                    start_ns: 10,
                    end_ns: 40,
                },
            ];
            client.send(FramePayload::Spans(spans)).expect("spans");
        }
        wait_until(&collector, 4);
        let doc = collector.perfetto_trace();
        let parsed = parse(&doc.pretty()).expect("strict parse");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // Two process_name tracks with the hello labels.
        let mut process_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
            .map(|e| e.get("args").unwrap().get("name").unwrap().as_str().unwrap())
            .collect();
        process_names.sort_unstable();
        assert_eq!(process_names, ["shard-0", "shard-1"]);
        // Per-(pid, tid) ts ordering is non-decreasing.
        let mut keyed: Vec<(u64, u64, u64)> = events
            .iter()
            .filter(|e| e.get("ts").is_some())
            .map(|e| {
                (
                    e.get("pid").unwrap().as_u64().unwrap(),
                    e.get("tid").unwrap().as_u64().unwrap(),
                    e.get("ts").unwrap().as_u64().unwrap(),
                )
            })
            .collect();
        keyed.sort_by_key(|&(pid, tid, _)| (pid, tid));
        for pair in keyed.windows(2) {
            if pair[0].0 == pair[1].0 && pair[0].1 == pair[1].1 {
                assert!(pair[0].2 <= pair[1].2, "ts regressed within a track");
            }
        }
    }
}
