//! Training-health observability: convergence probes, watchdog rules,
//! and the crash flight recorder.
//!
//! Everything else in this crate observes the *machine* — stalls,
//! forwards, port traffic. This module observes the *learner*: is the
//! Q-table converging, saturating its fixed-point format, or silently
//! stalled? A diverging table looks identical to a healthy one on every
//! systems metric, so the probes sample the update stream itself:
//!
//! * [`HealthProbe`] — per-pipeline convergence probes fed once per
//!   retired sample through the [`TraceSink`] seam (only when the sink's
//!   `HEALTH` const opts in, so `NullSink` fast paths stay fused and
//!   zero-cost): a TD-error magnitude log2 [`Histogram`], a
//!   greedy-policy churn counter (stored-argmax flips), fixed-point
//!   saturation-proximity counters (Q/Qmax words within `2^k` raw units
//!   of the format's rails), and a state-visit coverage bitset. Sampling
//!   is strided ([`HealthConfig::stride`]) on the retired-sample ordinal,
//!   so the cycle-accurate and fast executors probe the *same* samples
//!   and the probe state is bit-identical across engines.
//! * [`Watchdog`] — a windowed rule engine over probe deltas raising
//!   structured, cycle-stamped [`Alert`]s: `divergence` (windowed
//!   TD-error p99 crosses a log2 threshold), `saturation` (near-rail
//!   fraction), `stalled_learning` (zero TD movement and zero churn
//!   while samples retire), `scrub_failure` (uncorrectable ECC detections
//!   advanced). Trip counters publish as `qtaccel_health_alerts_*_total`.
//! * [`FlightRecorder`] — a bounded ring of snapshots/alerts/markers
//!   dumped as strict-parseable JSONL on panic
//!   ([`FlightRecorder::with_panic_dump`]), watchdog trip, or checkpoint
//!   seal; the post-mortem the on-call engineer reads after a run died.
//!
//! Probe state is architectural enough to checkpoint: the stride cursor
//! and counters ride in `accel` checkpoints
//! ([`HealthProbe::checkpoint_words`]) so a resumed run probes exactly
//! the samples the unbroken run would. DESIGN.md §2.13 documents probe
//! semantics, default thresholds, and the HDL cost model
//! (`qtaccel_hdl::resource::health_probe_report`).

use crate::event::Event;
use crate::histogram::{Histogram, HistogramSummary, MetricsRegistry};
use crate::impl_to_json;
use crate::json::{Json, ToJson};
use crate::sink::TraceSink;
use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;

/// Sign-extend a `width`-bit two's-complement word (right-aligned in a
/// `u64`, as `QValue::to_bits` stores it) to `i64`.
#[inline(always)]
fn sign_extend(bits: u64, width: u32) -> i64 {
    if width >= 64 {
        bits as i64
    } else {
        let shift = 64 - width;
        ((bits << shift) as i64) >> shift
    }
}

/// TD-error magnitude of one update in raw storage units:
/// `|new − old|` over the sign-extended `width`-bit words. Deterministic
/// integer arithmetic — both executors compute the identical value.
#[inline(always)]
pub fn td_magnitude(old_bits: u64, new_bits: u64, width: u32) -> u64 {
    sign_extend(new_bits, width)
        .wrapping_sub(sign_extend(old_bits, width))
        .unsigned_abs()
}

/// Distance (raw storage units) from a `width`-bit two's-complement word
/// to the nearer of the format's rails (`−2^(width−1)` /
/// `2^(width−1)−1`). Zero means the value sits *on* a rail — the next
/// same-direction update wraps or clamps, so small distances are the
/// saturation early warning the sub-8-bit quantization work needs.
#[inline(always)]
pub fn rail_distance(bits: u64, width: u32) -> u64 {
    let v = sign_extend(bits, width);
    let max = if width >= 64 {
        i64::MAX
    } else {
        (1i64 << (width - 1)) - 1
    };
    let min = if width >= 64 { i64::MIN } else { -(1i64 << (width - 1)) };
    (max.wrapping_sub(v) as u64).min(v.wrapping_sub(min) as u64)
}

/// Probe sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Probe every `stride`-th retired sample (1 = every sample). The
    /// stride applies to the retired-sample ordinal, which both
    /// executors advance identically, so probe state is engine-exact at
    /// any stride. Must be ≥ 1.
    pub stride: u64,
    /// A written word within `2^near_rail_bits` raw units of a format
    /// rail counts as near-saturation.
    pub near_rail_bits: u32,
}

impl Default for HealthConfig {
    /// Probe every sample; "near rail" means within 16 raw units.
    fn default() -> Self {
        Self {
            stride: 1,
            near_rail_bits: 4,
        }
    }
}

/// Point-in-time view of a [`HealthProbe`] — the record the flight
/// recorder rings and the Perfetto counter tracks plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Pipeline cycle of the newest probed sample.
    pub cycle: u64,
    /// Retired samples seen by the probe (probed or not).
    pub samples_seen: u64,
    /// Samples actually probed (every `stride`-th).
    pub samples_probed: u64,
    /// Stored greedy-action flips observed at probed samples.
    pub churn: u64,
    /// Probed Q writes that landed near a format rail.
    pub near_rail_q: u64,
    /// Probed Qmax writes that landed near a format rail.
    pub near_rail_qmax: u64,
    /// Distinct states visited at probed samples.
    pub states_visited: u64,
    /// State-space size the probe is bound to (0 before binding).
    pub num_states: u64,
    /// TD-error magnitude distribution summary.
    pub td: HistogramSummary,
}

impl_to_json!(HealthSnapshot {
    cycle,
    samples_seen,
    samples_probed,
    churn,
    near_rail_q,
    near_rail_qmax,
    states_visited,
    num_states,
    td,
});

/// Per-pipeline convergence probes (see module docs). Fed by the
/// pipelines through [`TraceSink::health_mut`] once per retired sample;
/// strides, histograms and counters live here so the pipeline hook stays
/// one call.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthProbe {
    config: HealthConfig,
    samples_seen: u64,
    samples_probed: u64,
    td_error: Histogram,
    churn: u64,
    near_rail_q: u64,
    near_rail_qmax: u64,
    visited: Vec<u64>,
    visited_count: u64,
    num_states: u64,
    last_cycle: u64,
}

impl HealthProbe {
    /// An empty probe.
    ///
    /// # Panics
    /// If `config.stride` is zero.
    pub fn new(config: HealthConfig) -> Self {
        assert!(config.stride > 0, "probe stride must be positive");
        Self {
            config,
            samples_seen: 0,
            samples_probed: 0,
            td_error: Histogram::new(),
            churn: 0,
            near_rail_q: 0,
            near_rail_qmax: 0,
            visited: Vec::new(),
            visited_count: 0,
            num_states: 0,
            last_cycle: 0,
        }
    }

    /// The sampling configuration in force.
    pub fn config(&self) -> HealthConfig {
        self.config
    }

    /// Bind the probe to a state space of `n` states (sizes the coverage
    /// bitset and the coverage denominator). The pipelines call this at
    /// sink attach; observations for states beyond the binding still
    /// grow the bitset on demand.
    pub fn bind_states(&mut self, n: u64) {
        self.num_states = n;
        let words = n.div_ceil(64) as usize;
        if self.visited.len() < words {
            self.visited.resize(words, 0);
        }
    }

    /// One retired sample. `old_bits`/`new_bits` are the pre-/post-update
    /// Q words for the sample's `(s, a)` (as `QValue::to_bits` stores
    /// them, `width` bits wide); `qmax_wrote` says the stage-4 RMW
    /// improved the Qmax entry (the written value is `new_bits`);
    /// `greedy_flip` says that write changed the stored greedy action.
    /// Strides internally on the retired-sample ordinal.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn observe_sample(
        &mut self,
        cycle: u64,
        state: u64,
        old_bits: u64,
        new_bits: u64,
        width: u32,
        qmax_wrote: bool,
        greedy_flip: bool,
    ) {
        let ordinal = self.samples_seen;
        self.samples_seen += 1;
        if !ordinal.is_multiple_of(self.config.stride) {
            return;
        }
        self.samples_probed += 1;
        self.last_cycle = cycle;
        self.td_error
            .observe(td_magnitude(old_bits, new_bits, width));
        let near = 1u64 << self.config.near_rail_bits;
        if rail_distance(new_bits, width) < near {
            self.near_rail_q += 1;
            if qmax_wrote {
                self.near_rail_qmax += 1;
            }
        }
        if greedy_flip {
            self.churn += 1;
        }
        let word = (state / 64) as usize;
        if word >= self.visited.len() {
            self.visited.resize(word + 1, 0);
        }
        let bit = 1u64 << (state % 64);
        if self.visited[word] & bit == 0 {
            self.visited[word] |= bit;
            self.visited_count += 1;
        }
    }

    /// Retired samples seen (probed or not).
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Samples actually probed.
    pub fn samples_probed(&self) -> u64 {
        self.samples_probed
    }

    /// The TD-error magnitude distribution (raw storage units, log2
    /// buckets).
    pub fn td_error(&self) -> &Histogram {
        &self.td_error
    }

    /// Stored greedy-action flips observed at probed samples.
    pub fn churn(&self) -> u64 {
        self.churn
    }

    /// Probed Q writes near a rail.
    pub fn near_rail_q(&self) -> u64 {
        self.near_rail_q
    }

    /// Probed Qmax writes near a rail.
    pub fn near_rail_qmax(&self) -> u64 {
        self.near_rail_qmax
    }

    /// Distinct states visited at probed samples.
    pub fn states_visited(&self) -> u64 {
        self.visited_count
    }

    /// The state-space size bound at attach (0 before binding).
    pub fn num_states(&self) -> u64 {
        self.num_states
    }

    /// Pipeline cycle of the newest probed sample.
    pub fn last_cycle(&self) -> u64 {
        self.last_cycle
    }

    /// Point-in-time snapshot for the flight recorder / counter tracks.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            cycle: self.last_cycle,
            samples_seen: self.samples_seen,
            samples_probed: self.samples_probed,
            churn: self.churn,
            near_rail_q: self.near_rail_q,
            near_rail_qmax: self.near_rail_qmax,
            states_visited: self.visited_count,
            num_states: self.num_states,
            td: self.td_error.summary(),
        }
    }

    /// Clear all probe state (configuration and state-space binding
    /// survive) — what checkpoint restore does when the checkpoint
    /// predates health instrumentation.
    pub fn reset(&mut self) {
        self.samples_seen = 0;
        self.samples_probed = 0;
        self.td_error = Histogram::new();
        self.churn = 0;
        self.near_rail_q = 0;
        self.near_rail_qmax = 0;
        self.visited.iter_mut().for_each(|w| *w = 0);
        self.visited_count = 0;
        self.last_cycle = 0;
    }

    /// Fold another probe's state into this one — the scale-out
    /// aggregation primitive, mirroring `CounterBank::merge`. Coverage
    /// bitsets OR together, which assumes both probes index the same
    /// state space (the `IndependentPipelines` sharding contract).
    pub fn merge(&mut self, other: &HealthProbe) {
        self.samples_seen += other.samples_seen;
        self.samples_probed += other.samples_probed;
        self.td_error.merge(&other.td_error);
        self.churn += other.churn;
        self.near_rail_q += other.near_rail_q;
        self.near_rail_qmax += other.near_rail_qmax;
        if self.visited.len() < other.visited.len() {
            self.visited.resize(other.visited.len(), 0);
        }
        for (mine, theirs) in self.visited.iter_mut().zip(&other.visited) {
            *mine |= theirs;
        }
        self.visited_count = self.visited.iter().map(|w| w.count_ones() as u64).sum();
        self.num_states = self.num_states.max(other.num_states);
        self.last_cycle = self.last_cycle.max(other.last_cycle);
    }

    /// Publish the probe under the stable `qtaccel_health_*` metric
    /// names.
    pub fn register_into(&self, reg: &mut MetricsRegistry) {
        reg.set_histogram(
            "qtaccel_health_td_error_magnitude",
            "TD-error magnitude per probed update (raw storage units)",
            &self.td_error,
        );
        reg.set_counter(
            "qtaccel_health_policy_churn_total",
            "stored greedy-action flips at probed samples",
            self.churn,
        );
        reg.set_counter(
            "qtaccel_health_near_rail_q_total",
            "probed Q writes within 2^k raw units of a format rail",
            self.near_rail_q,
        );
        reg.set_counter(
            "qtaccel_health_near_rail_qmax_total",
            "probed Qmax writes within 2^k raw units of a format rail",
            self.near_rail_qmax,
        );
        reg.set_counter(
            "qtaccel_health_samples_probed_total",
            "samples probed by the health layer",
            self.samples_probed,
        );
        reg.set_counter(
            "qtaccel_health_samples_seen_total",
            "retired samples seen by the health layer",
            self.samples_seen,
        );
        reg.set_gauge(
            "qtaccel_health_states_visited",
            "distinct states visited at probed samples",
            self.visited_count as f64,
        );
        reg.set_gauge(
            "qtaccel_health_state_coverage",
            "fraction of the state space visited at probed samples",
            if self.num_states > 0 {
                self.visited_count as f64 / self.num_states as f64
            } else {
                0.0
            },
        );
    }

    /// Serialize the full probe state (configuration included) as plain
    /// words for the `accel` checkpoint container. The layout is
    /// version-free: [`restore_from_words`](Self::restore_from_words)
    /// validates internal consistency, and the container's CRC + section
    /// length prefix guard the transport.
    pub fn checkpoint_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(14 + self.visited.len() + Histogram::BUCKETS);
        words.push(self.config.stride);
        words.push(self.config.near_rail_bits as u64);
        words.push(self.samples_seen);
        words.push(self.samples_probed);
        words.push(self.churn);
        words.push(self.near_rail_q);
        words.push(self.near_rail_qmax);
        words.push(self.visited_count);
        words.push(self.num_states);
        words.push(self.last_cycle);
        words.push(self.visited.len() as u64);
        words.extend_from_slice(&self.visited);
        words.push(self.td_error.count());
        words.push(self.td_error.sum());
        words.push(self.td_error.max());
        words.extend_from_slice(self.td_error.bucket_counts());
        words
    }

    /// Restore state captured by
    /// [`checkpoint_words`](Self::checkpoint_words), overwriting this
    /// probe entirely (configuration included — resume means resuming
    /// the checkpointed run's sampling plan). All-or-nothing: on any
    /// error the probe is untouched and the reason names the offending
    /// field.
    pub fn restore_from_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut pos = 0usize;
        let mut next = |what: &'static str| -> Result<u64, String> {
            let w = words
                .get(pos)
                .copied()
                .ok_or_else(|| format!("probe section truncated at {what}"))?;
            pos += 1;
            Ok(w)
        };
        let stride = next("stride")?;
        if stride == 0 {
            return Err("probe stride is zero".into());
        }
        let near_rail_bits = next("near_rail_bits")?;
        if near_rail_bits >= 64 {
            return Err(format!("near_rail_bits {near_rail_bits} out of range"));
        }
        let samples_seen = next("samples_seen")?;
        let samples_probed = next("samples_probed")?;
        let churn = next("churn")?;
        let near_rail_q = next("near_rail_q")?;
        let near_rail_qmax = next("near_rail_qmax")?;
        let visited_count = next("visited_count")?;
        let num_states = next("num_states")?;
        let last_cycle = next("last_cycle")?;
        let nwords = next("visited length")? as usize;
        let mut visited = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            visited.push(next("visited word")?);
        }
        let td_count = next("td count")?;
        let td_sum = next("td sum")?;
        let td_max = next("td max")?;
        let mut buckets = [0u64; Histogram::BUCKETS];
        for b in buckets.iter_mut() {
            *b = next("td bucket")?;
        }
        if pos != words.len() {
            return Err(format!(
                "probe section has {} trailing words",
                words.len() - pos
            ));
        }
        let popcount: u64 = visited.iter().map(|w| w.count_ones() as u64).sum();
        if popcount != visited_count {
            return Err(format!(
                "visited popcount {popcount} != recorded {visited_count}"
            ));
        }
        let bucket_sum: u64 = buckets.iter().sum();
        if bucket_sum != td_count {
            return Err(format!(
                "td bucket sum {bucket_sum} != recorded count {td_count}"
            ));
        }
        self.config = HealthConfig {
            stride,
            near_rail_bits: near_rail_bits as u32,
        };
        self.samples_seen = samples_seen;
        self.samples_probed = samples_probed;
        self.churn = churn;
        self.near_rail_q = near_rail_q;
        self.near_rail_qmax = near_rail_qmax;
        self.visited = visited;
        self.visited_count = visited_count;
        self.num_states = num_states;
        self.last_cycle = last_cycle;
        self.td_error = Histogram::from_parts(buckets, td_count, td_sum, td_max);
        Ok(())
    }
}

/// The health-probing sink: no event stream, live perf counters, and a
/// carried [`HealthProbe`] the pipelines feed per retired sample.
///
/// Attaching it makes the fused/interleaved specializations ineligible
/// (the general fast path and the cycle-accurate engine both take the
/// probe hook, bit-identically); a [`crate::NullSink`] build is
/// untouched.
#[derive(Debug, Clone)]
pub struct HealthSink {
    probe: HealthProbe,
}

impl HealthSink {
    /// A sink probing at the given configuration.
    pub fn new(config: HealthConfig) -> Self {
        Self {
            probe: HealthProbe::new(config),
        }
    }

    /// The carried probe.
    pub fn probe(&self) -> &HealthProbe {
        &self.probe
    }

    /// Mutable access to the carried probe.
    pub fn probe_mut(&mut self) -> &mut HealthProbe {
        &mut self.probe
    }

    /// Consume the sink and keep the probe.
    pub fn into_probe(self) -> HealthProbe {
        self.probe
    }
}

impl Default for HealthSink {
    fn default() -> Self {
        Self::new(HealthConfig::default())
    }
}

impl TraceSink for HealthSink {
    const EVENTS: bool = false;
    const COUNTERS: bool = true;
    const HEALTH: bool = true;

    #[inline(always)]
    fn record(&mut self, _ev: &Event) {}

    fn health(&self) -> Option<&HealthProbe> {
        Some(&self.probe)
    }

    fn health_mut(&mut self) -> Option<&mut HealthProbe> {
        Some(&mut self.probe)
    }
}

/// Which watchdog rule raised an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogRule {
    /// Windowed TD-error p99 magnitude crossed the log2 threshold.
    Divergence,
    /// Near-rail fraction of probed writes crossed the threshold.
    Saturation,
    /// A mature window retired samples with zero TD movement and zero
    /// policy churn.
    StalledLearning,
    /// Uncorrectable ECC detections advanced during the window.
    ScrubFailure,
}

impl WatchdogRule {
    /// Every rule, in alert-priority order.
    pub const ALL: [WatchdogRule; 4] = [
        WatchdogRule::Divergence,
        WatchdogRule::Saturation,
        WatchdogRule::StalledLearning,
        WatchdogRule::ScrubFailure,
    ];

    /// Stable snake_case name (metric suffix and JSONL discriminator).
    pub fn name(self) -> &'static str {
        match self {
            WatchdogRule::Divergence => "divergence",
            WatchdogRule::Saturation => "saturation",
            WatchdogRule::StalledLearning => "stalled_learning",
            WatchdogRule::ScrubFailure => "scrub_failure",
        }
    }

    fn index(self) -> usize {
        match self {
            WatchdogRule::Divergence => 0,
            WatchdogRule::Saturation => 1,
            WatchdogRule::StalledLearning => 2,
            WatchdogRule::ScrubFailure => 3,
        }
    }

    /// Stable numeric code for binary encodings (the telemetry wire
    /// protocol and span lanes). Codes are part of the wire contract:
    /// they never change meaning, and new rules append.
    pub fn code(self) -> u64 {
        self.index() as u64
    }

    /// Inverse of [`code`](Self::code); `None` for codes this build
    /// does not know (a newer sender — the strict decoder refuses the
    /// frame rather than guessing).
    pub fn from_code(code: u64) -> Option<WatchdogRule> {
        WatchdogRule::ALL.get(code as usize).copied()
    }
}

/// A structured, cycle-stamped watchdog alert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alert {
    /// The rule that tripped.
    pub rule: WatchdogRule,
    /// Pipeline cycle of the newest probed sample when it tripped.
    pub cycle: u64,
    /// Retired-sample ordinal when it tripped.
    pub sample: u64,
    /// The windowed quantity the rule measured.
    pub value: f64,
    /// The threshold it crossed.
    pub threshold: f64,
}

impl ToJson for Alert {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rule", Json::Str(self.rule.name().into())),
            ("cycle", Json::UInt(self.cycle)),
            ("sample", Json::UInt(self.sample)),
            ("value", Json::Num(self.value)),
            ("threshold", Json::Num(self.threshold)),
        ])
    }
}

/// Watchdog rule thresholds. Defaults suit the 16-bit Q8.8 format the
/// benches run; recalibrate `divergence_p99_bits` per storage width
/// (healthy Q8.8 TD errors sit well below 2¹³ raw units, while an upset
/// high bit lands updates at 2¹⁴ and above).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Rules only evaluate once a window has this many probed samples;
    /// the window then resets.
    pub min_window_probes: u64,
    /// `divergence` trips when the windowed TD-error p99 lands in log2
    /// bucket ≥ this (i.e. magnitude ≥ `2^(bits−1)` raw units).
    pub divergence_p99_bits: u32,
    /// `saturation` trips when this fraction of the window's probed
    /// writes landed near a rail.
    pub saturation_fraction: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            min_window_probes: 64,
            divergence_p99_bits: 14,
            saturation_fraction: 0.5,
        }
    }
}

/// Cumulative probe marks at the last window boundary.
#[derive(Debug, Clone, Default)]
struct WindowMark {
    td_buckets: Vec<u64>,
    churn: u64,
    near_rail_q: u64,
    near_rail_qmax: u64,
    samples_probed: u64,
    uncorrectable: u64,
}

/// The watchdog rule engine: call [`check`](Watchdog::check) at any
/// cadence; rules evaluate over the probe delta since the last mature
/// window and raise [`Alert`]s (see [`WatchdogRule`]).
#[derive(Debug, Clone)]
pub struct Watchdog {
    config: WatchdogConfig,
    mark: WindowMark,
    checks: u64,
    windows: u64,
    alerts: Vec<Alert>,
    trips: [u64; 4],
}

impl Watchdog {
    /// A watchdog with the given thresholds, window starting now.
    pub fn new(config: WatchdogConfig) -> Self {
        assert!(config.min_window_probes > 0, "window must be positive");
        Self {
            config,
            mark: WindowMark::default(),
            checks: 0,
            windows: 0,
            alerts: Vec::new(),
            trips: [0; 4],
        }
    }

    /// The thresholds in force.
    pub fn config(&self) -> WatchdogConfig {
        self.config
    }

    /// Evaluate the rules against `probe`'s state since the last mature
    /// window. `uncorrectable_total` is the cumulative
    /// detected-uncorrectable ECC count from the fault runtime (0 when
    /// no runtime is attached). Returns the alerts raised by *this*
    /// check (also appended to [`alerts`](Self::alerts)); an immature
    /// window (fewer than `min_window_probes` new probed samples) only
    /// evaluates the scrub rule and leaves the window open.
    pub fn check(&mut self, probe: &HealthProbe, uncorrectable_total: u64) -> Vec<Alert> {
        self.checks += 1;
        let mut raised = Vec::new();
        let cycle = probe.last_cycle();
        let sample = probe.samples_seen();

        // Scrub failure is evaluated on every check — an uncorrectable
        // detection is an event, not a trend, and must not wait for a
        // probe window to mature.
        let du = uncorrectable_total.saturating_sub(self.mark.uncorrectable);
        if du > 0 {
            raised.push(Alert {
                rule: WatchdogRule::ScrubFailure,
                cycle,
                sample,
                value: du as f64,
                threshold: 0.0,
            });
            self.mark.uncorrectable = uncorrectable_total;
        }

        let dn = probe.samples_probed() - self.mark.samples_probed;
        if dn >= self.config.min_window_probes {
            let buckets = probe.td_error().bucket_counts();
            let prev = &self.mark.td_buckets;
            let delta_bucket =
                |i: usize| buckets[i] - prev.get(i).copied().unwrap_or(0);
            let td_n: u64 = (0..Histogram::BUCKETS).map(delta_bucket).sum();

            // Divergence: windowed p99 bucket index.
            if td_n > 0 {
                let rank = ((0.99 * td_n as f64).ceil() as u64).clamp(1, td_n);
                let mut cumulative = 0u64;
                let mut p99_bucket = 0usize;
                for i in 0..Histogram::BUCKETS {
                    cumulative += delta_bucket(i);
                    if cumulative >= rank {
                        p99_bucket = i;
                        break;
                    }
                }
                if p99_bucket as u32 >= self.config.divergence_p99_bits {
                    raised.push(Alert {
                        rule: WatchdogRule::Divergence,
                        cycle,
                        sample,
                        value: p99_bucket as f64,
                        threshold: self.config.divergence_p99_bits as f64,
                    });
                }

                // Stalled learning: every windowed TD error is exactly
                // zero (bucket 0) and the stored policy never flipped.
                let dchurn = probe.churn() - self.mark.churn;
                if delta_bucket(0) == td_n && dchurn == 0 {
                    raised.push(Alert {
                        rule: WatchdogRule::StalledLearning,
                        cycle,
                        sample,
                        value: dn as f64,
                        threshold: self.config.min_window_probes as f64,
                    });
                }
            }

            // Saturation: near-rail fraction of the window's writes.
            let dnear = (probe.near_rail_q() - self.mark.near_rail_q)
                + (probe.near_rail_qmax() - self.mark.near_rail_qmax);
            let frac = dnear as f64 / dn as f64;
            if frac >= self.config.saturation_fraction {
                raised.push(Alert {
                    rule: WatchdogRule::Saturation,
                    cycle,
                    sample,
                    value: frac,
                    threshold: self.config.saturation_fraction,
                });
            }

            // Close the window.
            self.mark.td_buckets = buckets.to_vec();
            self.mark.churn = probe.churn();
            self.mark.near_rail_q = probe.near_rail_q();
            self.mark.near_rail_qmax = probe.near_rail_qmax();
            self.mark.samples_probed = probe.samples_probed();
            self.windows += 1;
        }

        for a in &raised {
            self.trips[a.rule.index()] += 1;
        }
        self.alerts.extend_from_slice(&raised);
        raised
    }

    /// Every alert raised so far, in order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// How many times `rule` has tripped.
    pub fn trip_count(&self, rule: WatchdogRule) -> u64 {
        self.trips[rule.index()]
    }

    /// Total checks run.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Mature windows closed.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Publish trip counters under `qtaccel_health_alerts_<rule>_total`
    /// plus the check/window counters.
    pub fn register_into(&self, reg: &mut MetricsRegistry) {
        for rule in WatchdogRule::ALL {
            reg.set_counter(
                &format!("qtaccel_health_alerts_{}_total", rule.name()),
                &format!("watchdog alerts raised by the {} rule", rule.name()),
                self.trips[rule.index()],
            );
        }
        reg.set_counter(
            "qtaccel_health_watchdog_checks_total",
            "watchdog evaluations run",
            self.checks,
        );
        reg.set_counter(
            "qtaccel_health_watchdog_windows_total",
            "mature probe windows the watchdog closed",
            self.windows,
        );
    }
}

/// One flight-recorder ring entry.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightEntry {
    /// A periodic probe snapshot.
    Snapshot(HealthSnapshot),
    /// A watchdog alert.
    Alert(Alert),
    /// A free-form lifecycle marker (`"batch_seal"`, `"panic"`, …).
    Marker {
        /// Pipeline cycle the marker refers to.
        cycle: u64,
        /// What happened.
        label: String,
    },
}

fn entry_json(seq: u64, entry: &FlightEntry) -> Json {
    let (tag, body) = match entry {
        FlightEntry::Snapshot(s) => ("snapshot", s.to_json()),
        FlightEntry::Alert(a) => ("alert", a.to_json()),
        FlightEntry::Marker { cycle, label } => (
            "marker",
            Json::Obj(vec![
                ("cycle", Json::UInt(*cycle)),
                ("label", Json::Str(label.clone())),
            ]),
        ),
    };
    let mut fields = vec![
        ("t", Json::Str(tag.into())),
        ("seq", Json::UInt(seq)),
    ];
    match body {
        Json::Obj(inner) => fields.extend(inner),
        other => fields.push(("body", other)),
    }
    Json::Obj(fields)
}

/// A bounded ring of recent health snapshots, alerts and markers — the
/// post-mortem that survives a crash. Entries carry a monotonic sequence
/// number; when the ring is full the oldest entry is evicted (and
/// counted), so a dump always holds the *newest* history.
///
/// [`dump_jsonl`](Self::dump_jsonl) writes one strict-parseable JSON
/// line per entry (`crate::json::parse` round-trips every line — pinned
/// by tests); [`with_panic_dump`](Self::with_panic_dump) arranges the
/// dump on panic unwind.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    entries: VecDeque<(u64, FlightEntry)>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// A ring holding at most `capacity` entries.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight-recorder capacity must be positive");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, entry: FlightEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((self.next_seq, entry));
        self.next_seq += 1;
    }

    /// Record a probe snapshot.
    pub fn push_snapshot(&mut self, snapshot: HealthSnapshot) {
        self.push(FlightEntry::Snapshot(snapshot));
    }

    /// Record a watchdog alert.
    pub fn push_alert(&mut self, alert: Alert) {
        self.push(FlightEntry::Alert(alert));
    }

    /// Record a lifecycle marker.
    pub fn push_marker(&mut self, cycle: u64, label: &str) {
        self.push(FlightEntry::Marker {
            cycle,
            label: label.to_string(),
        });
    }

    /// Entries currently retained, oldest first, with sequence numbers.
    pub fn entries(&self) -> impl Iterator<Item = (u64, &FlightEntry)> {
        self.entries.iter().map(|(seq, e)| (*seq, e))
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted by ring pressure.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Write the retained entries as JSONL, oldest first; returns the
    /// line count. Every line parses with the workspace's strict JSON
    /// parser.
    pub fn dump_jsonl(&self, w: &mut impl Write) -> std::io::Result<u64> {
        for (seq, entry) in &self.entries {
            writeln!(w, "{}", entry_json(*seq, entry).compact())?;
        }
        Ok(self.entries.len() as u64)
    }

    /// [`dump_jsonl`](Self::dump_jsonl) into a freshly created (truncated)
    /// file.
    pub fn dump_to(&self, path: impl AsRef<Path>) -> std::io::Result<u64> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        let lines = self.dump_jsonl(&mut w)?;
        w.flush()?;
        Ok(lines)
    }

    /// Run `f` with a fresh recorder; if `f` panics, the recorder (with
    /// whatever `f` pushed, plus a final `"panic"` marker) is dumped to
    /// `path` before the panic resumes unwinding. The post-mortem file
    /// the crash leaves behind is exactly the ring at the moment of
    /// death.
    pub fn with_panic_dump<R>(
        path: impl AsRef<Path>,
        capacity: usize,
        f: impl FnOnce(&mut FlightRecorder) -> R,
    ) -> R {
        let mut recorder = FlightRecorder::new(capacity);
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut recorder))) {
            Ok(r) => r,
            Err(payload) => {
                let cycle = recorder
                    .entries
                    .back()
                    .map(|(_, e)| match e {
                        FlightEntry::Snapshot(s) => s.cycle,
                        FlightEntry::Alert(a) => a.cycle,
                        FlightEntry::Marker { cycle, .. } => *cycle,
                    })
                    .unwrap_or(0);
                recorder.push_marker(cycle, "panic");
                let _ = recorder.dump_to(path);
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn health_sink_flags() {
        const {
            assert!(!HealthSink::EVENTS);
            assert!(HealthSink::COUNTERS);
            assert!(HealthSink::HEALTH);
            assert!(!crate::NullSink::HEALTH);
            assert!(!crate::CountersOnly::HEALTH);
            assert!(!crate::RingSink::HEALTH);
        }
    }

    #[test]
    fn sign_helpers_are_exact_at_16_bits() {
        // Q8.8: rails at -32768 / +32767 raw.
        assert_eq!(rail_distance(0x7FFF, 16), 0, "on the positive rail");
        assert_eq!(rail_distance(0x8000, 16), 0, "on the negative rail");
        assert_eq!(rail_distance(0x7FF0, 16), 15);
        assert_eq!(rail_distance(0, 16), 32767, "zero is mid-format");
        // |(-1) - (+1)| = 2.
        assert_eq!(td_magnitude(1, 0xFFFF, 16), 2);
        // Full-swing difference.
        assert_eq!(td_magnitude(0x8000, 0x7FFF, 16), 65535);
        assert_eq!(td_magnitude(5, 5, 16), 0);
    }

    #[test]
    fn probe_strides_on_the_sample_ordinal() {
        let mut p = HealthProbe::new(HealthConfig {
            stride: 3,
            near_rail_bits: 4,
        });
        p.bind_states(64);
        for i in 0..10u64 {
            p.observe_sample(i * 4, i % 5, 0, 256, 16, false, i % 2 == 0);
        }
        // Ordinals 0, 3, 6, 9 are probed.
        assert_eq!(p.samples_seen(), 10);
        assert_eq!(p.samples_probed(), 4);
        assert_eq!(p.td_error().count(), 4);
        // Flips at even ordinals: 0 and 6 among the probed set.
        assert_eq!(p.churn(), 2);
        // States 0, 3, 1, 4 — all distinct.
        assert_eq!(p.states_visited(), 4);
        assert_eq!(p.last_cycle(), 36);
    }

    #[test]
    fn near_rail_counters_track_written_words() {
        let mut p = HealthProbe::new(HealthConfig {
            stride: 1,
            near_rail_bits: 4,
        });
        // 0x7FF8 is 7 from the +rail: near. Qmax write rides along.
        p.observe_sample(0, 0, 0, 0x7FF8, 16, true, false);
        // 0x4000 is mid-format: not near.
        p.observe_sample(1, 1, 0, 0x4000, 16, true, false);
        assert_eq!(p.near_rail_q(), 1);
        assert_eq!(p.near_rail_qmax(), 1);
    }

    #[test]
    fn probe_checkpoint_words_round_trip_bit_exactly() {
        let mut p = HealthProbe::new(HealthConfig {
            stride: 2,
            near_rail_bits: 5,
        });
        p.bind_states(200);
        for i in 0..37u64 {
            p.observe_sample(i, i % 200, i * 3, i * 7, 16, i % 4 == 0, i % 6 == 0);
        }
        let words = p.checkpoint_words();
        let mut q = HealthProbe::new(HealthConfig::default());
        q.restore_from_words(&words).expect("restores");
        assert_eq!(p, q, "probe state is bit-exact through the word form");
        // And the restored probe continues identically.
        p.observe_sample(100, 3, 9, 9, 16, false, false);
        q.observe_sample(100, 3, 9, 9, 16, false, false);
        assert_eq!(p, q);
    }

    #[test]
    fn probe_restore_rejects_inconsistent_sections() {
        let p = {
            let mut p = HealthProbe::new(HealthConfig::default());
            p.bind_states(64);
            p.observe_sample(0, 1, 0, 50, 16, false, false);
            p
        };
        let mut q = HealthProbe::new(HealthConfig::default());
        let good = p.checkpoint_words();
        // Truncated.
        assert!(q.restore_from_words(&good[..good.len() - 1]).is_err());
        // Corrupt visited popcount.
        let mut bad = good.clone();
        let visited_word = 11; // first visited word (after 10 scalars + len)
        bad[visited_word] ^= 0b100;
        assert!(q.restore_from_words(&bad).unwrap_err().contains("popcount"));
        // Zero stride.
        let mut bad = good.clone();
        bad[0] = 0;
        assert!(q.restore_from_words(&bad).is_err());
        // The probe is untouched by failed restores.
        assert_eq!(q, HealthProbe::new(HealthConfig::default()));
        // The original section still restores.
        assert!(q.restore_from_words(&good).is_ok());
    }

    #[test]
    fn probe_merge_matches_interleaved_observation() {
        let mut a = HealthProbe::new(HealthConfig::default());
        let mut b = HealthProbe::new(HealthConfig::default());
        let mut whole = HealthProbe::new(HealthConfig::default());
        for p in [&mut a, &mut b, &mut whole] {
            p.bind_states(128);
        }
        for i in 0..50u64 {
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.observe_sample(i, i % 128, i, i * 2, 16, false, i % 3 == 0);
            whole.observe_sample(i, i % 128, i, i * 2, 16, false, i % 3 == 0);
        }
        a.merge(&b);
        assert_eq!(a.td_error().count(), whole.td_error().count());
        assert_eq!(a.churn(), whole.churn());
        assert_eq!(a.states_visited(), whole.states_visited());
        assert_eq!(a.samples_probed(), whole.samples_probed());
    }

    fn probe_with_updates(magnitudes: &[u64]) -> HealthProbe {
        let mut p = HealthProbe::new(HealthConfig::default());
        p.bind_states(64);
        for (i, &m) in magnitudes.iter().enumerate() {
            p.observe_sample(i as u64, (i % 64) as u64, 0, m, 32, false, false);
        }
        p
    }

    #[test]
    fn watchdog_divergence_trips_on_windowed_p99() {
        let mut wd = Watchdog::new(WatchdogConfig {
            min_window_probes: 64,
            divergence_p99_bits: 14,
            saturation_fraction: 1.1, // effectively off
        });
        // A healthy window: magnitudes around 2^8.
        let mut p = probe_with_updates(&vec![300; 64]);
        assert!(wd.check(&p, 0).is_empty(), "healthy window");
        // Divergent tail: 5% of the next window at 2^15.
        for i in 0..64u64 {
            let m = if i % 16 == 0 { 1 << 15 } else { 300 };
            p.observe_sample(64 + i, i % 64, 0, m, 32, false, false);
        }
        let raised = wd.check(&p, 0);
        assert_eq!(raised.len(), 1);
        assert_eq!(raised[0].rule, WatchdogRule::Divergence);
        assert!(raised[0].value >= 14.0, "p99 bucket {}", raised[0].value);
        assert_eq!(wd.trip_count(WatchdogRule::Divergence), 1);
        assert_eq!(wd.windows(), 2);
    }

    #[test]
    fn watchdog_ignores_immature_windows() {
        let mut wd = Watchdog::new(WatchdogConfig::default());
        let p = probe_with_updates(&[1 << 20; 10]); // huge but only 10 probes
        assert!(wd.check(&p, 0).is_empty());
        assert_eq!(wd.windows(), 0, "window stays open");
        assert_eq!(wd.checks(), 1);
    }

    #[test]
    fn watchdog_stalled_learning_needs_zero_td_and_zero_churn() {
        let mut wd = Watchdog::new(WatchdogConfig::default());
        let p = probe_with_updates(&vec![0; 100]);
        let raised = wd.check(&p, 0);
        assert_eq!(raised.len(), 1);
        assert_eq!(raised[0].rule, WatchdogRule::StalledLearning);
        // A churning probe with zero TD error is converged-and-dithering,
        // not stalled — and churn requires a qmax write, which moves Q,
        // so in practice zero-TD windows with churn don't arise; pin the
        // rule's churn guard synthetically.
        let mut wd2 = Watchdog::new(WatchdogConfig::default());
        let mut p2 = HealthProbe::new(HealthConfig::default());
        for i in 0..100u64 {
            p2.observe_sample(i, i % 8, 0, 0, 32, true, i == 50);
        }
        assert!(wd2.check(&p2, 0).is_empty(), "churned window is not stalled");
    }

    #[test]
    fn watchdog_saturation_and_scrub_rules() {
        let mut wd = Watchdog::new(WatchdogConfig {
            min_window_probes: 32,
            divergence_p99_bits: 64, // off (bucket index can't reach 64's threshold at width 16)
            saturation_fraction: 0.5,
        });
        let mut p = HealthProbe::new(HealthConfig {
            stride: 1,
            near_rail_bits: 4,
        });
        // 75% of writes land on the positive rail.
        for i in 0..32u64 {
            let word = if i % 4 == 0 { 0x4000 } else { 0x7FFF };
            p.observe_sample(i, i % 8, 0, word, 16, false, false);
        }
        let raised = wd.check(&p, 0);
        assert_eq!(raised.len(), 1);
        assert_eq!(raised[0].rule, WatchdogRule::Saturation);
        assert!((raised[0].value - 0.75).abs() < 1e-9);

        // Scrub failure fires immediately, even mid-window.
        let raised = wd.check(&p, 3);
        assert_eq!(raised.len(), 1);
        assert_eq!(raised[0].rule, WatchdogRule::ScrubFailure);
        assert_eq!(raised[0].value, 3.0);
        // No double-fire on the same cumulative count.
        assert!(wd.check(&p, 3).is_empty());
        assert_eq!(wd.trip_count(WatchdogRule::ScrubFailure), 1);
    }

    #[test]
    fn flight_recorder_dump_lines_parse_strictly() {
        let mut rec = FlightRecorder::new(8);
        let mut p = probe_with_updates(&[1, 2, 3]);
        rec.push_snapshot(p.snapshot());
        p.observe_sample(10, 5, 0, 99, 32, true, true);
        rec.push_snapshot(p.snapshot());
        rec.push_alert(Alert {
            rule: WatchdogRule::Divergence,
            cycle: 10,
            sample: 4,
            value: 15.0,
            threshold: 14.0,
        });
        rec.push_marker(11, "batch_seal");
        let mut out = Vec::new();
        assert_eq!(rec.dump_jsonl(&mut out).unwrap(), 4);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for (i, line) in lines.iter().enumerate() {
            let parsed = parse(line).expect("strict parse");
            assert_eq!(parsed.get("seq").unwrap().as_u64(), Some(i as u64));
        }
        let alert = parse(lines[2]).unwrap();
        assert_eq!(alert.get("t").unwrap().as_str(), Some("alert"));
        assert_eq!(alert.get("rule").unwrap().as_str(), Some("divergence"));
        let marker = parse(lines[3]).unwrap();
        assert_eq!(marker.get("label").unwrap().as_str(), Some("batch_seal"));
        let snap = parse(lines[1]).unwrap();
        assert_eq!(snap.get("samples_probed").unwrap().as_u64(), Some(4));
        assert!(snap.get("td").unwrap().get("count").is_some());
    }

    #[test]
    fn flight_recorder_ring_keeps_newest() {
        let mut rec = FlightRecorder::new(2);
        for i in 0..5u64 {
            rec.push_marker(i, "m");
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let seqs: Vec<u64> = rec.entries().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn panic_dump_writes_a_parseable_post_mortem() {
        let dir = std::env::temp_dir().join(format!(
            "qtaccel-health-panic-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.jsonl");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            FlightRecorder::with_panic_dump(&path, 16, |rec| {
                rec.push_marker(1, "working");
                rec.push_marker(2, "still working");
                panic!("simulated crash");
            })
        }));
        assert!(result.is_err(), "panic propagates");
        let text = std::fs::read_to_string(&path).expect("dump exists");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "two markers + the panic marker");
        for line in &lines {
            parse(line).expect("post-mortem lines parse strictly");
        }
        let last = parse(lines[2]).unwrap();
        assert_eq!(last.get("label").unwrap().as_str(), Some("panic"));
        assert_eq!(last.get("cycle").unwrap().as_u64(), Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn probe_registers_stable_metric_names(// watchdog too
    ) {
        let mut p = probe_with_updates(&[100, 200]);
        p.observe_sample(5, 1, 0, 0x7FFF_FFFF, 32, true, true);
        let mut wd = Watchdog::new(WatchdogConfig::default());
        wd.check(&p, 0);
        let mut reg = MetricsRegistry::new();
        p.register_into(&mut reg);
        wd.register_into(&mut reg);
        for name in [
            "qtaccel_health_td_error_magnitude",
            "qtaccel_health_policy_churn_total",
            "qtaccel_health_near_rail_q_total",
            "qtaccel_health_near_rail_qmax_total",
            "qtaccel_health_samples_probed_total",
            "qtaccel_health_samples_seen_total",
            "qtaccel_health_states_visited",
            "qtaccel_health_state_coverage",
            "qtaccel_health_alerts_divergence_total",
            "qtaccel_health_alerts_saturation_total",
            "qtaccel_health_alerts_stalled_learning_total",
            "qtaccel_health_alerts_scrub_failure_total",
            "qtaccel_health_watchdog_checks_total",
            "qtaccel_health_watchdog_windows_total",
        ] {
            assert!(reg.get(name).is_some(), "missing {name}");
        }
        let text = crate::export::encode_openmetrics(&reg);
        crate::export::check_openmetrics(&text).expect("strict-valid exposition");
    }
}
