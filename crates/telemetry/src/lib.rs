#![deny(missing_docs)]

//! Telemetry layer for the QTAccel simulators.
//!
//! Hardware teams debug accelerators through two complementary windows: a
//! bank of memory-mapped performance counters (cheap, always summable)
//! and a cycle-stamped event trace (expensive, exact). This crate models
//! both for the QTAccel pipelines, plus the plumbing to persist them:
//!
//! * [`counters`] — [`CounterBank`]: thirteen 64-bit counters with a
//!   stable register map (stalls by stage, forwarding hits by table,
//!   memory-port traffic, LFSR draws), backed by the HDL
//!   `PerfRegFile` model.
//! * [`event`] — typed, cycle-stamped [`Event`]s: stage occupancy,
//!   hazards, stall intervals, forwards, commits.
//! * [`sink`] — the [`TraceSink`] trait and its implementations:
//!   [`NullSink`] (default; compiles instrumentation away entirely),
//!   [`CountersOnly`], bounded [`RingSink`], streaming [`JsonlSink`].
//! * [`json`] — the workspace's dependency-free JSON emitter
//!   ([`Json`]/[`ToJson`]/[`impl_to_json!`], moved here from
//!   `qtaccel-bench`) plus a strict parser ([`json::parse`]) for
//!   round-trip verification and baseline reading.
//! * [`manifest`] — git/time provenance attached to persisted results.
//! * [`histogram`] — log2-bucketed latency [`Histogram`]s (mergeable
//!   like counter banks, p50/p90/p99 summaries) and the
//!   [`MetricsRegistry`] of named `qtaccel_*` counters, gauges, and
//!   histograms that the scrape endpoint serves.
//! * [`export`] — the ways out of the process: an OpenMetrics text
//!   encoder with a std-only scrape endpoint ([`MetricsServer`]), and a
//!   Chrome trace-event (Perfetto-loadable) converter for event streams
//!   ([`export::chrome_trace`]) plus health counter tracks
//!   ([`export::chrome_trace_with_health`]).
//! * [`health`] — training-health observability: per-pipeline
//!   convergence probes ([`HealthProbe`], fed through the
//!   [`TraceSink::health_mut`] seam by [`HealthSink`]), the [`Watchdog`]
//!   rule engine raising structured [`Alert`]s, and the crash
//!   [`FlightRecorder`] with its panic-dump harness.
//! * [`span`] — deterministic structured spans: seeded [`TraceId`]s /
//!   [`SpanId`]s derived from sample ordinals (never wall-clock), a
//!   bounded [`SpanTracer`] ring with drop accounting, and contexts
//!   that cross executor worker threads so one trace covers a batch.
//! * [`wire`] — the framed telemetry wire protocol: versioned,
//!   CRC-32'd [`wire::Frame`]s carrying metric deltas, span batches,
//!   and alerts, with a strict incremental decoder
//!   ([`wire::FrameReader`]) that refuses damage with typed errors.
//! * [`collector`] — the merging TCP [`Collector`]: N concurrent
//!   worker wire streams in, associatively merged registry over
//!   OpenMetrics and a multi-process Perfetto trace out
//!   ([`Collector::perfetto_trace`]); [`WireClient`] is the sending
//!   half. DESIGN.md §2.15 documents all three layers.
//!
//! The cost contract: telemetry is **disabled by default and free when
//! disabled**. Pipelines are generic over the sink; with [`NullSink`]
//! every instrumentation site monomorphizes to nothing and the
//! specialized fast-path executors remain engaged. DESIGN.md §2.6
//! documents the register map, the JSONL event schema, and this policy;
//! §2.10 documents the metrics service built on top.

pub mod collector;
pub mod counters;
pub mod event;
pub mod export;
pub mod health;
pub mod histogram;
pub mod json;
pub mod manifest;
pub mod sink;
pub mod span;
pub mod wire;

pub use counters::{CounterBank, CounterId};
pub use event::{Event, MemKind};
pub use export::{
    check_openmetrics, chrome_trace, chrome_trace_with_health, encode_openmetrics,
    events_from_jsonl, health_counter_tracks, scrape, MetricsServer,
};
pub use health::{
    Alert, FlightEntry, FlightRecorder, HealthConfig, HealthProbe, HealthSink, HealthSnapshot,
    Watchdog, WatchdogConfig, WatchdogRule,
};
pub use histogram::{stall_run_lengths, Histogram, HistogramSummary, MetricValue, MetricsRegistry};
pub use collector::{Collector, WireClient, WorkerView};
pub use json::{Json, ToJson};
pub use sink::{CountersOnly, JsonlSink, NullSink, RingSink, TraceSink};
pub use span::{monotonic_ns, ActiveSpan, Span, SpanContext, SpanId, SpanTracer, TraceId};
pub use wire::{registry_delta, Frame, FramePayload, FrameReader, WireError};
